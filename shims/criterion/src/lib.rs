//! Minimal offline stand-in for the `criterion` crate.
//!
//! The experiment benches only need wall-clock means, not criterion's
//! statistical machinery: each `bench_function` warms up for the
//! configured time, then runs the closure until `measurement_time`
//! elapses and prints mean time per iteration (plus throughput when
//! declared). The macro surface (`criterion_group!`/`criterion_main!`)
//! matches the real crate so bench sources compile unmodified.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Bench configuration + entry point (subset of `criterion::Criterion`).
pub struct Criterion {
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            warm_up: Duration::from_millis(100),
            measurement: Duration::from_millis(500),
            sample_size: 10,
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up = d;
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement = d;
        self
    }

    pub fn configure_from_args(self) -> Self {
        // CLI filtering/baselines are not supported offline
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = id.into_benchmark_id();
        run_one(self, &label, None, &mut f);
        self
    }
}

/// Named group of benches sharing throughput settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(1);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id());
        run_one(self.criterion, &label, self.throughput, &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id());
        run_one(self.criterion, &label, self.throughput, &mut |b| {
            f(b, input)
        });
        self
    }

    pub fn finish(self) {}
}

/// Declared work per iteration, for ops/sec reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Two-part bench label (`BenchmarkId::new("fetch", 1024)`).
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{function}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Anything usable as a bench label.
pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.label
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Passed to the bench closure; [`Bencher::iter`] does the timing.
pub struct Bencher {
    iters_done: u64,
    elapsed: Duration,
    budget: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        loop {
            black_box(f());
            self.iters_done += 1;
            self.elapsed = start.elapsed();
            if self.elapsed >= self.budget {
                break;
            }
        }
    }
}

fn run_one<F>(c: &Criterion, label: &str, throughput: Option<Throughput>, f: &mut F)
where
    F: FnMut(&mut Bencher),
{
    // warm-up: run the closure body with a tiny budget until warm_up elapses
    let warm_start = Instant::now();
    while warm_start.elapsed() < c.warm_up {
        let mut b = Bencher {
            iters_done: 0,
            elapsed: Duration::ZERO,
            budget: Duration::from_micros(200),
        };
        f(&mut b);
        if b.iters_done == 0 {
            break; // closure never called iter(); nothing to warm
        }
    }
    let mut b = Bencher {
        iters_done: 0,
        elapsed: Duration::ZERO,
        budget: c.measurement,
    };
    f(&mut b);
    if b.iters_done == 0 {
        println!("bench {label}: no iterations recorded");
        return;
    }
    let per_iter = b.elapsed.as_nanos() as f64 / b.iters_done as f64;
    match throughput {
        Some(Throughput::Elements(n)) => {
            let rate = n as f64 * b.iters_done as f64 / b.elapsed.as_secs_f64();
            println!(
                "bench {label}: {per_iter:.0} ns/iter ({rate:.0} elem/s, {} iters)",
                b.iters_done
            );
        }
        Some(Throughput::Bytes(n)) => {
            let rate = n as f64 * b.iters_done as f64 / b.elapsed.as_secs_f64();
            println!(
                "bench {label}: {per_iter:.0} ns/iter ({:.1} MiB/s, {} iters)",
                rate / (1024.0 * 1024.0),
                b.iters_done
            );
        }
        None => println!(
            "bench {label}: {per_iter:.0} ns/iter ({} iters)",
            b.iters_done
        ),
    }
}

/// Define a bench group; both the struct-ish and positional forms of the
/// real macro are accepted.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c: $crate::Criterion = $config;
            $( $target(&mut c); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Entry point running every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("g");
        g.throughput(Throughput::Elements(10));
        g.bench_function("add", |b| b.iter(|| black_box(1u64) + black_box(2u64)));
        g.bench_with_input(BenchmarkId::new("mul", 3), &3u64, |b, &x| {
            b.iter(|| black_box(x) * 2)
        });
        g.finish();
        c.bench_function("direct", |b| b.iter(|| 1 + 1));
    }

    #[test]
    fn harness_runs_quickly() {
        let mut c = Criterion::default()
            .sample_size(2)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5))
            .configure_from_args();
        sample_bench(&mut c);
    }

    criterion_group! {
        name = benches;
        config = Criterion::default()
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(2));
        targets = sample_bench
    }

    #[test]
    fn group_macro_compiles_and_runs() {
        benches();
    }
}
