//! Minimal offline stand-in for the `rand` crate (0.8 API subset).
//!
//! [`rngs::StdRng`] is a xoshiro256++ generator seeded via SplitMix64 —
//! deterministic for a given seed, which is what the workload generators
//! and property tests need. Only the APIs this workspace calls are
//! provided: `seed_from_u64`, `gen`, `gen_bool`, `gen_range` over integer
//! and float ranges, and `fill_bytes`.

/// Core RNG interface (subset of `rand::RngCore` + `rand::Rng`).
pub trait Rng {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }

    /// Uniform f64 in [0, 1).
    fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }
}

/// Types samplable uniformly over their whole domain (`rng.gen()`).
pub trait Standard {
    fn sample<R: Rng>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn sample<R: Rng>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: Rng>(rng: &mut R) -> f64 {
        rng.gen_f64()
    }
}

impl Standard for u64 {
    fn sample<R: Rng>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: Rng>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange {
    type Output;
    fn sample<R: Rng>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for std::ops::Range<$t> {
            type Output = $t;
            fn sample<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + v) as $t
            }
        }
        impl SampleRange for std::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample<R: Rng>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + v) as $t
            }
        }
    )*};
}

impl_int_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl SampleRange for std::ops::Range<f64> {
    type Output = f64;
    fn sample<R: Rng>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty gen_range");
        self.start + rng.gen_f64() * (self.end - self.start)
    }
}

impl SampleRange for std::ops::RangeInclusive<f64> {
    type Output = f64;
    fn sample<R: Rng>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        lo + rng.gen_f64() * (hi - lo)
    }
}

/// Seedable construction (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{Rng, SeedableRng};

    /// xoshiro256++ PRNG, seeded via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 to expand the seed into full state
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Convenience seeded generator for non-reproducible use (`thread_rng`
/// stand-in; seeded from the clock, still cheap).
pub fn thread_rng() -> rngs::StdRng {
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0x5EED);
    SeedableRng::seed_from_u64(nanos)
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let v = rng.gen_range(-5..5i64);
            assert!((-5..5).contains(&v));
            let w = rng.gen_range(1..=8i64);
            assert!((1..=8).contains(&w));
            let f = rng.gen_range(6.0..25.0);
            assert!((6.0..25.0).contains(&f));
            let u = rng.gen_range(0..3usize);
            assert!(u < 3);
        }
    }

    #[test]
    fn gen_bool_rate_reasonable() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits {hits}");
    }
}
