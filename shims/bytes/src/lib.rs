//! Minimal offline stand-in for the `bytes` crate.
//!
//! Implements the slice of the API this workspace uses: cheaply-cloneable
//! immutable [`Bytes`] views over shared buffers, a growable [`BytesMut`],
//! and big-endian [`Buf`]/[`BufMut`] codec methods. Like the real crate,
//! reads past the end of a buffer panic; callers bound their reads with
//! [`Buf::remaining`].

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// Immutable, cheaply-cloneable byte buffer. Reading via [`Buf`] advances
/// the view in place; [`Bytes::split_to`] splits off a prefix that shares
/// the underlying allocation.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn from_static(data: &'static [u8]) -> Self {
        Bytes::from(data.to_vec())
    }

    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::from(data.to_vec())
    }

    pub fn len(&self) -> usize {
        self.end - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    /// Split off the first `n` bytes, leaving the remainder in `self`.
    pub fn split_to(&mut self, n: usize) -> Bytes {
        assert!(
            n <= self.len(),
            "split_to out of bounds: {n} > {}",
            self.len()
        );
        let head = Bytes {
            data: self.data.clone(),
            start: self.start,
            end: self.start + n,
        };
        self.start += n;
        head
    }

    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        assert!(range.start <= range.end && range.end <= self.len());
        Bytes {
            data: self.data.clone(),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }

    fn take(&mut self, n: usize) -> &[u8] {
        assert!(
            n <= self.len(),
            "buffer underflow: need {n}, have {}",
            self.len()
        );
        let s = &self.data[self.start..self.start + n];
        self.start += n;
        s
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        let end = data.len();
        Bytes {
            data: Arc::new(data),
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Self {
        Bytes::from(data.to_vec())
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            write!(f, "\\x{b:02x}")?;
        }
        write!(f, "\"")
    }
}

/// Growable byte buffer; freeze into [`Bytes`] when done writing.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }

    pub fn extend_from_slice(&mut self, s: &[u8]) {
        self.data.extend_from_slice(s);
    }

    pub fn clear(&mut self) {
        self.data.clear();
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

/// Big-endian read cursor.
pub trait Buf {
    fn remaining(&self) -> usize;
    fn copy_to_bytes(&mut self, n: usize) -> Bytes;

    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    fn get_u8(&mut self) -> u8 {
        self.copy_to_bytes(1).as_slice()[0]
    }

    fn get_u32(&mut self) -> u32 {
        u32::from_be_bytes(self.copy_to_bytes(4).as_slice().try_into().unwrap())
    }

    fn get_u64(&mut self) -> u64 {
        u64::from_be_bytes(self.copy_to_bytes(8).as_slice().try_into().unwrap())
    }

    fn get_i64(&mut self) -> i64 {
        i64::from_be_bytes(self.copy_to_bytes(8).as_slice().try_into().unwrap())
    }

    fn get_f64(&mut self) -> f64 {
        f64::from_be_bytes(self.copy_to_bytes(8).as_slice().try_into().unwrap())
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_bytes(&mut self, n: usize) -> Bytes {
        Bytes::from(self.take(n).to_vec())
    }

    fn get_u8(&mut self) -> u8 {
        self.take(1)[0]
    }

    fn get_u32(&mut self) -> u32 {
        u32::from_be_bytes(self.take(4).try_into().unwrap())
    }

    fn get_u64(&mut self) -> u64 {
        u64::from_be_bytes(self.take(8).try_into().unwrap())
    }

    fn get_i64(&mut self) -> i64 {
        i64::from_be_bytes(self.take(8).try_into().unwrap())
    }

    fn get_f64(&mut self) -> f64 {
        f64::from_be_bytes(self.take(8).try_into().unwrap())
    }
}

/// Big-endian writer.
pub trait BufMut {
    fn put_slice(&mut self, s: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_i64(&mut self, v: i64) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_f64(&mut self, v: f64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, s: &[u8]) {
        self.data.extend_from_slice(s);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, s: &[u8]) {
        self.extend_from_slice(s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_widths() {
        let mut w = BytesMut::with_capacity(64);
        w.put_u8(7);
        w.put_u32(42);
        w.put_u64(1 << 40);
        w.put_i64(-5);
        w.put_f64(2.5);
        w.put_slice(b"tail");
        let mut r = w.freeze();
        assert_eq!(r.remaining(), 1 + 4 + 8 + 8 + 8 + 4);
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u32(), 42);
        assert_eq!(r.get_u64(), 1 << 40);
        assert_eq!(r.get_i64(), -5);
        assert_eq!(r.get_f64(), 2.5);
        assert_eq!(r.split_to(4).to_vec(), b"tail");
        assert!(!r.has_remaining());
    }

    #[test]
    fn split_shares_and_advances() {
        let mut b = Bytes::from(vec![1, 2, 3, 4, 5]);
        let head = b.split_to(2);
        assert_eq!(head.to_vec(), vec![1, 2]);
        assert_eq!(b.to_vec(), vec![3, 4, 5]);
        assert_eq!(b.slice(1..3).to_vec(), vec![4, 5]);
        assert_eq!(Bytes::from_static(b"ab"), Bytes::from(vec![b'a', b'b']));
    }

    #[test]
    #[should_panic(expected = "buffer underflow")]
    fn read_past_end_panics() {
        let mut b = Bytes::from(vec![1u8]);
        let _ = b.get_u32();
    }
}
