//! Minimal offline stand-in for the `parking_lot` crate.
//!
//! The container has no network and no vendored registry, so the workspace
//! ships the small slice of the parking_lot API it actually uses, backed by
//! `std::sync` primitives. Poisoning is deliberately swallowed: parking_lot
//! locks are not poisoning, and callers here rely on that.

pub use std::sync::MutexGuard;
use std::sync::{self, RwLockReadGuard, RwLockWriteGuard};

/// Non-poisoning mutex with the parking_lot calling convention.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

/// Non-poisoning reader-writer lock with the parking_lot calling convention.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
        assert!(l.try_read().is_some());
    }
}
