//! Minimal offline stand-in for the `crossbeam` crate.
//!
//! Provides `crossbeam::channel::{bounded, unbounded}` with the semantics
//! the compute runtime and consumer proxy rely on: multi-producer
//! multi-consumer, cloneable receivers (work-stealing fan-out), and
//! bounded channels whose full buffer blocks the sender — the
//! credit-based backpressure the staged runtime models.

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};

    /// Error returned by [`Sender::send`] when every receiver is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// every sender is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        state: Mutex<State<T>>,
        capacity: Option<usize>,
        not_empty: Condvar,
        not_full: Condvar,
    }

    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Bounded MPMC channel; `send` blocks while the buffer holds
    /// `capacity` messages.
    pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
        with_capacity(Some(capacity.max(1)))
    }

    /// Unbounded MPMC channel; `send` never blocks.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_capacity(None)
    }

    fn with_capacity<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            capacity,
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (
            Sender {
                shared: shared.clone(),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut st = self.shared.state.lock().unwrap();
            loop {
                if st.receivers == 0 {
                    return Err(SendError(value));
                }
                match self.shared.capacity {
                    Some(cap) if st.queue.len() >= cap => {
                        st = self.shared.not_full.wait(st).unwrap();
                    }
                    _ => break,
                }
            }
            st.queue.push_back(value);
            drop(st);
            self.shared.not_empty.notify_one();
            Ok(())
        }

        /// Messages currently queued (the sender-side view of channel
        /// depth — a backpressure/saturation signal).
        pub fn len(&self) -> usize {
            self.shared.state.lock().unwrap().queue.len()
        }

        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.state.lock().unwrap().senders += 1;
            Sender {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.shared.state.lock().unwrap();
            st.senders -= 1;
            if st.senders == 0 {
                drop(st);
                // wake receivers blocked on an empty queue so they observe
                // disconnection
                self.shared.not_empty.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.shared.state.lock().unwrap();
            loop {
                if let Some(v) = st.queue.pop_front() {
                    drop(st);
                    self.shared.not_full.notify_one();
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self.shared.not_empty.wait(st).unwrap();
            }
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut st = self.shared.state.lock().unwrap();
            if let Some(v) = st.queue.pop_front() {
                drop(st);
                self.shared.not_full.notify_one();
                return Ok(v);
            }
            if st.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        pub fn len(&self) -> usize {
            self.shared.state.lock().unwrap().queue.len()
        }

        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.state.lock().unwrap().receivers += 1;
            Receiver {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut st = self.shared.state.lock().unwrap();
            st.receivers -= 1;
            if st.receivers == 0 {
                drop(st);
                // wake senders blocked on a full queue so they observe
                // disconnection
                self.shared.not_full.notify_all();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel;
    use std::time::Duration;

    #[test]
    fn unbounded_fan_out_drains_everything() {
        let (tx, rx) = channel::unbounded::<u32>();
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let total = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let rx = rx.clone();
                    s.spawn(move || {
                        let mut sum = 0u64;
                        while let Ok(v) = rx.recv() {
                            sum += v as u64;
                        }
                        sum
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum::<u64>()
        });
        assert_eq!(total, (0..100).sum::<u32>() as u64);
    }

    #[test]
    fn bounded_send_blocks_until_recv() {
        let (tx, rx) = channel::bounded::<u8>(1);
        tx.send(1).unwrap();
        let t = std::thread::spawn(move || {
            tx.send(2).unwrap(); // blocks until the first recv
        });
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        t.join().unwrap();
        assert!(rx.recv().is_err()); // all senders gone
    }

    #[test]
    fn send_to_dropped_receiver_errors() {
        let (tx, rx) = channel::bounded::<u8>(1);
        drop(rx);
        assert!(tx.send(9).is_err());
    }
}
