//! # rtdi — Real-time Data Infrastructure
//!
//! A from-scratch Rust reproduction of *"Real-time Data Infrastructure at
//! Uber"* (Fu & Soman, SIGMOD 2021): the full stack of Figure 3 — a
//! Kafka-like streaming substrate, a Flink-like stream-processing engine,
//! a Pinot-like real-time OLAP store, a Presto-like federated SQL layer,
//! an HDFS-like archival warehouse and the metadata services — plus every
//! Uber-specific enhancement the paper describes (cluster federation,
//! dead-letter queues, the consumer proxy, uReplicator, Chaperone,
//! FlinkSQL, upserts, peer-to-peer segment recovery, active-active /
//! active-passive multi-region operation and Kappa+ backfills) and the
//! four representative §5 use cases.
//!
//! ## Quick start
//!
//! ```
//! use rtdi::core::platform::RealtimePlatform;
//! use rtdi::common::{FieldType, Record, Row, Schema};
//! use rtdi::stream::topic::TopicConfig;
//! use rtdi::olap::table::TableConfig;
//!
//! let platform = RealtimePlatform::new();
//! let schema = Schema::of("trips", &[
//!     ("city", FieldType::Str),
//!     ("fare", FieldType::Double),
//!     ("ts", FieldType::Timestamp),
//! ]);
//! platform.create_topic("trips", TopicConfig::default().with_partitions(2),
//!                       schema.clone()).unwrap();
//! let producer = platform.producer("quickstart");
//! for i in 0..100i64 {
//!     producer.send("trips", Record::new(
//!         Row::new().with("city", if i % 2 == 0 { "sf" } else { "la" })
//!                   .with("fare", 10.0 + (i % 7) as f64)
//!                   .with("ts", i * 100),
//!         i * 100,
//!     ).with_key(format!("t{i}"))).unwrap();
//! }
//! let table = platform.create_olap_table(
//!     TableConfig::new("trips", schema).with_time_column("ts").with_partitions(2),
//! ).unwrap();
//! platform.ingest_into("trips", table).unwrap().run_once().unwrap();
//! let out = platform.sql(
//!     "SELECT city, COUNT(*) AS n, AVG(fare) AS avg_fare \
//!      FROM trips GROUP BY city ORDER BY n DESC").unwrap();
//! assert_eq!(out.rows.len(), 2);
//! ```
//!
//! See `DESIGN.md` for the system inventory and the experiment index, and
//! `EXPERIMENTS.md` for paper-vs-measured results.

pub use rtdi_common as common;
pub use rtdi_compute as compute;
pub use rtdi_core as core;
pub use rtdi_flinksql as flinksql;
pub use rtdi_metadata as metadata;
pub use rtdi_multiregion as multiregion;
pub use rtdi_olap as olap;
pub use rtdi_sql as sql;
pub use rtdi_storage as storage;
pub use rtdi_stream as stream;
pub use rtdi_usecases as usecases;

/// Crate version of the umbrella package.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");
