#!/usr/bin/env bash
# Tier-1 gate: build, tests, lints, formatting. Run before every commit.
set -euo pipefail
cd "$(dirname "$0")"

cargo build --release
cargo test -q
cargo clippy --workspace -- -D warnings
cargo bench --workspace --no-run
cargo fmt --check

# Chaos determinism gate: the soak's recorded fault schedule must be
# byte-identical between two separate processes for each fixed seed.
for seed in 0xA11CE 0xB0B5EED 0xC4A05C4; do
  run_soak() {
    RTDI_CHAOS_SEED="$seed" cargo test -q --test chaos_soak \
      soak_env_seed_prints_schedule -- --nocapture --test-threads=1 |
      grep '^CHAOS_SUMMARY'
  }
  a="$(run_soak)"
  b="$(run_soak)"
  if [ "$a" != "$b" ]; then
    echo "chaos soak diverged between two runs of seed $seed" >&2
    diff <(printf '%s\n' "$a") <(printf '%s\n' "$b") >&2 || true
    exit 1
  fi
  echo "chaos soak deterministic for seed $seed ($(printf '%s\n' "$a" | wc -l) schedule lines)"
done

# Fused-dataflow determinism gate: for each seed, the micro-batched +
# operator-chained protocol must digest identically to the per-record
# reference, and the whole line must be byte-identical across processes.
for seed in 0xF05E 0xC0FFEE42; do
  run_fuse() {
    RTDI_FUSE_SEED="$seed" cargo test -q --test fused_determinism \
      fuse_env_seed_prints_digests -- --nocapture --test-threads=1 |
      grep '^FUSED_SUMMARY'
  }
  a="$(run_fuse)"
  b="$(run_fuse)"
  if [ "$a" != "$b" ]; then
    echo "fused dataflow diverged between two runs of seed $seed" >&2
    diff <(printf '%s\n' "$a") <(printf '%s\n' "$b") >&2 || true
    exit 1
  fi
  echo "fused dataflow deterministic for seed $seed ($a)"
done

# Node-kill determinism gate: failover and rebalance event logs must be
# byte-identical between two separate processes for each fixed seed.
for seed in 0xFA110 0xDEAD5EED; do
  run_nodekill() {
    RTDI_NODEKILL_SEED="$seed" cargo test -q --test node_failover \
      node_kill_env_seed_prints_failover_log -- --nocapture --test-threads=1 |
      grep '^NODEKILL_SUMMARY'
  }
  a="$(run_nodekill)"
  b="$(run_nodekill)"
  if [ "$a" != "$b" ]; then
    echo "node-kill soak diverged between two runs of seed $seed" >&2
    diff <(printf '%s\n' "$a") <(printf '%s\n' "$b") >&2 || true
    exit 1
  fi
  echo "node-kill soak deterministic for seed $seed ($(printf '%s\n' "$a" | wc -l) log lines)"
done

# Decoder-robustness gate: a seeded corpus of truncated and bit-flipped
# segment/colfile bytes is pushed through every decode entry point; any
# panic fails the test, and the outcome summary must be byte-identical
# between two separate processes for each fixed seed.
for seed in 0xDEC0DE 0xBADF11E5; do
  run_fuzz() {
    RTDI_FUZZ_SEED="$seed" cargo test -q --test decoder_robustness \
      fuzz_env_seed_prints_summary -- --nocapture --test-threads=1 |
      grep '^DECODER_SUMMARY'
  }
  a="$(run_fuzz)"
  b="$(run_fuzz)"
  if [ "$a" != "$b" ]; then
    echo "decoder fuzz diverged between two runs of seed $seed" >&2
    diff <(printf '%s\n' "$a") <(printf '%s\n' "$b") >&2 || true
    exit 1
  fi
  echo "decoder fuzz deterministic for seed $seed ($a)"
done

# Federation cache-correctness gate: each FED_SUMMARY line digests an
# uncached and a cached execution of the same federated query stream
# (the in-test assertion requires them byte-equal), plus a post-seal
# digest after a cache-invalidating segment push. The lines must be
# byte-identical between two separate processes for each fixed seed.
for seed in 0xFED2021 0xCAC4E5EED; do
  run_fed() {
    RTDI_FED_SEED="$seed" cargo test -q --test federation \
      fed_env_seed_prints_summary -- --nocapture --test-threads=1 |
      grep '^FED_SUMMARY'
  }
  a="$(run_fed)"
  b="$(run_fed)"
  if [ "$a" != "$b" ]; then
    echo "federation cache digests diverged between two runs of seed $seed" >&2
    diff <(printf '%s\n' "$a") <(printf '%s\n' "$b") >&2 || true
    exit 1
  fi
  echo "federation cache deterministic for seed $seed ($(printf '%s\n' "$a" | wc -l) case lines)"
done

# Overload determinism gate: the burst soak's accounting summary —
# per-phase offered/accepted/shed at the producer edge and the proxy,
# the admission controller's ledger, and the deadline-bounded query's
# shed counts — must be byte-identical between two separate processes
# for each fixed seed.
for seed in 0x0FFE12ED 0x5A70FFE; do
  run_overload() {
    RTDI_OVERLOAD_SEED="$seed" cargo test -q --test overload_soak \
      soak_env_seed_prints_summary -- --nocapture --test-threads=1 |
      grep '^OVERLOAD_SUMMARY'
  }
  a="$(run_overload)"
  b="$(run_overload)"
  if [ "$a" != "$b" ]; then
    echo "overload soak diverged between two runs of seed $seed" >&2
    diff <(printf '%s\n' "$a") <(printf '%s\n' "$b") >&2 || true
    exit 1
  fi
  echo "overload soak deterministic for seed $seed ($(printf '%s\n' "$a" | wc -l) summary lines)"
done

# Region-DR determinism gate: the disaster drill's DR_SUMMARY ledger —
# per-cycle detection latency, per-layer RTO, replay duplicates, lag at
# heal and catch-up time, plus the RPO/convergence totals — must be
# byte-identical between two separate processes for each fixed seed.
for seed in 0xD12A57E2 0x5EED0DDA; do
  run_dr() {
    RTDI_DR_SEED="$seed" cargo test -q --test region_failover \
      region_dr_env_seed_prints_summary -- --nocapture --test-threads=1 |
      grep '^DR_SUMMARY'
  }
  a="$(run_dr)"
  b="$(run_dr)"
  if [ "$a" != "$b" ]; then
    echo "region DR drill diverged between two runs of seed $seed" >&2
    diff <(printf '%s\n' "$a") <(printf '%s\n' "$b") >&2 || true
    exit 1
  fi
  echo "region DR drill deterministic for seed $seed ($(printf '%s\n' "$a" | wc -l) ledger lines)"
done

# Parallel-compute determinism gate: the sharded, salted and serial
# plans must produce byte-identical output (digests asserted in-test),
# and the PARALLEL_SUMMARY line — record count plus the four digests —
# must be byte-identical between two separate processes for each seed.
for seed in 0xA11E1 0x5A17ED; do
  run_parallel() {
    RTDI_PARALLEL_SEED="$seed" cargo test -q --test parallel_compute \
      parallel_env_seed_prints_summary -- --nocapture --test-threads=1 |
      grep '^PARALLEL_SUMMARY'
  }
  a="$(run_parallel)"
  b="$(run_parallel)"
  if [ "$a" != "$b" ]; then
    echo "parallel compute diverged between two runs of seed $seed" >&2
    diff <(printf '%s\n' "$a") <(printf '%s\n' "$b") >&2 || true
    exit 1
  fi
  echo "parallel compute deterministic for seed $seed ($(printf '%s\n' "$a" | wc -l) summary lines)"
done
