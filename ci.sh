#!/usr/bin/env bash
# Tier-1 gate: build, tests, lints, formatting. Run before every commit.
set -euo pipefail
cd "$(dirname "$0")"

cargo build --release
cargo test -q
cargo clippy --workspace -- -D warnings
cargo bench --workspace --no-run
cargo fmt --check
