//! The [`RealtimePlatform`] facade: Figure 3 in one object.
//!
//! Wires together the federated streaming layer, the compute job manager,
//! the OLAP store, the federated SQL engine, the archival warehouse and
//! the metadata services, and exposes the self-serve operations the paper
//! highlights: topic provisioning with schema registration (§9.4), SQL
//! pipeline deployment (§4.2.1), OLAP table creation with Presto
//! visibility (§4.3.3), archival + compaction (§4.4) and one-call
//! backfills (§7, §10: "Backfilling data across regions is as simple as
//! clicking a button").

use crate::usage::{Component, UsageTracker};
use rtdi_common::{
    Clock, PipelineTracer, Record, Result, Schema, Timestamp, TraceReport, WallClock,
};
use rtdi_compute::jobmanager::{JobHealth, JobManager, JobSpec, JobType};
use rtdi_compute::runtime::{CheckpointStore, ExecutorConfig, JobRunStats};
use rtdi_compute::sink::Sink;
use rtdi_flinksql::compiler::{compile_batch, compile_streaming, CompileOptions};
use rtdi_flinksql::sinks::PinotSink;
use rtdi_metadata::lineage::LineageGraph;
use rtdi_metadata::registry::SchemaRegistry;
use rtdi_olap::ingestion::{IngestionConfig, RealtimeIngester};
use rtdi_olap::table::{OlapTable, TableConfig};
use rtdi_sql::connector::{HiveConnector, PinotConnector};
use rtdi_sql::engine::{EngineConfig, QueryOutput, SqlEngine};
use rtdi_storage::archival::{ArchivalWriter, Compactor};
use rtdi_storage::hive::HiveCatalog;
use rtdi_storage::object::{InMemoryStore, ObjectStore};
use rtdi_stream::chaperone::Chaperone;
use rtdi_stream::cluster::{Cluster, ClusterConfig};
use rtdi_stream::federation::FederatedCluster;
use rtdi_stream::producer::{Producer, ProducerConfig, StreamEndpoint};
use rtdi_stream::topic::{Topic, TopicConfig};
use std::sync::Arc;

/// Loss/duplication audit for one hop of a pipeline, computed by
/// Chaperone from the `{topic}/stream` vs `{topic}/ingested` counts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PipelineAudit {
    pub pipeline: String,
    pub from_stage: String,
    pub to_stage: String,
    pub lost: u64,
    pub duplicated: u64,
}

/// Point-in-time snapshot of pipeline health across the platform:
/// per-stage dwell percentiles from the freshness tracer plus Chaperone's
/// completeness audits. This is what the paper's monitoring stack (§8)
/// alerts on: data should be fresh ("seconds, not minutes", §5.1) and
/// complete (zero loss).
#[derive(Debug, Clone)]
pub struct PlatformHealth {
    pub generated_at: Timestamp,
    pub report: TraceReport,
    pub audits: Vec<PipelineAudit>,
}

impl PlatformHealth {
    /// True when every audited hop saw neither loss nor duplication.
    pub fn zero_loss(&self) -> bool {
        self.audits.iter().all(|a| a.lost == 0 && a.duplicated == 0)
    }
}

/// The unified platform.
pub struct RealtimePlatform {
    federation: FederatedCluster,
    store: Arc<dyn ObjectStore>,
    catalog: HiveCatalog,
    registry: SchemaRegistry,
    lineage: LineageGraph,
    chaperone: Chaperone,
    pinot: Arc<PinotConnector>,
    engine: SqlEngine,
    job_manager: JobManager,
    usage: UsageTracker,
    tracer: PipelineTracer,
    clock: Arc<dyn Clock>,
}

impl RealtimePlatform {
    /// A platform with one physical cluster and in-memory storage — the
    /// laptop-scale equivalent of Figure 3.
    pub fn new() -> Self {
        Self::with_clock(Arc::new(WallClock))
    }

    pub fn with_clock(clock: Arc<dyn Clock>) -> Self {
        let federation = FederatedCluster::new();
        federation.add_cluster(Cluster::new("cluster-1", ClusterConfig::default()));
        let tracer = PipelineTracer::default();
        let chaperone = Chaperone::new(60_000);
        // every broker append records the "stream" hop and a
        // `{topic}/stream` audit observation
        federation.set_tracer(tracer.clone());
        federation.set_chaperone(chaperone.clone());
        let store: Arc<dyn ObjectStore> = Arc::new(InMemoryStore::new());
        let catalog = HiveCatalog::new(store.clone());
        let pinot = Arc::new(PinotConnector::new());
        let mut engine = SqlEngine::new(EngineConfig::default());
        engine.register_connector("pinot", pinot.clone());
        engine.register_connector("hive", Arc::new(HiveConnector::new(catalog.clone())));
        let job_manager = JobManager::new(
            ExecutorConfig {
                batch_size: 512,
                checkpoint_interval: 10_000,
                checkpoint_store: Some(CheckpointStore::new(store.clone())),
                trace: None,
            },
            3,
        );
        RealtimePlatform {
            federation,
            store,
            catalog,
            registry: SchemaRegistry::new(),
            lineage: LineageGraph::new(),
            chaperone,
            pinot,
            engine,
            job_manager,
            usage: UsageTracker::new(),
            tracer,
            clock,
        }
    }

    pub fn federation(&self) -> &FederatedCluster {
        &self.federation
    }

    pub fn registry(&self) -> &SchemaRegistry {
        &self.registry
    }

    pub fn lineage(&self) -> &LineageGraph {
        &self.lineage
    }

    pub fn chaperone(&self) -> &Chaperone {
        &self.chaperone
    }

    pub fn catalog(&self) -> &HiveCatalog {
        &self.catalog
    }

    pub fn usage(&self) -> &UsageTracker {
        &self.usage
    }

    pub fn job_manager(&self) -> &JobManager {
        &self.job_manager
    }

    /// The pipeline-wide freshness tracer shared by every layer.
    pub fn tracer(&self) -> &PipelineTracer {
        &self.tracer
    }

    /// Snapshot freshness and completeness across all traced pipelines.
    /// Audits are emitted for each pipeline whose records were observed
    /// both at the broker (`{topic}/stream`) and after OLAP ingestion
    /// (`{topic}/ingested`).
    pub fn health(&self) -> PlatformHealth {
        let report = self.tracer.report();
        let stages = self.chaperone.stage_names();
        let mut audits = Vec::new();
        for pipeline in self.tracer.pipelines() {
            let up = format!("{pipeline}/stream");
            let down = format!("{pipeline}/ingested");
            if stages.contains(&up) && stages.contains(&down) {
                let (lost, duplicated) = self.chaperone.loss_and_duplication(&up, &down);
                audits.push(PipelineAudit {
                    pipeline,
                    from_stage: up,
                    to_stage: down,
                    lost,
                    duplicated,
                });
            }
        }
        PlatformHealth {
            generated_at: self.clock.now(),
            report,
            audits,
        }
    }

    /// Condense a pipeline's traced freshness into a [`JobHealth`] the
    /// job manager's rule engine can evaluate (worst stage p99 drives the
    /// `stale-pipeline-restart` rule).
    pub fn job_health_for(&self, pipeline: &str) -> JobHealth {
        let report = self.tracer.report();
        let p99 = report
            .pipeline(pipeline)
            .iter()
            .map(|s| s.p99_ms)
            .max()
            .unwrap_or(0);
        JobHealth {
            freshness_p99_ms: p99,
            ..Default::default()
        }
    }

    pub fn now(&self) -> Timestamp {
        self.clock.now()
    }

    /// Provision a topic with a registered, compatibility-checked schema
    /// (§9.4 "seamless onboarding").
    pub fn create_topic(
        &self,
        name: &str,
        config: TopicConfig,
        schema: Schema,
    ) -> Result<Arc<Topic>> {
        self.usage.note(Component::Stream);
        self.registry.register(&format!("kafka.{name}"), schema)?;
        self.federation.create_topic(name, config)?;
        let sub = self.federation.subscribe(name)?;
        Ok(sub.topic())
    }

    /// A thin producer for a service (§9.2's "thin client").
    pub fn producer(&self, service: &str) -> Producer {
        self.usage.note(Component::Stream);
        Producer::with_clock(
            Arc::new(self.federation.clone()),
            ProducerConfig {
                service: service.to_string(),
                ..Default::default()
            },
            self.clock.clone(),
        )
    }

    /// Produce one record (convenience; services normally hold a
    /// [`Producer`]).
    pub fn produce(&self, topic: &str, record: Record) -> Result<()> {
        self.usage.note(Component::Stream);
        self.federation.send(topic, record, self.clock.now())?;
        Ok(())
    }

    /// Create an OLAP table, register it with the schema service and make
    /// it queryable through the SQL layer (§4.3.3 integration).
    pub fn create_olap_table(&self, config: TableConfig) -> Result<Arc<OlapTable>> {
        self.usage.note(Component::Olap);
        self.registry
            .register(&format!("pinot.{}", config.name), config.schema.clone())?;
        let table = OlapTable::new(config)?;
        self.pinot.register(table.clone());
        Ok(table)
    }

    /// Connect a topic to an OLAP table with a realtime ingester.
    pub fn ingest_into(&self, topic: &str, table: Arc<OlapTable>) -> Result<RealtimeIngester> {
        self.usage.note(Component::Stream);
        self.usage.note(Component::Olap);
        let sub = self.federation.subscribe(topic)?;
        self.lineage.record(
            &format!("kafka.{topic}"),
            &format!("pinot.{}", table.name()),
            "ingestion",
        );
        RealtimeIngester::new(
            sub.topic(),
            table,
            IngestionConfig {
                // pairs with the `{topic}/stream` observation the
                // federation records on append, forming the audit hop
                audit_stage: format!("{topic}/ingested"),
                ..Default::default()
            },
        )
        .map(|i| {
            i.with_chaperone(self.chaperone.clone())
                .with_tracer(self.tracer.clone())
                .with_clock(self.clock.clone())
        })
    }

    /// Deploy a FlinkSQL pipeline: compile the statement against a source
    /// topic, sink into an OLAP table, run under job-manager supervision
    /// (bounded: processes what is currently in the topic). §4.2.1:
    /// "users of all technical levels can run their streaming processing
    /// applications in production in a span of mere hours."
    pub fn deploy_sql_pipeline(
        &self,
        name: &str,
        sql: &str,
        source_topic: &str,
        sink_table: Arc<OlapTable>,
        options: &CompileOptions,
    ) -> Result<JobRunStats> {
        self.usage.note(Component::Sql);
        self.usage.note(Component::Compute);
        self.usage.note(Component::Stream);
        self.usage.note(Component::Olap);
        let sub = self.federation.subscribe(source_topic)?;
        self.lineage.record(
            &format!("kafka.{source_topic}"),
            &format!("flink.{name}"),
            name,
        );
        self.lineage.record(
            &format!("flink.{name}"),
            &format!("pinot.{}", sink_table.name()),
            name,
        );
        let topic = sub.topic();
        let sql_owned = sql.to_string();
        let name_owned = name.to_string();
        let options = options.clone();
        let spec = JobSpec {
            name: name.to_string(),
            job_type: if sql.to_ascii_uppercase().contains("GROUP BY") {
                JobType::WindowedAggregation
            } else {
                JobType::Stateless
            },
            tier: 1,
            expected_records_per_sec: 10_000,
            factory: Box::new(move || {
                compile_streaming(
                    &name_owned,
                    &sql_owned,
                    topic.clone(),
                    Box::new(PinotSink::new(sink_table.clone())),
                    &options,
                )
                .expect("validated at deploy time")
            }),
        };
        // validate eagerly so compile errors surface now, not at run time
        compile_streaming(
            name,
            sql,
            sub.topic(),
            Box::new(rtdi_compute::sink::CollectSink::new()),
            &CompileOptions::default(),
        )?;
        self.job_manager.supervise(&spec)
    }

    /// Deploy a hand-built dataflow job under supervision (the advanced
    /// API path of §4.2 for logic SQL cannot express).
    pub fn deploy_job(&self, spec: &JobSpec) -> Result<JobRunStats> {
        self.usage.note(Component::Api);
        self.usage.note(Component::Compute);
        self.job_manager.supervise(spec)
    }

    /// Federated SQL over Pinot (default catalog) and Hive (§4.5).
    pub fn sql(&self, query: &str) -> Result<QueryOutput> {
        self.usage.note(Component::Sql);
        self.usage.note(Component::Olap);
        // record query-time staleness for every traced pipeline the query
        // mentions (substring match is a heuristic — topic and table names
        // coincide on this platform, so it tags the right pipelines)
        let now = self.clock.now();
        for pipeline in self.tracer.pipelines() {
            if query.contains(pipeline.as_str()) {
                self.tracer.note_query(&pipeline, now);
            }
        }
        self.engine.query(query)
    }

    pub fn sql_engine_mut(&mut self) -> &mut SqlEngine {
        &mut self.engine
    }

    /// Archive everything currently in a topic into the warehouse raw
    /// logs and compact into a queryable Hive table (§4.4). Registers the
    /// table on first call.
    pub fn archive_topic(&self, topic: &str, schema: &Schema) -> Result<usize> {
        self.usage.note(Component::Storage);
        let sub = self.federation.subscribe(topic)?;
        let t = sub.topic();
        let writer = ArchivalWriter::new(self.store.clone(), topic);
        let mut batch = Vec::new();
        for p in 0..t.num_partitions() {
            let log = t.partition(p).expect("partition exists");
            let fetch = log.fetch(log.log_start_offset(), usize::MAX / 2)?;
            batch.extend(fetch.records.into_iter().map(|r| r.into_record()));
        }
        if batch.is_empty() {
            return Ok(0);
        }
        let keys = writer.write_batch(&batch)?;
        if self.catalog.table(topic).is_err() {
            self.catalog.create_table(topic, schema.clone())?;
        }
        self.lineage.record(
            &format!("kafka.{topic}"),
            &format!("hive.{topic}"),
            "archival",
        );
        let compactor = Compactor::new(self.store.clone(), self.catalog.clone());
        let mut rows = 0;
        let mut dates: Vec<String> = keys
            .iter()
            .filter_map(|k| k.split('/').nth(2).map(|s| s.to_string()))
            .collect();
        dates.sort();
        dates.dedup();
        for date in dates {
            rows += compactor.compact(topic, &date, schema)?;
        }
        Ok(rows)
    }

    /// One-call backfill (§7 Kappa+ SQL mode): run `sql` over the archived
    /// `[from, to)` range of a dataset into a sink.
    pub fn backfill_sql(
        &self,
        name: &str,
        sql: &str,
        dataset: &str,
        from: Timestamp,
        to: Timestamp,
        sink: Box<dyn Sink>,
    ) -> Result<JobRunStats> {
        self.usage.note(Component::Sql);
        self.usage.note(Component::Compute);
        self.usage.note(Component::Storage);
        let table = self.catalog.table(dataset)?;
        let mut job = compile_batch(
            name,
            sql,
            &table,
            from,
            to,
            sink,
            &CompileOptions::default(),
        )?;
        rtdi_compute::runtime::Executor::new(ExecutorConfig::default()).run(&mut job)
    }
}

impl Default for RealtimePlatform {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtdi_common::{FieldType, Row, SimClock, Value};
    use rtdi_olap::query::Query;

    fn trips_schema() -> Schema {
        Schema::of(
            "trips",
            &[
                ("city", FieldType::Str),
                ("fare", FieldType::Double),
                ("ts", FieldType::Timestamp),
            ],
        )
    }

    fn platform() -> RealtimePlatform {
        RealtimePlatform::with_clock(Arc::new(SimClock::new(1_000_000)))
    }

    fn produce_trips(p: &RealtimePlatform, n: usize) {
        let producer = p.producer("trip-service");
        for i in 0..n {
            producer
                .send(
                    "trips",
                    Record::new(
                        Row::new()
                            .with("city", ["sf", "la"][i % 2])
                            .with("fare", 10.0 + (i % 5) as f64)
                            .with("ts", (i as i64) * 100),
                        (i as i64) * 100,
                    )
                    .with_key(format!("t{i}")),
                )
                .unwrap();
        }
    }

    #[test]
    fn end_to_end_stream_to_sql() {
        let p = platform();
        p.create_topic(
            "trips",
            TopicConfig::default().with_partitions(2),
            trips_schema(),
        )
        .unwrap();
        produce_trips(&p, 100);
        // raw ingestion into an OLAP table
        let table = p
            .create_olap_table(
                TableConfig::new("trips", trips_schema())
                    .with_time_column("ts")
                    .with_partitions(2)
                    .with_segment_rows(32),
            )
            .unwrap();
        let mut ingester = p.ingest_into("trips", table).unwrap();
        assert_eq!(ingester.run_once().unwrap(), 100);
        // federated SQL with pushdown answers over fresh data
        let out = p
            .sql("SELECT city, COUNT(*) AS n FROM trips GROUP BY city ORDER BY n DESC")
            .unwrap();
        assert_eq!(out.rows.len(), 2);
        let total: i64 = out.rows.iter().map(|r| r.get_int("n").unwrap()).sum();
        assert_eq!(total, 100);
        // schema service knows both sides
        assert!(p.registry().latest("kafka.trips").is_ok());
        assert!(p.registry().latest("pinot.trips").is_ok());
        // lineage recorded
        assert!(p
            .lineage()
            .impact("kafka.trips")
            .contains(&"pinot.trips".to_string()));
    }

    #[test]
    fn sql_pipeline_deploys_and_fills_pinot() {
        let p = platform();
        p.create_topic(
            "trips",
            TopicConfig::default().with_partitions(2),
            trips_schema(),
        )
        .unwrap();
        produce_trips(&p, 100);
        let stats_schema = Schema::of(
            "trip_stats",
            &[
                ("city", FieldType::Str),
                ("w", FieldType::Timestamp),
                ("trips", FieldType::Int),
                ("ingest_ts", FieldType::Timestamp),
            ],
        );
        let sink_table = p
            .create_olap_table(
                TableConfig::new("trip_stats", stats_schema)
                    .with_time_column("ingest_ts")
                    .with_partitions(2),
            )
            .unwrap();
        let stats = p
            .deploy_sql_pipeline(
                "trip-windows",
                "SELECT city, TUMBLE(ts, 1000) AS w, COUNT(*) AS trips \
                 FROM trips GROUP BY city, TUMBLE(ts, 1000)",
                "trips",
                sink_table.clone(),
                &CompileOptions::default(),
            )
            .unwrap();
        assert_eq!(stats.records_in, 100);
        let q = Query::select_all("trip_stats")
            .aggregate("total", rtdi_common::AggFn::Sum("trips".into()));
        assert_eq!(
            sink_table.query(&q).unwrap().rows[0].get_double("total"),
            Some(100.0)
        );
        // bad SQL rejected at deploy time
        assert!(p
            .deploy_sql_pipeline(
                "bad",
                "SELECT city FROM trips ORDER BY city",
                "trips",
                sink_table,
                &CompileOptions::default(),
            )
            .is_err());
    }

    #[test]
    fn archive_then_backfill_sql() {
        let p = platform();
        p.create_topic(
            "trips",
            TopicConfig::default().with_partitions(2),
            trips_schema(),
        )
        .unwrap();
        produce_trips(&p, 50);
        let rows = p.archive_topic("trips", &trips_schema()).unwrap();
        assert_eq!(rows, 50);
        // warehouse table queryable through federated SQL (hive catalog)
        let out = p.sql("SELECT COUNT(*) AS n FROM hive.trips").unwrap();
        assert_eq!(out.rows[0].get_int("n"), Some(50));
        // backfill: same FlinkSQL over the archive
        let sink = rtdi_compute::sink::CollectSink::new();
        let stats = p
            .backfill_sql(
                "trips-backfill",
                "SELECT city, TUMBLE(ts, 1000) AS w, COUNT(*) AS n \
                 FROM trips GROUP BY city, TUMBLE(ts, 1000)",
                "trips",
                0,
                i64::MAX,
                Box::new(sink.clone()),
            )
            .unwrap();
        assert_eq!(stats.records_in, 50);
        let total: i64 = sink.rows().iter().map(|r| r.get_int("n").unwrap()).sum();
        assert_eq!(total, 50);
    }

    #[test]
    fn usage_tracker_builds_table1_rows() {
        let p = platform();
        p.usage().begin_use_case("Surge");
        p.create_topic("trips", TopicConfig::high_throughput(), trips_schema())
            .unwrap();
        produce_trips(&p, 4);
        p.usage().end_use_case();
        assert!(p.usage().uses("Surge", Component::Stream));
        assert!(!p.usage().uses("Surge", Component::Sql));
        let table = p.usage().render_table();
        assert!(table.contains("Surge"));
    }

    #[test]
    fn schema_evolution_enforced_on_topics() {
        let p = platform();
        p.create_topic("trips", TopicConfig::default(), trips_schema())
            .unwrap();
        // incompatible schema change rejected by the registry
        let mut breaking = trips_schema();
        breaking.fields.retain(|f| f.name != "fare");
        assert!(p.registry().register("kafka.trips", breaking).is_err());
        let mut compatible = trips_schema();
        compatible
            .fields
            .push(rtdi_common::Field::new("tip", FieldType::Double));
        assert!(p.registry().register("kafka.trips", compatible).is_ok());
    }

    #[test]
    fn upsert_table_via_platform() {
        let p = platform();
        p.create_topic(
            "fares",
            TopicConfig::lossless().with_partitions(4),
            trips_schema(),
        )
        .unwrap();
        let schema = Schema::of(
            "fares",
            &[
                ("trip_id", FieldType::Str),
                ("fare", FieldType::Double),
                ("ts", FieldType::Timestamp),
            ],
        );
        let table = p
            .create_olap_table(
                TableConfig::new("fares", schema)
                    .with_upsert("trip_id")
                    .with_partitions(4),
            )
            .unwrap();
        let producer = p.producer("fare-service");
        for i in 0..20 {
            producer
                .send(
                    "fares",
                    Record::new(
                        Row::new()
                            .with("trip_id", format!("t{i}"))
                            .with("fare", 10.0)
                            .with("ts", i as i64),
                        i as i64,
                    )
                    .with_key(format!("t{i}")),
                )
                .unwrap();
        }
        // correction
        producer
            .send(
                "fares",
                Record::new(
                    Row::new()
                        .with("trip_id", "t5")
                        .with("fare", 42.0)
                        .with("ts", 100i64),
                    100,
                )
                .with_key("t5"),
            )
            .unwrap();
        let mut ing = p.ingest_into("fares", table.clone()).unwrap();
        ing.run_once().unwrap();
        let out = p.sql("SELECT COUNT(*) AS n FROM fares").unwrap();
        assert_eq!(out.rows[0].get_int("n"), Some(20));
        assert_eq!(
            table.lookup(&Value::Str("t5".into()), "fare"),
            Some(Value::Double(42.0))
        );
    }
}
