//! # rtdi-core
//!
//! The unified real-time data platform: the integration layer that wires
//! the streaming, compute, OLAP, SQL, storage and metadata subsystems into
//! the architecture of Figure 3 and exposes the self-serve abstractions of
//! §9.4 ("a layer of indirection between our users and the underlying
//! technologies", §10).
//!
//! - [`platform`]: the [`RealtimePlatform`] facade — topics, producers,
//!   OLAP tables, federated SQL, archival and backfill in one place;
//! - [`pipeline`]: the drag-and-drop-style [`pipeline::PipelineBuilder`]
//!   that provisions a FlinkSQL job from source topic to Pinot sink ("users
//!   can automatically create Flink and Pinot pipelines using a convenient
//!   drag and drop UI");
//! - [`usage`]: per-use-case component accounting that regenerates the
//!   paper's Table 1.

pub mod pipeline;
pub mod platform;
pub mod usage;

pub use pipeline::PipelineBuilder;
pub use platform::RealtimePlatform;
pub use usage::{Component, UsageTracker};
