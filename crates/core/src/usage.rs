//! Component-usage accounting: regenerates Table 1.
//!
//! The paper's Table 1 records which of the six architectural components
//! (API, SQL, OLAP, Compute, Stream, Storage) each representative use case
//! exercises. Platform entry points note the components they touch against
//! the active use-case context; [`UsageTracker::render_table`] prints the
//! matrix in the paper's layout.

use parking_lot::RwLock;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// The six layers of Figure 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Component {
    Api,
    Sql,
    Olap,
    Compute,
    Stream,
    Storage,
}

impl Component {
    pub fn label(&self) -> &'static str {
        match self {
            Component::Api => "API",
            Component::Sql => "SQL",
            Component::Olap => "OLAP",
            Component::Compute => "Compute",
            Component::Stream => "Stream",
            Component::Storage => "Storage",
        }
    }

    /// Row order used by Table 1.
    pub fn all() -> [Component; 6] {
        [
            Component::Api,
            Component::Sql,
            Component::Olap,
            Component::Compute,
            Component::Stream,
            Component::Storage,
        ]
    }
}

/// Thread-safe usage matrix.
#[derive(Clone, Default)]
pub struct UsageTracker {
    inner: Arc<RwLock<Inner>>,
}

#[derive(Default)]
struct Inner {
    context: Option<String>,
    matrix: BTreeMap<String, BTreeSet<Component>>,
    /// preserve first-seen column order
    order: Vec<String>,
}

impl UsageTracker {
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the active use case; subsequent notes attribute to it.
    pub fn begin_use_case(&self, name: &str) {
        let mut inner = self.inner.write();
        inner.context = Some(name.to_string());
        if !inner.order.iter().any(|n| n == name) {
            inner.order.push(name.to_string());
            inner.matrix.insert(name.to_string(), BTreeSet::new());
        }
    }

    pub fn end_use_case(&self) {
        self.inner.write().context = None;
    }

    /// Note that the active use case touched a component (no-op without an
    /// active context).
    pub fn note(&self, component: Component) {
        let mut inner = self.inner.write();
        if let Some(ctx) = inner.context.clone() {
            inner.matrix.entry(ctx).or_default().insert(component);
        }
    }

    pub fn components_of(&self, use_case: &str) -> Vec<Component> {
        self.inner
            .read()
            .matrix
            .get(use_case)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default()
    }

    /// Does the matrix row for `use_case` mark `component`?
    pub fn uses(&self, use_case: &str, component: Component) -> bool {
        self.inner
            .read()
            .matrix
            .get(use_case)
            .map(|s| s.contains(&component))
            .unwrap_or(false)
    }

    /// Render the Table 1 matrix ("Y" marks, components as rows, use cases
    /// as columns, in first-seen order).
    pub fn render_table(&self) -> String {
        let inner = self.inner.read();
        let cols = &inner.order;
        let mut out = String::new();
        out.push_str(&format!("{:<10}", ""));
        for c in cols {
            out.push_str(&format!("| {:<22} ", c));
        }
        out.push('\n');
        out.push_str(&"-".repeat(10 + cols.len() * 25));
        out.push('\n');
        for comp in Component::all() {
            out.push_str(&format!("{:<10}", comp.label()));
            for c in cols {
                let mark = if inner
                    .matrix
                    .get(c)
                    .map(|s| s.contains(&comp))
                    .unwrap_or(false)
                {
                    "Y"
                } else {
                    ""
                };
                out.push_str(&format!("| {:<22} ", mark));
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracks_per_use_case() {
        let t = UsageTracker::new();
        t.begin_use_case("Surge");
        t.note(Component::Api);
        t.note(Component::Compute);
        t.note(Component::Stream);
        t.end_use_case();
        t.begin_use_case("Restaurant Manager");
        t.note(Component::Sql);
        t.note(Component::Olap);
        t.end_use_case();
        assert!(t.uses("Surge", Component::Api));
        assert!(!t.uses("Surge", Component::Sql));
        assert!(t.uses("Restaurant Manager", Component::Olap));
        assert_eq!(t.components_of("Surge").len(), 3);
        assert!(t.components_of("unknown").is_empty());
    }

    #[test]
    fn notes_without_context_are_dropped() {
        let t = UsageTracker::new();
        t.note(Component::Api);
        assert!(t.render_table().lines().count() >= 7);
        assert!(t.components_of("").is_empty());
    }

    #[test]
    fn render_matches_table1_shape() {
        let t = UsageTracker::new();
        for (uc, comps) in [
            (
                "Surge",
                vec![Component::Api, Component::Compute, Component::Stream],
            ),
            ("RestaurantManager", vec![Component::Sql, Component::Olap]),
        ] {
            t.begin_use_case(uc);
            for c in comps {
                t.note(c);
            }
            t.end_use_case();
        }
        let table = t.render_table();
        let lines: Vec<&str> = table.lines().collect();
        // header + separator + 6 component rows
        assert_eq!(lines.len(), 8);
        assert!(lines[0].contains("Surge"));
        let api_row = lines.iter().find(|l| l.starts_with("API")).unwrap();
        assert!(api_row.contains('Y'));
        let sql_row = lines.iter().find(|l| l.starts_with("SQL")).unwrap();
        // SQL marked only in the second column
        assert_eq!(sql_row.matches('Y').count(), 1);
    }
}
