//! Self-serve pipeline provisioning.
//!
//! §9.4: "users can automatically create Flink and Pinot pipelines using a
//! convenient drag and drop UI that hides the complex sequence of
//! provisioning and capacity allocation." [`PipelineBuilder`] is that UI's
//! programmatic equivalent: declare a source topic, a SQL transformation
//! and a sink table; `deploy` provisions everything in the right order.

use crate::platform::RealtimePlatform;
use rtdi_common::{Error, Result, Schema};
use rtdi_compute::runtime::JobRunStats;
use rtdi_flinksql::compiler::CompileOptions;
use rtdi_olap::segment::IndexSpec;
use rtdi_olap::table::TableConfig;
use rtdi_stream::topic::TopicConfig;

/// Declarative pipeline description.
pub struct PipelineBuilder {
    name: String,
    source_topic: Option<(String, TopicConfig, Schema)>,
    existing_source: Option<String>,
    sql: Option<String>,
    sink: Option<(String, Schema, IndexSpec, Option<String>)>,
    options: CompileOptions,
}

impl PipelineBuilder {
    pub fn new(name: &str) -> Self {
        PipelineBuilder {
            name: name.to_string(),
            source_topic: None,
            existing_source: None,
            sql: None,
            sink: None,
            options: CompileOptions::default(),
        }
    }

    /// Provision a new source topic as part of deployment.
    pub fn create_source(mut self, topic: &str, config: TopicConfig, schema: Schema) -> Self {
        self.source_topic = Some((topic.to_string(), config, schema));
        self
    }

    /// Use an already-provisioned topic.
    pub fn from_topic(mut self, topic: &str) -> Self {
        self.existing_source = Some(topic.to_string());
        self
    }

    /// The FlinkSQL transformation.
    pub fn transform(mut self, sql: &str) -> Self {
        self.sql = Some(sql.to_string());
        self
    }

    /// Sink into a new OLAP table (`time_column` optional).
    pub fn sink_pinot(
        mut self,
        table: &str,
        schema: Schema,
        index_spec: IndexSpec,
        time_column: Option<&str>,
    ) -> Self {
        self.sink = Some((
            table.to_string(),
            schema,
            index_spec,
            time_column.map(|s| s.to_string()),
        ));
        self
    }

    pub fn with_options(mut self, options: CompileOptions) -> Self {
        self.options = options;
        self
    }

    /// Provision and run the pipeline on the platform. Returns the job
    /// stats of the first (bounded) supervision run.
    pub fn deploy(self, platform: &RealtimePlatform) -> Result<JobRunStats> {
        let source = match (&self.source_topic, &self.existing_source) {
            (Some((name, config, schema)), None) => {
                platform.create_topic(name, config.clone(), schema.clone())?;
                name.clone()
            }
            (None, Some(name)) => name.clone(),
            _ => {
                return Err(Error::InvalidArgument(
                    "pipeline needs exactly one source (create_source or from_topic)".into(),
                ))
            }
        };
        let sql = self
            .sql
            .ok_or_else(|| Error::InvalidArgument("pipeline needs a transform(sql)".into()))?;
        let (table_name, schema, index_spec, time_column) = self
            .sink
            .ok_or_else(|| Error::InvalidArgument("pipeline needs a sink_pinot(...)".into()))?;
        let mut config = TableConfig::new(&table_name, schema).with_index_spec(index_spec);
        if let Some(tc) = time_column {
            config = config.with_time_column(&tc);
        }
        let table = platform.create_olap_table(config)?;
        platform.deploy_sql_pipeline(&self.name, &sql, &source, table, &self.options)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtdi_common::{FieldType, Record, Row, SimClock};
    use std::sync::Arc;

    fn order_schema() -> Schema {
        Schema::of(
            "eats_orders",
            &[
                ("restaurant", FieldType::Str),
                ("total", FieldType::Double),
                ("ts", FieldType::Timestamp),
            ],
        )
    }

    #[test]
    fn builder_provisions_everything() {
        let platform = RealtimePlatform::with_clock(Arc::new(SimClock::new(0)));
        // provision the source first so we can seed data before deploying
        platform
            .create_topic(
                "eats_orders",
                TopicConfig::default().with_partitions(2),
                order_schema(),
            )
            .unwrap();
        let producer = platform.producer("eats");
        for i in 0..60 {
            producer
                .send(
                    "eats_orders",
                    Record::new(
                        Row::new()
                            .with("restaurant", format!("r{}", i % 3))
                            .with("total", 20.0)
                            .with("ts", (i as i64) * 100),
                        (i as i64) * 100,
                    )
                    .with_key(format!("r{}", i % 3)),
                )
                .unwrap();
        }
        let stats = PipelineBuilder::new("eats-dashboard")
            .from_topic("eats_orders")
            .transform(
                "SELECT restaurant, TUMBLE(ts, 1000) AS w, COUNT(*) AS orders, \
                 SUM(total) AS revenue FROM eats_orders \
                 GROUP BY restaurant, TUMBLE(ts, 1000)",
            )
            .sink_pinot(
                "eats_order_stats",
                Schema::of(
                    "eats_order_stats",
                    &[
                        ("restaurant", FieldType::Str),
                        ("w", FieldType::Timestamp),
                        ("orders", FieldType::Int),
                        ("revenue", FieldType::Double),
                        ("ingest_ts", FieldType::Timestamp),
                    ],
                ),
                IndexSpec::none().with_inverted(&["restaurant"]),
                Some("ingest_ts"),
            )
            .deploy(&platform)
            .unwrap();
        assert_eq!(stats.records_in, 60);
        // the sink table is queryable via SQL immediately
        let out = platform
            .sql("SELECT SUM(revenue) AS r FROM eats_order_stats")
            .unwrap();
        assert_eq!(out.rows[0].get_double("r"), Some(1200.0));
        // lineage captured end to end
        assert!(platform
            .lineage()
            .impact("kafka.eats_orders")
            .contains(&"pinot.eats_order_stats".to_string()));
    }

    #[test]
    fn missing_pieces_rejected() {
        let platform = RealtimePlatform::with_clock(Arc::new(SimClock::new(0)));
        assert!(PipelineBuilder::new("p").deploy(&platform).is_err());
        assert!(PipelineBuilder::new("p")
            .from_topic("t")
            .deploy(&platform)
            .is_err());
        assert!(PipelineBuilder::new("p")
            .from_topic("t")
            .transform("SELECT * FROM t")
            .deploy(&platform)
            .is_err());
    }
}
