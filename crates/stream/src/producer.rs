//! Producer client.
//!
//! A deliberately *thin* client (§9.2: "a thin client is always preferred
//! in order to reduce the frequency of the client upgrades"): batching,
//! at-least-once retries and audit decoration live here; everything else
//! (routing, federation, quotas) lives server-side.

use crate::log::FetchResult;
use parking_lot::Mutex;
use rtdi_common::fault_point;
use rtdi_common::record::headers;
use rtdi_common::{
    Clock, Error, FaultPoint, Quota, RateLimiter, Record, Result, RetryPolicy, Timestamp, WallClock,
};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Anything records can be produced to / fetched from by topic name:
/// a single [`crate::cluster::Cluster`] or a federated logical cluster.
pub trait StreamEndpoint: Send + Sync {
    fn send(&self, topic: &str, record: Record, now: Timestamp) -> Result<(usize, u64)>;
    fn fetch(&self, topic: &str, partition: usize, offset: u64, max: usize) -> Result<FetchResult>;
    fn num_partitions(&self, topic: &str) -> Result<usize>;
}

impl StreamEndpoint for crate::cluster::Cluster {
    fn send(&self, topic: &str, record: Record, now: Timestamp) -> Result<(usize, u64)> {
        fault_point!(FaultPoint::StreamAppend);
        self.produce(topic, record, now)
    }

    fn fetch(&self, topic: &str, partition: usize, offset: u64, max: usize) -> Result<FetchResult> {
        fault_point!(FaultPoint::StreamFetch);
        self.topic(topic)?.fetch(partition, offset, max)
    }

    fn num_partitions(&self, topic: &str) -> Result<usize> {
        Ok(self.topic(topic)?.num_partitions())
    }
}

/// Producer configuration.
#[derive(Debug, Clone)]
pub struct ProducerConfig {
    /// Messages buffered per topic before an automatic flush.
    pub batch_size: usize,
    /// At-least-once: how many times to retry a retryable send.
    pub max_retries: usize,
    /// Service name stamped into audit headers.
    pub service: String,
}

impl Default for ProducerConfig {
    fn default() -> Self {
        ProducerConfig {
            batch_size: 1,
            max_retries: 3,
            service: "unknown-service".into(),
        }
    }
}

/// At-least-once producer with client-side batching and audit decoration
/// (§9.4: unique identifier, application timestamp, service name).
pub struct Producer {
    endpoint: Arc<dyn StreamEndpoint>,
    config: ProducerConfig,
    clock: Arc<dyn Clock>,
    seq: AtomicU64,
    buffers: Mutex<BTreeMap<String, Vec<Record>>>,
    sent: AtomicU64,
    /// Per-topic ingress quotas (the paper's Kafka-side client quotas,
    /// §4.1): a send that exhausts its topic bucket after the retry
    /// budget surfaces `Error::Overloaded` and is counted as shed.
    quotas: Mutex<BTreeMap<String, Arc<RateLimiter>>>,
    shed: AtomicU64,
}

impl Producer {
    pub fn new(endpoint: Arc<dyn StreamEndpoint>, config: ProducerConfig) -> Self {
        Self::with_clock(endpoint, config, Arc::new(WallClock))
    }

    pub fn with_clock(
        endpoint: Arc<dyn StreamEndpoint>,
        config: ProducerConfig,
        clock: Arc<dyn Clock>,
    ) -> Self {
        Producer {
            endpoint,
            config,
            clock,
            seq: AtomicU64::new(0),
            buffers: Mutex::new(BTreeMap::new()),
            sent: AtomicU64::new(0),
            quotas: Mutex::new(BTreeMap::new()),
            shed: AtomicU64::new(0),
        }
    }

    /// Enforce an ingress quota for `topic`, on the producer's clock.
    pub fn set_topic_quota(&self, topic: &str, quota: Quota) {
        self.quotas.lock().insert(
            topic.to_string(),
            Arc::new(RateLimiter::new(self.clock.clone(), quota)),
        );
    }

    /// Decorate and send (or buffer) one record.
    pub fn send(&self, topic: &str, mut record: Record) -> Result<()> {
        let now = self.clock.now();
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        if record.unique_id().is_none() {
            record
                .headers
                .set(headers::UNIQUE_ID, format!("{}-{seq}", self.config.service));
        }
        record.headers.set(headers::APP_TIMESTAMP, now.to_string());
        // origin of the freshness trace: downstream hops measure dwell
        // from this stamp and restamp as they pass the record along
        record
            .headers
            .set(headers::TRACE_TIMESTAMP, now.to_string());
        record
            .headers
            .set(headers::SERVICE, self.config.service.clone());
        if self.config.batch_size <= 1 {
            return self.send_now(topic, record, now);
        }
        let full_batch = {
            let mut buffers = self.buffers.lock();
            let buf = buffers.entry(topic.to_string()).or_default();
            buf.push(record);
            if buf.len() >= self.config.batch_size {
                Some(std::mem::take(buf))
            } else {
                None
            }
        };
        if let Some(batch) = full_batch {
            self.send_batch(topic, batch, now)?;
        }
        Ok(())
    }

    /// Flush all buffered batches.
    pub fn flush(&self) -> Result<()> {
        let now = self.clock.now();
        let drained: Vec<(String, Vec<Record>)> = {
            let mut buffers = self.buffers.lock();
            buffers
                .iter_mut()
                .filter(|(_, v)| !v.is_empty())
                .map(|(k, v)| (k.clone(), std::mem::take(v)))
                .collect()
        };
        for (topic, batch) in drained {
            self.send_batch(&topic, batch, now)?;
        }
        Ok(())
    }

    fn send_batch(&self, topic: &str, batch: Vec<Record>, now: Timestamp) -> Result<()> {
        for record in batch {
            self.send_now(topic, record, now)?;
        }
        Ok(())
    }

    fn send_now(&self, topic: &str, record: Record, now: Timestamp) -> Result<()> {
        let limiter = self.quotas.lock().get(topic).cloned();
        // at-least-once: the shared policy retries only retryable errors
        // and backs off with deterministic jitter between attempts. The
        // quota check sits inside the retried closure: Overloaded is
        // retryable, so a throttled send backs off and tries again while
        // the bucket refills before surfacing.
        let policy = RetryPolicy::new(self.config.max_retries as u32 + 1);
        let result = policy.run(|_| {
            if let Some(limiter) = &limiter {
                limiter.acquire(1, topic)?;
            }
            self.endpoint.send(topic, record.clone(), now)
        });
        match result {
            Ok(_) => {
                self.sent.fetch_add(1, Ordering::Relaxed);
                Ok(())
            }
            Err(e) => {
                if matches!(e, Error::Overloaded(_)) {
                    self.shed.fetch_add(1, Ordering::Relaxed);
                }
                Err(e)
            }
        }
    }

    /// Records successfully delivered to the endpoint.
    pub fn records_sent(&self) -> u64 {
        self.sent.load(Ordering::Relaxed)
    }

    /// Records refused by a topic quota (after the retry budget).
    pub fn records_shed(&self) -> u64 {
        self.shed.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{Cluster, ClusterConfig};
    use crate::topic::TopicConfig;
    use parking_lot::RwLock;
    use rtdi_common::{Error, Row, SimClock};

    fn setup() -> (Arc<Cluster>, Arc<SimClock>) {
        let c = Cluster::new("c", ClusterConfig::default());
        c.create_topic("t", TopicConfig::default().with_partitions(2))
            .unwrap();
        (c, Arc::new(SimClock::new(1000)))
    }

    #[test]
    fn send_decorates_with_audit_headers() {
        let (c, clock) = setup();
        let p = Producer::with_clock(
            c.clone(),
            ProducerConfig {
                service: "driver-app".into(),
                ..Default::default()
            },
            clock,
        );
        p.send(
            "t",
            Record::new(Row::new().with("x", 1i64), 5).with_key("k"),
        )
        .unwrap();
        let topic = c.topic("t").unwrap();
        let part = (0..2)
            .find(|&i| topic.fetch(i, 0, 1).unwrap().records.len() == 1)
            .unwrap();
        let rec = &topic.fetch(part, 0, 1).unwrap().records[0].record;
        assert_eq!(rec.headers.get(headers::SERVICE), Some("driver-app"));
        assert_eq!(rec.headers.get(headers::APP_TIMESTAMP), Some("1000"));
        assert!(rec.unique_id().unwrap().starts_with("driver-app-"));
    }

    #[test]
    fn batching_defers_until_full_or_flush() {
        let (c, clock) = setup();
        let p = Producer::with_clock(
            c.clone(),
            ProducerConfig {
                batch_size: 10,
                ..Default::default()
            },
            clock,
        );
        for i in 0..9 {
            p.send("t", Record::new(Row::new().with("i", i as i64), 0))
                .unwrap();
        }
        assert_eq!(c.topic("t").unwrap().total_records(), 0);
        p.send("t", Record::new(Row::new().with("i", 9i64), 0))
            .unwrap();
        assert_eq!(c.topic("t").unwrap().total_records(), 10);
        p.send("t", Record::new(Row::new().with("i", 10i64), 0))
            .unwrap();
        p.flush().unwrap();
        assert_eq!(c.topic("t").unwrap().total_records(), 11);
        assert_eq!(p.records_sent(), 11);
    }

    /// Endpoint that fails transiently N times then succeeds.
    struct Flaky {
        inner: Arc<Cluster>,
        failures_left: RwLock<usize>,
    }

    impl StreamEndpoint for Flaky {
        fn send(&self, topic: &str, record: Record, now: Timestamp) -> Result<(usize, u64)> {
            let mut left = self.failures_left.write();
            if *left > 0 {
                *left -= 1;
                return Err(Error::Unavailable("transient".into()));
            }
            self.inner.produce(topic, record, now)
        }
        fn fetch(
            &self,
            topic: &str,
            partition: usize,
            offset: u64,
            max: usize,
        ) -> Result<FetchResult> {
            self.inner.topic(topic)?.fetch(partition, offset, max)
        }
        fn num_partitions(&self, topic: &str) -> Result<usize> {
            Ok(self.inner.topic(topic)?.num_partitions())
        }
    }

    #[test]
    fn topic_quota_sheds_deterministically_and_refills_with_the_clock() {
        use rtdi_common::Quota;
        let (c, clock) = setup();
        let p = Producer::with_clock(c.clone(), ProducerConfig::default(), clock.clone());
        p.set_topic_quota("t", Quota::per_sec(1_000).with_burst(3));
        let mut accepted = 0u64;
        let mut shed = 0u64;
        for i in 0..5 {
            match p.send("t", Record::new(Row::new().with("i", i as i64), 0)) {
                Ok(()) => accepted += 1,
                Err(e) => {
                    assert!(matches!(e, Error::Overloaded(_)));
                    assert!(e.is_retryable(), "clients may back off and retry");
                    shed += 1;
                }
            }
        }
        assert_eq!((accepted, shed), (3, 2), "burst of 3, then quota sheds");
        assert_eq!(p.records_sent(), 3);
        assert_eq!(p.records_shed(), 2);
        assert_eq!(c.topic("t").unwrap().total_records(), 3);
        // advancing the injected clock refills the bucket: 2ms at 1000/s
        clock.advance(2);
        for i in 0..3 {
            let r = p.send("t", Record::new(Row::new().with("i", i as i64), 0));
            if i < 2 {
                r.unwrap();
            } else {
                assert!(matches!(r, Err(Error::Overloaded(_))));
            }
        }
        assert_eq!(p.records_sent(), 5);
        // exact accounting: every offered record is either sent or shed
        assert_eq!(p.records_sent() + p.records_shed(), 8);
    }

    #[test]
    fn retries_transient_failures() {
        let (c, clock) = setup();
        let flaky = Arc::new(Flaky {
            inner: c.clone(),
            failures_left: RwLock::new(2),
        });
        let p = Producer::with_clock(flaky, ProducerConfig::default(), clock.clone());
        p.send("t", Record::new(Row::new(), 0)).unwrap();
        assert_eq!(c.topic("t").unwrap().total_records(), 1);

        // too many failures -> surfaced
        let flaky = Arc::new(Flaky {
            inner: c.clone(),
            failures_left: RwLock::new(10),
        });
        let p = Producer::with_clock(flaky, ProducerConfig::default(), clock);
        assert!(p.send("t", Record::new(Row::new(), 0)).is_err());
    }
}
