//! Chaperone: end-to-end auditing (§4.1.4).
//!
//! "Chaperone collects key statistics like the number of unique messages
//! in a tumbling time window from every stage of the replication pipeline.
//! The auditing service compares the collected statistics and generates
//! alerts when mismatch is detected."
//!
//! Every stage of a pipeline (regional Kafka, aggregate Kafka, Flink sink,
//! Pinot ingestion...) reports each message's unique id and event time to
//! a [`Chaperone`] collector; [`Chaperone::audit`] compares any two stages
//! window by window and emits loss/duplicate alerts.

use parking_lot::RwLock;
use rtdi_common::metrics::Histogram;
use rtdi_common::trace::PipelineTracer;
use rtdi_common::{Record, Timestamp};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::Arc;

/// Per-(stage, window) statistics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WindowStats {
    /// Total messages observed (duplicates included).
    pub count: u64,
    /// Distinct unique-ids observed.
    pub unique: u64,
}

/// One detected mismatch between two stages in one window.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditAlert {
    pub window_start: Timestamp,
    pub from_stage: String,
    pub to_stage: String,
    pub kind: AlertKind,
    /// How many messages the mismatch involves.
    pub magnitude: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlertKind {
    /// Downstream saw fewer unique messages than upstream.
    Loss,
    /// Downstream saw some message more than once.
    Duplication,
}

#[derive(Default)]
struct StageData {
    /// window start -> ids seen (id -> occurrences)
    windows: BTreeMap<Timestamp, HashMap<String, u32>>,
    /// Freshness at this stage: observation time minus the record's
    /// producer origin stamp, in milliseconds. Only populated by
    /// [`Chaperone::observe_at`] (plain `observe` has no wall clock).
    freshness: Histogram,
}

/// Freshness percentiles of one stage, in milliseconds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageFreshness {
    pub count: u64,
    pub p50_ms: u64,
    pub p99_ms: u64,
    pub max_ms: u64,
}

/// The audit collector.
#[derive(Clone)]
pub struct Chaperone {
    window_ms: i64,
    stages: Arc<RwLock<BTreeMap<String, StageData>>>,
}

impl Chaperone {
    pub fn new(window_ms: i64) -> Self {
        Chaperone {
            window_ms: window_ms.max(1),
            stages: Arc::new(RwLock::new(BTreeMap::new())),
        }
    }

    fn window_of(&self, ts: Timestamp) -> Timestamp {
        ts.div_euclid(self.window_ms) * self.window_ms
    }

    /// Report one message's passage through a stage. Messages without a
    /// unique id are counted under a synthetic id (they can still be
    /// counted, but not deduplicated).
    pub fn observe(&self, stage: &str, record: &Record) {
        let id = record
            .unique_id()
            .map(|s| s.to_string())
            .unwrap_or_else(|| format!("<anon-{}>", record.timestamp));
        self.observe_id(stage, &id, record.timestamp);
    }

    /// Like [`observe`](Self::observe), but with the observer's clock:
    /// also records the record's freshness (now minus its producer origin
    /// stamp) so audits carry per-stage freshness percentiles alongside
    /// counts. Windowing still uses the record's event time so upstream
    /// and downstream observations of the same message land in the same
    /// audit window regardless of when each stage saw it.
    pub fn observe_at(&self, stage: &str, record: &Record, now: Timestamp) {
        self.observe(stage, record);
        let dwell = (now - PipelineTracer::app_ts_of(record)).max(0);
        self.stages
            .write()
            .entry(stage.to_string())
            .or_default()
            .freshness
            .record(dwell as u64);
    }

    /// Freshness percentiles for a stage; `None` if the stage has never
    /// been observed with a clock.
    pub fn freshness(&self, stage: &str) -> Option<StageFreshness> {
        let stages = self.stages.read();
        let h = &stages.get(stage)?.freshness;
        if h.count() == 0 {
            return None;
        }
        Some(StageFreshness {
            count: h.count(),
            p50_ms: h.quantile(0.5),
            p99_ms: h.quantile(0.99),
            max_ms: h.max(),
        })
    }

    /// Every stage that has reported at least one observation.
    pub fn stage_names(&self) -> Vec<String> {
        self.stages.read().keys().cloned().collect()
    }

    /// Lower-level variant for stages that only have ids.
    pub fn observe_id(&self, stage: &str, unique_id: &str, ts: Timestamp) {
        let window = self.window_of(ts);
        let mut stages = self.stages.write();
        let data = stages.entry(stage.to_string()).or_default();
        *data
            .windows
            .entry(window)
            .or_default()
            .entry(unique_id.to_string())
            .or_insert(0) += 1;
    }

    /// Statistics for one stage/window.
    pub fn stats(&self, stage: &str, window_start: Timestamp) -> WindowStats {
        let stages = self.stages.read();
        let Some(data) = stages.get(stage) else {
            return WindowStats::default();
        };
        let Some(ids) = data.windows.get(&window_start) else {
            return WindowStats::default();
        };
        WindowStats {
            count: ids.values().map(|&c| c as u64).sum(),
            unique: ids.len() as u64,
        }
    }

    /// Compare two stages across every window either has seen; emit alerts
    /// for loss (downstream unique < upstream unique) and duplication
    /// (downstream count > downstream unique).
    pub fn audit(&self, upstream: &str, downstream: &str) -> Vec<AuditAlert> {
        let stages = self.stages.read();
        let up = stages.get(upstream);
        let down = stages.get(downstream);
        let mut windows: HashSet<Timestamp> = HashSet::new();
        if let Some(u) = up {
            windows.extend(u.windows.keys());
        }
        if let Some(d) = down {
            windows.extend(d.windows.keys());
        }
        let mut alerts = Vec::new();
        let mut sorted: Vec<Timestamp> = windows.into_iter().collect();
        sorted.sort_unstable();
        for w in sorted {
            let u_unique = up
                .and_then(|s| s.windows.get(&w))
                .map(|m| m.len() as u64)
                .unwrap_or(0);
            let (d_unique, d_count) = down
                .and_then(|s| s.windows.get(&w))
                .map(|m| (m.len() as u64, m.values().map(|&c| c as u64).sum()))
                .unwrap_or((0, 0));
            if d_unique < u_unique {
                alerts.push(AuditAlert {
                    window_start: w,
                    from_stage: upstream.to_string(),
                    to_stage: downstream.to_string(),
                    kind: AlertKind::Loss,
                    magnitude: u_unique - d_unique,
                });
            }
            if d_count > d_unique {
                alerts.push(AuditAlert {
                    window_start: w,
                    from_stage: upstream.to_string(),
                    to_stage: downstream.to_string(),
                    kind: AlertKind::Duplication,
                    magnitude: d_count - d_unique,
                });
            }
        }
        alerts
    }

    /// Exactly-once certification: no loss and no duplication between two
    /// stages (the §2 "ability to certify data quality" requirement).
    pub fn certify(&self, upstream: &str, downstream: &str) -> bool {
        self.audit(upstream, downstream).is_empty()
    }

    /// Audit a whole pipeline — each consecutive pair of stages in order
    /// (stream -> compute -> OLAP) — and return every alert found.
    pub fn audit_chain(&self, stages: &[&str]) -> Vec<AuditAlert> {
        stages
            .windows(2)
            .flat_map(|pair| self.audit(pair[0], pair[1]))
            .collect()
    }

    /// Total messages lost and duplicated between two stages, summed over
    /// every audit window — the counters a health snapshot wants.
    pub fn loss_and_duplication(&self, upstream: &str, downstream: &str) -> (u64, u64) {
        let mut lost = 0;
        let mut duplicated = 0;
        for alert in self.audit(upstream, downstream) {
            match alert.kind {
                AlertKind::Loss => lost += alert.magnitude,
                AlertKind::Duplication => duplicated += alert.magnitude,
            }
        }
        (lost, duplicated)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtdi_common::record::headers;
    use rtdi_common::Row;

    fn rec(id: &str, ts: Timestamp) -> Record {
        Record::new(Row::new(), ts).with_header(headers::UNIQUE_ID, id)
    }

    #[test]
    fn clean_pipeline_certifies() {
        let ch = Chaperone::new(1000);
        for i in 0..100 {
            let r = rec(&format!("m{i}"), i * 50);
            ch.observe("regional", &r);
            ch.observe("aggregate", &r);
        }
        assert!(ch.certify("regional", "aggregate"));
        assert_eq!(ch.stats("regional", 0).unique, 20); // 20 msgs per 1s window
    }

    #[test]
    fn loss_detected_in_the_right_window() {
        let ch = Chaperone::new(1000);
        for i in 0..100 {
            let r = rec(&format!("m{i}"), i * 50);
            ch.observe("regional", &r);
            // drop messages 40..45 (window starting at 2000)
            if !(40..45).contains(&i) {
                ch.observe("aggregate", &r);
            }
        }
        let alerts = ch.audit("regional", "aggregate");
        assert_eq!(alerts.len(), 1);
        assert_eq!(alerts[0].kind, AlertKind::Loss);
        assert_eq!(alerts[0].magnitude, 5);
        assert_eq!(alerts[0].window_start, 2000);
        assert!(!ch.certify("regional", "aggregate"));
    }

    #[test]
    fn duplication_detected() {
        let ch = Chaperone::new(1000);
        for i in 0..10 {
            let r = rec(&format!("m{i}"), i);
            ch.observe("a", &r);
            ch.observe("b", &r);
        }
        // replay two messages downstream
        ch.observe("b", &rec("m3", 3));
        ch.observe("b", &rec("m3", 3));
        ch.observe("b", &rec("m7", 7));
        let alerts = ch.audit("a", "b");
        assert_eq!(alerts.len(), 1);
        assert_eq!(alerts[0].kind, AlertKind::Duplication);
        assert_eq!(alerts[0].magnitude, 3);
    }

    #[test]
    fn missing_stage_counts_as_total_loss() {
        let ch = Chaperone::new(1000);
        for i in 0..5 {
            ch.observe("a", &rec(&format!("m{i}"), 0));
        }
        let alerts = ch.audit("a", "never-reported");
        assert_eq!(alerts.len(), 1);
        assert_eq!(alerts[0].magnitude, 5);
    }

    #[test]
    fn anonymous_records_still_counted() {
        let ch = Chaperone::new(1000);
        ch.observe("a", &Record::new(Row::new(), 5));
        assert_eq!(ch.stats("a", 0).count, 1);
    }

    #[test]
    fn negative_timestamps_window_correctly() {
        let ch = Chaperone::new(1000);
        ch.observe_id("a", "x", -1);
        assert_eq!(ch.stats("a", -1000).unique, 1);
    }

    #[test]
    fn observe_at_records_freshness_percentiles() {
        let ch = Chaperone::new(1000);
        for i in 0..10i64 {
            let mut r = rec(&format!("m{i}"), i);
            r.headers.set(headers::APP_TIMESTAMP, i.to_string());
            // observed 100ms after its origin stamp
            ch.observe_at("kafka", &r, i + 100);
        }
        let f = ch.freshness("kafka").unwrap();
        assert_eq!(f.count, 10);
        assert!(f.p50_ms >= 100 && f.p50_ms <= 128, "p50={}", f.p50_ms);
        assert!(f.max_ms == 100);
        // a stage observed without a clock has no freshness data
        ch.observe("clockless", &rec("x", 0));
        assert!(ch.freshness("clockless").is_none());
        assert!(ch.stage_names().contains(&"kafka".to_string()));
    }

    #[test]
    fn chain_audit_covers_every_consecutive_pair() {
        let ch = Chaperone::new(1000);
        for i in 0..20 {
            let r = rec(&format!("m{i}"), i);
            ch.observe("stream", &r);
            ch.observe("compute", &r);
            // OLAP loses 3 messages
            if i >= 3 {
                ch.observe("olap", &r);
            }
        }
        assert!(ch.audit_chain(&["stream", "compute"]).is_empty());
        let alerts = ch.audit_chain(&["stream", "compute", "olap"]);
        assert_eq!(alerts.len(), 1);
        assert_eq!(alerts[0].from_stage, "compute");
        let (lost, duplicated) = ch.loss_and_duplication("compute", "olap");
        assert_eq!((lost, duplicated), (3, 0));
        // duplication counted separately
        ch.observe("olap", &rec("m5", 5));
        let (_, duplicated) = ch.loss_and_duplication("compute", "olap");
        assert_eq!(duplicated, 1);
    }
}
