//! Chaperone: end-to-end auditing (§4.1.4).
//!
//! "Chaperone collects key statistics like the number of unique messages
//! in a tumbling time window from every stage of the replication pipeline.
//! The auditing service compares the collected statistics and generates
//! alerts when mismatch is detected."
//!
//! Every stage of a pipeline (regional Kafka, aggregate Kafka, Flink sink,
//! Pinot ingestion...) reports each message's unique id and event time to
//! a [`Chaperone`] collector; [`Chaperone::audit`] compares any two stages
//! window by window and emits loss/duplicate alerts.

use parking_lot::RwLock;
use rtdi_common::{Record, Timestamp};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::Arc;

/// Per-(stage, window) statistics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WindowStats {
    /// Total messages observed (duplicates included).
    pub count: u64,
    /// Distinct unique-ids observed.
    pub unique: u64,
}

/// One detected mismatch between two stages in one window.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditAlert {
    pub window_start: Timestamp,
    pub from_stage: String,
    pub to_stage: String,
    pub kind: AlertKind,
    /// How many messages the mismatch involves.
    pub magnitude: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlertKind {
    /// Downstream saw fewer unique messages than upstream.
    Loss,
    /// Downstream saw some message more than once.
    Duplication,
}

#[derive(Default)]
struct StageData {
    /// window start -> ids seen (id -> occurrences)
    windows: BTreeMap<Timestamp, HashMap<String, u32>>,
}

/// The audit collector.
#[derive(Clone)]
pub struct Chaperone {
    window_ms: i64,
    stages: Arc<RwLock<BTreeMap<String, StageData>>>,
}

impl Chaperone {
    pub fn new(window_ms: i64) -> Self {
        Chaperone {
            window_ms: window_ms.max(1),
            stages: Arc::new(RwLock::new(BTreeMap::new())),
        }
    }

    fn window_of(&self, ts: Timestamp) -> Timestamp {
        ts.div_euclid(self.window_ms) * self.window_ms
    }

    /// Report one message's passage through a stage. Messages without a
    /// unique id are counted under a synthetic id (they can still be
    /// counted, but not deduplicated).
    pub fn observe(&self, stage: &str, record: &Record) {
        let id = record
            .unique_id()
            .map(|s| s.to_string())
            .unwrap_or_else(|| format!("<anon-{}>", record.timestamp));
        self.observe_id(stage, &id, record.timestamp);
    }

    /// Lower-level variant for stages that only have ids.
    pub fn observe_id(&self, stage: &str, unique_id: &str, ts: Timestamp) {
        let window = self.window_of(ts);
        let mut stages = self.stages.write();
        let data = stages.entry(stage.to_string()).or_default();
        *data
            .windows
            .entry(window)
            .or_default()
            .entry(unique_id.to_string())
            .or_insert(0) += 1;
    }

    /// Statistics for one stage/window.
    pub fn stats(&self, stage: &str, window_start: Timestamp) -> WindowStats {
        let stages = self.stages.read();
        let Some(data) = stages.get(stage) else {
            return WindowStats::default();
        };
        let Some(ids) = data.windows.get(&window_start) else {
            return WindowStats::default();
        };
        WindowStats {
            count: ids.values().map(|&c| c as u64).sum(),
            unique: ids.len() as u64,
        }
    }

    /// Compare two stages across every window either has seen; emit alerts
    /// for loss (downstream unique < upstream unique) and duplication
    /// (downstream count > downstream unique).
    pub fn audit(&self, upstream: &str, downstream: &str) -> Vec<AuditAlert> {
        let stages = self.stages.read();
        let up = stages.get(upstream);
        let down = stages.get(downstream);
        let mut windows: HashSet<Timestamp> = HashSet::new();
        if let Some(u) = up {
            windows.extend(u.windows.keys());
        }
        if let Some(d) = down {
            windows.extend(d.windows.keys());
        }
        let mut alerts = Vec::new();
        let mut sorted: Vec<Timestamp> = windows.into_iter().collect();
        sorted.sort_unstable();
        for w in sorted {
            let u_unique = up
                .and_then(|s| s.windows.get(&w))
                .map(|m| m.len() as u64)
                .unwrap_or(0);
            let (d_unique, d_count) = down
                .and_then(|s| s.windows.get(&w))
                .map(|m| (m.len() as u64, m.values().map(|&c| c as u64).sum()))
                .unwrap_or((0, 0));
            if d_unique < u_unique {
                alerts.push(AuditAlert {
                    window_start: w,
                    from_stage: upstream.to_string(),
                    to_stage: downstream.to_string(),
                    kind: AlertKind::Loss,
                    magnitude: u_unique - d_unique,
                });
            }
            if d_count > d_unique {
                alerts.push(AuditAlert {
                    window_start: w,
                    from_stage: upstream.to_string(),
                    to_stage: downstream.to_string(),
                    kind: AlertKind::Duplication,
                    magnitude: d_count - d_unique,
                });
            }
        }
        alerts
    }

    /// Exactly-once certification: no loss and no duplication between two
    /// stages (the §2 "ability to certify data quality" requirement).
    pub fn certify(&self, upstream: &str, downstream: &str) -> bool {
        self.audit(upstream, downstream).is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtdi_common::record::headers;
    use rtdi_common::Row;

    fn rec(id: &str, ts: Timestamp) -> Record {
        Record::new(Row::new(), ts).with_header(headers::UNIQUE_ID, id)
    }

    #[test]
    fn clean_pipeline_certifies() {
        let ch = Chaperone::new(1000);
        for i in 0..100 {
            let r = rec(&format!("m{i}"), i * 50);
            ch.observe("regional", &r);
            ch.observe("aggregate", &r);
        }
        assert!(ch.certify("regional", "aggregate"));
        assert_eq!(ch.stats("regional", 0).unique, 20); // 20 msgs per 1s window
    }

    #[test]
    fn loss_detected_in_the_right_window() {
        let ch = Chaperone::new(1000);
        for i in 0..100 {
            let r = rec(&format!("m{i}"), i * 50);
            ch.observe("regional", &r);
            // drop messages 40..45 (window starting at 2000)
            if !(40..45).contains(&i) {
                ch.observe("aggregate", &r);
            }
        }
        let alerts = ch.audit("regional", "aggregate");
        assert_eq!(alerts.len(), 1);
        assert_eq!(alerts[0].kind, AlertKind::Loss);
        assert_eq!(alerts[0].magnitude, 5);
        assert_eq!(alerts[0].window_start, 2000);
        assert!(!ch.certify("regional", "aggregate"));
    }

    #[test]
    fn duplication_detected() {
        let ch = Chaperone::new(1000);
        for i in 0..10 {
            let r = rec(&format!("m{i}"), i);
            ch.observe("a", &r);
            ch.observe("b", &r);
        }
        // replay two messages downstream
        ch.observe("b", &rec("m3", 3));
        ch.observe("b", &rec("m3", 3));
        ch.observe("b", &rec("m7", 7));
        let alerts = ch.audit("a", "b");
        assert_eq!(alerts.len(), 1);
        assert_eq!(alerts[0].kind, AlertKind::Duplication);
        assert_eq!(alerts[0].magnitude, 3);
    }

    #[test]
    fn missing_stage_counts_as_total_loss() {
        let ch = Chaperone::new(1000);
        for i in 0..5 {
            ch.observe("a", &rec(&format!("m{i}"), 0));
        }
        let alerts = ch.audit("a", "never-reported");
        assert_eq!(alerts.len(), 1);
        assert_eq!(alerts[0].magnitude, 5);
    }

    #[test]
    fn anonymous_records_still_counted() {
        let ch = Chaperone::new(1000);
        ch.observe("a", &Record::new(Row::new(), 5));
        assert_eq!(ch.stats("a", 0).count, 1);
    }

    #[test]
    fn negative_timestamps_window_correctly() {
        let ch = Chaperone::new(1000);
        ch.observe_id("a", "x", -1);
        assert_eq!(ch.stats("a", -1000).unique, 1);
    }
}
