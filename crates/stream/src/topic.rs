//! Topics: named, partitioned streams with per-use-case configuration.
//!
//! §10 ("Scaling use cases"): "with the same client protocol we're able to
//! serve a wide spectrum of use cases from logging which trades off data
//! consistency for achieving high availability, to disseminating financial
//! data that needs zero data loss guarantees". [`TopicConfig`] carries
//! that tuning: lossless (acks-all, fsync-like semantics) vs
//! high-throughput (acks-leader, bounded retention), matching the surge
//! pipeline's choice in §5.1.

use crate::log::{FetchResult, PartitionLog};
use rtdi_common::{Error, Record, Result, Timestamp};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Durability/throughput profile of a topic.
#[derive(Debug, Clone, PartialEq)]
pub struct TopicConfig {
    pub partitions: usize,
    /// Replication factor (modelled for placement/failure accounting).
    pub replication: usize,
    /// Zero-data-loss topics reject writes when under-replicated;
    /// high-throughput topics accept them (§5.1's surge tradeoff).
    pub lossless: bool,
    /// Retention window; 0 = unlimited. The paper limits retention to "a
    /// few days" (§7).
    pub retention_ms: i64,
    /// Per-partition retention bytes; 0 = unlimited.
    pub retention_bytes: usize,
}

impl Default for TopicConfig {
    fn default() -> Self {
        TopicConfig {
            partitions: 4,
            replication: 3,
            lossless: false,
            retention_ms: 3 * 86_400_000, // 3 days
            retention_bytes: 0,
        }
    }
}

impl TopicConfig {
    pub fn with_partitions(mut self, n: usize) -> Self {
        self.partitions = n;
        self
    }

    /// Financial-grade: lossless, full replication.
    pub fn lossless() -> Self {
        TopicConfig {
            lossless: true,
            ..Default::default()
        }
    }

    /// Surge-style: favor throughput/freshness over durability.
    pub fn high_throughput() -> Self {
        TopicConfig {
            replication: 2,
            lossless: false,
            ..Default::default()
        }
    }
}

/// A partitioned stream.
pub struct Topic {
    name: String,
    config: TopicConfig,
    partitions: Vec<Arc<PartitionLog>>,
    round_robin: AtomicUsize,
}

impl Topic {
    pub fn new(name: impl Into<String>, config: TopicConfig) -> Result<Self> {
        if config.partitions == 0 {
            return Err(Error::InvalidArgument("topic needs >= 1 partition".into()));
        }
        let partitions = (0..config.partitions)
            .map(|_| {
                Arc::new(PartitionLog::new(
                    config.retention_ms,
                    config.retention_bytes,
                ))
            })
            .collect();
        Ok(Topic {
            name: name.into(),
            config,
            partitions,
            round_robin: AtomicUsize::new(0),
        })
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn config(&self) -> &TopicConfig {
        &self.config
    }

    pub fn num_partitions(&self) -> usize {
        self.partitions.len()
    }

    /// Choose the partition for a record: keyed records hash, unkeyed
    /// round-robin.
    pub fn partition_for(&self, record: &Record) -> usize {
        record
            .partition_for(self.partitions.len())
            .unwrap_or_else(|| {
                self.round_robin.fetch_add(1, Ordering::Relaxed) % self.partitions.len()
            })
    }

    /// Append to the chosen partition; returns `(partition, offset)`.
    pub fn append(&self, record: Record, now: Timestamp) -> (usize, u64) {
        let p = self.partition_for(&record);
        let offset = self.partitions[p].append(record, now);
        (p, offset)
    }

    /// Append directly to a specific partition (used by the replicator to
    /// preserve partition alignment, which upsert tables require, §4.3.1).
    pub fn append_to(&self, partition: usize, record: Record, now: Timestamp) -> Result<u64> {
        let log = self
            .partitions
            .get(partition)
            .ok_or_else(|| Error::InvalidArgument(format!("partition {partition} out of range")))?;
        Ok(log.append(record, now))
    }

    pub fn fetch(&self, partition: usize, offset: u64, max: usize) -> Result<FetchResult> {
        let log = self
            .partitions
            .get(partition)
            .ok_or_else(|| Error::InvalidArgument(format!("partition {partition} out of range")))?;
        log.fetch(offset, max)
    }

    pub fn partition(&self, i: usize) -> Option<&Arc<PartitionLog>> {
        self.partitions.get(i)
    }

    /// Sum of high watermarks (total records ever appended & retained
    /// bookkeeping).
    pub fn total_records(&self) -> u64 {
        self.partitions.iter().map(|p| p.high_watermark()).sum()
    }

    pub fn high_watermarks(&self) -> Vec<u64> {
        self.partitions.iter().map(|p| p.high_watermark()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtdi_common::Row;

    fn rec(key: Option<&str>, i: i64) -> Record {
        let r = Record::new(Row::new().with("i", i), i);
        match key {
            Some(k) => r.with_key(k),
            None => r,
        }
    }

    #[test]
    fn keyed_records_stay_on_one_partition() {
        let t = Topic::new("trips", TopicConfig::default().with_partitions(8)).unwrap();
        let mut seen = std::collections::HashSet::new();
        for i in 0..50 {
            let (p, _) = t.append(rec(Some("driver-7"), i), 0);
            seen.insert(p);
        }
        assert_eq!(seen.len(), 1);
    }

    #[test]
    fn unkeyed_records_round_robin() {
        let t = Topic::new("logs", TopicConfig::default().with_partitions(4)).unwrap();
        for i in 0..40 {
            t.append(rec(None, i), 0);
        }
        for p in 0..4 {
            assert_eq!(t.fetch(p, 0, 100).unwrap().records.len(), 10);
        }
    }

    #[test]
    fn zero_partitions_rejected() {
        assert!(Topic::new("bad", TopicConfig::default().with_partitions(0)).is_err());
    }

    #[test]
    fn fetch_bad_partition_rejected() {
        let t = Topic::new("t", TopicConfig::default().with_partitions(2)).unwrap();
        assert!(t.fetch(5, 0, 10).is_err());
        assert!(t.append_to(5, rec(None, 1), 0).is_err());
    }

    #[test]
    fn config_profiles() {
        assert!(TopicConfig::lossless().lossless);
        assert!(!TopicConfig::high_throughput().lossless);
        assert!(TopicConfig::high_throughput().replication < TopicConfig::lossless().replication);
    }

    #[test]
    fn total_records_sums_partitions() {
        let t = Topic::new("t", TopicConfig::default().with_partitions(3)).unwrap();
        for i in 0..30 {
            t.append(rec(Some(&format!("k{i}")), i), 0);
        }
        assert_eq!(t.total_records(), 30);
        assert_eq!(t.high_watermarks().iter().sum::<u64>(), 30);
    }
}
