//! Topics: named, partitioned streams with per-use-case configuration.
//!
//! §10 ("Scaling use cases"): "with the same client protocol we're able to
//! serve a wide spectrum of use cases from logging which trades off data
//! consistency for achieving high availability, to disseminating financial
//! data that needs zero data loss guarantees". [`TopicConfig`] carries
//! that tuning: lossless (acks-all, fsync-like semantics) vs
//! high-throughput (acks-leader, bounded retention), matching the surge
//! pipeline's choice in §5.1.
//!
//! Since PR 4 every partition carries a [`ReplicaSet`]: leader/follower
//! placement across broker nodes, ISR tracking, a committed high
//! watermark capping consumer fetches, and leader failover driven by
//! [`Topic::on_node_down`] / [`Topic::on_node_up`] (wired to the shared
//! membership detector by [`crate::cluster::Cluster`]).

use crate::log::{FetchResult, PartitionLog};
use crate::replica::{FailoverEvent, ReplicaSet, ReplicaStatus};
use parking_lot::RwLock;
use rtdi_common::{Error, Record, Result, Timestamp};
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Durability/throughput profile of a topic.
#[derive(Debug, Clone, PartialEq)]
pub struct TopicConfig {
    pub partitions: usize,
    /// Replication factor (replica-set placement across broker nodes).
    pub replication: usize,
    /// Zero-data-loss topics reject writes when under-replicated;
    /// high-throughput topics accept them (§5.1's surge tradeoff).
    pub lossless: bool,
    /// Minimum in-sync replicas an acks=all (`lossless`) write requires
    /// (Kafka's `min.insync.replicas`); ignored for throughput topics.
    pub min_insync: usize,
    /// Retention window; 0 = unlimited. The paper limits retention to "a
    /// few days" (§7).
    pub retention_ms: i64,
    /// Per-partition retention bytes; 0 = unlimited.
    pub retention_bytes: usize,
}

impl Default for TopicConfig {
    fn default() -> Self {
        TopicConfig {
            partitions: 4,
            replication: 3,
            lossless: false,
            min_insync: 2,
            retention_ms: 3 * 86_400_000, // 3 days
            retention_bytes: 0,
        }
    }
}

impl TopicConfig {
    pub fn with_partitions(mut self, n: usize) -> Self {
        self.partitions = n;
        self
    }

    /// Financial-grade: lossless, full replication.
    pub fn lossless() -> Self {
        TopicConfig {
            lossless: true,
            ..Default::default()
        }
    }

    /// Surge-style: favor throughput/freshness over durability.
    pub fn high_throughput() -> Self {
        TopicConfig {
            replication: 2,
            lossless: false,
            ..Default::default()
        }
    }
}

/// A partitioned, replicated stream.
pub struct Topic {
    name: String,
    config: TopicConfig,
    /// Shared per-partition storage (every replica's content is a prefix
    /// of it; see [`crate::replica`]).
    partitions: Vec<Arc<PartitionLog>>,
    replica_sets: Vec<ReplicaSet>,
    /// Nodes currently considered dead for this topic's partitions,
    /// maintained by `on_node_down`/`on_node_up`.
    down: RwLock<BTreeSet<String>>,
    failovers: RwLock<Vec<FailoverEvent>>,
    round_robin: AtomicUsize,
}

impl Topic {
    /// Standalone topic over a synthetic node pool `node-0..node-{R-1}`
    /// (one node per replica). Cluster-hosted topics get real placement
    /// via [`Topic::with_placement`].
    pub fn new(name: impl Into<String>, config: TopicConfig) -> Result<Self> {
        let pool: Vec<String> = (0..config.replication.max(1))
            .map(|i| format!("node-{i}"))
            .collect();
        Self::with_placement(name, config, &pool)
    }

    /// Create a topic with partition replicas placed round-robin across
    /// `nodes` (partition `p`, replica `r` lands on node `(p + r) % N`;
    /// the first replica is the preferred leader). When the pool is
    /// smaller than the replication factor the assignment is deduplicated
    /// — effective replication degrades to the node count, as on a real
    /// cluster.
    pub fn with_placement(
        name: impl Into<String>,
        config: TopicConfig,
        nodes: &[String],
    ) -> Result<Self> {
        if config.partitions == 0 {
            return Err(Error::InvalidArgument("topic needs >= 1 partition".into()));
        }
        if nodes.is_empty() {
            return Err(Error::Unavailable(
                "no live nodes available for placement".into(),
            ));
        }
        let partitions: Vec<Arc<PartitionLog>> = (0..config.partitions)
            .map(|_| {
                Arc::new(PartitionLog::new(
                    config.retention_ms,
                    config.retention_bytes,
                ))
            })
            .collect();
        let replica_sets = partitions
            .iter()
            .enumerate()
            .map(|(p, log)| {
                let mut assignment = Vec::new();
                for r in 0..config.replication.max(1) {
                    let node = nodes[(p + r) % nodes.len()].clone();
                    if !assignment.contains(&node) {
                        assignment.push(node);
                    }
                }
                ReplicaSet::new(p, Arc::clone(log), assignment)
            })
            .collect();
        Ok(Topic {
            name: name.into(),
            config,
            partitions,
            replica_sets,
            down: RwLock::new(BTreeSet::new()),
            failovers: RwLock::new(Vec::new()),
            round_robin: AtomicUsize::new(0),
        })
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn config(&self) -> &TopicConfig {
        &self.config
    }

    pub fn num_partitions(&self) -> usize {
        self.partitions.len()
    }

    /// Choose the partition for a record: keyed records hash, unkeyed
    /// round-robin.
    pub fn partition_for(&self, record: &Record) -> usize {
        record
            .partition_for(self.partitions.len())
            .unwrap_or_else(|| {
                self.round_robin.fetch_add(1, Ordering::Relaxed) % self.partitions.len()
            })
    }

    /// Append to the chosen partition; returns `(partition, offset)`.
    /// Fails when the partition has no live leader, or — on lossless
    /// topics — when the ISR is below `min_insync` (acks=all).
    pub fn append(&self, record: Record, now: Timestamp) -> Result<(usize, u64)> {
        let p = self.partition_for(&record);
        let offset = self.replicated_append(p, record, now)?;
        Ok((p, offset))
    }

    /// Append directly to a specific partition (used by the replicator to
    /// preserve partition alignment, which upsert tables require, §4.3.1).
    pub fn append_to(&self, partition: usize, record: Record, now: Timestamp) -> Result<u64> {
        if partition >= self.partitions.len() {
            return Err(Error::InvalidArgument(format!(
                "partition {partition} out of range"
            )));
        }
        self.replicated_append(partition, record, now)
    }

    fn replicated_append(&self, partition: usize, record: Record, now: Timestamp) -> Result<u64> {
        let down = self.down.read();
        self.replica_sets[partition].append(
            record,
            now,
            &down,
            self.config.lossless,
            self.config.min_insync,
        )
    }

    /// Consumer fetch: never returns records at or past the partition's
    /// committed high watermark.
    pub fn fetch(&self, partition: usize, offset: u64, max: usize) -> Result<FetchResult> {
        let rs = self
            .replica_sets
            .get(partition)
            .ok_or_else(|| Error::InvalidArgument(format!("partition {partition} out of range")))?;
        rs.fetch(offset, max)
    }

    /// Raw storage access for internal subsystems (archival, tiering,
    /// migration, DLQ bookkeeping). Bypasses the committed-watermark cap;
    /// consumers must go through [`Topic::fetch`].
    pub fn partition(&self, i: usize) -> Option<&Arc<PartitionLog>> {
        self.partitions.get(i)
    }

    /// Sum of log-end offsets (total records ever appended & retained
    /// bookkeeping).
    pub fn total_records(&self) -> u64 {
        self.partitions.iter().map(|p| p.high_watermark()).sum()
    }

    /// Per-partition log-end offsets (leader log ends).
    pub fn high_watermarks(&self) -> Vec<u64> {
        self.partitions.iter().map(|p| p.high_watermark()).collect()
    }

    /// The committed (consumer-visible) high watermark of one partition.
    pub fn committed_watermark(&self, partition: usize) -> Option<u64> {
        self.replica_sets.get(partition).map(|rs| rs.committed())
    }

    pub fn committed_watermarks(&self) -> Vec<u64> {
        self.replica_sets.iter().map(|rs| rs.committed()).collect()
    }

    /// Replication state of one partition.
    pub fn replica_status(&self, partition: usize) -> Option<ReplicaStatus> {
        self.replica_sets.get(partition).map(|rs| rs.status())
    }

    /// Mark a broker node dead: every partition drops it from its ISR and
    /// partitions it led elect an in-sync follower (or go offline when
    /// none exists). Returns the leadership transitions.
    pub fn on_node_down(&self, node: &str, now: Timestamp) -> Vec<FailoverEvent> {
        self.down.write().insert(node.to_string());
        let events: Vec<FailoverEvent> = self
            .replica_sets
            .iter()
            .filter_map(|rs| rs.on_node_down(node, now, &self.name))
            .collect();
        self.failovers.write().extend(events.iter().cloned());
        events
    }

    /// Mark a broker node live again: it catches up, rejoins ISRs, and
    /// revives partitions that were offline.
    pub fn on_node_up(&self, node: &str, now: Timestamp) -> Vec<FailoverEvent> {
        self.down.write().remove(node);
        let events: Vec<FailoverEvent> = self
            .replica_sets
            .iter()
            .filter_map(|rs| rs.on_node_up(node, now, &self.name))
            .collect();
        self.failovers.write().extend(events.iter().cloned());
        events
    }

    /// Every leadership transition this topic has seen, in order.
    pub fn failover_events(&self) -> Vec<FailoverEvent> {
        self.failovers.read().clone()
    }

    /// Partitions that currently have no live leader.
    pub fn offline_partitions(&self) -> Vec<usize> {
        self.replica_sets
            .iter()
            .enumerate()
            .filter(|(_, rs)| rs.status().leader.is_none())
            .map(|(p, _)| p)
            .collect()
    }

    /// Declare all live replicas caught up with shared storage. Called
    /// after offset-preserving bulk imports (topic migration) that write
    /// to the partition logs beneath the replication layer.
    pub fn resync_replicas(&self) {
        let down = self.down.read();
        for rs in &self.replica_sets {
            rs.sync_to_end(&down);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtdi_common::Row;

    fn rec(key: Option<&str>, i: i64) -> Record {
        let r = Record::new(Row::new().with("i", i), i);
        match key {
            Some(k) => r.with_key(k),
            None => r,
        }
    }

    #[test]
    fn keyed_records_stay_on_one_partition() {
        let t = Topic::new("trips", TopicConfig::default().with_partitions(8)).unwrap();
        let mut seen = std::collections::HashSet::new();
        for i in 0..50 {
            let (p, _) = t.append(rec(Some("driver-7"), i), 0).unwrap();
            seen.insert(p);
        }
        assert_eq!(seen.len(), 1);
    }

    #[test]
    fn unkeyed_records_round_robin() {
        let t = Topic::new("logs", TopicConfig::default().with_partitions(4)).unwrap();
        for i in 0..40 {
            t.append(rec(None, i), 0).unwrap();
        }
        for p in 0..4 {
            assert_eq!(t.fetch(p, 0, 100).unwrap().records.len(), 10);
        }
    }

    #[test]
    fn zero_partitions_rejected() {
        assert!(Topic::new("bad", TopicConfig::default().with_partitions(0)).is_err());
    }

    #[test]
    fn fetch_bad_partition_rejected() {
        let t = Topic::new("t", TopicConfig::default().with_partitions(2)).unwrap();
        assert!(t.fetch(5, 0, 10).is_err());
        assert!(t.append_to(5, rec(None, 1), 0).is_err());
    }

    #[test]
    fn config_profiles() {
        assert!(TopicConfig::lossless().lossless);
        assert!(!TopicConfig::high_throughput().lossless);
        assert!(TopicConfig::high_throughput().replication < TopicConfig::lossless().replication);
    }

    #[test]
    fn total_records_sums_partitions() {
        let t = Topic::new("t", TopicConfig::default().with_partitions(3)).unwrap();
        for i in 0..30 {
            t.append(rec(Some(&format!("k{i}")), i), 0).unwrap();
        }
        assert_eq!(t.total_records(), 30);
        assert_eq!(t.high_watermarks().iter().sum::<u64>(), 30);
        assert_eq!(t.committed_watermarks().iter().sum::<u64>(), 30);
    }

    #[test]
    fn placement_spreads_leaders_across_nodes() {
        let nodes: Vec<String> = (0..4).map(|i| format!("b{i}")).collect();
        let t =
            Topic::with_placement("t", TopicConfig::default().with_partitions(4), &nodes).unwrap();
        let leaders: Vec<String> = (0..4)
            .map(|p| t.replica_status(p).unwrap().leader.unwrap())
            .collect();
        assert_eq!(leaders, vec!["b0", "b1", "b2", "b3"]);
        for p in 0..4 {
            let st = t.replica_status(p).unwrap();
            assert_eq!(st.assignment.len(), 3, "replication-factor placement");
            assert_eq!(st.isr.len(), 3);
        }
    }

    #[test]
    fn small_pools_dedupe_assignment() {
        let nodes = vec!["only".to_string()];
        let t =
            Topic::with_placement("t", TopicConfig::default().with_partitions(2), &nodes).unwrap();
        let st = t.replica_status(0).unwrap();
        assert_eq!(st.assignment, vec!["only".to_string()]);
        assert_eq!(st.isr.len(), 1);
    }

    #[test]
    fn node_death_fails_over_and_keeps_committed_records() {
        let nodes: Vec<String> = (0..3).map(|i| format!("b{i}")).collect();
        let t =
            Topic::with_placement("t", TopicConfig::default().with_partitions(3), &nodes).unwrap();
        for i in 0..30 {
            t.append(rec(Some(&format!("k{i}")), i), 0).unwrap();
        }
        let before: u64 = t.committed_watermarks().iter().sum();
        let events = t.on_node_down("b0", 100);
        // b0 led partition 0; followers exist so it fails over cleanly
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].old_leader.as_deref(), Some("b0"));
        assert!(events[0].new_leader.is_some());
        assert_eq!(events[0].truncated, 0);
        assert!(t.offline_partitions().is_empty());
        // all committed records still readable, in order
        assert_eq!(t.committed_watermarks().iter().sum::<u64>(), before);
        // writes continue on every partition
        for i in 30..40 {
            t.append(rec(Some(&format!("k{i}")), i), 101).unwrap();
        }
        // the node returns and rejoins ISRs
        t.on_node_up("b0", 200);
        for p in 0..3 {
            assert_eq!(t.replica_status(p).unwrap().isr.len(), 3);
        }
        assert_eq!(t.failover_events().len(), 1);
    }

    #[test]
    fn losing_all_replicas_takes_partition_offline_then_heals() {
        let nodes = vec!["b0".to_string(), "b1".to_string()];
        let t =
            Topic::with_placement("t", TopicConfig::default().with_partitions(1), &nodes).unwrap();
        t.append_to(0, rec(None, 1), 0).unwrap();
        t.on_node_down("b0", 10);
        t.on_node_down("b1", 11);
        assert_eq!(t.offline_partitions(), vec![0]);
        assert!(t.append_to(0, rec(None, 2), 12).is_err());
        // committed data remains readable from surviving storage
        assert_eq!(t.fetch(0, 0, 10).unwrap().records.len(), 1);
        let events = t.on_node_up("b1", 20);
        assert_eq!(events.len(), 1, "offline partition re-elects on heal");
        assert!(t.offline_partitions().is_empty());
        t.append_to(0, rec(None, 2), 21).unwrap();
        assert_eq!(t.fetch(0, 0, 10).unwrap().records.len(), 2);
    }
}
