//! Per-partition replica sets: leader/follower placement, ISR tracking,
//! acks=all commit semantics and leader failover (§4.1).
//!
//! Each topic partition gets a [`ReplicaSet`]: an ordered assignment of
//! broker nodes (first entry is the preferred leader), the in-sync
//! replica set, per-replica log-end offsets and the committed high
//! watermark. The record data itself lives in one shared
//! [`PartitionLog`]; every replica's content is, by construction, a
//! prefix of it (exactly the invariant real Kafka maintains after
//! leader-epoch truncation), so a replica is fully described by its
//! log-end offset. Replication advances follower offsets — subject to
//! [`FaultPoint::StreamReplicate`] chaos and node liveness — and the
//! committed watermark is the minimum log-end offset across the ISR.
//! Consumers only ever see records below it.
//!
//! Failover: when a leader's node dies, an in-sync follower is elected
//! and the shared log is truncated to the new leader's log-end offset.
//! Because `committed <= leo(f)` for every ISR member `f`, truncation
//! never touches a committed record — the durability invariant "no
//! committed record is ever lost or reordered" holds by construction and
//! is exercised under seeded chaos by the node-kill soak.

use crate::log::{FetchResult, PartitionLog};
use parking_lot::RwLock;
use rtdi_common::chaos::{self, FaultPoint};
use rtdi_common::{Error, Record, Result, Timestamp};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// Consecutive failed replication attempts before a follower is dropped
/// from the ISR (the hit-count analogue of `replica.lag.time.max.ms`).
pub const MAX_REPLICA_STRIKES: u32 = 3;

/// A leadership change on one partition, in detection order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FailoverEvent {
    pub at: Timestamp,
    pub topic: String,
    pub partition: usize,
    pub old_leader: Option<String>,
    /// `None` = the partition went offline (no in-sync candidate).
    pub new_leader: Option<String>,
    /// Leader epoch after the transition.
    pub epoch: u64,
    /// Uncommitted records truncated from the log tail on election.
    pub truncated: u64,
}

impl FailoverEvent {
    /// Stable one-line rendering for the deterministic failover log.
    pub fn line(&self) -> String {
        format!(
            "at={} topic={} p={} epoch={} leader {}->{} truncated={}",
            self.at,
            self.topic,
            self.partition,
            self.epoch,
            self.old_leader.as_deref().unwrap_or("none"),
            self.new_leader.as_deref().unwrap_or("none"),
            self.truncated,
        )
    }
}

/// Point-in-time view of one partition's replication state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplicaStatus {
    pub assignment: Vec<String>,
    pub leader: Option<String>,
    pub isr: Vec<String>,
    pub epoch: u64,
    pub committed: u64,
    /// Log-end offset of the shared storage (leader log end).
    pub log_end: u64,
}

struct ReplicaInner {
    /// Replica placement in preference order; `assignment[0]` is the
    /// preferred leader.
    assignment: Vec<String>,
    leader: Option<String>,
    epoch: u64,
    isr: BTreeSet<String>,
    /// Per-replica log-end offset (next offset the replica would write).
    leo: BTreeMap<String, u64>,
    /// Consecutive replication failures per follower.
    strikes: BTreeMap<String, u32>,
    /// Committed high watermark: consumers only see offsets below it.
    committed: u64,
}

impl ReplicaInner {
    /// committed = min log-end offset across the ISR; never moves back.
    fn recompute_committed(&mut self) {
        if let Some(min) = self
            .isr
            .iter()
            .filter_map(|n| self.leo.get(n).copied())
            .min()
        {
            self.committed = self.committed.max(min);
        }
    }
}

/// Replication metadata for one partition over its shared storage log.
pub struct ReplicaSet {
    partition: usize,
    log: Arc<PartitionLog>,
    inner: RwLock<ReplicaInner>,
}

impl ReplicaSet {
    pub fn new(partition: usize, log: Arc<PartitionLog>, assignment: Vec<String>) -> Self {
        let start = log.high_watermark();
        let leo = assignment.iter().map(|n| (n.clone(), start)).collect();
        let isr = assignment.iter().cloned().collect();
        let leader = assignment.first().cloned();
        ReplicaSet {
            partition,
            log,
            inner: RwLock::new(ReplicaInner {
                assignment,
                leader,
                epoch: 0,
                isr,
                leo,
                strikes: BTreeMap::new(),
                committed: start,
            }),
        }
    }

    pub fn status(&self) -> ReplicaStatus {
        let inner = self.inner.read();
        ReplicaStatus {
            assignment: inner.assignment.clone(),
            leader: inner.leader.clone(),
            isr: inner.isr.iter().cloned().collect(),
            epoch: inner.epoch,
            committed: inner.committed.min(self.log.high_watermark()),
            log_end: self.log.high_watermark(),
        }
    }

    /// Committed high watermark, clamped to the log end (bulk operations
    /// like DLQ truncation act on the raw log underneath us).
    pub fn committed(&self) -> u64 {
        self.inner.read().committed.min(self.log.high_watermark())
    }

    /// Leader-side append with replication. Fails when the partition has
    /// no live leader, or — for `lossless` (acks=all) topics — when the
    /// in-sync set is smaller than `min_insync`. On success the record is
    /// replicated to every live follower (chaos permitting), the ISR is
    /// updated, and the committed watermark advances; the returned offset
    /// is therefore *committed* under the topic's durability contract.
    pub fn append(
        &self,
        record: Record,
        now: Timestamp,
        down: &BTreeSet<String>,
        lossless: bool,
        min_insync: usize,
    ) -> Result<u64> {
        let mut inner = self.inner.write();
        let leader = match &inner.leader {
            Some(l) if !down.contains(l) => l.clone(),
            _ => {
                return Err(Error::Unavailable(format!(
                    "partition {} has no live leader",
                    self.partition
                )))
            }
        };
        // drop dead followers from the ISR before judging acks=all
        let dead: Vec<String> = inner
            .isr
            .iter()
            .filter(|n| down.contains(*n))
            .cloned()
            .collect();
        for n in dead {
            inner.isr.remove(&n);
        }
        inner.isr.insert(leader.clone());
        if lossless {
            let need = min_insync.min(inner.assignment.len()).max(1);
            if inner.isr.len() < need {
                return Err(Error::Unavailable(format!(
                    "partition {}: not enough in-sync replicas (isr={}, min.insync={need})",
                    self.partition,
                    inner.isr.len(),
                )));
            }
        }
        let offset = self.log.append(record, now);
        let end = offset + 1;
        inner.leo.insert(leader.clone(), end);
        // synchronous replication to live followers; a follower that
        // keeps failing is dropped from the ISR, one that succeeds again
        // catches up from shared storage and rejoins
        let followers: Vec<String> = inner
            .assignment
            .iter()
            .filter(|n| **n != leader && !down.contains(*n))
            .cloned()
            .collect();
        for f in followers {
            match chaos::check(FaultPoint::StreamReplicate) {
                Ok(()) => {
                    inner.leo.insert(f.clone(), end);
                    inner.strikes.remove(&f);
                    inner.isr.insert(f);
                }
                Err(_) => {
                    let strikes = inner.strikes.entry(f.clone()).or_insert(0);
                    *strikes += 1;
                    if *strikes >= MAX_REPLICA_STRIKES {
                        inner.isr.remove(&f);
                    }
                }
            }
        }
        inner.recompute_committed();
        Ok(offset)
    }

    /// Consumer fetch: capped at the committed high watermark.
    pub fn fetch(&self, offset: u64, max: usize) -> Result<FetchResult> {
        let committed = self.committed();
        self.log.fetch_capped(offset, max, committed)
    }

    /// React to a node death. Shrinks the ISR; when the dead node led
    /// this partition, elects the first in-sync replica in assignment
    /// order, truncating the shared log to the new leader's log-end
    /// offset (only ever uncommitted tail). Returns the leadership
    /// transition, if any.
    pub fn on_node_down(&self, node: &str, now: Timestamp, topic: &str) -> Option<FailoverEvent> {
        let mut inner = self.inner.write();
        if !inner.assignment.iter().any(|n| n == node) {
            return None;
        }
        inner.isr.remove(node);
        inner.strikes.remove(node);
        if inner.leader.as_deref() != Some(node) {
            // follower death: ISR shrink may advance the watermark
            inner.recompute_committed();
            return None;
        }
        let old_leader = inner.leader.take();
        inner.epoch += 1;
        let candidate = inner
            .assignment
            .iter()
            .find(|n| inner.isr.contains(*n))
            .cloned();
        let mut truncated = 0;
        if let Some(new_leader) = &candidate {
            let new_end = inner.leo.get(new_leader).copied().unwrap_or(0);
            truncated = self.log.truncate_to(new_end);
            // survivors cannot be ahead of the new leader's log
            for leo in inner.leo.values_mut() {
                *leo = (*leo).min(new_end);
            }
            inner.leader = Some(new_leader.clone());
            inner.recompute_committed();
        }
        Some(FailoverEvent {
            at: now,
            topic: topic.to_string(),
            partition: self.partition,
            old_leader,
            new_leader: candidate,
            epoch: inner.epoch,
            truncated,
        })
    }

    /// React to a node (re)joining: it catches up from shared storage,
    /// rejoins the ISR, and becomes leader if the partition was offline.
    pub fn on_node_up(&self, node: &str, now: Timestamp, topic: &str) -> Option<FailoverEvent> {
        let mut inner = self.inner.write();
        if !inner.assignment.iter().any(|n| n == node) {
            return None;
        }
        let end = self.log.high_watermark();
        inner.leo.insert(node.to_string(), end);
        inner.strikes.remove(node);
        inner.isr.insert(node.to_string());
        let event = if inner.leader.is_none() {
            inner.leader = Some(node.to_string());
            inner.epoch += 1;
            Some(FailoverEvent {
                at: now,
                topic: topic.to_string(),
                partition: self.partition,
                old_leader: None,
                new_leader: Some(node.to_string()),
                epoch: inner.epoch,
                truncated: 0,
            })
        } else {
            None
        };
        inner.recompute_committed();
        event
    }

    /// Declare every live replica fully caught up to the shared log (used
    /// after offset-preserving bulk imports like topic migration, where
    /// records are copied into storage beneath the replication layer).
    pub fn sync_to_end(&self, down: &BTreeSet<String>) {
        let mut inner = self.inner.write();
        let end = self.log.high_watermark();
        let live: Vec<String> = inner
            .assignment
            .iter()
            .filter(|n| !down.contains(*n))
            .cloned()
            .collect();
        for n in &live {
            inner.leo.insert(n.clone(), end);
            inner.strikes.remove(n);
            inner.isr.insert(n.clone());
        }
        inner.recompute_committed();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtdi_common::chaos::{FaultKind, FaultPlan, Trigger};
    use rtdi_common::Row;

    fn rec(i: i64) -> Record {
        Record::new(Row::new().with("i", i), i)
    }

    fn rs(nodes: &[&str]) -> ReplicaSet {
        ReplicaSet::new(
            0,
            Arc::new(PartitionLog::new(0, 0)),
            nodes.iter().map(|s| s.to_string()).collect(),
        )
    }

    #[test]
    fn replicated_append_commits_through_full_isr() {
        let r = rs(&["n0", "n1", "n2"]);
        let down = BTreeSet::new();
        for i in 0..10 {
            let off = r.append(rec(i), 0, &down, true, 2).unwrap();
            assert_eq!(off, i as u64);
        }
        let st = r.status();
        assert_eq!(st.leader.as_deref(), Some("n0"));
        assert_eq!(st.isr.len(), 3);
        assert_eq!(st.committed, 10);
        assert_eq!(r.fetch(0, 100).unwrap().records.len(), 10);
    }

    #[test]
    fn dead_leader_fails_appends_until_failover() {
        let r = rs(&["n0", "n1", "n2"]);
        let mut down = BTreeSet::new();
        r.append(rec(0), 0, &down, false, 1).unwrap();
        down.insert("n0".to_string());
        assert!(matches!(
            r.append(rec(1), 0, &down, false, 1),
            Err(Error::Unavailable(_))
        ));
        let ev = r.on_node_down("n0", 5, "t").unwrap();
        assert_eq!(ev.old_leader.as_deref(), Some("n0"));
        assert_eq!(ev.new_leader.as_deref(), Some("n1"));
        assert_eq!(ev.epoch, 1);
        assert_eq!(ev.truncated, 0, "fully replicated tail survives");
        // writes flow again through the new leader
        let off = r.append(rec(1), 6, &down, false, 1).unwrap();
        assert_eq!(off, 1);
        assert_eq!(r.committed(), 2);
    }

    #[test]
    fn failover_truncates_only_uncommitted_tail() {
        let _g = chaos::test_guard();
        chaos::registry().reset(0xFA11);
        let r = rs(&["n0", "n1"]);
        let down = BTreeSet::new();
        // replicate 5 records cleanly...
        for i in 0..5 {
            r.append(rec(i), 0, &down, false, 1).unwrap();
        }
        // ...then the follower stops replicating: strikes shrink the ISR
        chaos::registry().arm(
            FaultPoint::StreamReplicate,
            FaultPlan::fail(FaultKind::Timeout, Trigger::Always),
        );
        for i in 5..12 {
            r.append(rec(i), 0, &down, false, 1).unwrap();
        }
        chaos::registry().disarm_all();
        let st = r.status();
        assert_eq!(st.isr, vec!["n0".to_string()], "lagging follower dropped");
        assert_eq!(st.log_end, 12);
        // leader-only ISR: watermark follows the leader (Kafka semantics)
        assert_eq!(st.committed, 12);
        let committed_before = 5; // what n1 actually holds
        let ev = r.on_node_down("n0", 9, "t").unwrap();
        // n1 is not in the ISR: the partition goes offline rather than
        // electing an unclean leader
        assert_eq!(ev.new_leader, None);
        assert!(matches!(
            r.append(rec(99), 10, &down, false, 1),
            Err(Error::Unavailable(_))
        ));
        // the old leader comes back: catches up, leads again, no data lost
        let ev = r.on_node_up("n0", 20, "t").unwrap();
        assert_eq!(ev.new_leader.as_deref(), Some("n0"));
        assert_eq!(r.committed(), 12);
        assert!(committed_before < r.committed());
    }

    #[test]
    fn clean_failover_to_in_sync_follower_truncates_unreplicated_tail() {
        let _g = chaos::test_guard();
        chaos::registry().reset(0xFA12);
        let r = rs(&["n0", "n1"]);
        let down = BTreeSet::new();
        for i in 0..5 {
            r.append(rec(i), 0, &down, false, 1).unwrap();
        }
        // follower misses 2 records (strikes below the ISR-drop threshold)
        chaos::registry().arm(
            FaultPoint::StreamReplicate,
            FaultPlan::fail(FaultKind::Timeout, Trigger::Always).with_max_fires(2),
        );
        for i in 5..7 {
            r.append(rec(i), 0, &down, false, 1).unwrap();
        }
        chaos::registry().disarm_all();
        let st = r.status();
        assert_eq!(st.isr.len(), 2, "2 strikes < {MAX_REPLICA_STRIKES}");
        assert_eq!(st.committed, 5, "watermark held back by lagging follower");
        assert_eq!(st.log_end, 7);
        // leader dies; n1 (in-sync at offset 5) is elected and the two
        // uncommitted records are truncated — consumers never saw them
        let ev = r.on_node_down("n0", 9, "t").unwrap();
        assert_eq!(ev.new_leader.as_deref(), Some("n1"));
        assert_eq!(ev.truncated, 2);
        assert_eq!(r.committed(), 5);
        assert_eq!(r.fetch(0, 100).unwrap().records.len(), 5);
        // new appends continue from the truncation point: no reordering
        let off = r.append(rec(7), 10, &down, false, 1).unwrap();
        assert_eq!(off, 5);
    }

    #[test]
    fn lossless_rejects_when_isr_below_min_insync() {
        let r = rs(&["n0", "n1", "n2"]);
        let mut down = BTreeSet::new();
        r.append(rec(0), 0, &down, true, 2).unwrap();
        down.insert("n1".to_string());
        down.insert("n2".to_string());
        // acks=all with min.insync=2: reject rather than under-replicate
        let err = r.append(rec(1), 1, &down, true, 2).unwrap_err();
        assert!(matches!(err, Error::Unavailable(_)));
        assert!(err.to_string().contains("in-sync"));
        // the same write succeeds for a throughput-profile topic
        assert!(r.append(rec(1), 1, &down, false, 1).is_ok());
    }

    #[test]
    fn consumers_never_see_past_committed_watermark() {
        let _g = chaos::test_guard();
        chaos::registry().reset(0xFA13);
        let r = rs(&["n0", "n1"]);
        let down = BTreeSet::new();
        for i in 0..4 {
            r.append(rec(i), 0, &down, false, 1).unwrap();
        }
        chaos::registry().arm(
            FaultPoint::StreamReplicate,
            FaultPlan::fail(FaultKind::Timeout, Trigger::Always).with_max_fires(1),
        );
        r.append(rec(4), 0, &down, false, 1).unwrap();
        chaos::registry().disarm_all();
        let f = r.fetch(0, 100).unwrap();
        assert_eq!(f.records.len(), 4, "unacked record invisible");
        assert_eq!(f.high_watermark, 4);
        // replication recovers on the next append: both become visible
        r.append(rec(5), 0, &down, false, 1).unwrap();
        assert_eq!(r.fetch(0, 100).unwrap().records.len(), 6);
    }
}
