//! Cluster federation (§4.1.1).
//!
//! "A metadata server aggregates all the metadata information of the
//! clusters and topics in a central place, so that it can transparently
//! route the client's request to the actual physical cluster... With
//! federation, the Kafka service can scale horizontally by adding more
//! clusters when a cluster is full. New topics are seamlessly created on
//! the newly added clusters... Cluster federation enables consumer traffic
//! redirection to another physical cluster without restarting the
//! application."
//!
//! [`FederatedCluster`] exposes the same [`StreamEndpoint`] interface as a
//! single physical cluster — producers and consumers see one "logical
//! cluster". Topic migration is offset-preserving: destination partitions
//! adopt the source's base offsets before the copy, so committed consumer
//! offsets remain valid after the transparent redirect.

use crate::chaperone::Chaperone;
use crate::cluster::Cluster;
use crate::consumer::TopicSubscription;
use crate::log::FetchResult;
use crate::producer::StreamEndpoint;
use crate::topic::{Topic, TopicConfig};
use parking_lot::RwLock;
use rtdi_common::fault_point;
use rtdi_common::{Error, FaultPoint, PipelineTracer, Record, Result, Timestamp};
use std::collections::BTreeMap;
use std::sync::Arc;

/// The central metadata server: where does each topic physically live?
#[derive(Default)]
pub struct FederationMetadata {
    /// topic -> physical cluster name
    placement: BTreeMap<String, String>,
}

impl FederationMetadata {
    pub fn cluster_of(&self, topic: &str) -> Option<&str> {
        self.placement.get(topic).map(|s| s.as_str())
    }

    pub fn topics(&self) -> impl Iterator<Item = (&str, &str)> {
        self.placement.iter().map(|(t, c)| (t.as_str(), c.as_str()))
    }
}

struct Inner {
    clusters: Vec<Arc<Cluster>>,
    metadata: FederationMetadata,
    /// Live subscriptions per topic, redirected during migration.
    subscriptions: BTreeMap<String, Vec<TopicSubscription>>,
    /// Optional freshness tracing: every append records producer->broker
    /// dwell for the topic's pipeline under the "stream" stage.
    tracer: Option<PipelineTracer>,
    /// Optional audit hook: every append reports to Chaperone under the
    /// "<topic>/stream" stage, the upstream side of loss/dup audits.
    chaperone: Option<Chaperone>,
}

/// The logical cluster clients talk to.
#[derive(Clone)]
pub struct FederatedCluster {
    inner: Arc<RwLock<Inner>>,
}

impl FederatedCluster {
    pub fn new() -> Self {
        FederatedCluster {
            inner: Arc::new(RwLock::new(Inner {
                clusters: Vec::new(),
                metadata: FederationMetadata::default(),
                subscriptions: BTreeMap::new(),
                tracer: None,
                chaperone: None,
            })),
        }
    }

    /// Enable freshness tracing on every append through the federation.
    pub fn set_tracer(&self, tracer: PipelineTracer) {
        self.inner.write().tracer = Some(tracer);
    }

    /// Enable Chaperone observation on every append: records are counted
    /// under the `"<topic>/stream"` stage so downstream stages (ingestion,
    /// sinks) can be audited against the broker.
    pub fn set_chaperone(&self, chaperone: Chaperone) {
        self.inner.write().chaperone = Some(chaperone);
    }

    /// Register a physical cluster with the federation.
    pub fn add_cluster(&self, cluster: Arc<Cluster>) {
        self.inner.write().clusters.push(cluster);
    }

    pub fn cluster_names(&self) -> Vec<String> {
        self.inner
            .read()
            .clusters
            .iter()
            .map(|c| c.name().to_string())
            .collect()
    }

    pub fn cluster(&self, name: &str) -> Result<Arc<Cluster>> {
        self.inner
            .read()
            .clusters
            .iter()
            .find(|c| c.name() == name)
            .cloned()
            .ok_or_else(|| Error::NotFound(format!("cluster '{name}'")))
    }

    /// Create a topic on the first healthy, non-full cluster. This is the
    /// "new topics are seamlessly created on the newly added clusters"
    /// behaviour: when existing clusters fill up, operators `add_cluster`
    /// and placement picks it up automatically.
    pub fn create_topic(&self, name: &str, config: TopicConfig) -> Result<()> {
        let mut inner = self.inner.write();
        if inner.metadata.placement.contains_key(name) {
            return Err(Error::AlreadyExists(format!("federated topic '{name}'")));
        }
        let needed = config.partitions * config.replication;
        let target = inner
            .clusters
            .iter()
            .find(|c| {
                // skip clusters marked down, with no live broker left, or
                // without capacity — placement reroutes to the next one
                if c.is_down() || c.live_node_names().is_empty() {
                    return false;
                }
                let (total, used) = c.capacity();
                used + needed <= total
            })
            .cloned()
            .ok_or_else(|| {
                Error::CapacityExceeded(
                    "no federated cluster has capacity for this topic; add a cluster".into(),
                )
            })?;
        target.create_topic(name, config)?;
        inner
            .metadata
            .placement
            .insert(name.to_string(), target.name().to_string());
        Ok(())
    }

    fn resolve(&self, topic: &str) -> Result<(Arc<Cluster>, Arc<Topic>)> {
        let inner = self.inner.read();
        let cluster_name = inner
            .metadata
            .cluster_of(topic)
            .ok_or_else(|| Error::NotFound(format!("federated topic '{topic}'")))?;
        let cluster = inner
            .clusters
            .iter()
            .find(|c| c.name() == cluster_name)
            .cloned()
            .ok_or_else(|| Error::Internal(format!("cluster '{cluster_name}' vanished")))?;
        let t = cluster.topic(topic)?;
        Ok((cluster, t))
    }

    /// Which physical cluster currently hosts the topic.
    pub fn placement(&self, topic: &str) -> Option<String> {
        self.inner
            .read()
            .metadata
            .cluster_of(topic)
            .map(|s| s.to_string())
    }

    /// Subscribe to a topic; the returned subscription survives topic
    /// migration without a restart.
    pub fn subscribe(&self, topic: &str) -> Result<TopicSubscription> {
        let (_, t) = self.resolve(topic)?;
        let sub = TopicSubscription::new(t);
        self.inner
            .write()
            .subscriptions
            .entry(topic.to_string())
            .or_default()
            .push(sub.clone());
        Ok(sub)
    }

    /// Migrate a topic to another physical cluster while consumers keep
    /// polling. Steps (all under the metadata write lock, so producers are
    /// briefly paused rather than failed):
    ///
    /// 1. create the topic on the target with the same config;
    /// 2. align destination partition base offsets with the source;
    /// 3. copy all retained records;
    /// 4. update placement (producers now route to the target);
    /// 5. redirect live subscriptions;
    /// 6. drop the source topic.
    pub fn migrate_topic(&self, topic: &str, to_cluster: &str) -> Result<()> {
        let mut inner = self.inner.write();
        let from_name = inner
            .metadata
            .cluster_of(topic)
            .ok_or_else(|| Error::NotFound(format!("federated topic '{topic}'")))?
            .to_string();
        if from_name == to_cluster {
            return Ok(());
        }
        let from = inner
            .clusters
            .iter()
            .find(|c| c.name() == from_name)
            .cloned()
            .ok_or_else(|| Error::Internal("source cluster vanished".into()))?;
        let to = inner
            .clusters
            .iter()
            .find(|c| c.name() == to_cluster)
            .cloned()
            .ok_or_else(|| Error::NotFound(format!("cluster '{to_cluster}'")))?;
        let src = from.topic(topic)?;
        let dst = to.create_topic(topic, src.config().clone())?;
        for p in 0..src.num_partitions() {
            let src_log = src.partition(p).expect("partition exists");
            let dst_log = dst.partition(p).expect("partition exists");
            dst_log.advance_base_to(src_log.log_start_offset())?;
            let mut offset = src_log.log_start_offset();
            loop {
                let fetch = src_log.fetch(offset, 1024)?;
                if fetch.records.is_empty() {
                    break;
                }
                offset = fetch.records.last().expect("non-empty").offset + 1;
                for rec in fetch.records {
                    // reuse event time as append time so time-based
                    // retention behaves consistently on the destination
                    let now = rec.record.timestamp;
                    dst_log.append(rec.into_record(), now);
                }
            }
        }
        // the copy wrote beneath the replication layer; declare the
        // destination replicas caught up so its committed watermarks
        // expose the migrated records
        dst.resync_replicas();
        inner
            .metadata
            .placement
            .insert(topic.to_string(), to_cluster.to_string());
        if let Some(subs) = inner.subscriptions.get(topic) {
            for sub in subs {
                sub.redirect(dst.clone())?;
            }
        }
        from.drop_topic(topic)?;
        Ok(())
    }
}

impl Default for FederatedCluster {
    fn default() -> Self {
        Self::new()
    }
}

impl StreamEndpoint for FederatedCluster {
    fn send(&self, topic: &str, mut record: Record, now: Timestamp) -> Result<(usize, u64)> {
        fault_point!(FaultPoint::StreamAppend);
        let (_, t) = self.resolve(topic)?;
        let (tracer, chaperone) = {
            let inner = self.inner.read();
            (inner.tracer.clone(), inner.chaperone.clone())
        };
        if let Some(tr) = &tracer {
            tr.observe_hop(topic, "stream", &mut record, now);
        }
        if let Some(ch) = &chaperone {
            ch.observe_at(&format!("{topic}/stream"), &record, now);
        }
        t.append(record, now)
    }

    fn fetch(&self, topic: &str, partition: usize, offset: u64, max: usize) -> Result<FetchResult> {
        fault_point!(FaultPoint::StreamFetch);
        let (_, t) = self.resolve(topic)?;
        t.fetch(partition, offset, max)
    }

    fn num_partitions(&self, topic: &str) -> Result<usize> {
        let (_, t) = self.resolve(topic)?;
        Ok(t.num_partitions())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusterConfig;
    use crate::consumer::ConsumerGroup;
    use rtdi_common::Row;

    fn small_cluster(name: &str, slots: usize) -> Arc<Cluster> {
        Cluster::new(
            name,
            ClusterConfig {
                nodes: 1,
                partitions_per_node: slots,
                ideal_max_nodes: 150,
            },
        )
    }

    fn rec(i: i64) -> Record {
        Record::new(Row::new().with("i", i), i).with_key(format!("k{}", i % 7))
    }

    #[test]
    fn injected_fetch_faults_surface_and_clear() {
        use crate::producer::StreamEndpoint;
        use rtdi_common::chaos::{self, FaultKind, FaultPlan, FaultPoint, Trigger};
        let _g = chaos::test_guard();
        chaos::registry().reset(0xFE7C);
        let fed = FederatedCluster::new();
        fed.add_cluster(small_cluster("c1", 16));
        fed.create_topic("t", TopicConfig::default().with_partitions(1))
            .unwrap();
        fed.send("t", rec(1), 0).unwrap();
        // every 2nd fetch through the federation endpoint times out
        chaos::registry().arm(
            FaultPoint::StreamFetch,
            FaultPlan::fail(FaultKind::Timeout, Trigger::EveryNth(2)),
        );
        assert_eq!(fed.fetch("t", 0, 0, 10).unwrap().records.len(), 1);
        assert!(matches!(fed.fetch("t", 0, 0, 10), Err(Error::Timeout(_))));
        chaos::registry().disarm_all();
        assert_eq!(fed.fetch("t", 0, 0, 10).unwrap().records.len(), 1);
    }

    #[test]
    fn topics_spill_to_new_clusters_when_full() {
        let fed = FederatedCluster::new();
        fed.add_cluster(small_cluster("c1", 6)); // fits one 2p x 3r topic
        fed.create_topic("a", TopicConfig::default().with_partitions(2))
            .unwrap();
        // c1 full; no capacity anywhere
        assert!(matches!(
            fed.create_topic("b", TopicConfig::default().with_partitions(2)),
            Err(Error::CapacityExceeded(_))
        ));
        // operator adds a cluster; creation now succeeds transparently
        fed.add_cluster(small_cluster("c2", 6));
        fed.create_topic("b", TopicConfig::default().with_partitions(2))
            .unwrap();
        assert_eq!(fed.placement("a").unwrap(), "c1");
        assert_eq!(fed.placement("b").unwrap(), "c2");
    }

    #[test]
    fn placement_rejects_down_cluster_and_reroutes() {
        let fed = FederatedCluster::new();
        let c1 = small_cluster("c1", 100);
        fed.add_cluster(c1.clone());
        fed.add_cluster(small_cluster("c2", 100));
        // c1 (first in placement order) is down: topics must land on c2
        c1.set_down(true);
        fed.create_topic("t", TopicConfig::default().with_partitions(2))
            .unwrap();
        assert_eq!(fed.placement("t").unwrap(), "c2");
        // with every cluster down, placement fails outright
        fed.cluster("c2").unwrap().set_down(true);
        assert!(fed
            .create_topic("u", TopicConfig::default().with_partitions(1))
            .is_err());
        // recovery reroutes again
        c1.set_down(false);
        fed.create_topic("u", TopicConfig::default().with_partitions(1))
            .unwrap();
        assert_eq!(fed.placement("u").unwrap(), "c1");
    }

    #[test]
    fn placement_skips_cluster_with_all_brokers_dead() {
        use rtdi_common::chaos;
        let _g = chaos::test_guard();
        chaos::registry().reset(0);
        let fed = FederatedCluster::new();
        let c1 = small_cluster("c1", 100);
        fed.add_cluster(c1.clone());
        fed.add_cluster(small_cluster("c2", 100));
        // the cluster answers metadata requests but has no live broker
        c1.kill_node("c1-n0");
        fed.create_topic("t", TopicConfig::default().with_partitions(2))
            .unwrap();
        assert_eq!(
            fed.placement("t").unwrap(),
            "c2",
            "placement skips the brokerless cluster"
        );
        c1.heal_node("c1-n0");
        chaos::registry().reset(0);
    }

    #[test]
    fn logical_produce_routes_to_physical_cluster() {
        let fed = FederatedCluster::new();
        fed.add_cluster(small_cluster("c1", 100));
        fed.create_topic("t", TopicConfig::default().with_partitions(2))
            .unwrap();
        for i in 0..10 {
            fed.send("t", rec(i), 0).unwrap();
        }
        let c1 = fed.cluster("c1").unwrap();
        assert_eq!(c1.topic("t").unwrap().total_records(), 10);
        assert!(fed.send("ghost", rec(0), 0).is_err());
    }

    #[test]
    fn migration_preserves_offsets_and_redirects_consumers() {
        let fed = FederatedCluster::new();
        fed.add_cluster(small_cluster("c1", 100));
        fed.add_cluster(small_cluster("c2", 100));
        fed.create_topic("t", TopicConfig::default().with_partitions(2))
            .unwrap();
        for i in 0..100 {
            fed.send("t", rec(i), 0).unwrap();
        }
        let sub = fed.subscribe("t").unwrap();
        let group = ConsumerGroup::new("g", sub);
        group.join("m");
        // consume half, commit
        let mut consumed = Vec::new();
        for _ in 0..5 {
            consumed.extend(group.poll("m", 10).unwrap());
        }
        group.commit("m");
        let before = consumed.len();
        assert!(before >= 50);

        // migrate with live consumer
        fed.migrate_topic("t", "c2").unwrap();
        assert_eq!(fed.placement("t").unwrap(), "c2");
        assert!(fed.cluster("c1").unwrap().topic("t").is_err());

        // producers keep working against the logical name
        for i in 100..110 {
            fed.send("t", rec(i), 0).unwrap();
        }

        // consumer continues without restart; no loss, no duplication
        loop {
            let recs = group.poll("m", 10).unwrap();
            if recs.is_empty() {
                break;
            }
            consumed.extend(recs);
            group.commit("m");
        }
        let mut ids: Vec<i64> = consumed
            .iter()
            .map(|r| r.record.value.get_int("i").unwrap())
            .collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 110, "every record seen exactly once");
        assert_eq!(group.lag(), 0);
    }

    #[test]
    fn migrate_to_same_cluster_is_noop() {
        let fed = FederatedCluster::new();
        fed.add_cluster(small_cluster("c1", 100));
        fed.create_topic("t", TopicConfig::default()).unwrap();
        fed.migrate_topic("t", "c1").unwrap();
        assert_eq!(fed.placement("t").unwrap(), "c1");
    }

    #[test]
    fn placement_skips_down_clusters() {
        let fed = FederatedCluster::new();
        let c1 = small_cluster("c1", 100);
        c1.set_down(true);
        fed.add_cluster(c1);
        fed.add_cluster(small_cluster("c2", 100));
        fed.create_topic("t", TopicConfig::default()).unwrap();
        assert_eq!(fed.placement("t").unwrap(), "c2");
    }
}
