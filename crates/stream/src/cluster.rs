//! Physical clusters: brokers hosting topics.
//!
//! §4.1.1: "Based on our empirical data, the ideal cluster size is less
//! than 150 nodes for optimum performance. With federation, the Kafka
//! service can scale horizontally by adding more clusters when a cluster
//! is full." [`Cluster`] models node count, per-node partition capacity,
//! a fullness signal the federation layer uses to decide when to add a
//! cluster, and a node-count-dependent overhead model that reproduces the
//! "degradation past ~150 nodes" observation in experiment E2.

use crate::topic::{Topic, TopicConfig};
use parking_lot::RwLock;
use rtdi_common::{Error, Record, Result, Timestamp};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Sizing/behaviour knobs for a cluster.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    pub nodes: usize,
    /// How many partition replicas one node can host.
    pub partitions_per_node: usize,
    /// Soft limit past which per-operation coordination overhead grows
    /// super-linearly (the paper's 150-node observation).
    pub ideal_max_nodes: usize,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            nodes: 30,
            partitions_per_node: 100,
            ideal_max_nodes: 150,
        }
    }
}

/// One physical broker cluster.
pub struct Cluster {
    name: String,
    config: RwLock<ClusterConfig>,
    topics: RwLock<BTreeMap<String, Arc<Topic>>>,
    /// Simulated total-cluster failure (for federation failover tests).
    down: AtomicBool,
}

impl Cluster {
    pub fn new(name: impl Into<String>, config: ClusterConfig) -> Arc<Self> {
        Arc::new(Cluster {
            name: name.into(),
            config: RwLock::new(config),
            topics: RwLock::new(BTreeMap::new()),
            down: AtomicBool::new(false),
        })
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn nodes(&self) -> usize {
        self.config.read().nodes
    }

    /// Grow the cluster (operators add brokers before adding clusters).
    pub fn add_nodes(&self, n: usize) {
        self.config.write().nodes += n;
    }

    pub fn set_down(&self, down: bool) {
        self.down.store(down, Ordering::SeqCst);
    }

    pub fn is_down(&self) -> bool {
        self.down.load(Ordering::SeqCst)
    }

    fn check_up(&self) -> Result<()> {
        if self.is_down() {
            Err(Error::Unavailable(format!("cluster '{}' down", self.name)))
        } else {
            Ok(())
        }
    }

    /// Total partition-replica slots and how many are used.
    pub fn capacity(&self) -> (usize, usize) {
        let cfg = self.config.read();
        let total = cfg.nodes * cfg.partitions_per_node;
        let used: usize = self
            .topics
            .read()
            .values()
            .map(|t| t.num_partitions() * t.config().replication)
            .sum();
        (total, used)
    }

    /// Whether the federation layer should stop placing new topics here.
    pub fn is_full(&self) -> bool {
        let (total, used) = self.capacity();
        used >= total
    }

    /// Per-operation coordination overhead in arbitrary cost units. Flat
    /// up to `ideal_max_nodes`, then grows quadratically with the excess —
    /// the empirical shape behind the paper's "ideal cluster size < 150
    /// nodes". Used by the federation experiment (E2) to compare one giant
    /// cluster against federated ones.
    pub fn coordination_cost(&self) -> f64 {
        let cfg = self.config.read();
        let base = 1.0 + (cfg.nodes as f64).log2() * 0.05;
        if cfg.nodes <= cfg.ideal_max_nodes {
            base
        } else {
            let excess = (cfg.nodes - cfg.ideal_max_nodes) as f64;
            base + 0.002 * excess * excess
        }
    }

    pub fn create_topic(&self, name: &str, config: TopicConfig) -> Result<Arc<Topic>> {
        self.check_up()?;
        let mut topics = self.topics.write();
        if topics.contains_key(name) {
            return Err(Error::AlreadyExists(format!("topic '{name}'")));
        }
        {
            let cfg = self.config.read();
            let total = cfg.nodes * cfg.partitions_per_node;
            let used: usize = topics
                .values()
                .map(|t| t.num_partitions() * t.config().replication)
                .sum();
            let needed = config.partitions * config.replication;
            if used + needed > total {
                return Err(Error::CapacityExceeded(format!(
                    "cluster '{}' cannot host {needed} more partition replicas ({used}/{total} used)",
                    self.name
                )));
            }
        }
        let topic = Arc::new(Topic::new(name, config)?);
        topics.insert(name.to_string(), topic.clone());
        Ok(topic)
    }

    pub fn topic(&self, name: &str) -> Result<Arc<Topic>> {
        self.check_up()?;
        self.topics
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| Error::NotFound(format!("topic '{name}' in cluster '{}'", self.name)))
    }

    pub fn topic_names(&self) -> Vec<String> {
        self.topics.read().keys().cloned().collect()
    }

    /// Remove a topic (after federation migrates it away).
    pub fn drop_topic(&self, name: &str) -> Result<()> {
        self.topics
            .write()
            .remove(name)
            .map(|_| ())
            .ok_or_else(|| Error::NotFound(format!("topic '{name}'")))
    }

    /// Produce a record to a topic on this cluster.
    pub fn produce(&self, topic: &str, record: Record, now: Timestamp) -> Result<(usize, u64)> {
        let t = self.topic(topic)?;
        Ok(t.append(record, now))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtdi_common::Row;

    #[test]
    fn create_produce_fetch() {
        let c = Cluster::new("agg1", ClusterConfig::default());
        c.create_topic("trips", TopicConfig::default()).unwrap();
        let (p, o) = c
            .produce("trips", Record::new(Row::new().with("x", 1i64), 0), 0)
            .unwrap();
        assert_eq!(o, 0);
        let t = c.topic("trips").unwrap();
        assert_eq!(t.fetch(p, 0, 10).unwrap().records.len(), 1);
        assert!(c.produce("nope", Record::new(Row::new(), 0), 0).is_err());
    }

    #[test]
    fn duplicate_topic_rejected() {
        let c = Cluster::new("c", ClusterConfig::default());
        c.create_topic("t", TopicConfig::default()).unwrap();
        assert!(matches!(
            c.create_topic("t", TopicConfig::default()),
            Err(Error::AlreadyExists(_))
        ));
    }

    #[test]
    fn capacity_enforced() {
        let c = Cluster::new(
            "small",
            ClusterConfig {
                nodes: 1,
                partitions_per_node: 9,
                ideal_max_nodes: 150,
            },
        );
        // 9 slots; topic with 2 partitions x 3 replicas = 6 slots
        c.create_topic("a", TopicConfig::default().with_partitions(2))
            .unwrap();
        assert!(!c.is_full());
        // another 6 would exceed
        assert!(matches!(
            c.create_topic("b", TopicConfig::default().with_partitions(2)),
            Err(Error::CapacityExceeded(_))
        ));
        // 1 partition x 3 replicas fits exactly
        c.create_topic("c", TopicConfig::default().with_partitions(1))
            .unwrap();
        assert!(c.is_full());
    }

    #[test]
    fn down_cluster_rejects_operations() {
        let c = Cluster::new("c", ClusterConfig::default());
        c.create_topic("t", TopicConfig::default()).unwrap();
        c.set_down(true);
        assert!(matches!(c.topic("t"), Err(Error::Unavailable(_))));
        assert!(c.produce("t", Record::new(Row::new(), 0), 0).is_err());
        c.set_down(false);
        assert!(c.topic("t").is_ok());
    }

    #[test]
    fn coordination_cost_grows_past_ideal() {
        let small = Cluster::new(
            "s",
            ClusterConfig {
                nodes: 100,
                ..Default::default()
            },
        );
        let ideal = Cluster::new(
            "i",
            ClusterConfig {
                nodes: 150,
                ..Default::default()
            },
        );
        let big = Cluster::new(
            "b",
            ClusterConfig {
                nodes: 400,
                ..Default::default()
            },
        );
        assert!(small.coordination_cost() <= ideal.coordination_cost() + 0.01);
        assert!(
            big.coordination_cost() > 10.0 * ideal.coordination_cost(),
            "big={} ideal={}",
            big.coordination_cost(),
            ideal.coordination_cost()
        );
    }

    #[test]
    fn drop_topic_frees_capacity() {
        let c = Cluster::new(
            "c",
            ClusterConfig {
                nodes: 1,
                partitions_per_node: 6,
                ideal_max_nodes: 150,
            },
        );
        c.create_topic("a", TopicConfig::default().with_partitions(2))
            .unwrap();
        assert!(c.is_full());
        c.drop_topic("a").unwrap();
        assert!(!c.is_full());
        assert!(c.drop_topic("a").is_err());
    }
}
