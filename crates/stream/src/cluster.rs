//! Physical clusters: named broker nodes hosting replicated topics.
//!
//! §4.1.1: "Based on our empirical data, the ideal cluster size is less
//! than 150 nodes for optimum performance. With federation, the Kafka
//! service can scale horizontally by adding more clusters when a cluster
//! is full." [`Cluster`] models node count, per-node partition capacity,
//! a fullness signal the federation layer uses to decide when to add a
//! cluster, and a node-count-dependent overhead model that reproduces the
//! "degradation past ~150 nodes" observation in experiment E2.
//!
//! Since PR 4 the nodes are real failure domains: each broker is a named
//! member (`{cluster}-n{i}`) of a shared [`Membership`] view. Topic
//! partitions are placed across live nodes with replication-factor
//! spread, node death (declared by the heartbeat failure detector or by a
//! chaos [`rtdi_common::chaos::FaultRegistry::kill_node`]) triggers
//! leader failover on every partition the node led, and recovery rejoins
//! it to the ISRs.

use crate::replica::FailoverEvent;
use crate::topic::{Topic, TopicConfig};
use parking_lot::RwLock;
use rtdi_common::chaos;
use rtdi_common::{
    Clock, Error, Membership, MembershipConfig, MembershipEvent, MembershipListener, NodeState,
    Record, Result, SimClock, Timestamp,
};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Weak};

/// Sizing/behaviour knobs for a cluster.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    pub nodes: usize,
    /// How many partition replicas one node can host.
    pub partitions_per_node: usize,
    /// Soft limit past which per-operation coordination overhead grows
    /// super-linearly (the paper's 150-node observation).
    pub ideal_max_nodes: usize,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            nodes: 30,
            partitions_per_node: 100,
            ideal_max_nodes: 150,
        }
    }
}

/// One physical broker cluster.
pub struct Cluster {
    name: String,
    config: RwLock<ClusterConfig>,
    topics: RwLock<BTreeMap<String, Arc<Topic>>>,
    /// Simulated total-cluster failure (for federation failover tests).
    down: AtomicBool,
    membership: Arc<Membership>,
}

/// Fans membership transitions out to every topic's replica sets:
/// `Dead` fails the node's partitions over, `Alive` (from dead) rejoins
/// it. Holds a weak ref so the cluster can be dropped while subscribed.
struct TopicFailoverFanout {
    cluster: Weak<Cluster>,
}

impl MembershipListener for TopicFailoverFanout {
    fn on_membership_event(&self, event: &MembershipEvent) {
        let Some(cluster) = self.cluster.upgrade() else {
            return;
        };
        let topics: Vec<Arc<Topic>> = cluster.topics.read().values().cloned().collect();
        match (event.from, event.to) {
            (_, NodeState::Dead) => {
                for t in &topics {
                    t.on_node_down(&event.node, event.at);
                }
            }
            (NodeState::Dead, NodeState::Alive) => {
                for t in &topics {
                    t.on_node_up(&event.node, event.at);
                }
            }
            _ => {} // Suspect transitions don't move leadership
        }
    }
}

impl Cluster {
    pub fn new(name: impl Into<String>, config: ClusterConfig) -> Arc<Self> {
        Self::with_clock(name, config, Arc::new(SimClock::new(0)))
    }

    /// Create a cluster whose membership/failure detection runs on the
    /// given logical clock (shared with the rest of a simulation).
    pub fn with_clock(
        name: impl Into<String>,
        config: ClusterConfig,
        clock: Arc<dyn Clock>,
    ) -> Arc<Self> {
        let membership = Membership::new(clock, MembershipConfig::default());
        Self::with_membership(name, config, membership, None)
    }

    /// Create a cluster joining an existing (shared) membership view,
    /// optionally tagging its brokers with a region failure domain. A
    /// multi-region topology registers every cluster of a region under
    /// the region's name, so a region kill is observable as a correlated
    /// burst of node deaths in one shared detector
    /// (`membership.region_is_down(region)`), not just a cluster flag.
    pub fn with_membership(
        name: impl Into<String>,
        config: ClusterConfig,
        membership: Arc<Membership>,
        region: Option<&str>,
    ) -> Arc<Self> {
        let name = name.into();
        let cluster = Arc::new(Cluster {
            name,
            config: RwLock::new(config),
            topics: RwLock::new(BTreeMap::new()),
            down: AtomicBool::new(false),
            membership,
        });
        for node in cluster.node_names() {
            match region {
                Some(r) => cluster.membership.register_in_region(&node, r),
                None => cluster.membership.register(&node),
            }
        }
        cluster.membership.subscribe(Arc::new(TopicFailoverFanout {
            cluster: Arc::downgrade(&cluster),
        }));
        cluster
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn nodes(&self) -> usize {
        self.config.read().nodes
    }

    /// Names of every broker this cluster was sized with, dead or alive.
    pub fn node_names(&self) -> Vec<String> {
        (0..self.config.read().nodes)
            .map(|i| format!("{}-n{}", self.name, i))
            .collect()
    }

    /// The shared membership view (heartbeats, failure detection,
    /// listeners).
    pub fn membership(&self) -> &Arc<Membership> {
        &self.membership
    }

    /// Grow the cluster (operators add brokers before adding clusters).
    pub fn add_nodes(&self, n: usize) {
        let mut cfg = self.config.write();
        cfg.nodes += n;
        let total = cfg.nodes;
        drop(cfg);
        for i in total - n..total {
            self.membership.register(&format!("{}-n{}", self.name, i));
        }
    }

    pub fn set_down(&self, down: bool) {
        self.down.store(down, Ordering::SeqCst);
    }

    pub fn is_down(&self) -> bool {
        self.down.load(Ordering::SeqCst)
    }

    fn check_up(&self) -> Result<()> {
        if self.is_down() {
            Err(Error::Unavailable(format!("cluster '{}' down", self.name)))
        } else {
            Ok(())
        }
    }

    /// Emit a heartbeat from every node that is not chaos-downed, then
    /// run the failure detector. This is the per-interval driver a
    /// simulation calls as it advances the logical clock; a chaos-downed
    /// node simply falls silent, so its death is *detected* (after
    /// `dead_after_ms`) rather than announced — that detection latency is
    /// what the failover MTTR experiment measures.
    pub fn heartbeat_tick(&self) -> Vec<MembershipEvent> {
        self.heartbeat_nodes();
        self.membership.tick()
    }

    /// Emit heartbeats from this cluster's non-chaos-downed brokers
    /// without running the detector. When several clusters share one
    /// membership view ([`Cluster::with_membership`]), the driver calls
    /// this on every cluster and then ticks the shared membership once.
    pub fn heartbeat_nodes(&self) {
        for node in self.node_names() {
            if !chaos::registry().node_is_down(&node) {
                self.membership.heartbeat(&node);
            }
        }
    }

    /// Silence every broker in this cluster at once (chaos down, no
    /// announcement) — the cluster half of a region kill. The shared
    /// detector must notice the correlated burst of missed deadlines.
    pub fn fail_all_nodes_silently(&self) {
        for node in self.node_names() {
            chaos::registry().kill_node(&node);
        }
    }

    /// Heal every broker in this cluster (chaos heal + membership
    /// revive); each rejoins its ISRs.
    pub fn heal_all_nodes(&self) {
        for node in self.node_names() {
            self.heal_node(&node);
        }
    }

    /// Kill a broker abruptly and *announce* it (chaos registry + pinned
    /// membership kill): partitions fail over immediately. Use
    /// [`Cluster::fail_node_silently`] to exercise the detection path
    /// instead. Returns false if the node was already down.
    pub fn kill_node(&self, node: &str) -> bool {
        let newly = chaos::registry().kill_node(node);
        self.membership.kill(node);
        newly
    }

    /// Kill a broker silently: it stops heartbeating (the chaos registry
    /// marks it down so [`Cluster::heartbeat_tick`] skips it) but nothing
    /// is announced — the failure detector must notice the missed
    /// deadlines. Returns false if the node was already down.
    pub fn fail_node_silently(&self, node: &str) -> bool {
        chaos::registry().kill_node(node)
    }

    /// Bring a downed broker back: heartbeats resume and it rejoins every
    /// ISR (catching up from shared storage). Works for both announced
    /// and silent kills.
    pub fn heal_node(&self, node: &str) -> bool {
        let newly = chaos::registry().heal_node(node);
        self.membership.revive(node);
        newly
    }

    /// Live (non-dead) broker names, in name order.
    pub fn live_node_names(&self) -> Vec<String> {
        self.membership.live_nodes()
    }

    /// Total partition-replica slots and how many are used.
    pub fn capacity(&self) -> (usize, usize) {
        let cfg = self.config.read();
        let total = cfg.nodes * cfg.partitions_per_node;
        let used: usize = self
            .topics
            .read()
            .values()
            .map(|t| t.num_partitions() * t.config().replication)
            .sum();
        (total, used)
    }

    /// Whether the federation layer should stop placing new topics here.
    pub fn is_full(&self) -> bool {
        let (total, used) = self.capacity();
        used >= total
    }

    /// Per-operation coordination overhead in arbitrary cost units. Flat
    /// up to `ideal_max_nodes`, then grows quadratically with the excess —
    /// the empirical shape behind the paper's "ideal cluster size < 150
    /// nodes". Used by the federation experiment (E2) to compare one giant
    /// cluster against federated ones.
    pub fn coordination_cost(&self) -> f64 {
        let cfg = self.config.read();
        let base = 1.0 + (cfg.nodes as f64).log2() * 0.05;
        if cfg.nodes <= cfg.ideal_max_nodes {
            base
        } else {
            let excess = (cfg.nodes - cfg.ideal_max_nodes) as f64;
            base + 0.002 * excess * excess
        }
    }

    /// Create a topic with its partition replicas placed across this
    /// cluster's *live* nodes — brokers currently marked dead are skipped
    /// at placement time.
    pub fn create_topic(&self, name: &str, config: TopicConfig) -> Result<Arc<Topic>> {
        self.check_up()?;
        let mut topics = self.topics.write();
        if topics.contains_key(name) {
            return Err(Error::AlreadyExists(format!("topic '{name}'")));
        }
        {
            let cfg = self.config.read();
            let total = cfg.nodes * cfg.partitions_per_node;
            let used: usize = topics
                .values()
                .map(|t| t.num_partitions() * t.config().replication)
                .sum();
            let needed = config.partitions * config.replication;
            if used + needed > total {
                return Err(Error::CapacityExceeded(format!(
                    "cluster '{}' cannot host {needed} more partition replicas ({used}/{total} used)",
                    self.name
                )));
            }
        }
        let live = self.live_node_names();
        if live.is_empty() {
            return Err(Error::Unavailable(format!(
                "cluster '{}' has no live nodes to place topic '{name}'",
                self.name
            )));
        }
        let topic = Arc::new(Topic::with_placement(name, config, &live)?);
        topics.insert(name.to_string(), topic.clone());
        Ok(topic)
    }

    pub fn topic(&self, name: &str) -> Result<Arc<Topic>> {
        self.check_up()?;
        self.topics
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| Error::NotFound(format!("topic '{name}' in cluster '{}'", self.name)))
    }

    pub fn topic_names(&self) -> Vec<String> {
        self.topics.read().keys().cloned().collect()
    }

    /// Remove a topic (after federation migrates it away).
    pub fn drop_topic(&self, name: &str) -> Result<()> {
        self.topics
            .write()
            .remove(name)
            .map(|_| ())
            .ok_or_else(|| Error::NotFound(format!("topic '{name}'")))
    }

    /// Produce a record to a topic on this cluster.
    pub fn produce(&self, topic: &str, record: Record, now: Timestamp) -> Result<(usize, u64)> {
        let t = self.topic(topic)?;
        t.append(record, now)
    }

    /// Every leadership transition across all topics, ordered by
    /// (time, topic, partition, epoch) — deterministic for a given
    /// kill/heal/clock schedule; the node-kill CI gate diffs this.
    pub fn failover_log(&self) -> String {
        let mut events: Vec<FailoverEvent> = self
            .topics
            .read()
            .values()
            .flat_map(|t| t.failover_events())
            .collect();
        events.sort_by(|a, b| {
            (a.at, &a.topic, a.partition, a.epoch).cmp(&(b.at, &b.topic, b.partition, b.epoch))
        });
        let mut out = String::new();
        for ev in &events {
            out.push_str(&ev.line());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtdi_common::Row;

    #[test]
    fn create_produce_fetch() {
        let c = Cluster::new("agg1", ClusterConfig::default());
        c.create_topic("trips", TopicConfig::default()).unwrap();
        let (p, o) = c
            .produce("trips", Record::new(Row::new().with("x", 1i64), 0), 0)
            .unwrap();
        assert_eq!(o, 0);
        let t = c.topic("trips").unwrap();
        assert_eq!(t.fetch(p, 0, 10).unwrap().records.len(), 1);
        assert!(c.produce("nope", Record::new(Row::new(), 0), 0).is_err());
    }

    #[test]
    fn duplicate_topic_rejected() {
        let c = Cluster::new("c", ClusterConfig::default());
        c.create_topic("t", TopicConfig::default()).unwrap();
        assert!(matches!(
            c.create_topic("t", TopicConfig::default()),
            Err(Error::AlreadyExists(_))
        ));
    }

    #[test]
    fn capacity_enforced() {
        let c = Cluster::new(
            "small",
            ClusterConfig {
                nodes: 1,
                partitions_per_node: 9,
                ideal_max_nodes: 150,
            },
        );
        // 9 slots; topic with 2 partitions x 3 replicas = 6 slots
        c.create_topic("a", TopicConfig::default().with_partitions(2))
            .unwrap();
        assert!(!c.is_full());
        // another 6 would exceed
        assert!(matches!(
            c.create_topic("b", TopicConfig::default().with_partitions(2)),
            Err(Error::CapacityExceeded(_))
        ));
        // 1 partition x 3 replicas fits exactly
        c.create_topic("c", TopicConfig::default().with_partitions(1))
            .unwrap();
        assert!(c.is_full());
    }

    #[test]
    fn down_cluster_rejects_operations() {
        let c = Cluster::new("c", ClusterConfig::default());
        c.create_topic("t", TopicConfig::default()).unwrap();
        c.set_down(true);
        assert!(matches!(c.topic("t"), Err(Error::Unavailable(_))));
        assert!(c.produce("t", Record::new(Row::new(), 0), 0).is_err());
        c.set_down(false);
        assert!(c.topic("t").is_ok());
    }

    #[test]
    fn coordination_cost_grows_past_ideal() {
        let small = Cluster::new(
            "s",
            ClusterConfig {
                nodes: 100,
                ..Default::default()
            },
        );
        let ideal = Cluster::new(
            "i",
            ClusterConfig {
                nodes: 150,
                ..Default::default()
            },
        );
        let big = Cluster::new(
            "b",
            ClusterConfig {
                nodes: 400,
                ..Default::default()
            },
        );
        assert!(small.coordination_cost() <= ideal.coordination_cost() + 0.01);
        assert!(
            big.coordination_cost() > 10.0 * ideal.coordination_cost(),
            "big={} ideal={}",
            big.coordination_cost(),
            ideal.coordination_cost()
        );
    }

    #[test]
    fn drop_topic_frees_capacity() {
        let c = Cluster::new(
            "c",
            ClusterConfig {
                nodes: 1,
                partitions_per_node: 6,
                ideal_max_nodes: 150,
            },
        );
        c.create_topic("a", TopicConfig::default().with_partitions(2))
            .unwrap();
        assert!(c.is_full());
        c.drop_topic("a").unwrap();
        assert!(!c.is_full());
        assert!(c.drop_topic("a").is_err());
    }

    #[test]
    fn announced_kill_fails_partitions_over_immediately() {
        let _g = chaos::test_guard();
        chaos::registry().reset(0);
        let c = Cluster::new(
            "agg",
            ClusterConfig {
                nodes: 4,
                ..Default::default()
            },
        );
        let t = c.create_topic("trips", TopicConfig::default()).unwrap();
        for i in 0..20 {
            c.produce(
                "trips",
                Record::new(Row::new().with("i", i), i).with_key(format!("k{i}")),
                i,
            )
            .unwrap();
        }
        let victim = t.replica_status(0).unwrap().leader.unwrap();
        assert!(c.kill_node(&victim));
        let st = t.replica_status(0).unwrap();
        assert_ne!(st.leader.as_deref(), Some(victim.as_str()));
        assert!(st.leader.is_some(), "in-sync follower elected");
        // committed records survive, writes keep flowing
        let committed: u64 = t.committed_watermarks().iter().sum();
        assert_eq!(committed, 20);
        c.produce("trips", Record::new(Row::new().with("i", 99i64), 99), 99)
            .unwrap();
        assert!(c.failover_log().contains(&victim));
        c.heal_node(&victim);
        assert_eq!(t.replica_status(0).unwrap().isr.len(), 3);
        chaos::registry().reset(0);
    }

    #[test]
    fn silent_failure_is_detected_by_deadline_and_healed() {
        let _g = chaos::test_guard();
        chaos::registry().reset(0);
        let clock = Arc::new(SimClock::new(0));
        let c = Cluster::with_clock(
            "agg",
            ClusterConfig {
                nodes: 3,
                ..Default::default()
            },
            clock.clone(),
        );
        let t = c.create_topic("trips", TopicConfig::default()).unwrap();
        let victim = t.replica_status(0).unwrap().leader.unwrap();
        assert!(c.fail_node_silently(&victim));
        // node goes silent; detector needs dead_after_ms of missed beats
        let interval = c.membership().config().heartbeat_interval_ms;
        let mut detected_at = None;
        for _ in 0..15 {
            clock.advance(interval);
            let evs = c.heartbeat_tick();
            if evs
                .iter()
                .any(|e| e.node == victim && e.to == NodeState::Dead)
            {
                detected_at = Some(clock.now());
                break;
            }
        }
        let detected_at = detected_at.expect("silent node declared dead");
        assert!(detected_at >= c.membership().config().dead_after_ms);
        assert!(t.replica_status(0).unwrap().leader.is_some());
        assert_ne!(t.replica_status(0).unwrap().leader.unwrap(), victim);
        // heal: heartbeats resume, node rejoins the ISR
        c.heal_node(&victim);
        clock.advance(interval);
        c.heartbeat_tick();
        assert_eq!(t.replica_status(0).unwrap().isr.len(), 3);
        chaos::registry().reset(0);
    }

    #[test]
    fn placement_skips_dead_nodes() {
        let _g = chaos::test_guard();
        chaos::registry().reset(0);
        let c = Cluster::new(
            "agg",
            ClusterConfig {
                nodes: 5,
                ..Default::default()
            },
        );
        c.kill_node("agg-n0");
        let t = c.create_topic("t", TopicConfig::default()).unwrap();
        for p in 0..t.num_partitions() {
            let st = t.replica_status(p).unwrap();
            assert!(
                !st.assignment.contains(&"agg-n0".to_string()),
                "dead node must not receive replicas"
            );
        }
        c.heal_node("agg-n0");
        chaos::registry().reset(0);
    }
}
