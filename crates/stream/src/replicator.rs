//! uReplicator: cross-cluster replication (§4.1.4).
//!
//! "uReplicator is designed for strong reliability and elasticity. It has
//! an in-built rebalancing algorithm so that it minimizes the number of
//! the affected topic partitions during rebalancing. Moreover, uReplicator
//! is adaptive to the workload so that when there is bursty traffic it can
//! dynamically redistribute the load to the standby workers."
//!
//! Two pieces:
//!
//! - [`StickyAssigner`]: the minimal-movement partition->worker assignment
//!   algorithm, benchmarked in E4 against the naive modulo rehash used by
//!   vanilla mirroring;
//! - [`Replicator`]: the copy engine that mirrors a topic between clusters
//!   partition-aligned, periodically checkpointing the source->destination
//!   offset mapping that the active/passive offset-sync service of §6
//!   consumes.

use crate::cluster::Cluster;
use parking_lot::RwLock;
use rtdi_common::{Error, FaultPoint, Result, RetryPolicy, Timestamp};
use std::collections::BTreeMap;
use std::sync::Arc;

/// A partition->worker assignment with sticky (minimal-movement)
/// rebalancing.
#[derive(Debug, Default)]
pub struct StickyAssigner {
    workers: Vec<String>,
    /// Standby workers receive load only during bursts or failover.
    standby: Vec<String>,
    assignment: BTreeMap<u32, String>,
}

impl StickyAssigner {
    pub fn new(workers: Vec<String>, standby: Vec<String>) -> Self {
        StickyAssigner {
            workers,
            standby,
            assignment: BTreeMap::new(),
        }
    }

    pub fn assignment(&self) -> &BTreeMap<u32, String> {
        &self.assignment
    }

    /// Assign `partitions` to the active workers, moving as few existing
    /// assignments as possible: partitions keep their worker unless it is
    /// gone or overloaded; only the overflow/orphans move. Returns the set
    /// of partitions whose worker changed.
    pub fn rebalance(&mut self, partitions: u32) -> Vec<u32> {
        let active = self.workers.clone();
        if active.is_empty() {
            let moved: Vec<u32> = self.assignment.keys().copied().collect();
            self.assignment.clear();
            return moved;
        }
        let capacity = (partitions as usize).div_ceil(active.len());
        let mut load: BTreeMap<&str, usize> = active.iter().map(|w| (w.as_str(), 0)).collect();
        let mut moved = Vec::new();
        let mut orphans = Vec::new();
        // keep sticky assignments that are still valid and under capacity
        for p in 0..partitions {
            match self.assignment.get(&p) {
                Some(w) if load.contains_key(w.as_str()) => {
                    let l = load.get_mut(w.as_str()).expect("checked");
                    if *l < capacity {
                        *l += 1;
                    } else {
                        orphans.push(p);
                    }
                }
                _ => orphans.push(p),
            }
        }
        // place orphans on least-loaded workers
        for p in orphans {
            let w = active
                .iter()
                .min_by_key(|w| load[w.as_str()])
                .expect("non-empty")
                .clone();
            *load.get_mut(w.as_str()).expect("exists") += 1;
            let prev = self.assignment.insert(p, w);
            if prev.map(|pw| pw != self.assignment[&p]).unwrap_or(true) {
                moved.push(p);
            }
        }
        // drop assignments beyond the partition count (topic shrank)
        self.assignment.retain(|p, _| *p < partitions);
        moved
    }

    /// Naive modulo assignment for comparison (what a consistent-hash-free
    /// mirror does): partition p -> worker[p % n]. Returns moved
    /// partitions relative to the current assignment.
    pub fn naive_rebalance(&mut self, partitions: u32) -> Vec<u32> {
        let mut moved = Vec::new();
        let n = self.workers.len();
        if n == 0 {
            let all: Vec<u32> = self.assignment.keys().copied().collect();
            self.assignment.clear();
            return all;
        }
        for p in 0..partitions {
            let w = self.workers[(p as usize) % n].clone();
            if self.assignment.get(&p) != Some(&w) {
                moved.push(p);
                self.assignment.insert(p, w);
            }
        }
        self.assignment.retain(|p, _| *p < partitions);
        moved
    }

    pub fn add_worker(&mut self, w: impl Into<String>) {
        self.workers.push(w.into());
    }

    pub fn remove_worker(&mut self, w: &str) {
        self.workers.retain(|x| x != w);
    }

    /// Burst handling: promote standby workers into the active set.
    /// Returns how many were promoted.
    pub fn promote_standby(&mut self, n: usize) -> usize {
        let take = n.min(self.standby.len());
        for w in self.standby.drain(..take) {
            self.workers.push(w);
        }
        take
    }

    pub fn active_workers(&self) -> &[String] {
        &self.workers
    }

    /// Max partitions on one worker divided by the ideal share; 1.0 is a
    /// perfect balance.
    pub fn skew(&self, partitions: u32) -> f64 {
        if self.workers.is_empty() || partitions == 0 {
            return 0.0;
        }
        let mut load: BTreeMap<&String, usize> = BTreeMap::new();
        for w in self.assignment.values() {
            *load.entry(w).or_insert(0) += 1;
        }
        let max = load.values().copied().max().unwrap_or(0) as f64;
        let ideal = partitions as f64 / self.workers.len() as f64;
        max / ideal
    }
}

/// One source->destination offset correspondence for a partition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OffsetMapping {
    pub partition: usize,
    pub src_offset: u64,
    pub dst_offset: u64,
    pub checkpointed_at: Timestamp,
}

// (route, partition) -> mappings in checkpoint order
type MappingsByRoute = BTreeMap<(String, usize), Vec<OffsetMapping>>;

/// The shared "active-active database" of offset-mapping checkpoints
/// (Figure 7). The offset sync job of `rtdi-multiregion` reads this.
#[derive(Clone, Default)]
pub struct OffsetMappingStore {
    inner: Arc<RwLock<MappingsByRoute>>,
}

impl OffsetMappingStore {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn checkpoint(&self, route: &str, mapping: OffsetMapping) {
        self.inner
            .write()
            .entry((route.to_string(), mapping.partition))
            .or_default()
            .push(mapping);
    }

    /// Latest mapping with `src_offset <= src` — the translation the
    /// failover consumer uses. Returns the conservative (floor) mapping so
    /// replays are possible but loss is not.
    pub fn translate(&self, route: &str, partition: usize, src: u64) -> Option<OffsetMapping> {
        let inner = self.inner.read();
        let maps = inner.get(&(route.to_string(), partition))?;
        maps.iter().rev().find(|m| m.src_offset <= src).copied()
    }

    /// Latest mapping with `dst_offset <= dst` — the inverse translation
    /// the offset-sync job uses to map a consumer's aggregate-cluster
    /// offset back to a source offset. Conservative (floor) like
    /// [`OffsetMappingStore::translate`].
    pub fn translate_reverse(
        &self,
        route: &str,
        partition: usize,
        dst: u64,
    ) -> Option<OffsetMapping> {
        let inner = self.inner.read();
        let maps = inner.get(&(route.to_string(), partition))?;
        maps.iter().rev().find(|m| m.dst_offset <= dst).copied()
    }

    pub fn latest(&self, route: &str, partition: usize) -> Option<OffsetMapping> {
        let inner = self.inner.read();
        inner.get(&(route.to_string(), partition))?.last().copied()
    }
}

/// Replicates one topic from a source cluster to a destination cluster,
/// partition-aligned, checkpointing offset mappings every
/// `checkpoint_interval` records per partition.
pub struct Replicator {
    route: String,
    source: Arc<Cluster>,
    destination: Arc<Cluster>,
    topic: String,
    mappings: OffsetMappingStore,
    checkpoint_interval: u64,
    /// next source offset to replicate, per partition
    positions: RwLock<BTreeMap<usize, u64>>,
}

impl Replicator {
    pub fn new(
        route: impl Into<String>,
        source: Arc<Cluster>,
        destination: Arc<Cluster>,
        topic: impl Into<String>,
        mappings: OffsetMappingStore,
        checkpoint_interval: u64,
    ) -> Self {
        Replicator {
            route: route.into(),
            source,
            destination,
            topic: topic.into(),
            mappings,
            checkpoint_interval: checkpoint_interval.max(1),
            positions: RwLock::new(BTreeMap::new()),
        }
    }

    /// Ensure the destination topic exists with the same partitioning.
    pub fn prepare(&self) -> Result<()> {
        let src = self.source.topic(&self.topic)?;
        match self.destination.topic(&self.topic) {
            Ok(dst) => {
                if dst.num_partitions() != src.num_partitions() {
                    return Err(Error::InvalidArgument(
                        "destination topic partition count mismatch".into(),
                    ));
                }
                Ok(())
            }
            Err(Error::NotFound(_)) => {
                self.destination
                    .create_topic(&self.topic, src.config().clone())?;
                Ok(())
            }
            Err(e) => Err(e),
        }
    }

    /// Replicate everything currently pending. Returns records copied.
    ///
    /// Transient cross-region faults (`multiregion.replicate`) are retried
    /// with backoff; a persistent outage surfaces as an error with the
    /// per-partition position untouched past the last copied record, so the
    /// next `run_once` resumes without loss or duplication.
    pub fn run_once(&self, now: Timestamp) -> Result<u64> {
        let src = self.source.topic(&self.topic)?;
        let dst = self.destination.topic(&self.topic)?;
        let policy = RetryPolicy::new(4).with_backoff_us(50, 2_000);
        let mut copied = 0;
        for p in 0..src.num_partitions() {
            // resume priority: in-memory position (same worker), then the
            // shared mapping store (a restarted worker picks up after the
            // last checkpoint — duplicates bounded by checkpoint_interval,
            // never a gap), then the retained log start (fresh route)
            let saved = self.positions.read().get(&p).copied();
            let mut pos = match saved {
                Some(v) => v,
                None => match self.mappings.latest(&self.route, p) {
                    Some(m) => m.src_offset + 1,
                    None => src
                        .partition(p)
                        .ok_or_else(|| {
                            Error::NotFound(format!("partition {p} of topic '{}'", self.topic))
                        })?
                        .log_start_offset(),
                },
            };
            let mut since_checkpoint = 0u64;
            loop {
                let fetch = match src.fetch(p, pos, 1024) {
                    Ok(f) => f,
                    Err(Error::OffsetOutOfRange { low, .. }) => {
                        pos = low;
                        src.fetch(p, low, 1024)?
                    }
                    Err(e) => return Err(e),
                };
                if fetch.records.is_empty() {
                    break;
                }
                for rec in fetch.records {
                    let src_offset = rec.offset;
                    let record = rec.into_record();
                    // the fault check sits inside the retried closure: an
                    // injected fault consumes attempts exactly like a real
                    // cross-region failure would
                    let dst_offset = match policy.run(|_| {
                        rtdi_common::chaos::check(FaultPoint::MultiregionReplicate)?;
                        dst.append_to(p, record.clone(), now)
                    }) {
                        Ok(off) => off,
                        Err(e) => {
                            self.positions.write().insert(p, pos);
                            return Err(e);
                        }
                    };
                    pos = src_offset + 1;
                    copied += 1;
                    since_checkpoint += 1;
                    if since_checkpoint >= self.checkpoint_interval {
                        self.mappings.checkpoint(
                            &self.route,
                            OffsetMapping {
                                partition: p,
                                src_offset,
                                dst_offset,
                                checkpointed_at: now,
                            },
                        );
                        since_checkpoint = 0;
                    }
                }
            }
            // always checkpoint the frontier so translation stays fresh
            if copied > 0 {
                let dst_hwm = dst
                    .partition(p)
                    .ok_or_else(|| {
                        Error::NotFound(format!("partition {p} of topic '{}'", self.topic))
                    })?
                    .high_watermark();
                self.mappings.checkpoint(
                    &self.route,
                    OffsetMapping {
                        partition: p,
                        src_offset: pos.saturating_sub(1),
                        dst_offset: dst_hwm.saturating_sub(1),
                        checkpointed_at: now,
                    },
                );
            }
            self.positions.write().insert(p, pos);
        }
        Ok(copied)
    }

    pub fn mappings(&self) -> &OffsetMappingStore {
        &self.mappings
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusterConfig;
    use crate::topic::TopicConfig;
    use rtdi_common::{Record, Row};

    #[test]
    fn sticky_rebalance_moves_minimum() {
        let mut a = StickyAssigner::new((0..10).map(|i| format!("w{i}")).collect(), vec![]);
        let initial = a.rebalance(1000);
        assert_eq!(initial.len(), 1000, "initial assignment places everything");
        // adding one worker should move roughly 1000/11 partitions, not all
        a.add_worker("w10");
        let moved = a.rebalance(1000);
        assert!(
            moved.len() <= 120,
            "sticky moved {} partitions, expected ~91",
            moved.len()
        );
        assert!(a.skew(1000) <= 1.2, "skew {}", a.skew(1000));
    }

    #[test]
    fn naive_rebalance_moves_most() {
        let mut a = StickyAssigner::new((0..10).map(|i| format!("w{i}")).collect(), vec![]);
        a.naive_rebalance(1000);
        a.add_worker("w10");
        let moved = a.naive_rebalance(1000);
        assert!(
            moved.len() > 800,
            "naive modulo should reshuffle almost everything, moved {}",
            moved.len()
        );
    }

    #[test]
    fn worker_removal_only_moves_its_partitions() {
        let mut a = StickyAssigner::new((0..4).map(|i| format!("w{i}")).collect(), vec![]);
        a.rebalance(100);
        let victim_parts: Vec<u32> = a
            .assignment()
            .iter()
            .filter(|(_, w)| *w == "w0")
            .map(|(p, _)| *p)
            .collect();
        a.remove_worker("w0");
        let moved = a.rebalance(100);
        assert_eq!(moved.len(), victim_parts.len());
        for p in moved {
            assert!(victim_parts.contains(&p));
        }
    }

    #[test]
    fn standby_promotion_absorbs_bursts() {
        let mut a = StickyAssigner::new(
            vec!["w0".into(), "w1".into()],
            vec!["s0".into(), "s1".into()],
        );
        a.rebalance(100);
        let before_share = 100 / 2;
        let promoted = a.promote_standby(2);
        assert_eq!(promoted, 2);
        let moved = a.rebalance(100);
        assert_eq!(a.active_workers().len(), 4);
        // the two new workers absorb ~half the load with minimal movement
        assert!(moved.len() <= before_share + 5, "moved {}", moved.len());
        assert!(a.skew(100) <= 1.2);
        assert_eq!(a.promote_standby(5), 0, "standby pool exhausted");
    }

    fn cluster_with_topic(name: &str) -> Arc<Cluster> {
        let c = Cluster::new(name, ClusterConfig::default());
        c.create_topic("trips", TopicConfig::default().with_partitions(4))
            .unwrap();
        c
    }

    #[test]
    fn replication_is_partition_aligned_and_complete() {
        let src = cluster_with_topic("regional");
        let dst = Cluster::new("aggregate", ClusterConfig::default());
        let r = Replicator::new(
            "regional->aggregate",
            src.clone(),
            dst.clone(),
            "trips",
            OffsetMappingStore::new(),
            10,
        );
        r.prepare().unwrap();
        for i in 0..200 {
            src.produce(
                "trips",
                Record::new(Row::new().with("i", i), i).with_key(format!("k{i}")),
                i,
            )
            .unwrap();
        }
        let copied = r.run_once(1000).unwrap();
        assert_eq!(copied, 200);
        let st = src.topic("trips").unwrap();
        let dt = dst.topic("trips").unwrap();
        for p in 0..4 {
            assert_eq!(
                st.partition(p).unwrap().high_watermark(),
                dt.partition(p).unwrap().high_watermark(),
                "partition {p} aligned"
            );
        }
        // idempotent continuation: nothing new to copy
        assert_eq!(r.run_once(2000).unwrap(), 0);
        // new records replicate incrementally
        src.produce("trips", Record::new(Row::new(), 5).with_key("x"), 5)
            .unwrap();
        assert_eq!(r.run_once(3000).unwrap(), 1);
    }

    #[test]
    fn replication_retries_faults_and_resumes_after_outage_without_duplication() {
        use rtdi_common::chaos::{self, FaultKind, FaultPlan, Trigger};
        let _g = chaos::test_guard();
        chaos::registry().reset(0x5EED);
        let src = cluster_with_topic("regional");
        let dst = Cluster::new("aggregate", ClusterConfig::default());
        let r = Replicator::new(
            "regional->aggregate",
            src.clone(),
            dst.clone(),
            "trips",
            OffsetMappingStore::new(),
            10,
        );
        r.prepare().unwrap();
        for i in 0..100 {
            src.produce(
                "trips",
                Record::new(Row::new().with("i", i), i).with_key(format!("k{i}")),
                i,
            )
            .unwrap();
        }
        // every 5th cross-region send fails transiently: well inside the
        // 4-attempt budget, so replication completes without caller help
        chaos::registry().arm(
            FaultPoint::MultiregionReplicate,
            FaultPlan::fail(FaultKind::Unavailable, Trigger::EveryNth(5)),
        );
        assert_eq!(r.run_once(1000).unwrap(), 100);

        // persistent outage after partial progress: run_once errors, then
        // resumes from the saved position once the link is back
        for i in 100..150 {
            src.produce(
                "trips",
                Record::new(Row::new().with("i", i), i).with_key(format!("k{i}")),
                i,
            )
            .unwrap();
        }
        chaos::registry().arm(
            FaultPoint::MultiregionReplicate,
            FaultPlan::fail(FaultKind::Unavailable, Trigger::Always).with_burst(10, None),
        );
        let partial = r.run_once(2000);
        assert!(partial.is_err(), "persistent outage surfaces");
        chaos::registry().disarm_all();
        let resumed = r.run_once(3000).unwrap();
        assert!(resumed > 0 && resumed <= 50, "resumed {resumed}");

        // every partition aligned: nothing lost, nothing duplicated
        let st = src.topic("trips").unwrap();
        let dt = dst.topic("trips").unwrap();
        for p in 0..4 {
            assert_eq!(
                st.partition(p).unwrap().high_watermark(),
                dt.partition(p).unwrap().high_watermark(),
                "partition {p} aligned after recovery"
            );
        }
    }

    #[test]
    fn restarted_replicator_resumes_from_mapping_store_without_gaps() {
        use rtdi_common::chaos::{self, FaultKind, FaultPlan, Trigger};
        let _g = chaos::test_guard();
        chaos::registry().reset(0x2E57A27);
        let src = cluster_with_topic("regional");
        let dst = Cluster::new("aggregate", ClusterConfig::default());
        let store = OffsetMappingStore::new();
        let interval = 10u64;
        let r = Replicator::new(
            "regional->aggregate",
            src.clone(),
            dst.clone(),
            "trips",
            store.clone(),
            interval,
        );
        r.prepare().unwrap();
        for i in 0..200 {
            src.produce(
                "trips",
                Record::new(Row::new().with("i", i), i).with_key(format!("k{i}")),
                i,
            )
            .unwrap();
        }
        // the route dies mid-copy: the worker loses its in-memory
        // positions (the process is gone), leaving only the mapping store
        chaos::registry().arm(
            FaultPoint::MultiregionReplicate,
            FaultPlan::fail(FaultKind::Unavailable, Trigger::Always).with_burst(95, None),
        );
        assert!(r.run_once(1_000).is_err(), "outage mid-route surfaces");
        chaos::registry().disarm_all();
        drop(r);

        // a restarted worker with the same route + shared mapping store
        // resumes from the last checkpointed mapping per partition
        let r2 = Replicator::new(
            "regional->aggregate",
            src.clone(),
            dst.clone(),
            "trips",
            store.clone(),
            interval,
        );
        r2.run_once(2_000).unwrap();

        let st = src.topic("trips").unwrap();
        let dt = dst.topic("trips").unwrap();
        for p in 0..4 {
            let src_hwm = st.partition(p).unwrap().high_watermark();
            let dst_hwm = dt.partition(p).unwrap().high_watermark();
            // no gap: every source record landed at least once...
            assert!(dst_hwm >= src_hwm, "partition {p} lost records");
            // ...and duplicates are bounded by one checkpoint interval
            assert!(
                dst_hwm - src_hwm <= interval,
                "partition {p}: {} duplicates exceeds the checkpoint interval {interval}",
                dst_hwm - src_hwm
            );
            // a failover consumer translating through this route never
            // observes a mapping gap: the latest mapping is at the new
            // frontier, and translation below it floors conservatively
            let latest = store.latest("regional->aggregate", p).unwrap();
            assert_eq!(latest.src_offset, src_hwm - 1, "mapping frontier");
            for probe in [0, src_hwm / 2, src_hwm - 1] {
                if let Some(m) = store.translate("regional->aggregate", p, probe) {
                    assert!(m.src_offset <= probe, "floor translation");
                }
            }
        }
        chaos::registry().reset(0x2E57A27);
    }

    #[test]
    fn offset_mappings_translate_conservatively() {
        let store = OffsetMappingStore::new();
        for (s, d) in [(9u64, 9u64), (19, 19), (29, 29)] {
            store.checkpoint(
                "r",
                OffsetMapping {
                    partition: 0,
                    src_offset: s,
                    dst_offset: d,
                    checkpointed_at: 0,
                },
            );
        }
        // exact hit
        assert_eq!(store.translate("r", 0, 19).unwrap().dst_offset, 19);
        // between checkpoints -> floor
        assert_eq!(store.translate("r", 0, 25).unwrap().dst_offset, 19);
        // before first checkpoint -> none (caller falls back to earliest)
        assert!(store.translate("r", 0, 3).is_none());
        assert_eq!(store.latest("r", 0).unwrap().src_offset, 29);
        assert!(store.translate("other", 0, 10).is_none());
    }
}
