//! Dead letter queues (§4.1.2).
//!
//! "If a consumer of the topic cannot process a message with several
//! retries, it will publish that message to the dead letter topic. The
//! messages in the dead letter topic can be purged or merged (i.e.
//! retried) on demand by the users. This way, the unprocessed messages
//! remain separate and therefore are unable to impede live traffic."

use crate::producer::StreamEndpoint;
use crate::topic::{Topic, TopicConfig};
use rtdi_common::record::headers;
use rtdi_common::{Error, Record, Result, RetryPolicy, Timestamp};
use std::sync::Arc;

/// Why a record was parked. A closed enum (stamped into the
/// [`headers::DLQ_REASON`] header) instead of free text, so chaos tests
/// can assert *why* records landed in the DLQ.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParkReason {
    /// A retryable failure that outlived the proxy's retry budget.
    RetriesExhausted,
    /// The record itself is malformed / fails schema validation.
    Schema,
    /// The downstream service rejects the record non-retryably.
    Poison,
    /// Admission control shed the record (quota / watermark / permits);
    /// it is parked instead of dropped so overload never loses data and
    /// `offered == delivered + parked` holds exactly.
    Overload,
}

impl ParkReason {
    pub fn as_str(self) -> &'static str {
        match self {
            ParkReason::RetriesExhausted => "retries-exhausted",
            ParkReason::Schema => "schema",
            ParkReason::Poison => "poison",
            ParkReason::Overload => "overload",
        }
    }

    /// Inverse of [`ParkReason::as_str`]: parse the value of a
    /// [`headers::DLQ_REASON`] header back into the enum.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "retries-exhausted" => Some(ParkReason::RetriesExhausted),
            "schema" => Some(ParkReason::Schema),
            "poison" => Some(ParkReason::Poison),
            "overload" => Some(ParkReason::Overload),
            _ => None,
        }
    }

    /// Classify a processing error into a park reason.
    pub fn classify(err: &Error) -> Self {
        match err {
            // Overloaded is retryable, so this arm must come before the
            // generic retryable -> RetriesExhausted mapping: a shed
            // record parks as Overload, not as a processing failure.
            Error::Overloaded(_) => ParkReason::Overload,
            _ if err.is_retryable() => ParkReason::RetriesExhausted,
            Error::Schema(_) => ParkReason::Schema,
            Error::DeadlineExceeded(_) => ParkReason::Overload,
            _ => ParkReason::Poison,
        }
    }
}

impl std::fmt::Display for ParkReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The dead-letter companion of a main topic.
pub struct DeadLetterQueue {
    /// Name of the topic whose poison messages land here.
    source_topic: String,
    dlq: Arc<Topic>,
}

impl DeadLetterQueue {
    pub fn new(source_topic: impl Into<String>) -> Result<Self> {
        let source_topic = source_topic.into();
        // DLQ uses a single partition: ordering across poison messages is
        // irrelevant and it simplifies drain/merge.
        let dlq = Arc::new(Topic::new(
            format!("{source_topic}.dlq"),
            TopicConfig {
                partitions: 1,
                retention_ms: 0, // poison messages never expire silently
                retention_bytes: 0,
                ..TopicConfig::lossless()
            },
        )?);
        Ok(DeadLetterQueue { source_topic, dlq })
    }

    pub fn source_topic(&self) -> &str {
        &self.source_topic
    }

    /// Park a message that cannot be processed. The classified reason,
    /// human-readable detail and source topic are recorded in headers for
    /// triage.
    pub fn park(&self, mut record: Record, reason: ParkReason, detail: &str, now: Timestamp) {
        record
            .headers
            .set(headers::DLQ_SOURCE, self.source_topic.clone());
        record.headers.set(headers::DLQ_REASON, reason.as_str());
        record.headers.set(headers::DLQ_DETAIL, detail);
        self.dlq
            .append_to(0, record, now)
            .expect("dlq partition 0 exists");
    }

    /// Number of currently parked messages.
    pub fn depth(&self) -> usize {
        self.dlq.partition(0).expect("partition 0").len()
    }

    /// Inspect parked messages without consuming them.
    pub fn peek(&self, max: usize) -> Vec<Record> {
        let log = self.dlq.partition(0).expect("partition 0");
        log.fetch(log.log_start_offset(), max)
            .map(|f| f.records.into_iter().map(|r| r.into_record()).collect())
            .unwrap_or_default()
    }

    /// Drop every parked message ("purged ... on demand by the users").
    pub fn purge(&self) -> usize {
        let log = self.dlq.partition(0).expect("partition 0");
        let n = log.len();
        log.truncate_all();
        n
    }

    /// Re-publish every parked message to the main topic for another
    /// processing attempt ("merged (i.e. retried) on demand"). The retry
    /// counter header is cleared so the consumer proxy's retry budget
    /// starts fresh. Returns how many messages were merged.
    pub fn merge(&self, endpoint: &dyn StreamEndpoint, now: Timestamp) -> Result<usize> {
        let log = self.dlq.partition(0).expect("partition 0");
        // a flaky endpoint is retried per record; only a persistently
        // failing send aborts the merge
        let policy = RetryPolicy::new(4).with_backoff_us(50, 2_000);
        let mut merged = 0;
        loop {
            // fetch the whole backlog so truncate_all below cannot drop
            // records that were never re-published
            let fetch = log.fetch(log.log_start_offset(), log.len().max(1))?;
            if fetch.records.is_empty() {
                break;
            }
            let mut records: Vec<Record> =
                fetch.records.into_iter().map(|r| r.into_record()).collect();
            for i in 0..records.len() {
                let mut record = records[i].clone();
                record.headers.set(headers::ATTEMPTS, "0");
                if let Err(e) =
                    policy.run(|_| endpoint.send(&self.source_topic, record.clone(), now))
                {
                    // drop exactly the re-published prefix and keep the
                    // unsent tail parked, so a later merge can neither
                    // duplicate nor lose records
                    log.truncate_all();
                    for rec in records.drain(i..) {
                        log.append(rec, now);
                    }
                    return Err(e);
                }
                merged += 1;
            }
            log.truncate_all();
        }
        Ok(merged)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{Cluster, ClusterConfig};
    use rtdi_common::Row;

    fn rec(i: i64) -> Record {
        Record::new(Row::new().with("i", i), i).with_key("k")
    }

    #[test]
    fn park_and_inspect() {
        let dlq = DeadLetterQueue::new("trips").unwrap();
        dlq.park(rec(1), ParkReason::Schema, "schema mismatch", 100);
        dlq.park(rec(2), ParkReason::Poison, "downstream 500", 101);
        assert_eq!(dlq.depth(), 2);
        let peeked = dlq.peek(10);
        assert_eq!(peeked.len(), 2);
        assert_eq!(peeked[0].headers.get(headers::DLQ_SOURCE), Some("trips"));
        assert_eq!(peeked[0].headers.get(headers::DLQ_REASON), Some("schema"));
        assert_eq!(
            peeked[0].headers.get(headers::DLQ_DETAIL),
            Some("schema mismatch")
        );
        assert_eq!(peeked[1].headers.get(headers::DLQ_REASON), Some("poison"));
        // peeking does not consume
        assert_eq!(dlq.depth(), 2);
    }

    #[test]
    fn park_reason_classification() {
        assert_eq!(
            ParkReason::classify(&Error::Unavailable("x".into())),
            ParkReason::RetriesExhausted
        );
        assert_eq!(
            ParkReason::classify(&Error::Timeout("x".into())),
            ParkReason::RetriesExhausted
        );
        assert_eq!(
            ParkReason::classify(&Error::Schema("bad field".into())),
            ParkReason::Schema
        );
        assert_eq!(
            ParkReason::classify(&Error::InvalidArgument("x".into())),
            ParkReason::Poison
        );
        // shed work parks as Overload even though Overloaded is
        // retryable — the Overloaded arm precedes the retryable one
        assert!(Error::Overloaded("q".into()).is_retryable());
        assert_eq!(
            ParkReason::classify(&Error::Overloaded("quota".into())),
            ParkReason::Overload
        );
        assert_eq!(
            ParkReason::classify(&Error::DeadlineExceeded("late".into())),
            ParkReason::Overload
        );
    }

    #[test]
    fn park_reason_round_trips_through_header_string() {
        for reason in [
            ParkReason::RetriesExhausted,
            ParkReason::Schema,
            ParkReason::Poison,
            ParkReason::Overload,
        ] {
            assert_eq!(ParkReason::parse(reason.as_str()), Some(reason));
        }
        assert_eq!(ParkReason::parse("gibberish"), None);
        // and through an actual parked record's headers
        let dlq = DeadLetterQueue::new("trips").unwrap();
        dlq.park(rec(1), ParkReason::Overload, "tenant over quota", 7);
        let parked = dlq.peek(1);
        let header = parked[0].headers.get(headers::DLQ_REASON).unwrap();
        assert_eq!(ParkReason::parse(header), Some(ParkReason::Overload));
    }

    #[test]
    fn purge_empties_queue() {
        let dlq = DeadLetterQueue::new("trips").unwrap();
        for i in 0..5 {
            dlq.park(rec(i), ParkReason::Poison, "x", 0);
        }
        assert_eq!(dlq.purge(), 5);
        assert_eq!(dlq.depth(), 0);
        assert_eq!(dlq.purge(), 0);
    }

    #[test]
    fn merge_republishes_to_source_topic() {
        let cluster = Cluster::new("c", ClusterConfig::default());
        cluster
            .create_topic("trips", TopicConfig::default().with_partitions(1))
            .unwrap();
        let dlq = DeadLetterQueue::new("trips").unwrap();
        for i in 0..3 {
            let mut r = rec(i);
            r.headers.set(headers::ATTEMPTS, "5");
            dlq.park(r, ParkReason::RetriesExhausted, "boom", 0);
        }
        let merged = dlq.merge(cluster.as_ref(), 50).unwrap();
        assert_eq!(merged, 3);
        assert_eq!(dlq.depth(), 0);
        let topic = cluster.topic("trips").unwrap();
        let records = topic.fetch(0, 0, 10).unwrap().records;
        assert_eq!(records.len(), 3);
        // retry budget reset
        assert_eq!(records[0].record.headers.get(headers::ATTEMPTS), Some("0"));
        // provenance retained
        assert_eq!(
            records[0].record.headers.get(headers::DLQ_SOURCE),
            Some("trips")
        );
    }

    /// Endpoint whose sends fail transiently according to a script of
    /// per-call failures.
    struct FlakyEndpoint {
        inner: Arc<Cluster>,
        failures_left: parking_lot::Mutex<usize>,
    }

    impl StreamEndpoint for FlakyEndpoint {
        fn send(&self, topic: &str, record: Record, now: Timestamp) -> Result<(usize, u64)> {
            let mut left = self.failures_left.lock();
            if *left > 0 {
                *left -= 1;
                return Err(Error::Unavailable("flaky".into()));
            }
            self.inner.produce(topic, record, now)
        }
        fn fetch(
            &self,
            topic: &str,
            partition: usize,
            offset: u64,
            max: usize,
        ) -> Result<crate::log::FetchResult> {
            self.inner.topic(topic)?.fetch(partition, offset, max)
        }
        fn num_partitions(&self, topic: &str) -> Result<usize> {
            Ok(self.inner.topic(topic)?.num_partitions())
        }
    }

    #[test]
    fn merge_retries_flaky_endpoint_without_duplicates() {
        let cluster = Cluster::new("c", ClusterConfig::default());
        cluster
            .create_topic("trips", TopicConfig::default().with_partitions(1))
            .unwrap();
        let dlq = DeadLetterQueue::new("trips").unwrap();
        for i in 0..5 {
            dlq.park(rec(i), ParkReason::RetriesExhausted, "boom", 0);
        }
        // the first record's send fails 3 times and succeeds on the 4th
        // attempt, inside the per-record retry budget
        let flaky = FlakyEndpoint {
            inner: cluster.clone(),
            failures_left: parking_lot::Mutex::new(3),
        };
        assert_eq!(dlq.merge(&flaky, 10).unwrap(), 5);
        assert_eq!(dlq.depth(), 0);
        let records = cluster
            .topic("trips")
            .unwrap()
            .fetch(0, 0, 100)
            .unwrap()
            .records;
        assert_eq!(records.len(), 5, "each record republished exactly once");
        let ids: Vec<Option<i64>> = records
            .iter()
            .map(|r| r.record.value.get_int("i"))
            .collect();
        assert_eq!(ids, vec![Some(0), Some(1), Some(2), Some(3), Some(4)]);
    }

    #[test]
    fn merge_aborts_without_losing_or_duplicating_on_persistent_failure() {
        let cluster = Cluster::new("c", ClusterConfig::default());
        cluster
            .create_topic("trips", TopicConfig::default().with_partitions(1))
            .unwrap();
        let dlq = DeadLetterQueue::new("trips").unwrap();
        for i in 0..4 {
            dlq.park(rec(i), ParkReason::RetriesExhausted, "boom", 0);
        }
        // every send fails: the merge aborts on the first record and the
        // whole backlog must remain parked, nothing published
        let broken = FlakyEndpoint {
            inner: cluster.clone(),
            failures_left: parking_lot::Mutex::new(usize::MAX),
        };
        assert!(dlq.merge(&broken, 10).is_err());
        let published = cluster
            .topic("trips")
            .unwrap()
            .fetch(0, 0, 100)
            .unwrap()
            .records;
        assert!(published.is_empty());
        assert_eq!(dlq.depth(), 4);
        let again = FlakyEndpoint {
            inner: cluster.clone(),
            failures_left: parking_lot::Mutex::new(0),
        };
        assert_eq!(dlq.merge(&again, 20).unwrap(), 4);
        assert_eq!(dlq.depth(), 0);
        let records = cluster
            .topic("trips")
            .unwrap()
            .fetch(0, 0, 100)
            .unwrap()
            .records;
        assert_eq!(records.len(), 4, "no duplicates after retried merge");
    }

    #[test]
    fn merge_keeps_unsent_tail_when_endpoint_dies_mid_merge() {
        use rtdi_common::chaos::{self, FaultKind, FaultPlan, FaultPoint, Trigger};
        let _g = chaos::test_guard();
        chaos::registry().reset(0xD1);
        let cluster = Cluster::new("c", ClusterConfig::default());
        cluster
            .create_topic("trips", TopicConfig::default().with_partitions(1))
            .unwrap();
        let dlq = DeadLetterQueue::new("trips").unwrap();
        for i in 0..4 {
            dlq.park(rec(i), ParkReason::RetriesExhausted, "boom", 0);
        }
        // the stream endpoint accepts the first 2 appends, then the
        // cluster edge goes hard-down
        chaos::registry().arm(
            FaultPoint::StreamAppend,
            FaultPlan::fail(FaultKind::Unavailable, Trigger::Always).with_burst(2, None),
        );
        assert!(dlq.merge(cluster.as_ref(), 10).is_err());
        chaos::registry().disarm_all();
        // exactly the sent prefix was dropped from the DLQ...
        let published = cluster
            .topic("trips")
            .unwrap()
            .fetch(0, 0, 100)
            .unwrap()
            .records;
        assert_eq!(published.len(), 2);
        assert_eq!(dlq.depth(), 2);
        // ...and a later merge completes the tail with no duplicates
        assert_eq!(dlq.merge(cluster.as_ref(), 20).unwrap(), 2);
        assert_eq!(dlq.depth(), 0);
        let all = cluster
            .topic("trips")
            .unwrap()
            .fetch(0, 0, 100)
            .unwrap()
            .records;
        let mut ids: Vec<i64> = all
            .iter()
            .filter_map(|r| r.record.value.get_int("i"))
            .collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 1, 2, 3]);
    }
}
