//! Dead letter queues (§4.1.2).
//!
//! "If a consumer of the topic cannot process a message with several
//! retries, it will publish that message to the dead letter topic. The
//! messages in the dead letter topic can be purged or merged (i.e.
//! retried) on demand by the users. This way, the unprocessed messages
//! remain separate and therefore are unable to impede live traffic."

use crate::producer::StreamEndpoint;
use crate::topic::{Topic, TopicConfig};
use rtdi_common::record::headers;
use rtdi_common::{Record, Result, Timestamp};
use std::sync::Arc;

/// The dead-letter companion of a main topic.
pub struct DeadLetterQueue {
    /// Name of the topic whose poison messages land here.
    source_topic: String,
    dlq: Arc<Topic>,
}

impl DeadLetterQueue {
    pub fn new(source_topic: impl Into<String>) -> Result<Self> {
        let source_topic = source_topic.into();
        // DLQ uses a single partition: ordering across poison messages is
        // irrelevant and it simplifies drain/merge.
        let dlq = Arc::new(Topic::new(
            format!("{source_topic}.dlq"),
            TopicConfig {
                partitions: 1,
                retention_ms: 0, // poison messages never expire silently
                retention_bytes: 0,
                ..TopicConfig::lossless()
            },
        )?);
        Ok(DeadLetterQueue { source_topic, dlq })
    }

    pub fn source_topic(&self) -> &str {
        &self.source_topic
    }

    /// Park a message that exhausted its retries. The failure reason and
    /// source topic are recorded in headers for triage.
    pub fn park(&self, mut record: Record, reason: &str, now: Timestamp) {
        record
            .headers
            .set(headers::DLQ_SOURCE, self.source_topic.clone());
        record.headers.set("rtdi.dlq_reason", reason);
        self.dlq
            .append_to(0, record, now)
            .expect("dlq partition 0 exists");
    }

    /// Number of currently parked messages.
    pub fn depth(&self) -> usize {
        self.dlq.partition(0).expect("partition 0").len()
    }

    /// Inspect parked messages without consuming them.
    pub fn peek(&self, max: usize) -> Vec<Record> {
        let log = self.dlq.partition(0).expect("partition 0");
        log.fetch(log.log_start_offset(), max)
            .map(|f| f.records.into_iter().map(|r| r.into_record()).collect())
            .unwrap_or_default()
    }

    /// Drop every parked message ("purged ... on demand by the users").
    pub fn purge(&self) -> usize {
        let log = self.dlq.partition(0).expect("partition 0");
        let n = log.len();
        log.truncate_all();
        n
    }

    /// Re-publish every parked message to the main topic for another
    /// processing attempt ("merged (i.e. retried) on demand"). The retry
    /// counter header is cleared so the consumer proxy's retry budget
    /// starts fresh. Returns how many messages were merged.
    pub fn merge(&self, endpoint: &dyn StreamEndpoint, now: Timestamp) -> Result<usize> {
        let log = self.dlq.partition(0).expect("partition 0");
        let mut merged = 0;
        loop {
            let fetch = log.fetch(log.log_start_offset(), 1024)?;
            if fetch.records.is_empty() {
                break;
            }
            let count = fetch.records.len();
            for rec in fetch.records {
                let mut record = rec.into_record();
                record.headers.set(headers::ATTEMPTS, "0");
                endpoint.send(&self.source_topic, record, now)?;
            }
            // only drop from the DLQ after successful re-publish
            for _ in 0..count {
                // truncate the merged prefix by advancing retention manually
            }
            log.truncate_all();
            merged += count;
        }
        Ok(merged)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{Cluster, ClusterConfig};
    use rtdi_common::Row;

    fn rec(i: i64) -> Record {
        Record::new(Row::new().with("i", i), i).with_key("k")
    }

    #[test]
    fn park_and_inspect() {
        let dlq = DeadLetterQueue::new("trips").unwrap();
        dlq.park(rec(1), "schema mismatch", 100);
        dlq.park(rec(2), "downstream 500", 101);
        assert_eq!(dlq.depth(), 2);
        let peeked = dlq.peek(10);
        assert_eq!(peeked.len(), 2);
        assert_eq!(peeked[0].headers.get(headers::DLQ_SOURCE), Some("trips"));
        assert_eq!(
            peeked[0].headers.get("rtdi.dlq_reason"),
            Some("schema mismatch")
        );
        // peeking does not consume
        assert_eq!(dlq.depth(), 2);
    }

    #[test]
    fn purge_empties_queue() {
        let dlq = DeadLetterQueue::new("trips").unwrap();
        for i in 0..5 {
            dlq.park(rec(i), "x", 0);
        }
        assert_eq!(dlq.purge(), 5);
        assert_eq!(dlq.depth(), 0);
        assert_eq!(dlq.purge(), 0);
    }

    #[test]
    fn merge_republishes_to_source_topic() {
        let cluster = Cluster::new("c", ClusterConfig::default());
        cluster
            .create_topic("trips", TopicConfig::default().with_partitions(1))
            .unwrap();
        let dlq = DeadLetterQueue::new("trips").unwrap();
        for i in 0..3 {
            let mut r = rec(i);
            r.headers.set(headers::ATTEMPTS, "5");
            dlq.park(r, "boom", 0);
        }
        let merged = dlq.merge(cluster.as_ref(), 50).unwrap();
        assert_eq!(merged, 3);
        assert_eq!(dlq.depth(), 0);
        let topic = cluster.topic("trips").unwrap();
        let records = topic.fetch(0, 0, 10).unwrap().records;
        assert_eq!(records.len(), 3);
        // retry budget reset
        assert_eq!(records[0].record.headers.get(headers::ATTEMPTS), Some("0"));
        // provenance retained
        assert_eq!(
            records[0].record.headers.get(headers::DLQ_SOURCE),
            Some("trips")
        );
    }
}
