//! Partitioned append-only log — the storage heart of the streaming layer.
//!
//! Each partition is an ordered sequence of records with monotonically
//! increasing offsets. Retention trims the head by time or size (the paper
//! limits Kafka retention "to only a few days" (§7), which is why Kappa
//! backfill is infeasible and Kappa+ reads the archive instead).

use parking_lot::RwLock;
use rtdi_common::{Error, Record, Result, Timestamp};
use std::collections::VecDeque;
use std::sync::Arc;

/// A record paired with its log offset. The record is shared with the
/// log's own storage (and every other consumer fetching the same offset),
/// so a fetch costs an `Arc` bump per record instead of a deep clone.
#[derive(Debug, Clone, PartialEq)]
pub struct OffsetRecord {
    pub offset: u64,
    pub record: Arc<Record>,
}

impl OffsetRecord {
    /// Take ownership of the record, cloning only if other holders remain.
    pub fn into_record(self) -> Record {
        Arc::try_unwrap(self.record).unwrap_or_else(|a| (*a).clone())
    }
}

/// Result of a fetch: records plus the high watermark (next offset to be
/// assigned) so consumers can compute lag.
#[derive(Debug, Clone)]
pub struct FetchResult {
    pub records: Vec<OffsetRecord>,
    pub high_watermark: u64,
    pub log_start_offset: u64,
}

#[derive(Debug)]
struct LogInner {
    /// Offset of `entries[0]`.
    base_offset: u64,
    entries: VecDeque<(Timestamp, Arc<Record>)>,
    bytes: usize,
}

/// One partition's log. Thread-safe; appends and fetches may interleave.
#[derive(Debug)]
pub struct PartitionLog {
    inner: RwLock<LogInner>,
    retention_ms: i64,
    retention_bytes: usize,
}

impl PartitionLog {
    /// `retention_ms`/`retention_bytes` of 0 mean unlimited.
    pub fn new(retention_ms: i64, retention_bytes: usize) -> Self {
        PartitionLog {
            inner: RwLock::new(LogInner {
                base_offset: 0,
                entries: VecDeque::new(),
                bytes: 0,
            }),
            retention_ms,
            retention_bytes,
        }
    }

    /// Append a record, returning its offset. `now` drives time-based
    /// retention (the record's own event time can be older).
    pub fn append(&self, record: Record, now: Timestamp) -> u64 {
        let mut inner = self.inner.write();
        let offset = inner.base_offset + inner.entries.len() as u64;
        inner.bytes += record.approx_bytes();
        inner.entries.push_back((now, Arc::new(record)));
        self.enforce_retention(&mut inner, now);
        offset
    }

    /// Append a batch; returns the offset of the first record.
    pub fn append_batch(&self, records: Vec<Record>, now: Timestamp) -> u64 {
        let mut inner = self.inner.write();
        let first = inner.base_offset + inner.entries.len() as u64;
        inner.entries.reserve(records.len());
        for r in records {
            inner.bytes += r.approx_bytes();
            inner.entries.push_back((now, Arc::new(r)));
        }
        self.enforce_retention(&mut inner, now);
        first
    }

    fn enforce_retention(&self, inner: &mut LogInner, now: Timestamp) {
        if self.retention_ms > 0 {
            let cutoff = now - self.retention_ms;
            while let Some((t, _)) = inner.entries.front() {
                if *t < cutoff {
                    let (_, r) = inner.entries.pop_front().expect("front checked");
                    inner.bytes -= r.approx_bytes();
                    inner.base_offset += 1;
                } else {
                    break;
                }
            }
        }
        if self.retention_bytes > 0 {
            while inner.bytes > self.retention_bytes && inner.entries.len() > 1 {
                let (_, r) = inner.entries.pop_front().expect("len checked");
                inner.bytes -= r.approx_bytes();
                inner.base_offset += 1;
            }
        }
    }

    /// Fetch up to `max` records starting at `offset`.
    ///
    /// Fetching below the log start returns `OffsetOutOfRange` — this is
    /// the situation that forces consumers to choose between earliest
    /// (huge backlog) and latest (data loss) and motivates the offset-sync
    /// service of §6. Fetching at or above the high watermark returns an
    /// empty result.
    pub fn fetch(&self, offset: u64, max: usize) -> Result<FetchResult> {
        let inner = self.inner.read();
        let high = inner.base_offset + inner.entries.len() as u64;
        if offset < inner.base_offset {
            return Err(Error::OffsetOutOfRange {
                requested: offset,
                low: inner.base_offset,
                high,
            });
        }
        let start = (offset - inner.base_offset) as usize;
        let records = inner
            .entries
            .iter()
            .skip(start)
            .take(max)
            .enumerate()
            .map(|(i, (_, r))| OffsetRecord {
                offset: offset + i as u64,
                record: Arc::clone(r),
            })
            .collect();
        Ok(FetchResult {
            records,
            high_watermark: high,
            log_start_offset: inner.base_offset,
        })
    }

    /// Fetch up to `max` records starting at `offset`, but never at or
    /// past `visible_end` — the replicated partition's committed high
    /// watermark. The reported high watermark is capped the same way, so
    /// consumers compute lag against committed data only and never
    /// observe records the ISR has not acknowledged.
    pub fn fetch_capped(&self, offset: u64, max: usize, visible_end: u64) -> Result<FetchResult> {
        let inner = self.inner.read();
        let end = (inner.base_offset + inner.entries.len() as u64).min(visible_end);
        if offset < inner.base_offset {
            return Err(Error::OffsetOutOfRange {
                requested: offset,
                low: inner.base_offset,
                high: end,
            });
        }
        let take = if offset >= end {
            0
        } else {
            ((end - offset) as usize).min(max)
        };
        let start = (offset - inner.base_offset) as usize;
        let records = inner
            .entries
            .iter()
            .skip(start)
            .take(take)
            .enumerate()
            .map(|(i, (_, r))| OffsetRecord {
                offset: offset + i as u64,
                record: Arc::clone(r),
            })
            .collect();
        Ok(FetchResult {
            records,
            high_watermark: end,
            log_start_offset: inner.base_offset,
        })
    }

    /// Drop every record at or above `end_offset` — the uncommitted tail
    /// a newly elected leader never replicated. Returns how many records
    /// were dropped. No-op when `end_offset` is at or past the log end.
    /// Leader failover only truncates above the committed high watermark,
    /// so committed records are never touched.
    pub fn truncate_to(&self, end_offset: u64) -> u64 {
        let mut inner = self.inner.write();
        let hwm = inner.base_offset + inner.entries.len() as u64;
        if end_offset >= hwm {
            return 0;
        }
        let keep = end_offset.saturating_sub(inner.base_offset) as usize;
        let mut dropped = 0u64;
        while inner.entries.len() > keep {
            let (_, r) = inner.entries.pop_back().expect("len checked");
            inner.bytes -= r.approx_bytes();
            dropped += 1;
        }
        dropped
    }

    /// How long the record at `offset` has been sitting in the log
    /// (`now` minus its append time) — the broker-side component of
    /// end-to-end freshness. `None` if the offset is not retained.
    pub fn queue_dwell_at(&self, offset: u64, now: Timestamp) -> Option<i64> {
        let inner = self.inner.read();
        let idx = offset.checked_sub(inner.base_offset)? as usize;
        inner
            .entries
            .get(idx)
            .map(|(appended, _)| (now - appended).max(0))
    }

    /// Next offset that will be assigned (a.k.a. log end offset / high
    /// watermark in this single-replica model).
    pub fn high_watermark(&self) -> u64 {
        let inner = self.inner.read();
        inner.base_offset + inner.entries.len() as u64
    }

    /// Earliest retained offset.
    pub fn log_start_offset(&self) -> u64 {
        self.inner.read().base_offset
    }

    pub fn len(&self) -> usize {
        self.inner.read().entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.inner.read().entries.is_empty()
    }

    pub fn bytes(&self) -> usize {
        self.inner.read().bytes
    }

    /// Set the base offset of an *empty* log. Used by offset-preserving
    /// topic migration (§4.1.1): the destination partition starts at the
    /// source's log start so absolute consumer offsets stay valid across
    /// the redirect.
    pub fn advance_base_to(&self, offset: u64) -> Result<()> {
        let mut inner = self.inner.write();
        if !inner.entries.is_empty() {
            return Err(Error::InvalidArgument(
                "advance_base_to requires an empty log".into(),
            ));
        }
        if offset < inner.base_offset {
            return Err(Error::InvalidArgument(
                "base offset may not move backwards".into(),
            ));
        }
        inner.base_offset = offset;
        Ok(())
    }

    /// Remove and return the head records whose *append* time is older
    /// than `cutoff`, advancing the log start past them. The tiered-storage
    /// extension (§11) uses this to move cold data to the object store
    /// instead of deleting it the way time retention does.
    pub fn drain_head_older_than(&self, cutoff: Timestamp) -> Vec<Record> {
        let mut inner = self.inner.write();
        let mut out = Vec::new();
        while let Some((t, _)) = inner.entries.front() {
            if *t < cutoff {
                let (_, r) = inner.entries.pop_front().expect("front checked");
                inner.bytes -= r.approx_bytes();
                inner.base_offset += 1;
                out.push(Arc::try_unwrap(r).unwrap_or_else(|a| (*a).clone()));
            } else {
                break;
            }
        }
        out
    }

    /// Drop every retained record, advancing the log start to the high
    /// watermark. Used by DLQ purge (§4.1.2).
    pub fn truncate_all(&self) {
        let mut inner = self.inner.write();
        inner.base_offset += inner.entries.len() as u64;
        inner.entries.clear();
        inner.bytes = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtdi_common::Row;

    fn rec(i: i64) -> Record {
        Record::new(Row::new().with("i", i), i)
    }

    #[test]
    fn offsets_are_monotonic() {
        let log = PartitionLog::new(0, 0);
        for i in 0..10 {
            assert_eq!(log.append(rec(i), i), i as u64);
        }
        assert_eq!(log.high_watermark(), 10);
        assert_eq!(log.log_start_offset(), 0);
    }

    #[test]
    fn fetch_returns_requested_window() {
        let log = PartitionLog::new(0, 0);
        for i in 0..100 {
            log.append(rec(i), i);
        }
        let fr = log.fetch(10, 5).unwrap();
        assert_eq!(fr.records.len(), 5);
        assert_eq!(fr.records[0].offset, 10);
        assert_eq!(fr.records[0].record.value.get_int("i"), Some(10));
        assert_eq!(fr.high_watermark, 100);
        // fetch at high watermark: empty, not error
        let fr = log.fetch(100, 5).unwrap();
        assert!(fr.records.is_empty());
        // beyond: also empty (consumer will retry)
        assert!(log.fetch(150, 5).unwrap().records.is_empty());
    }

    #[test]
    fn fetch_capped_hides_uncommitted_tail() {
        let log = PartitionLog::new(0, 0);
        for i in 0..10 {
            log.append(rec(i), i);
        }
        // only offsets < 6 are committed
        let fr = log.fetch_capped(4, 100, 6).unwrap();
        assert_eq!(fr.records.len(), 2);
        assert_eq!(fr.high_watermark, 6, "visible hwm is the cap");
        assert!(log.fetch_capped(6, 100, 6).unwrap().records.is_empty());
        // cap above log end clamps to log end
        assert_eq!(log.fetch_capped(0, 100, 99).unwrap().records.len(), 10);
        // below log start still errors
        log.truncate_all();
        assert!(log.fetch_capped(0, 10, 99).is_err());
    }

    #[test]
    fn truncate_to_drops_only_the_tail() {
        let log = PartitionLog::new(0, 0);
        for i in 0..10 {
            log.append(rec(i), i);
        }
        assert_eq!(log.truncate_to(7), 3);
        assert_eq!(log.high_watermark(), 7);
        let fr = log.fetch(0, 100).unwrap();
        assert_eq!(fr.records.len(), 7);
        assert_eq!(
            fr.records.last().unwrap().record.value.get_int("i"),
            Some(6)
        );
        // truncating at/after the end is a no-op
        assert_eq!(log.truncate_to(7), 0);
        assert_eq!(log.truncate_to(100), 0);
        // appends continue from the truncation point
        assert_eq!(log.append(rec(77), 77), 7);
    }

    #[test]
    fn time_retention_trims_head() {
        let log = PartitionLog::new(1000, 0);
        for i in 0..10 {
            log.append(rec(i), i * 100); // appended at t=0..900
        }
        // appending at t=2000 expires everything older than t=1000
        log.append(rec(99), 2000);
        assert!(
            log.log_start_offset() >= 10,
            "start={}",
            log.log_start_offset()
        );
        let err = log.fetch(0, 10).unwrap_err();
        assert!(matches!(err, Error::OffsetOutOfRange { .. }));
        // the retained tail is still fetchable
        let fr = log.fetch(log.log_start_offset(), 10).unwrap();
        assert_eq!(
            fr.records.last().unwrap().record.value.get_int("i"),
            Some(99)
        );
    }

    #[test]
    fn size_retention_bounds_bytes() {
        let log = PartitionLog::new(0, 2_000);
        for i in 0..1000 {
            log.append(rec(i), 0);
        }
        assert!(log.bytes() <= 2_000 + 200, "bytes={}", log.bytes());
        assert!(log.log_start_offset() > 0);
        assert_eq!(log.high_watermark(), 1000);
    }

    #[test]
    fn queue_dwell_measures_time_since_append() {
        let log = PartitionLog::new(0, 0);
        log.append(rec(0), 1_000);
        log.append(rec(1), 1_500);
        assert_eq!(log.queue_dwell_at(0, 2_000), Some(1_000));
        assert_eq!(log.queue_dwell_at(1, 2_000), Some(500));
        // not yet appended / trimmed offsets have no dwell
        assert_eq!(log.queue_dwell_at(2, 2_000), None);
        log.truncate_all();
        assert_eq!(log.queue_dwell_at(0, 2_000), None);
    }

    #[test]
    fn batch_append_assigns_contiguous_offsets() {
        let log = PartitionLog::new(0, 0);
        let first = log.append_batch((0..5).map(rec).collect(), 0);
        assert_eq!(first, 0);
        let second = log.append_batch((5..8).map(rec).collect(), 0);
        assert_eq!(second, 5);
        assert_eq!(log.high_watermark(), 8);
        let fr = log.fetch(0, 100).unwrap();
        let seq: Vec<u64> = fr.records.iter().map(|r| r.offset).collect();
        assert_eq!(seq, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn concurrent_appends_never_lose_records() {
        use std::sync::Arc;
        let log = Arc::new(PartitionLog::new(0, 0));
        let mut handles = Vec::new();
        for t in 0..8 {
            let log = log.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..1000 {
                    log.append(rec(t * 1000 + i), 0);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(log.high_watermark(), 8000);
        assert_eq!(log.fetch(0, 10_000).unwrap().records.len(), 8000);
    }
}
