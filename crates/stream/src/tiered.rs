//! Tiered log storage — the §11 future-work item, implemented.
//!
//! "Storage tiering improves both cost efficiency by storing colder data
//! in a cheaper storage medium as well as elasticity by separating data
//! storage and serving layers. We are actively investigating tiered
//! storage solutions for both Kafka and Pinot."
//!
//! [`TieredLog`] keeps a hot in-memory [`PartitionLog`] for the serving
//! path and offloads cold head records into immutable chunk objects in the
//! archive. Fetches below the hot log's start transparently read from the
//! cold tier, so consumers see one continuous offset space — which also
//! removes the retention wall that made Kappa backfills impossible (§7):
//! with tiering, "retention" becomes a cost knob instead of a data-loss
//! cliff.

use crate::log::{FetchResult, OffsetRecord, PartitionLog};
use parking_lot::RwLock;
use rtdi_common::{Error, Record, Result, Timestamp};
use rtdi_storage::archival::{decode_raw, encode_raw};
use rtdi_storage::object::ObjectStore;
use std::sync::Arc;

/// Index entry for one cold chunk object.
#[derive(Debug, Clone)]
struct ColdChunk {
    base_offset: u64,
    count: u64,
    key: String,
}

/// A partition log with a hot in-memory tier and a cold object-store tier.
pub struct TieredLog {
    hot: PartitionLog,
    store: Arc<dyn ObjectStore>,
    prefix: String,
    cold: RwLock<Vec<ColdChunk>>,
}

impl TieredLog {
    /// `prefix` namespaces this partition's chunks in the object store,
    /// e.g. `tiered/trips/0`.
    pub fn new(store: Arc<dyn ObjectStore>, prefix: impl Into<String>) -> Self {
        TieredLog {
            // the hot tier never time/size-trims on its own: tiering owns
            // data movement
            hot: PartitionLog::new(0, 0),
            store,
            prefix: prefix.into(),
            cold: RwLock::new(Vec::new()),
        }
    }

    pub fn append(&self, record: Record, now: Timestamp) -> u64 {
        self.hot.append(record, now)
    }

    /// Move records appended before `cutoff` into a cold chunk. Returns
    /// how many records were offloaded.
    pub fn offload_older_than(&self, cutoff: Timestamp) -> Result<usize> {
        let base = self.hot.log_start_offset();
        let drained = self.hot.drain_head_older_than(cutoff);
        if drained.is_empty() {
            return Ok(0);
        }
        let count = drained.len() as u64;
        let key = format!("{}/chunk-{base:012}", self.prefix);
        self.store.put(&key, encode_raw(&drained)?)?;
        self.cold.write().push(ColdChunk {
            base_offset: base,
            count,
            key,
        });
        Ok(drained.len())
    }

    /// Fetch with a continuous offset space across both tiers.
    pub fn fetch(&self, offset: u64, max: usize) -> Result<FetchResult> {
        let hot_start = self.hot.log_start_offset();
        if offset >= hot_start {
            return self.hot.fetch(offset, max);
        }
        // cold read: locate the chunk containing `offset`
        let chunk = {
            let cold = self.cold.read();
            let idx = cold.partition_point(|c| c.base_offset <= offset);
            if idx == 0 {
                return Err(Error::OffsetOutOfRange {
                    requested: offset,
                    low: self.log_start_offset(),
                    high: self.hot.high_watermark(),
                });
            }
            cold[idx - 1].clone()
        };
        if offset >= chunk.base_offset + chunk.count {
            return Err(Error::Internal(format!(
                "cold chunk gap at offset {offset} (chunk {} + {})",
                chunk.base_offset, chunk.count
            )));
        }
        let data = self.store.get(&chunk.key)?;
        let records = decode_raw(&data)?;
        let skip = (offset - chunk.base_offset) as usize;
        let out: Vec<OffsetRecord> = records
            .into_iter()
            .enumerate()
            .skip(skip)
            .take(max)
            .map(|(i, record)| OffsetRecord {
                offset: chunk.base_offset + i as u64,
                record: std::sync::Arc::new(record),
            })
            .collect();
        Ok(FetchResult {
            records: out,
            high_watermark: self.hot.high_watermark(),
            log_start_offset: self.log_start_offset(),
        })
    }

    /// Earliest offset across both tiers.
    pub fn log_start_offset(&self) -> u64 {
        self.cold
            .read()
            .first()
            .map(|c| c.base_offset)
            .unwrap_or_else(|| self.hot.log_start_offset())
    }

    pub fn high_watermark(&self) -> u64 {
        self.hot.high_watermark()
    }

    /// Bytes held in expensive hot memory — the cost-efficiency metric
    /// tiering optimizes.
    pub fn hot_bytes(&self) -> usize {
        self.hot.bytes()
    }

    /// Records currently in the cold tier.
    pub fn cold_records(&self) -> u64 {
        self.cold.read().iter().map(|c| c.count).sum()
    }

    /// Permanently expire cold chunks older than `min_offset` (true
    /// deletion — the cost knob).
    pub fn expire_cold_before(&self, min_offset: u64) -> Result<usize> {
        let mut cold = self.cold.write();
        let mut removed = 0;
        while let Some(first) = cold.first() {
            if first.base_offset + first.count <= min_offset {
                self.store.delete(&first.key)?;
                removed += first.count as usize;
                cold.remove(0);
            } else {
                break;
            }
        }
        Ok(removed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtdi_common::Row;
    use rtdi_storage::object::InMemoryStore;

    fn rec(i: i64) -> Record {
        Record::new(Row::new().with("i", i).with("pad", "x".repeat(50)), i)
    }

    fn tiered() -> (TieredLog, Arc<InMemoryStore>) {
        let store = Arc::new(InMemoryStore::new());
        let log = TieredLog::new(store.clone(), "tiered/trips/0");
        (log, store)
    }

    #[test]
    fn offsets_continuous_across_tiers() {
        let (log, _) = tiered();
        for i in 0..100 {
            log.append(rec(i), i); // append time = i
        }
        // offload everything appended before t=60
        assert_eq!(log.offload_older_than(60).unwrap(), 60);
        assert_eq!(log.log_start_offset(), 0);
        assert_eq!(log.high_watermark(), 100);
        // hot read
        let hot = log.fetch(80, 10).unwrap();
        assert_eq!(hot.records[0].offset, 80);
        assert_eq!(hot.records[0].record.value.get_int("i"), Some(80));
        // cold read, transparent
        let cold = log.fetch(10, 10).unwrap();
        assert_eq!(cold.records.len(), 10);
        assert_eq!(cold.records[0].offset, 10);
        assert_eq!(cold.records[9].record.value.get_int("i"), Some(19));
        // a sequential consumer can walk the boundary
        let mut pos = 0u64;
        let mut seen = 0;
        loop {
            let f = log.fetch(pos, 7).unwrap();
            if f.records.is_empty() {
                break;
            }
            for r in &f.records {
                assert_eq!(r.offset, pos);
                pos += 1;
                seen += 1;
            }
        }
        assert_eq!(seen, 100);
    }

    #[test]
    fn hot_memory_shrinks_history_remains() {
        let (log, store) = tiered();
        for i in 0..1000 {
            log.append(rec(i), i);
        }
        let before = log.hot_bytes();
        log.offload_older_than(900).unwrap();
        let after = log.hot_bytes();
        assert!(
            after * 5 < before,
            "hot tier should shrink: {before} -> {after}"
        );
        assert_eq!(log.cold_records(), 900);
        assert!(store.stored_bytes() > 0);
        // the full history is still served
        assert_eq!(log.fetch(0, 5).unwrap().records.len(), 5);
    }

    #[test]
    fn multiple_offload_rounds_chunk_correctly() {
        let (log, _) = tiered();
        for i in 0..30 {
            log.append(rec(i), i);
        }
        assert_eq!(log.offload_older_than(10).unwrap(), 10);
        for i in 30..60 {
            log.append(rec(i), i);
        }
        assert_eq!(log.offload_older_than(40).unwrap(), 30);
        assert_eq!(log.offload_older_than(40).unwrap(), 0); // idempotent
                                                            // reads spanning chunk boundaries
        for offset in [0u64, 9, 10, 25, 39, 40] {
            let f = log.fetch(offset, 1).unwrap();
            assert_eq!(f.records[0].offset, offset, "offset {offset}");
            assert_eq!(f.records[0].record.value.get_int("i"), Some(offset as i64));
        }
    }

    #[test]
    fn cold_expiry_is_the_cost_knob() {
        let (log, store) = tiered();
        for i in 0..100 {
            log.append(rec(i), i);
        }
        log.offload_older_than(50).unwrap();
        for i in 100..200 {
            log.append(rec(i), i);
        }
        log.offload_older_than(150).unwrap();
        assert_eq!(log.cold_records(), 150);
        let objects_before = store.object_count();
        // expire the first chunk only
        let removed = log.expire_cold_before(50).unwrap();
        assert_eq!(removed, 50);
        assert_eq!(log.cold_records(), 100);
        assert!(store.object_count() < objects_before);
        assert_eq!(log.log_start_offset(), 50);
        // reading expired offsets now errors like retention did
        assert!(matches!(
            log.fetch(0, 1),
            Err(Error::OffsetOutOfRange { .. })
        ));
        assert!(log.fetch(50, 1).is_ok());
    }

    #[test]
    fn tiering_reenables_old_data_replay() {
        // the §7 motivation inverted: with tiering, a "Kappa" style replay
        // of week-old data from the log itself works again
        let (log, _) = tiered();
        let day = 86_400_000i64;
        for d in 0..7i64 {
            for i in 0..100 {
                log.append(rec(d * day + i), d * day + i);
            }
            // nightly offload of everything older than 2 days
            log.offload_older_than((d - 2) * day).unwrap();
        }
        // replay from the very beginning — impossible with plain retention
        let f = log.fetch(0, 10).unwrap();
        assert_eq!(f.records.len(), 10);
        assert_eq!(f.records[0].record.value.get_int("i"), Some(0));
    }
}
