//! # rtdi-stream
//!
//! The streaming-storage layer — the Apache Kafka stand-in of §4.1 — plus
//! every enhancement the paper layers on top of it:
//!
//! - [`log`], [`topic`], [`cluster`]: partitioned append-only logs,
//!   topics with per-use-case configs (lossless vs high-throughput),
//!   multi-node clusters with failure injection;
//! - [`replica`] (§4.1): per-partition replica sets with ISR tracking,
//!   acks-all commit semantics and leader failover, driven by the shared
//!   heartbeat membership view (`rtdi_common::membership`);
//! - [`producer`], [`consumer`]: at-least-once producers with batching and
//!   acks, consumer groups with offset commits and rebalancing;
//! - [`federation`] (§4.1.1): the logical-cluster metadata server that
//!   routes topics across physical clusters, scales out by adding
//!   clusters, and migrates topics without consumer restarts;
//! - [`dlq`] (§4.1.2): dead letter queues with purge/merge;
//! - [`proxy`] (§4.1.3): the consumer proxy that turns polling into
//!   push-based dispatch with retries, DLQ hand-off and parallelism beyond
//!   the partition count;
//! - [`replicator`] (§4.1.4): uReplicator-style cross-cluster replication
//!   with sticky rebalancing, standby workers and offset mapping
//!   checkpoints;
//! - [`chaperone`] (§4.1.4): end-to-end audit of per-window message counts
//!   across pipeline stages with loss/duplicate alerting.

pub mod chaperone;
pub mod cluster;
pub mod consumer;
pub mod dlq;
pub mod federation;
pub mod log;
pub mod producer;
pub mod proxy;
pub mod replica;
pub mod replicator;
pub mod tiered;
pub mod topic;

pub use cluster::{Cluster, ClusterConfig};
pub use consumer::{ConsumerGroup, TopicSubscription};
pub use dlq::DeadLetterQueue;
pub use federation::{FederatedCluster, FederationMetadata};
pub use log::{FetchResult, OffsetRecord, PartitionLog};
pub use producer::Producer;
pub use proxy::{ConsumerProxy, ConsumerService, DispatchMode, ProxyConfig};
pub use replica::{FailoverEvent, ReplicaSet, ReplicaStatus};
pub use tiered::TieredLog;
pub use topic::{Topic, TopicConfig};
