//! Consumer groups with offset management and rebalancing.
//!
//! Implements the open-source Kafka consumption model the paper builds on:
//! partitions are divided among group members (capping parallelism at the
//! partition count — the limitation §4.1.3's consumer proxy removes),
//! offsets are committed per partition, and uncommitted progress is
//! replayed after a rebalance (at-least-once).
//!
//! [`TopicSubscription`] is the level of indirection federation (§4.1.1)
//! uses to redirect a live consumer to another physical cluster without an
//! application restart.

use crate::log::OffsetRecord;
use crate::topic::Topic;
use parking_lot::RwLock;
use rtdi_common::{Error, Result};
use std::collections::BTreeMap;
use std::sync::Arc;

/// A re-pointable handle to a physical topic. The federation layer swaps
/// the inner topic during migration; consumers keep polling through the
/// subscription and never notice.
#[derive(Clone)]
pub struct TopicSubscription {
    inner: Arc<RwLock<Arc<Topic>>>,
}

impl TopicSubscription {
    pub fn new(topic: Arc<Topic>) -> Self {
        TopicSubscription {
            inner: Arc::new(RwLock::new(topic)),
        }
    }

    pub fn topic(&self) -> Arc<Topic> {
        self.inner.read().clone()
    }

    /// Atomically redirect to another physical topic (same partition
    /// count required, so partition assignments stay valid).
    pub fn redirect(&self, to: Arc<Topic>) -> Result<()> {
        let mut guard = self.inner.write();
        if to.num_partitions() != guard.num_partitions() {
            return Err(Error::InvalidArgument(format!(
                "cannot redirect: partition count {} != {}",
                to.num_partitions(),
                guard.num_partitions()
            )));
        }
        *guard = to;
        Ok(())
    }
}

#[derive(Debug, Default)]
struct GroupState {
    members: Vec<String>,
    /// member -> partitions
    assignment: BTreeMap<String, Vec<usize>>,
    /// next offset to fetch, per partition
    position: BTreeMap<usize, u64>,
    /// committed offset (next offset to process after restart), per partition
    committed: BTreeMap<usize, u64>,
    generation: u64,
}

/// A named consumer group over one subscribed topic.
pub struct ConsumerGroup {
    name: String,
    subscription: TopicSubscription,
    state: RwLock<GroupState>,
}

impl ConsumerGroup {
    pub fn new(name: impl Into<String>, subscription: TopicSubscription) -> Self {
        ConsumerGroup {
            name: name.into(),
            subscription,
            state: RwLock::new(GroupState::default()),
        }
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn subscription(&self) -> &TopicSubscription {
        &self.subscription
    }

    /// Add a member and rebalance. Returns the new generation.
    pub fn join(&self, member: &str) -> u64 {
        let mut st = self.state.write();
        if !st.members.iter().any(|m| m == member) {
            st.members.push(member.to_string());
        }
        self.rebalance(&mut st);
        st.generation
    }

    /// Remove a member and rebalance.
    pub fn leave(&self, member: &str) -> u64 {
        let mut st = self.state.write();
        st.members.retain(|m| m != member);
        self.rebalance(&mut st);
        st.generation
    }

    fn rebalance(&self, st: &mut GroupState) {
        st.generation += 1;
        st.assignment.clear();
        let n = self.subscription.topic().num_partitions();
        if st.members.is_empty() {
            return;
        }
        // range assignment, deterministic by member order
        for (i, member) in st.members.iter().enumerate() {
            let parts: Vec<usize> = (0..n).filter(|p| p % st.members.len() == i).collect();
            st.assignment.insert(member.clone(), parts);
        }
        // at-least-once: rewind positions to last commit
        st.position = st.committed.clone();
    }

    /// Partitions currently assigned to a member. Members beyond the
    /// partition count get nothing — Kafka's parallelism cap (§4.1.3).
    pub fn assignment(&self, member: &str) -> Vec<usize> {
        self.state
            .read()
            .assignment
            .get(member)
            .cloned()
            .unwrap_or_default()
    }

    /// Poll up to `max` records *per assigned partition* for a member.
    /// Advances the in-memory position (not the commit).
    pub fn poll(&self, member: &str, max: usize) -> Result<Vec<OffsetRecord>> {
        Ok(self
            .poll_partitioned(member, max)?
            .into_iter()
            .flat_map(|(_, recs)| recs)
            .collect())
    }

    /// Like [`ConsumerGroup::poll`] but keeps records grouped by the
    /// partition they came from — the consumer proxy needs partition
    /// identity for its out-of-order offset tracking.
    pub fn poll_partitioned(
        &self,
        member: &str,
        max: usize,
    ) -> Result<Vec<(usize, Vec<OffsetRecord>)>> {
        let topic = self.subscription.topic();
        let parts = self.assignment(member);
        if parts.is_empty() && !self.state.read().members.iter().any(|m| m == member) {
            return Err(Error::NotFound(format!(
                "member '{member}' not in group '{}'",
                self.name
            )));
        }
        let mut out = Vec::new();
        for p in parts {
            let pos = { *self.state.read().position.get(&p).unwrap_or(&0) };
            let fetch = match topic.fetch(p, pos, max) {
                Ok(f) => f,
                Err(Error::OffsetOutOfRange { low, .. }) => {
                    // retention overtook us; jump to earliest (records lost)
                    self.state.write().position.insert(p, low);
                    topic.fetch(p, low, max)?
                }
                Err(e) => return Err(e),
            };
            if let Some(last) = fetch.records.last() {
                self.state.write().position.insert(p, last.offset + 1);
            }
            if !fetch.records.is_empty() {
                out.push((p, fetch.records));
            }
        }
        Ok(out)
    }

    /// Commit current positions of the member's partitions.
    pub fn commit(&self, member: &str) {
        let parts = self.assignment(member);
        let mut st = self.state.write();
        for p in parts {
            if let Some(&pos) = st.position.get(&p) {
                st.committed.insert(p, pos);
            }
        }
    }

    /// Explicitly commit an offset for one partition (used by the offset
    /// sync service when failing over between regions, §6).
    pub fn commit_offset(&self, partition: usize, offset: u64) {
        let mut st = self.state.write();
        st.committed.insert(partition, offset);
        st.position.insert(partition, offset);
    }

    pub fn committed(&self, partition: usize) -> u64 {
        *self.state.read().committed.get(&partition).unwrap_or(&0)
    }

    /// Total lag: records between committed offsets and the *committed*
    /// (consumer-visible) high watermarks — uncommitted tail records a
    /// consumer could never fetch don't count as lag. The job manager's
    /// auto-scaler watches this (§4.2.1).
    pub fn lag(&self) -> u64 {
        let topic = self.subscription.topic();
        let st = self.state.read();
        (0..topic.num_partitions())
            .map(|p| {
                let hwm = topic.committed_watermark(p).unwrap_or(0);
                hwm.saturating_sub(*st.committed.get(&p).unwrap_or(&0))
            })
            .sum()
    }

    pub fn members(&self) -> Vec<String> {
        self.state.read().members.clone()
    }

    pub fn generation(&self) -> u64 {
        self.state.read().generation
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topic::TopicConfig;
    use rtdi_common::{Record, Row};

    fn topic_with(n: usize, records: usize) -> Arc<Topic> {
        let t = Arc::new(Topic::new("t", TopicConfig::default().with_partitions(n)).unwrap());
        for i in 0..records {
            t.append(
                Record::new(Row::new().with("i", i as i64), i as i64).with_key(format!("k{i}")),
                0,
            )
            .unwrap();
        }
        t
    }

    #[test]
    fn single_member_consumes_everything() {
        let t = topic_with(4, 100);
        let g = ConsumerGroup::new("g", TopicSubscription::new(t));
        g.join("m1");
        assert_eq!(g.assignment("m1").len(), 4);
        let mut total = 0;
        loop {
            let recs = g.poll("m1", 10).unwrap();
            if recs.is_empty() {
                break;
            }
            total += recs.len();
            g.commit("m1");
        }
        assert_eq!(total, 100);
        assert_eq!(g.lag(), 0);
    }

    #[test]
    fn partitions_split_across_members() {
        let t = topic_with(4, 0);
        let g = ConsumerGroup::new("g", TopicSubscription::new(t));
        g.join("a");
        g.join("b");
        let pa = g.assignment("a");
        let pb = g.assignment("b");
        assert_eq!(pa.len() + pb.len(), 4);
        assert!(pa.iter().all(|p| !pb.contains(p)));
        // parallelism capped at partition count: 6 members, 4 partitions
        for m in ["c", "d", "e", "f"] {
            g.join(m);
        }
        let assigned: usize = ["a", "b", "c", "d", "e", "f"]
            .iter()
            .map(|m| g.assignment(m).len())
            .sum();
        assert_eq!(assigned, 4);
        let idle = ["a", "b", "c", "d", "e", "f"]
            .iter()
            .filter(|m| g.assignment(m).is_empty())
            .count();
        assert_eq!(idle, 2);
    }

    #[test]
    fn rebalance_replays_uncommitted() {
        let t = topic_with(1, 10);
        let g = ConsumerGroup::new("g", TopicSubscription::new(t));
        g.join("a");
        let first = g.poll("a", 5).unwrap();
        assert_eq!(first.len(), 5);
        g.commit("a");
        let second = g.poll("a", 3).unwrap(); // offsets 5..8, uncommitted
        assert_eq!(second[0].offset, 5);
        // member joins -> rebalance -> position rewinds to commit (5)
        g.join("b");
        let owner = if g.assignment("a").is_empty() {
            "b"
        } else {
            "a"
        };
        let replay = g.poll(owner, 10).unwrap();
        assert_eq!(replay[0].offset, 5, "uncommitted records must replay");
        assert_eq!(replay.len(), 5);
    }

    #[test]
    fn unknown_member_rejected() {
        let t = topic_with(1, 0);
        let g = ConsumerGroup::new("g", TopicSubscription::new(t));
        assert!(g.poll("ghost", 1).is_err());
    }

    #[test]
    fn lag_tracks_commits() {
        let t = topic_with(2, 20);
        let g = ConsumerGroup::new("g", TopicSubscription::new(t.clone()));
        g.join("a");
        assert_eq!(g.lag(), 20);
        g.poll("a", 100).unwrap();
        assert_eq!(g.lag(), 20, "poll without commit leaves lag");
        g.commit("a");
        assert_eq!(g.lag(), 0);
        t.append(Record::new(Row::new(), 0).with_key("x"), 0)
            .unwrap();
        assert_eq!(g.lag(), 1);
    }

    #[test]
    fn retention_overrun_jumps_to_earliest() {
        let t = Arc::new(
            Topic::new(
                "t",
                TopicConfig {
                    partitions: 1,
                    retention_bytes: 1500,
                    retention_ms: 0,
                    ..Default::default()
                },
            )
            .unwrap(),
        );
        let g = ConsumerGroup::new("g", TopicSubscription::new(t.clone()));
        g.join("a");
        for i in 0..500 {
            t.append(
                Record::new(Row::new().with("i", i as i64), 0).with_key("k"),
                0,
            )
            .unwrap();
        }
        // committed offset 0 has been retained away; poll recovers
        let recs = g.poll("a", 10).unwrap();
        assert!(!recs.is_empty());
        assert!(recs[0].offset > 0);
    }

    #[test]
    fn subscription_redirect_checks_partitions() {
        let t1 = topic_with(4, 0);
        let t2 = topic_with(4, 0);
        let t3 = topic_with(8, 0);
        let sub = TopicSubscription::new(t1);
        assert!(sub.redirect(t2).is_ok());
        assert!(sub.redirect(t3).is_err());
    }

    #[test]
    fn explicit_commit_offset_moves_position() {
        let t = topic_with(1, 10);
        let g = ConsumerGroup::new("g", TopicSubscription::new(t));
        g.join("a");
        g.commit_offset(0, 7);
        let recs = g.poll("a", 10).unwrap();
        assert_eq!(recs[0].offset, 7);
        assert_eq!(g.committed(0), 7);
    }
}
