//! Consumer proxy (§4.1.3, Figure 4).
//!
//! "We built a proxy layer that consumes messages from Kafka and
//! dispatches them to a user-registered gRPC service endpoint... the
//! consumer proxy provides sophisticated error handling. When the
//! downstream service fails to receive or process some messages, the
//! consumer proxy can retry the dispatch, and send them to the DLQ if
//! several retries failed... a push-based dispatching mechanism can
//! greatly improve the consumption throughput by enabling higher
//! parallelism for slow consumers... This addresses Kafka's consumer group
//! size issue."
//!
//! [`DispatchMode::Poll`] models the classic consumer-library path
//! (parallelism = partition count); [`DispatchMode::Push`] models the
//! proxy (worker pool independent of partitions, per-partition offset
//! tracking with contiguous-prefix commits). Experiment E3 compares the
//! two under a slow downstream service.

use crate::consumer::ConsumerGroup;
use crate::dlq::{DeadLetterQueue, ParkReason};
use crate::log::OffsetRecord;
use parking_lot::Mutex;
use rtdi_common::record::headers;
use rtdi_common::{
    AdmissionController, Clock, FaultPoint, PipelineTracer, Priority, Record, Result, RetryPolicy,
};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The user-registered downstream service. In production this is a gRPC
/// endpoint; here it is a trait object with the same semantics (may be
/// slow, may fail transiently, may reject a poison message forever).
pub trait ConsumerService: Send + Sync {
    fn process(&self, record: &Record) -> Result<()>;
}

impl<F> ConsumerService for F
where
    F: Fn(&Record) -> Result<()> + Send + Sync,
{
    fn process(&self, record: &Record) -> Result<()> {
        self(record)
    }
}

/// Poll (library-style, partition-bounded) vs Push (proxy worker pool).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DispatchMode {
    Poll,
    /// Push with this many concurrent dispatch workers.
    Push(usize),
}

/// Proxy behaviour knobs.
#[derive(Debug, Clone)]
pub struct ProxyConfig {
    pub mode: DispatchMode,
    /// Dispatch attempts per message before DLQ hand-off.
    pub max_attempts: usize,
    /// Records fetched per poll per partition.
    pub poll_batch: usize,
    /// Admission gate consulted per record before dispatch: per-tenant
    /// quotas (tenant = the producing service from the [`headers::SERVICE`]
    /// header) plus queue-depth watermarks fed from consumer lag. Shed
    /// records park to the DLQ as [`ParkReason::Overload`] instead of
    /// being dropped. `None` disables admission control.
    pub admission: Option<Arc<AdmissionController>>,
    /// Bound on records buffered between the poller and the push
    /// workers; a full buffer blocks the poller (backpressure to the
    /// fetch side) instead of queueing without limit. 0 = unbounded.
    pub max_in_flight: usize,
}

impl Default for ProxyConfig {
    fn default() -> Self {
        ProxyConfig {
            mode: DispatchMode::Push(16),
            max_attempts: 3,
            poll_batch: 256,
            admission: None,
            max_in_flight: 1024,
        }
    }
}

/// Outcome counters for one proxy run.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct DispatchStats {
    pub delivered: u64,
    pub retried: u64,
    pub dead_lettered: u64,
    /// Records refused by admission control and parked as
    /// [`ParkReason::Overload`]. Disjoint from `dead_lettered`:
    /// `delivered + dead_lettered + shed` always equals records offered.
    pub shed: u64,
}

/// Tracks out-of-order completions and exposes the contiguous committed
/// prefix per partition — the proxy can only commit offsets up to the
/// first still-in-flight message.
#[derive(Debug, Default)]
pub struct OffsetTracker {
    /// partition -> (next offset to commit, set of completed offsets ≥ next)
    state: Mutex<BTreeMap<usize, (u64, BTreeSet<u64>)>>,
}

impl OffsetTracker {
    pub fn new() -> Self {
        Self::default()
    }

    /// Prime the tracker with the first offset the proxy will dispatch for
    /// a partition.
    pub fn start_partition(&self, partition: usize, first_offset: u64) {
        self.state
            .lock()
            .entry(partition)
            .or_insert((first_offset, BTreeSet::new()));
    }

    /// Mark an offset complete; returns the new committable offset (one
    /// past the contiguous prefix).
    pub fn complete(&self, partition: usize, offset: u64) -> u64 {
        let mut state = self.state.lock();
        let (next, done) = state.entry(partition).or_insert((offset, BTreeSet::new()));
        done.insert(offset);
        while done.remove(next) {
            *next += 1;
        }
        *next
    }

    pub fn committable(&self, partition: usize) -> Option<u64> {
        self.state.lock().get(&partition).map(|(n, _)| *n)
    }
}

/// The proxy itself.
pub struct ConsumerProxy {
    config: ProxyConfig,
    service: Arc<dyn ConsumerService>,
    dlq: Arc<DeadLetterQueue>,
    trace: Option<(PipelineTracer, String, Arc<dyn Clock>)>,
}

impl ConsumerProxy {
    pub fn new(
        config: ProxyConfig,
        service: Arc<dyn ConsumerService>,
        dlq: Arc<DeadLetterQueue>,
    ) -> Self {
        ConsumerProxy {
            config,
            service,
            dlq,
            trace: None,
        }
    }

    /// Record, under `pipeline`'s `"proxy-dispatch"` stage, how long each
    /// successfully dispatched record dwelled since its last traced hop.
    /// A side-channel read — the proxy borrows records, so it does not
    /// restamp them.
    pub fn with_tracer(
        mut self,
        tracer: PipelineTracer,
        pipeline: &str,
        clock: Arc<dyn Clock>,
    ) -> Self {
        self.trace = Some((tracer, pipeline.to_string(), clock));
        self
    }

    /// Consume the group's topic until fully caught up (lag 0 at commit),
    /// dispatching every record to the downstream service. Returns
    /// delivery statistics. The group must already have the member
    /// `"proxy"` joined (the proxy appears as a single consumer-group
    /// member regardless of its internal worker count — exactly how it
    /// defeats the group-size cap).
    pub fn run_until_caught_up(&self, group: &ConsumerGroup) -> Result<DispatchStats> {
        group.join("proxy");
        let stats = Arc::new(StatsCells::default());
        loop {
            // consumer lag is the proxy's queue: feed it to the admission
            // watermarks so a growing backlog starts shedding before the
            // proxy drowns
            if let Some(ac) = &self.config.admission {
                ac.set_queue_depth(group.lag());
            }
            let batches = group.poll_partitioned("proxy", self.config.poll_batch)?;
            if batches.is_empty() {
                if group.lag() == 0 {
                    break;
                }
                continue;
            }
            match self.config.mode {
                DispatchMode::Poll => self.dispatch_serial(group, &batches, &stats),
                DispatchMode::Push(workers) => {
                    self.dispatch_parallel(group, batches, workers.max(1), &stats)
                }
            }
        }
        Ok(DispatchStats {
            delivered: stats.delivered.load(Ordering::Relaxed),
            retried: stats.retried.load(Ordering::Relaxed),
            dead_lettered: stats.dead_lettered.load(Ordering::Relaxed),
            shed: stats.shed.load(Ordering::Relaxed),
        })
    }

    fn dispatch_serial(
        &self,
        group: &ConsumerGroup,
        batches: &[(usize, Vec<OffsetRecord>)],
        stats: &StatsCells,
    ) {
        for (_, run) in batches {
            for rec in run {
                self.dispatch_one(&rec.record, stats);
            }
        }
        group.commit("proxy");
    }

    fn dispatch_parallel(
        &self,
        group: &ConsumerGroup,
        batches: Vec<(usize, Vec<OffsetRecord>)>,
        workers: usize,
        stats: &StatsCells,
    ) {
        let tracker = OffsetTracker::new();
        let mut touched: Vec<usize> = Vec::new();
        for (partition, run) in &batches {
            if let Some(first) = run.first() {
                tracker.start_partition(*partition, first.offset);
                touched.push(*partition);
            }
        }
        // bounded in-flight buffer: a full channel blocks this feeder
        // until a worker drains a slot, so overload backpressure reaches
        // the fetch side instead of growing an unbounded queue
        let (tx, rx) = if self.config.max_in_flight > 0 {
            crossbeam::channel::bounded::<(usize, OffsetRecord)>(self.config.max_in_flight)
        } else {
            crossbeam::channel::unbounded::<(usize, OffsetRecord)>()
        };
        std::thread::scope(|scope| {
            for _ in 0..workers {
                let rx = rx.clone();
                let tracker = &tracker;
                let stats = &*stats;
                scope.spawn(move || {
                    while let Ok((partition, rec)) = rx.recv() {
                        self.dispatch_one(&rec.record, stats);
                        tracker.complete(partition, rec.offset);
                    }
                });
            }
            for (partition, run) in batches {
                for rec in run {
                    if tx.send((partition, rec)).is_err() {
                        break;
                    }
                }
            }
            drop(tx);
        });
        for p in touched {
            if let Some(commit) = tracker.committable(p) {
                group.commit_offset(p, commit);
            }
        }
    }

    fn dispatch_one(&self, record: &Record, stats: &StatsCells) {
        // admission gate: the tenant is the producing service, the lane
        // is interactive (the proxy serves live traffic). A refusal
        // parks the record as Overload — shed, never silently dropped —
        // and skips the retry budget entirely: retrying against a
        // tripped quota only adds load.
        let _permit = if let Some(ac) = &self.config.admission {
            let tenant = record.headers.get(headers::SERVICE).unwrap_or("unknown");
            match ac.admit(tenant, Priority::Interactive) {
                Ok(permit) => Some(permit),
                Err(e) => {
                    let mut parked = record.clone();
                    parked.headers.set(headers::ATTEMPTS, "0");
                    self.dlq.park(
                        parked,
                        ParkReason::classify(&e),
                        &e.to_string(),
                        record.timestamp,
                    );
                    stats.shed.fetch_add(1, Ordering::Relaxed);
                    return;
                }
            }
        } else {
            None
        };
        // the injected fault sits inside the retried closure: a dispatch
        // fault behaves exactly like a downstream failure, including the
        // retry budget and DLQ hand-off
        let policy = RetryPolicy::new(self.config.max_attempts as u32);
        let (result, attempts) = policy.run_with_attempts(&mut |_| {
            rtdi_common::chaos::check(FaultPoint::ProxyDispatch)?;
            self.service.process(record)
        });
        if attempts > 1 {
            stats
                .retried
                .fetch_add(attempts as u64 - 1, Ordering::Relaxed);
        }
        match result {
            Ok(()) => {
                stats.delivered.fetch_add(1, Ordering::Relaxed);
                if let Some((tracer, pipeline, clock)) = &self.trace {
                    tracer.observe_read(pipeline, "proxy-dispatch", record, clock.now());
                }
            }
            Err(e) => {
                let mut parked = record.clone();
                parked.headers.set(headers::ATTEMPTS, attempts.to_string());
                self.dlq.park(
                    parked,
                    ParkReason::classify(&e),
                    &e.to_string(),
                    record.timestamp,
                );
                stats.dead_lettered.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

#[derive(Default)]
struct StatsCells {
    delivered: AtomicU64,
    retried: AtomicU64,
    dead_lettered: AtomicU64,
    shed: AtomicU64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::consumer::TopicSubscription;
    use crate::topic::{Topic, TopicConfig};
    use rtdi_common::{Error, Row};
    use std::sync::atomic::AtomicUsize;

    fn topic_with(partitions: usize, records: usize) -> Arc<Topic> {
        let t = Arc::new(
            Topic::new("trips", TopicConfig::default().with_partitions(partitions)).unwrap(),
        );
        for i in 0..records {
            t.append(
                Record::new(Row::new().with("i", i as i64), i as i64).with_key(format!("k{i}")),
                0,
            )
            .unwrap();
        }
        t
    }

    fn proxy(mode: DispatchMode, service: Arc<dyn ConsumerService>) -> ConsumerProxy {
        ConsumerProxy::new(
            ProxyConfig {
                mode,
                max_attempts: 3,
                poll_batch: 64,
                ..Default::default()
            },
            service,
            Arc::new(DeadLetterQueue::new("trips").unwrap()),
        )
    }

    #[test]
    fn push_delivers_every_record_once() {
        let t = topic_with(4, 500);
        let group = ConsumerGroup::new("g", TopicSubscription::new(t));
        let seen = Arc::new(Mutex::new(BTreeSet::new()));
        let seen2 = seen.clone();
        let service = Arc::new(move |r: &Record| {
            seen2.lock().insert(r.value.get_int("i").unwrap());
            Ok(())
        });
        let stats = proxy(DispatchMode::Push(8), service)
            .run_until_caught_up(&group)
            .unwrap();
        assert_eq!(stats.delivered, 500);
        assert_eq!(stats.dead_lettered, 0);
        assert_eq!(seen.lock().len(), 500);
        assert_eq!(group.lag(), 0);
    }

    #[test]
    fn poll_mode_also_delivers_everything() {
        let t = topic_with(3, 200);
        let group = ConsumerGroup::new("g", TopicSubscription::new(t));
        let count = Arc::new(AtomicUsize::new(0));
        let c = count.clone();
        let service = Arc::new(move |_: &Record| {
            c.fetch_add(1, Ordering::Relaxed);
            Ok(())
        });
        let stats = proxy(DispatchMode::Poll, service)
            .run_until_caught_up(&group)
            .unwrap();
        assert_eq!(stats.delivered, 200);
        assert_eq!(count.load(Ordering::Relaxed), 200);
    }

    #[test]
    fn poison_messages_go_to_dlq_without_blocking() {
        let t = topic_with(2, 100);
        let group = ConsumerGroup::new("g", TopicSubscription::new(t));
        let dlq = Arc::new(DeadLetterQueue::new("trips").unwrap());
        // every 10th record is poison
        let service = Arc::new(|r: &Record| {
            if r.value.get_int("i").unwrap() % 10 == 0 {
                Err(Error::ProcessingFailed("corrupt".into()))
            } else {
                Ok(())
            }
        });
        let p = ConsumerProxy::new(
            ProxyConfig {
                mode: DispatchMode::Push(4),
                max_attempts: 2,
                poll_batch: 32,
                ..Default::default()
            },
            service,
            dlq.clone(),
        );
        let stats = p.run_until_caught_up(&group).unwrap();
        assert_eq!(stats.delivered, 90);
        assert_eq!(stats.dead_lettered, 10);
        assert_eq!(stats.retried, 10); // one retry each before giving up
        assert_eq!(dlq.depth(), 10);
        // live traffic not impeded: group fully caught up
        assert_eq!(group.lag(), 0);
        // parked messages carry attempt count and classified reason
        let parked = dlq.peek(1);
        assert_eq!(parked[0].headers.get(headers::ATTEMPTS), Some("2"));
        assert_eq!(
            parked[0].headers.get(headers::DLQ_REASON),
            Some(ParkReason::RetriesExhausted.as_str())
        );
    }

    #[test]
    fn non_retryable_errors_park_immediately_with_reason() {
        let t = topic_with(1, 5);
        let group = ConsumerGroup::new("g", TopicSubscription::new(t));
        let dlq = Arc::new(DeadLetterQueue::new("trips").unwrap());
        let service = Arc::new(|r: &Record| {
            if r.value.get_int("i").unwrap() == 2 {
                Err(Error::Schema("field mismatch".into()))
            } else {
                Ok(())
            }
        });
        let p = ConsumerProxy::new(
            ProxyConfig {
                mode: DispatchMode::Poll,
                max_attempts: 3,
                poll_batch: 32,
                ..Default::default()
            },
            service,
            dlq.clone(),
        );
        let stats = p.run_until_caught_up(&group).unwrap();
        assert_eq!(stats.delivered, 4);
        assert_eq!(stats.dead_lettered, 1);
        // a schema error never consumes the retry budget
        assert_eq!(stats.retried, 0);
        let parked = dlq.peek(1);
        assert_eq!(parked[0].headers.get(headers::ATTEMPTS), Some("1"));
        assert_eq!(
            parked[0].headers.get(headers::DLQ_REASON),
            Some(ParkReason::Schema.as_str())
        );
        assert_eq!(
            parked[0].headers.get(headers::DLQ_DETAIL),
            Some("schema error: field mismatch")
        );
    }

    #[test]
    fn transient_failures_are_retried_to_success() {
        let t = topic_with(1, 10);
        let group = ConsumerGroup::new("g", TopicSubscription::new(t));
        let attempts = Arc::new(Mutex::new(BTreeMap::<i64, usize>::new()));
        let a = attempts.clone();
        // fail the first attempt of every record, succeed the second
        let service = Arc::new(move |r: &Record| {
            let i = r.value.get_int("i").unwrap();
            let mut map = a.lock();
            let n = map.entry(i).or_insert(0);
            *n += 1;
            if *n == 1 {
                Err(Error::Timeout("slow".into()))
            } else {
                Ok(())
            }
        });
        let stats = proxy(DispatchMode::Push(2), service)
            .run_until_caught_up(&group)
            .unwrap();
        assert_eq!(stats.delivered, 10);
        assert_eq!(stats.retried, 10);
        assert_eq!(stats.dead_lettered, 0);
    }

    #[test]
    fn tracer_records_dispatch_dwell() {
        use rtdi_common::SimClock;
        let t = Arc::new(Topic::new("trips", TopicConfig::default().with_partitions(1)).unwrap());
        for i in 0..20i64 {
            let mut r = Record::new(Row::new().with("i", i), i).with_key(format!("k{i}"));
            // producer stamped the trace origin at t=1000
            PipelineTracer::stamp(&mut r, 1_000);
            t.append(r, 0).unwrap();
        }
        let group = ConsumerGroup::new("g", TopicSubscription::new(t));
        let tracer = PipelineTracer::new();
        // dispatch happens 250ms after the producer stamp
        let clock = Arc::new(SimClock::new(1_250));
        let p = proxy(DispatchMode::Push(4), Arc::new(|_: &Record| Ok(()))).with_tracer(
            tracer.clone(),
            "trips",
            clock,
        );
        p.run_until_caught_up(&group).unwrap();
        let report = tracer.report();
        let stage = report.stage("trips", "proxy-dispatch").unwrap();
        assert_eq!(stage.count, 20);
        assert!(stage.p99_ms >= 250, "p99={}", stage.p99_ms);
        assert_eq!(stage.max_ms, 250);
    }

    #[test]
    fn admission_sheds_to_dlq_with_exact_accounting() {
        use rtdi_common::{AdmissionConfig, AdmissionController, Quota, SimClock};
        let t = Arc::new(Topic::new("trips", TopicConfig::default().with_partitions(2)).unwrap());
        // two tenants: rider-app floods, driver-app stays modest
        for i in 0..60i64 {
            let svc = if i % 3 == 0 {
                "driver-app"
            } else {
                "rider-app"
            };
            let mut r = Record::new(Row::new().with("i", i), i).with_key(format!("k{i}"));
            r.headers.set(headers::SERVICE, svc);
            t.append(r, 0).unwrap();
        }
        let group = ConsumerGroup::new("g", TopicSubscription::new(t));
        let dlq = Arc::new(DeadLetterQueue::new("trips").unwrap());
        let clock = Arc::new(SimClock::new(0));
        let admission = Arc::new(AdmissionController::new(
            clock,
            AdmissionConfig {
                default_tenant_quota: Some(Quota::per_sec(10).with_burst(25)),
                ..Default::default()
            },
        ));
        let p = ConsumerProxy::new(
            ProxyConfig {
                // serial dispatch so the quota's admit order is exact
                mode: DispatchMode::Poll,
                max_attempts: 2,
                poll_batch: 64,
                admission: Some(admission.clone()),
                max_in_flight: 8,
            },
            Arc::new(|_: &Record| Ok(())),
            dlq.clone(),
        );
        let stats = p.run_until_caught_up(&group).unwrap();
        // exact accounting: every offered record delivered, failed or shed
        assert_eq!(stats.delivered + stats.dead_lettered + stats.shed, 60);
        assert_eq!(stats.dead_lettered, 0);
        assert!(stats.shed > 0, "flood must overrun the 25-token burst");
        assert_eq!(dlq.depth() as u64, stats.shed);
        // shed records parked as overload, not dropped
        let parked = dlq.peek(1);
        assert_eq!(
            parked[0].headers.get(headers::DLQ_REASON),
            Some(ParkReason::Overload.as_str())
        );
        let s = admission.stats();
        assert_eq!(s.offered, 60);
        assert_eq!(s.admitted, stats.delivered);
        assert_eq!(s.shed_total(), stats.shed);
        // per-tenant ledger balances too
        let summary = admission.summary();
        assert!(summary.contains("tenant driver-app offered=20"));
        assert!(summary.contains("tenant rider-app offered=40"));
    }

    #[test]
    fn bounded_in_flight_still_delivers_everything() {
        let t = topic_with(4, 300);
        let group = ConsumerGroup::new("g", TopicSubscription::new(t));
        let count = Arc::new(AtomicUsize::new(0));
        let c = count.clone();
        let service = Arc::new(move |_: &Record| {
            c.fetch_add(1, Ordering::Relaxed);
            Ok(())
        });
        let p = ConsumerProxy::new(
            ProxyConfig {
                mode: DispatchMode::Push(8),
                max_attempts: 3,
                poll_batch: 64,
                admission: None,
                // buffer far smaller than the batch: the feeder must block
                // on worker drain instead of queueing unboundedly
                max_in_flight: 4,
            },
            service,
            Arc::new(DeadLetterQueue::new("trips").unwrap()),
        );
        let stats = p.run_until_caught_up(&group).unwrap();
        assert_eq!(stats.delivered, 300);
        assert_eq!(count.load(Ordering::Relaxed), 300);
        assert_eq!(group.lag(), 0);
    }

    #[test]
    fn offset_tracker_commits_contiguous_prefix_only() {
        let tr = OffsetTracker::new();
        tr.start_partition(0, 100);
        assert_eq!(tr.committable(0), Some(100));
        assert_eq!(tr.complete(0, 102), 100); // gap at 100
        assert_eq!(tr.complete(0, 100), 101); // still gap at 101
        assert_eq!(tr.complete(0, 101), 103); // prefix closes through 102
        assert_eq!(tr.committable(0), Some(103));
        assert_eq!(tr.committable(9), None);
    }

    #[test]
    fn push_outperforms_poll_for_slow_consumers() {
        // 2 partitions, 1ms-per-message service: poll is bounded by 2-way
        // parallelism (here: fully serial since one member), push uses 16
        // workers. Wall-clock sanity check of the §4.1.3 claim; the full
        // measurement lives in bench E3.
        let service = Arc::new(|_: &Record| {
            std::thread::sleep(std::time::Duration::from_millis(1));
            Ok(())
        });
        let run = |mode| {
            let t = topic_with(2, 120);
            let group = ConsumerGroup::new("g", TopicSubscription::new(t));
            let start = std::time::Instant::now();
            proxy(mode, service.clone())
                .run_until_caught_up(&group)
                .unwrap();
            start.elapsed()
        };
        let poll = run(DispatchMode::Poll);
        let push = run(DispatchMode::Push(16));
        assert!(
            push < poll / 2,
            "push {push:?} should beat poll {poll:?} by >2x"
        );
    }
}
