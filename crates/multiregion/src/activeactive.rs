//! Active-active redundant computation (§6, Figure 6).
//!
//! "In each region a complex Flink job with large-memory footprint will
//! compute the pricing for different areas. Each region has an instance of
//! 'update service' and one of them is labelled as primary by an
//! all-active coordinating service. The update service from the primary
//! region stores the pricing result in an active/active database... When
//! disaster strikes the primary region, the active-active service assigns
//! another region to be the primary."

use crate::kv::ReplicatedKv;
use crate::topology::MultiRegionTopology;
use parking_lot::RwLock;
use rtdi_common::{Error, Result, Row, Timestamp};
use std::collections::BTreeMap;

/// The all-active coordinating service: tracks which region's update
/// service is primary.
pub struct ActiveActiveCoordinator {
    primary: RwLock<String>,
}

impl ActiveActiveCoordinator {
    pub fn new(initial_primary: &str) -> Self {
        ActiveActiveCoordinator {
            primary: RwLock::new(initial_primary.to_string()),
        }
    }

    pub fn primary(&self) -> String {
        self.primary.read().clone()
    }

    pub fn is_primary(&self, region: &str) -> bool {
        *self.primary.read() == region
    }

    /// Fail over to another region.
    pub fn fail_over(&self, to: &str) {
        *self.primary.write() = to.to_string();
    }

    /// Pick a healthy region as primary if the current one cannot serve.
    /// The update service consumes the aggregate cluster, so losing only
    /// that half of a region already forces a coordinator failover.
    pub fn ensure_healthy_primary(&self, topo: &MultiRegionTopology) -> Result<String> {
        let current = self.primary();
        if let Ok(r) = topo.region(&current) {
            if !r.aggregate.is_down() {
                return Ok(current);
            }
        }
        let healthy = topo
            .regions
            .iter()
            .find(|r| !r.aggregate.is_down())
            .ok_or_else(|| Error::Unavailable("no healthy region".into()))?;
        self.fail_over(&healthy.name);
        Ok(healthy.name.clone())
    }
}

/// Run one redundant computation round: every healthy region consumes its
/// aggregate topic from the beginning and computes per-key results with
/// `compute`; only the primary region's update service writes to the KV
/// store. Returns the per-region computed states so tests can assert
/// convergence.
pub fn redundant_compute_round(
    topo: &MultiRegionTopology,
    coordinator: &ActiveActiveCoordinator,
    kv: &ReplicatedKv,
    now: Timestamp,
    compute: impl Fn(&[Row]) -> BTreeMap<String, Row>,
) -> Result<BTreeMap<String, BTreeMap<String, Row>>> {
    let primary = coordinator.ensure_healthy_primary(topo)?;
    let mut states = BTreeMap::new();
    for region in &topo.regions {
        if region.aggregate.is_down() {
            continue;
        }
        let topic = region.aggregate.topic(topo.topic())?;
        let mut rows = Vec::new();
        for p in 0..topic.num_partitions() {
            let log = topic.partition(p).ok_or_else(|| {
                Error::NotFound(format!("partition {p} of topic '{}'", topo.topic()))
            })?;
            let fetch = log.fetch(log.log_start_offset(), usize::MAX / 2)?;
            rows.extend(fetch.records.into_iter().map(|r| r.into_record().value));
        }
        let state = compute(&rows);
        if region.name == primary {
            for (key, row) in &state {
                kv.put(key, row.clone(), now, &primary);
            }
        }
        states.insert(region.name.clone(), state);
    }
    Ok(states)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtdi_common::Record;
    use rtdi_stream::topic::TopicConfig;

    fn demand_supply_ratio(rows: &[Row]) -> BTreeMap<String, Row> {
        let mut out: BTreeMap<String, (f64, f64)> = BTreeMap::new();
        for r in rows {
            let hex = r.get_str("hex").unwrap_or("?").to_string();
            let e = out.entry(hex).or_insert((0.0, 0.0));
            match r.get_str("kind") {
                Some("demand") => e.0 += 1.0,
                Some("supply") => e.1 += 1.0,
                _ => {}
            }
        }
        out.into_iter()
            .map(|(hex, (d, s))| {
                let ratio = if s == 0.0 { d.max(1.0) } else { d / s };
                (hex, Row::new().with("ratio", ratio))
            })
            .collect()
    }

    fn event(i: i64, hex: &str, kind: &str) -> Record {
        Record::new(Row::new().with("hex", hex).with("kind", kind), i).with_key(hex)
    }

    fn topo() -> MultiRegionTopology {
        MultiRegionTopology::new(
            &["west", "east"],
            "marketplace",
            TopicConfig::high_throughput().with_partitions(2),
        )
        .unwrap()
    }

    #[test]
    fn redundant_states_converge_across_regions() {
        let topo = topo();
        for i in 0..40 {
            let region = if i % 2 == 0 { "west" } else { "east" };
            let kind = if i % 3 == 0 { "supply" } else { "demand" };
            topo.produce(region, event(i, &format!("hex{}", i % 4), kind), i)
                .unwrap();
        }
        topo.replicate(100);
        let coord = ActiveActiveCoordinator::new("west");
        let kv = ReplicatedKv::new();
        let states = redundant_compute_round(&topo, &coord, &kv, 100, demand_supply_ratio).unwrap();
        // both regions computed identical state from the consistent
        // aggregate input (the §6 convergence argument)
        assert_eq!(states["west"], states["east"]);
        // only the primary wrote
        assert_eq!(kv.writer_of("hex0").unwrap(), "west");
    }

    #[test]
    fn failover_switches_writer_without_losing_results() {
        let topo = topo();
        for i in 0..20 {
            topo.produce("west", event(i, "hexA", "demand"), i).unwrap();
        }
        topo.replicate(50);
        let coord = ActiveActiveCoordinator::new("west");
        let kv = ReplicatedKv::new();
        redundant_compute_round(&topo, &coord, &kv, 50, demand_supply_ratio).unwrap();
        let before = kv.get("hexA").unwrap();

        // disaster strikes the primary
        topo.region("west").unwrap().set_down(true);
        // new events keep flowing in the surviving region
        for i in 20..30 {
            topo.produce("east", event(i, "hexA", "demand"), i).unwrap();
        }
        topo.replicate(100);
        redundant_compute_round(&topo, &coord, &kv, 100, demand_supply_ratio).unwrap();
        assert_eq!(coord.primary(), "east");
        assert_eq!(kv.writer_of("hexA").unwrap(), "east");
        let after = kv.get("hexA").unwrap();
        // east's state includes everything it saw; results move forward
        assert!(after.get_double("ratio").unwrap() >= before.get_double("ratio").unwrap());
    }

    #[test]
    fn no_healthy_region_is_an_error() {
        let topo = topo();
        topo.region("west").unwrap().set_down(true);
        topo.region("east").unwrap().set_down(true);
        let coord = ActiveActiveCoordinator::new("west");
        let kv = ReplicatedKv::new();
        assert!(matches!(
            redundant_compute_round(&topo, &coord, &kv, 0, demand_supply_ratio),
            Err(Error::Unavailable(_))
        ));
    }
}
