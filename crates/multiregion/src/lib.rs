//! # rtdi-multiregion
//!
//! The all-active multi-region strategy of §6:
//!
//! - [`topology`]: regions with regional + aggregate Kafka clusters and
//!   uReplicator routes that fan every regional topic into every region's
//!   aggregate cluster (Figure 6's "global view");
//! - [`kv`]: the active-active replicated key-value store surge results
//!   land in;
//! - [`activeactive`]: redundant per-region computation with a coordinator
//!   that designates the primary update service and fails over on region
//!   loss — "its state must be computed independently from the input
//!   messages from the aggregate clusters. Given that the input ... is
//!   consistent across all regions, the output state converges";
//! - [`activepassive`] (Figure 7): the offset-sync service that lets a
//!   strong-consistency consumer fail over to another region and "take
//!   the latest synchronized offset and resume the consumption" — no data
//!   loss, bounded replay;
//! - [`dr`]: region-scale disaster-recovery drills — seeded kill/heal
//!   cycles against whole region failure domains with an exact RPO/RTO
//!   ledger ("business resilience and continuity is a top priority").

pub mod activeactive;
pub mod activepassive;
pub mod dr;
pub mod kv;
pub mod topology;

pub use activeactive::ActiveActiveCoordinator;
pub use activepassive::{ActivePassiveConsumer, OffsetSyncService};
pub use dr::{CycleLedger, DrConfig, DrDrill, DrReport};
pub use kv::ReplicatedKv;
pub use topology::{MultiRegionTopology, Region, RegionHealth};
