//! Region-scale disaster-recovery drills with RPO/RTO accounting.
//!
//! §6: "we provide multi-region strategies for the key services...
//! provide business resilience and continuity is a top priority". This
//! module wires every layer of the platform into one seeded kill/heal
//! loop: regions die as correlated bursts of silent brokers (detected by
//! the shared membership deadline, not announced), the active-passive
//! consumer fails over through the offset-sync service, the job manager
//! redeploys the checkpointed compute job into the surviving region from
//! a cross-region-mirrored checkpoint store, SQL keeps answering from
//! the survivor's OLAP table with replication lag surfaced as staleness,
//! and the active-active surge path re-converges after the coordinator
//! fails over. The drill emits an exact ledger — RPO (committed records
//! lost, must be zero), bounded replay duplicates, and per-layer RTO —
//! as a byte-stable `DR_SUMMARY` for determinism gates.
//!
//! Everything runs on one logical clock; a drill with the same seed and
//! config produces an identical summary in any process.

use crate::activeactive::{redundant_compute_round, ActiveActiveCoordinator};
use crate::activepassive::{ActivePassiveConsumer, OffsetSyncService};
use crate::kv::ReplicatedKv;
use crate::topology::MultiRegionTopology;
use bytes::Bytes;
use parking_lot::Mutex;
use rtdi_common::chaos::{self, FaultKind, FaultPlan, Trigger};
use rtdi_common::{
    Clock, Error, FaultPoint, FieldType, PipelineTracer, Record, RegionOutage, RegionOutageKind,
    Result, Row, Schema, SimClock,
};
use rtdi_compute::jobmanager::JobType;
use rtdi_compute::operator::{MapOp, Operator, OperatorOutput};
use rtdi_compute::runtime::CheckpointData;
use rtdi_compute::{
    CheckpointStore, CollectSink, Executor, ExecutorConfig, FnSink, Job, JobManager, JobSpec,
    Source, TopicSource, VecSource,
};
use rtdi_olap::{IngestionConfig, OlapTable, RealtimeIngester, TableConfig};
use rtdi_sql::{EngineConfig, PinotConnector, SqlEngine};
use rtdi_storage::{FaultyStore, InMemoryStore, MirroredStore, ObjectStore};
use rtdi_stream::topic::{Topic, TopicConfig};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::AtomicBool;
use std::sync::Arc;

/// Name of the checkpointed compute job the drill keeps alive.
const JOB: &str = "dr-global-count";
/// Logical heartbeat interval the drill ticks at.
const TICK_MS: i64 = 1_000;

/// Drill knobs. Defaults give each outage enough room for the failure
/// detector (10s dead deadline) to fire inside the outage window and for
/// replication to catch up before the next strike.
#[derive(Debug, Clone)]
pub struct DrConfig {
    pub regions: Vec<String>,
    pub partitions: usize,
    /// Outage cycles to run (one planned strike per cycle).
    pub cycles: usize,
    /// Cycle length; strikes land in the first quarter of each cycle.
    pub period_ms: i64,
    /// Kill-to-heal duration of each outage.
    pub outage_ms: i64,
    /// Steady-state warmup before the first cycle window opens.
    pub warmup_ms: i64,
    /// Records produced per tick (round-robin across up regions).
    pub produce_per_tick: usize,
    /// Ticks after the last cycle for drain + convergence.
    pub drain_ticks: usize,
    /// Compute-job checkpoint interval (records).
    pub checkpoint_interval: u64,
}

impl Default for DrConfig {
    fn default() -> Self {
        DrConfig {
            regions: vec!["west".into(), "east".into()],
            partitions: 2,
            cycles: 3,
            period_ms: 40_000,
            outage_ms: 15_000,
            warmup_ms: 20_000,
            produce_per_tick: 6,
            drain_ticks: 20,
            checkpoint_interval: 32,
        }
    }
}

/// Exact per-cycle accounting. All times are logical milliseconds.
#[derive(Debug, Clone)]
pub struct CycleLedger {
    pub cycle: usize,
    pub kind: &'static str,
    pub region: String,
    pub kill_ms: i64,
    /// Kill-to-detection latency (0 for replicator-lag bursts, which are
    /// observed as lag rather than death).
    pub detect_ms: i64,
    /// Whether the strike hit the active serving region (failovers ran).
    pub affected: bool,
    pub rto_consume_ms: i64,
    pub rto_compute_ms: i64,
    pub rto_query_ms: i64,
    /// Consumer replay duplicates attributed to this cycle.
    pub dup_consume: u64,
    /// Records still missing from some live aggregate at heal time.
    pub lag_at_heal: u64,
    /// Heal-to-full-replication-catch-up latency (-1 if the drill ended
    /// before catch-up completed).
    pub catchup_ms: i64,
}

impl CycleLedger {
    fn summary_line(&self) -> String {
        format!(
            "DR_SUMMARY cycle={} kind={} region={} kill_ms={} detect_ms={} \
             affected={} rto_consume_ms={} rto_compute_ms={} rto_query_ms={} \
             dup_consume={} lag_at_heal={} catchup_ms={}",
            self.cycle,
            self.kind,
            self.region,
            self.kill_ms,
            self.detect_ms,
            self.affected,
            self.rto_consume_ms,
            self.rto_compute_ms,
            self.rto_query_ms,
            self.dup_consume,
            self.lag_at_heal,
            self.catchup_ms,
        )
    }
}

/// Drill outcome: the ledger plus end-state convergence checks.
#[derive(Debug, Clone)]
pub struct DrReport {
    pub seed: u64,
    pub regions: Vec<String>,
    pub partitions: usize,
    pub cycles: Vec<CycleLedger>,
    /// Records acknowledged by produce (the RPO baseline).
    pub committed: u64,
    pub consumer_seen: u64,
    pub consumer_duplicates: u64,
    pub consumer_failovers: u64,
    /// Distinct records counted by the checkpointed compute job.
    pub compute_distinct: u64,
    /// At-least-once re-emissions from checkpoint replay (state stays
    /// exactly-once; the sink sees a bounded replay suffix).
    pub compute_duplicate_emits: u64,
    /// Committed records never observed by the consumer or the compute
    /// job after heal + drain. RPO — must be zero.
    pub lost: u64,
    /// Checkpoint objects copied while resyncing mirrors after outages.
    pub ckpt_resynced: usize,
    /// Max query-time staleness observed during any outage window.
    pub max_staleness_ms: i64,
    pub aggregates_equal: bool,
    pub surge_converged: bool,
    pub isr_full: bool,
}

impl DrReport {
    /// Offset-sync replay bound: each failover may replay up to one
    /// mapping-checkpoint interval per source route per partition.
    pub fn replay_bound(&self, sync_interval: u64) -> u64 {
        self.consumer_failovers * self.regions.len() as u64 * self.partitions as u64 * sync_interval
    }

    /// Byte-stable, logical-time-only drill ledger.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "DR_SUMMARY seed={:#018x} regions={} partitions={} cycles={}\n",
            self.seed,
            self.regions.join(","),
            self.partitions,
            self.cycles.len(),
        ));
        for c in &self.cycles {
            out.push_str(&c.summary_line());
            out.push('\n');
        }
        out.push_str(&format!(
            "DR_SUMMARY totals committed={} consumer_seen={} consumer_dups={} \
             failovers={} compute_distinct={} compute_dup_emits={} \
             ckpt_resynced={} max_staleness_ms={} lost={}\n",
            self.committed,
            self.consumer_seen,
            self.consumer_duplicates,
            self.consumer_failovers,
            self.compute_distinct,
            self.compute_duplicate_emits,
            self.ckpt_resynced,
            self.max_staleness_ms,
            self.lost,
        ));
        out.push_str(&format!(
            "DR_SUMMARY convergence aggregates={} surge={} isr={} rpo={}\n",
            if self.aggregates_equal {
                "equal"
            } else {
                "DIVERGED"
            },
            if self.surge_converged {
                "converged"
            } else {
                "DIVERGED"
            },
            if self.isr_full { "full" } else { "DEGRADED" },
            self.lost,
        ));
        out
    }
}

/// Stateful dedup operator: emits each record id exactly once per state
/// lineage. Its snapshot IS the exactly-once proof — restoring it on a
/// redeployed job filters the replayed suffix, so the distinct count
/// survives region death without double-counting.
struct DedupOp {
    seen: BTreeSet<String>,
}

impl DedupOp {
    fn new() -> Self {
        DedupOp {
            seen: BTreeSet::new(),
        }
    }
}

impl Operator for DedupOp {
    fn name(&self) -> &str {
        "dr-dedup"
    }

    fn process(&mut self, record: Record, out: &mut OperatorOutput) -> Result<()> {
        let id = record.value.get_str("id").unwrap_or("").to_string();
        if self.seen.insert(id) {
            out.push(record);
        }
        Ok(())
    }

    fn snapshot(&self) -> Bytes {
        let joined = self.seen.iter().cloned().collect::<Vec<_>>().join("\n");
        Bytes::from(joined.into_bytes())
    }

    fn restore(&mut self, data: Bytes) -> Result<()> {
        let text = std::str::from_utf8(&data)
            .map_err(|_| Error::Corruption("dedup state is not utf-8".into()))?;
        self.seen = text
            .split('\n')
            .filter(|s| !s.is_empty())
            .map(str::to_string)
            .collect();
        Ok(())
    }

    fn memory_bytes(&self) -> usize {
        self.seen.iter().map(|s| s.len() + 16).sum()
    }

    fn is_stateful(&self) -> bool {
        true
    }
}

/// Per-region serving stack: mirrored checkpoint store view, OLAP table
/// fed from the region's aggregate topic, and a SQL engine with the
/// region's freshness tracer attached.
struct RegionRt {
    name: String,
    tm: String,
    store: Arc<FaultyStore<InMemoryStore>>,
    view: Arc<MirroredStore>,
    ckpts: CheckpointStore,
    agg_topic: Arc<Topic>,
    ingester: RealtimeIngester,
    engine: SqlEngine,
}

struct ActiveState {
    outage: RegionOutage,
    cycle: usize,
    detected_at: Option<i64>,
    affected: bool,
    healed_at: Option<i64>,
    rto_consume: Option<i64>,
    rto_compute: Option<i64>,
    rto_query: Option<i64>,
    dup_baseline: u64,
    lag_at_heal: u64,
}

/// The drill harness. Owns the whole simulated platform; `run` executes
/// the seeded kill/heal schedule and returns the ledger.
pub struct DrDrill {
    cfg: DrConfig,
    seed: u64,
    clock: Arc<SimClock>,
    topo: MultiRegionTopology,
    plan: Vec<RegionOutage>,
    rts: Vec<RegionRt>,
    jm: Arc<JobManager>,
    consumer: ActivePassiveConsumer,
    sync: OffsetSyncService,
    coord: ActiveActiveCoordinator,
    kv: ReplicatedKv,
    /// Region currently serving the consumer, compute and query layers.
    active_region: String,
    region_killed: BTreeSet<String>,
    committed: BTreeSet<String>,
    seen: BTreeMap<String, u64>,
    compute_emitted: Arc<Mutex<BTreeMap<String, u64>>>,
    seq: u64,
    produce_cursor: usize,
}

impl DrDrill {
    /// Build the platform under drill. Resets the global chaos registry
    /// to `seed`; callers running inside a test binary must hold
    /// [`chaos::test_guard`] for the drill's whole lifetime.
    pub fn new(seed: u64, cfg: DrConfig) -> Result<Self> {
        chaos::registry().reset(seed);
        let clock = Arc::new(SimClock::new(0));
        let region_names: Vec<&str> = cfg.regions.iter().map(|s| s.as_str()).collect();
        let topo = MultiRegionTopology::with_clock(
            &region_names,
            "trips",
            TopicConfig::lossless().with_partitions(cfg.partitions),
            clock.clone(),
        )?;
        let plan = chaos::registry().plan_region_outages(
            &region_names,
            cfg.cycles,
            cfg.warmup_ms,
            cfg.period_ms,
            cfg.outage_ms,
        );
        let membership = topo
            .membership()
            .cloned()
            .ok_or_else(|| Error::Internal("topology has no shared membership".into()))?;

        let schema = Schema::of(
            "trips",
            &[
                ("id", FieldType::Str),
                ("hex", FieldType::Str),
                ("kind", FieldType::Str),
            ],
        );
        let stores: Vec<Arc<FaultyStore<InMemoryStore>>> = cfg
            .regions
            .iter()
            .map(|_| Arc::new(FaultyStore::new(InMemoryStore::new())))
            .collect();
        let mut rts = Vec::with_capacity(cfg.regions.len());
        for (i, name) in cfg.regions.iter().enumerate() {
            let mirror = stores[(i + 1) % stores.len()].clone();
            let view = Arc::new(MirroredStore::new(
                stores[i].clone() as Arc<dyn ObjectStore>,
                mirror as Arc<dyn ObjectStore>,
            ));
            let ckpts = CheckpointStore::new(view.clone() as Arc<dyn ObjectStore>).with_retain(3);
            let agg_topic = topo.region(name)?.aggregate.topic("trips")?;
            let table = OlapTable::new(
                TableConfig::new("trips", schema.clone()).with_partitions(cfg.partitions),
            )?;
            let tracer = PipelineTracer::new();
            let ingester = RealtimeIngester::new(
                agg_topic.clone(),
                table.clone(),
                IngestionConfig::default(),
            )?
            .with_tracer(tracer.clone())
            .with_clock(clock.clone() as Arc<dyn Clock>);
            let pinot = PinotConnector::new();
            pinot.register(table);
            let mut engine = SqlEngine::new(EngineConfig::default()).with_freshness(
                tracer,
                "trips",
                clock.clone() as Arc<dyn Clock>,
            );
            engine.register_connector("pinot", Arc::new(pinot));
            let tm = format!("{name}-tm");
            membership.register_in_region(&tm, name);
            rts.push(RegionRt {
                name: name.clone(),
                tm,
                store: stores[i].clone(),
                view,
                ckpts,
                agg_topic,
                ingester,
                engine,
            });
        }

        let jm = Arc::new(JobManager::new(ExecutorConfig::default(), 8));
        membership.subscribe(jm.node_listener());
        jm.validate(&JobSpec {
            name: JOB.into(),
            job_type: JobType::Stateless,
            tier: 0,
            expected_records_per_sec: 1_000,
            factory: Box::new(|| {
                Job::new(
                    JOB,
                    Box::new(VecSource::new(Vec::new())),
                    vec![Box::new(MapOp::new("noop", |r| r.clone()))],
                    Box::new(CollectSink::new()),
                )
            }),
        })?;
        jm.assign_node(JOB, &rts[0].tm)?;

        let home = cfg.regions[0].clone();
        Ok(DrDrill {
            consumer: ActivePassiveConsumer::new("dr-consumer", "trips", &home),
            sync: OffsetSyncService::new(topo.mappings().clone()),
            coord: ActiveActiveCoordinator::new(&home),
            kv: ReplicatedKv::new(),
            active_region: home,
            cfg,
            seed,
            clock,
            topo,
            plan,
            rts,
            jm,
            region_killed: BTreeSet::new(),
            committed: BTreeSet::new(),
            seen: BTreeMap::new(),
            compute_emitted: Arc::new(Mutex::new(BTreeMap::new())),
            seq: 0,
            produce_cursor: 0,
        })
    }

    /// The planned outage schedule (for logging / assertions).
    pub fn plan(&self) -> &[RegionOutage] {
        &self.plan
    }

    fn rt_index(&self, region: &str) -> usize {
        self.rts.iter().position(|r| r.name == region).unwrap_or(0)
    }

    fn aggregate_up(&self, region: &str) -> bool {
        self.topo
            .region(region)
            .map(|r| !r.aggregate.is_down())
            .unwrap_or(false)
    }

    fn survivor_of(&self, dead: &str) -> Option<String> {
        self.cfg
            .regions
            .iter()
            .find(|r| r.as_str() != dead && self.aggregate_up(r))
            .cloned()
    }

    /// Run the compute job once in `region`: recover from the latest
    /// checkpoint in that region's store view, drain what is currently
    /// available from its aggregate topic, and checkpoint as it goes.
    fn run_compute(&self, region: &str) -> Result<()> {
        let rt = &self.rts[self.rt_index(region)];
        let source = TopicSource::unbounded(rt.agg_topic.clone());
        let emitted = self.compute_emitted.clone();
        let sink = FnSink::new(move |rec: Record| {
            if let Some(id) = rec.value.get_str("id") {
                *emitted.lock().entry(id.to_string()).or_insert(0) += 1;
            }
            Ok(())
        });
        let mut job = Job::new(
            JOB,
            Box::new(source) as Box<dyn Source>,
            vec![Box::new(DedupOp::new())],
            Box::new(sink),
        );
        let exec = Executor::new(ExecutorConfig {
            batch_size: 256,
            checkpoint_interval: self.cfg.checkpoint_interval,
            checkpoint_store: Some(rt.ckpts.clone()),
            trace: None,
        });
        // stop is pre-raised: drain everything available, then return
        let stop = AtomicBool::new(true);
        exec.run_with_stop(&mut job, &stop)?;
        Ok(())
    }

    /// Redeploy the compute job into `survivor` after losing `dead`:
    /// read the checkpoint from the survivor's mirror, translate its
    /// source offsets through the offset-sync service, persist the
    /// translated checkpoint and re-run against the survivor topic.
    fn redeploy_compute(&self, dead: &str, survivor: &str) -> Result<()> {
        let target = &self.rts[self.rt_index(survivor)];
        if let Some(mut ckpt) = target.ckpts.latest(JOB)? {
            let sources: Vec<String> = self.cfg.regions.clone();
            let mut translated = Vec::with_capacity(self.cfg.partitions);
            for p in 0..self.cfg.partitions {
                let off = ckpt.source_position.get(p).copied().unwrap_or(0);
                translated.push(
                    self.sync
                        .translate("trips", &sources, dead, survivor, p, off),
                );
            }
            let data = CheckpointData {
                checkpoint_id: ckpt.checkpoint_id + 1,
                source_position: translated,
                operator_state: std::mem::take(&mut ckpt.operator_state),
                records_in: ckpt.records_in,
            };
            target.ckpts.persist(JOB, &data)?;
        }
        self.jm.assign_node(JOB, &target.tm)?;
        self.run_compute(survivor)
    }

    fn apply_strike(&mut self, outage: &RegionOutage) {
        let region = self.topo.region(&outage.region).expect("planned region");
        match outage.kind {
            RegionOutageKind::RegionKill => {
                region.fail_region();
                self.rts[self.rt_index(&outage.region)].store.set_down(true);
                self.region_killed.insert(outage.region.clone());
            }
            RegionOutageKind::AggregateLoss => region.fail_aggregate(),
            RegionOutageKind::ReplicatorLag => chaos::registry().arm(
                FaultPoint::MultiregionReplicate,
                FaultPlan::fail(FaultKind::Timeout, Trigger::Always),
            ),
        }
    }

    fn apply_heal(&mut self, outage: &RegionOutage) -> usize {
        let region = self.topo.region(&outage.region).expect("planned region");
        let mut resynced = 0;
        match outage.kind {
            RegionOutageKind::RegionKill => {
                region.heal_region();
                self.rts[self.rt_index(&outage.region)]
                    .store
                    .set_down(false);
                self.region_killed.remove(&outage.region);
                for rt in &self.rts {
                    resynced += rt.view.resync().unwrap_or(0);
                }
            }
            RegionOutageKind::AggregateLoss => region.heal_aggregate(),
            RegionOutageKind::ReplicatorLag => chaos::registry().disarm_all(),
        }
        resynced
    }

    fn detected(&self, outage: &RegionOutage) -> bool {
        let Some(m) = self.topo.membership() else {
            return true;
        };
        match outage.kind {
            RegionOutageKind::RegionKill => m.region_is_down(&outage.region),
            RegionOutageKind::AggregateLoss => self
                .topo
                .region(&outage.region)
                .map(|r| r.aggregate.node_names().iter().all(|n| !m.is_live(n)))
                .unwrap_or(false),
            RegionOutageKind::ReplicatorLag => true,
        }
    }

    fn consumer_duplicates(&self) -> u64 {
        self.seen.values().map(|c| c.saturating_sub(1)).sum()
    }

    /// Max replication lag across regions whose aggregate is reachable.
    fn live_lag(&self) -> u64 {
        self.cfg
            .regions
            .iter()
            .filter(|r| self.aggregate_up(r))
            .filter_map(|r| self.topo.aggregate_lag(r).ok())
            .max()
            .unwrap_or(0)
    }

    /// Execute the full drill and return the ledger.
    pub fn run(mut self) -> Result<DrReport> {
        let cfg = self.cfg.clone();
        let produce_until = cfg.warmup_ms + cfg.cycles as i64 * cfg.period_ms;
        let total_ticks = (produce_until / TICK_MS) as usize + cfg.drain_ticks;
        let surge_fn = |rows: &[Row]| -> BTreeMap<String, Row> {
            let mut counts: BTreeMap<String, i64> = BTreeMap::new();
            for r in rows {
                if r.get_str("kind") == Some("demand") {
                    let hex = r.get_str("hex").unwrap_or("?").to_string();
                    *counts.entry(hex).or_insert(0) += 1;
                }
            }
            counts
                .into_iter()
                .map(|(hex, n)| (hex, Row::new().with("demand", n)))
                .collect()
        };

        let mut cycles: Vec<CycleLedger> = Vec::new();
        let mut active: Option<ActiveState> = None;
        let mut next_outage = 0usize;
        let mut consumer_failovers = 0u64;
        let mut ckpt_resynced = 0usize;
        let mut max_staleness = 0i64;
        let mut last_surge: BTreeMap<String, BTreeMap<String, Row>> = BTreeMap::new();
        let mut consumer_ok = true;

        for tick in 0..total_ticks {
            self.clock.advance(TICK_MS);
            let now = self.clock.now();
            let last_tick = tick + 1 == total_ticks;

            // strike / heal per the seeded schedule
            if active.is_none()
                && next_outage < self.plan.len()
                && self.plan[next_outage].kill_at_ms <= now
            {
                let outage = self.plan[next_outage].clone();
                next_outage += 1;
                self.apply_strike(&outage);
                let lag_kind = outage.kind == RegionOutageKind::ReplicatorLag;
                let affected = !lag_kind && outage.region == self.active_region;
                active = Some(ActiveState {
                    cycle: next_outage,
                    detected_at: if lag_kind {
                        Some(outage.kill_at_ms)
                    } else {
                        None
                    },
                    affected,
                    healed_at: None,
                    rto_consume: None,
                    rto_compute: None,
                    rto_query: None,
                    dup_baseline: self.consumer_duplicates(),
                    lag_at_heal: 0,
                    outage,
                });
            }
            if let Some(st) = &mut active {
                if st.healed_at.is_none() && st.outage.heal_at_ms <= now {
                    st.lag_at_heal = {
                        let committed = self.committed.len() as u64;
                        self.cfg
                            .regions
                            .iter()
                            .filter(|r| {
                                self.topo
                                    .region(r)
                                    .map(|x| !x.aggregate.is_down())
                                    .unwrap_or(false)
                            })
                            .filter_map(|r| self.topo.aggregate_count(r).ok())
                            .map(|n| committed.saturating_sub(n))
                            .max()
                            .unwrap_or(0)
                    };
                    ckpt_resynced += self.apply_heal(&st.outage.clone());
                    st.healed_at = Some(now);
                }
            }

            // produce into whichever regional clusters are up
            if now <= produce_until {
                for _ in 0..cfg.produce_per_tick {
                    let id = format!("r{:06}", self.seq);
                    let mut target = None;
                    for k in 0..cfg.regions.len() {
                        let cand = &cfg.regions[(self.produce_cursor + k) % cfg.regions.len()];
                        let up = self
                            .topo
                            .region(cand)
                            .map(|x| !x.regional.is_down())
                            .unwrap_or(false);
                        if up {
                            target = Some(cand.clone());
                            break;
                        }
                    }
                    self.produce_cursor = (self.produce_cursor + 1) % cfg.regions.len();
                    if let Some(target) = target {
                        let row = Row::new()
                            .with("id", id.as_str())
                            .with("hex", format!("h{}", self.seq % 4))
                            .with(
                                "kind",
                                if self.seq.is_multiple_of(3) {
                                    "supply"
                                } else {
                                    "demand"
                                },
                            );
                        let mut rec = Record::new(row, now).with_key(id.clone());
                        PipelineTracer::stamp(&mut rec, now);
                        if self.topo.produce(&target, rec, now).is_ok() {
                            self.committed.insert(id);
                        }
                    }
                    self.seq += 1;
                }
            }

            // replication mesh (lag bursts make routes fail here)
            self.topo.replicate(now);

            // heartbeats: task managers of live regions, then every
            // broker, then one shared detector tick
            for rt in &self.rts {
                if !self.region_killed.contains(&rt.name) {
                    if let Some(m) = self.topo.membership() {
                        m.heartbeat(&rt.tm);
                    }
                }
            }
            self.topo.heartbeat_tick();

            // detection -> failover of every serving layer
            let mut just_redeployed = false;
            if let Some(st) = &mut active {
                if st.detected_at.is_none() && self.detected(&st.outage) {
                    st.detected_at = Some(now);
                    if st.affected {
                        if let Some(survivor) = self.survivor_of(&st.outage.region) {
                            let dead = st.outage.region.clone();
                            if self
                                .consumer
                                .fail_over(&self.topo, &self.sync, &survivor)
                                .is_ok()
                            {
                                consumer_failovers += 1;
                            }
                            self.jm.on_region_dead(&dead);
                            self.jm.take_pending_restarts();
                            if self.redeploy_compute(&dead, &survivor).is_ok() {
                                st.rto_compute = Some(now - st.outage.kill_at_ms);
                                just_redeployed = true;
                            }
                            self.active_region = survivor;
                        }
                    }
                }
            }

            // OLAP ingestion for reachable aggregates
            for rt in &mut self.rts {
                let up = self
                    .topo
                    .region(&rt.name)
                    .map(|r| !r.aggregate.is_down())
                    .unwrap_or(false);
                if up {
                    let _ = rt.ingester.run_once();
                }
            }

            // consume layer
            match self.consumer.consume_available(&self.topo) {
                Ok(records) => {
                    for r in &records {
                        if let Some(id) = r.value.get_str("id") {
                            *self.seen.entry(id.to_string()).or_insert(0) += 1;
                        }
                    }
                    if !consumer_ok {
                        if let Some(st) = &mut active {
                            if st.affected && st.rto_consume.is_none() {
                                st.rto_consume = Some(now - st.outage.kill_at_ms);
                            }
                        }
                    }
                    consumer_ok = true;
                }
                Err(_) => consumer_ok = false,
            }

            // compute layer (periodic incremental runs)
            if (tick % 4 == 0 || just_redeployed || last_tick)
                && self.aggregate_up(&self.active_region)
            {
                let region = self.active_region.clone();
                let _ = self.run_compute(&region);
            }

            // surge layer (active-active redundant compute)
            if tick % 8 == 0 || last_tick {
                if let Ok(states) =
                    redundant_compute_round(&self.topo, &self.coord, &self.kv, now, surge_fn)
                {
                    last_surge = states;
                }
            }

            // query layer: route to the active region, degraded answers
            // carry freshness staleness
            let qr = self.active_region.clone();
            if self.aggregate_up(&qr) {
                let rt = &self.rts[self.rt_index(&qr)];
                if let Ok(out) = rt.engine.query("SELECT COUNT(*) AS n FROM trips") {
                    if let Some(st) = &mut active {
                        if st.healed_at.is_none() {
                            if let Some(s) = out.stats.staleness_ms {
                                max_staleness = max_staleness.max(s);
                            }
                        }
                        if st.affected && st.rto_query.is_none() && st.detected_at.is_some() {
                            st.rto_query = Some(now - st.outage.kill_at_ms);
                        }
                    }
                }
            }

            // catch-up bookkeeping: an outage cycle closes once every
            // reachable aggregate holds every committed record
            if let Some(st) = &mut active {
                if let Some(healed_at) = st.healed_at {
                    if now > healed_at && self.live_lag() == 0 {
                        let detect_ms = st
                            .detected_at
                            .map(|t| t - st.outage.kill_at_ms)
                            .unwrap_or(-1);
                        cycles.push(CycleLedger {
                            cycle: st.cycle,
                            kind: st.outage.kind.name(),
                            region: st.outage.region.clone(),
                            kill_ms: st.outage.kill_at_ms,
                            detect_ms,
                            affected: st.affected,
                            rto_consume_ms: st.rto_consume.unwrap_or(0),
                            rto_compute_ms: st.rto_compute.unwrap_or(0),
                            rto_query_ms: st.rto_query.unwrap_or(0),
                            dup_consume: self.consumer_duplicates() - st.dup_baseline,
                            lag_at_heal: st.lag_at_heal,
                            catchup_ms: now - healed_at,
                        });
                        active = None;
                    }
                }
            }
        }

        // a cycle that never caught up is reported, not hidden
        if let Some(st) = active.take() {
            cycles.push(CycleLedger {
                cycle: st.cycle,
                kind: st.outage.kind.name(),
                region: st.outage.region.clone(),
                kill_ms: st.outage.kill_at_ms,
                detect_ms: st
                    .detected_at
                    .map(|t| t - st.outage.kill_at_ms)
                    .unwrap_or(-1),
                affected: st.affected,
                rto_consume_ms: st.rto_consume.unwrap_or(0),
                rto_compute_ms: st.rto_compute.unwrap_or(0),
                rto_query_ms: st.rto_query.unwrap_or(0),
                dup_consume: self.consumer_duplicates() - st.dup_baseline,
                lag_at_heal: st.lag_at_heal,
                catchup_ms: -1,
            });
        }

        // final convergence accounting
        let committed = self.committed.len() as u64;
        let emitted = self.compute_emitted.lock();
        let compute_distinct = emitted.len() as u64;
        let compute_duplicate_emits: u64 = emitted.values().map(|c| c.saturating_sub(1)).sum();
        let lost = self
            .committed
            .iter()
            .filter(|id| !self.seen.contains_key(*id) || !emitted.contains_key(*id))
            .count() as u64;
        drop(emitted);

        let aggregates_equal = self
            .cfg
            .regions
            .iter()
            .all(|r| self.topo.aggregate_count(r).map(|n| n == committed) == Ok(true));
        let surge_converged = !last_surge.is_empty()
            && last_surge.len() == self.cfg.regions.len()
            && last_surge
                .values()
                .all(|s| s == last_surge.values().next().unwrap());
        let mut isr_full = true;
        for r in &self.topo.regions {
            for cluster in [&r.regional, &r.aggregate] {
                if let Ok(topic) = cluster.topic("trips") {
                    for p in 0..topic.num_partitions() {
                        if let Some(st) = topic.replica_status(p) {
                            isr_full &= st.isr.len() == st.assignment.len();
                        }
                    }
                }
            }
        }

        Ok(DrReport {
            seed: self.seed,
            regions: self.cfg.regions.clone(),
            partitions: self.cfg.partitions,
            cycles,
            committed,
            consumer_seen: self.seen.len() as u64,
            consumer_duplicates: self.consumer_duplicates(),
            consumer_failovers,
            compute_distinct,
            compute_duplicate_emits,
            lost,
            ckpt_resynced,
            max_staleness_ms: max_staleness,
            aggregates_equal,
            surge_converged,
            isr_full,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drill_runs_clean_with_zero_rpo() {
        let _g = chaos::test_guard();
        let report = DrDrill::new(7, DrConfig::default()).unwrap().run().unwrap();
        assert!(report.committed > 0);
        assert_eq!(report.lost, 0, "RPO must be zero:\n{}", report.summary());
        assert_eq!(report.cycles.len(), 3);
        assert!(report.aggregates_equal, "{}", report.summary());
        assert!(report.surge_converged, "{}", report.summary());
        assert!(report.isr_full, "{}", report.summary());
        assert!(
            report.consumer_duplicates <= report.replay_bound(64),
            "replay beyond the offset-sync bound: {} > {}",
            report.consumer_duplicates,
            report.replay_bound(64)
        );
    }

    #[test]
    fn drill_summary_is_seed_stable() {
        let _g = chaos::test_guard();
        let a = DrDrill::new(42, DrConfig::default())
            .unwrap()
            .run()
            .unwrap()
            .summary();
        let b = DrDrill::new(42, DrConfig::default())
            .unwrap()
            .run()
            .unwrap()
            .summary();
        assert_eq!(a, b, "same seed must produce a byte-identical ledger");
        let c = DrDrill::new(43, DrConfig::default())
            .unwrap()
            .run()
            .unwrap()
            .summary();
        assert_ne!(a, c, "different seeds must differ");
    }

    #[test]
    fn region_kill_failover_detects_and_restores_every_layer() {
        let _g = chaos::test_guard();
        // scan seeds for a plan whose first strike is a region-kill of
        // the home region, so every layer must fail over
        let mut hit = None;
        for seed in 0..64 {
            chaos::registry().reset(seed);
            let plan =
                chaos::registry().plan_region_outages(&["west", "east"], 1, 20_000, 40_000, 15_000);
            if plan[0].kind == RegionOutageKind::RegionKill && plan[0].region == "west" {
                hit = Some(seed);
                break;
            }
        }
        let seed = hit.expect("some seed kills the home region first");
        let cfg = DrConfig {
            cycles: 1,
            ..DrConfig::default()
        };
        let report = DrDrill::new(seed, cfg).unwrap().run().unwrap();
        let cycle = &report.cycles[0];
        assert_eq!(cycle.kind, "region-kill");
        assert!(cycle.affected);
        // the dead deadline is 10s past the last heartbeat, which lands
        // up to one tick before the planned kill instant
        assert!(
            cycle.detect_ms >= 9_000,
            "death is detected, not announced: {}",
            cycle.detect_ms
        );
        assert!(
            cycle.detect_ms <= 12_000,
            "detection overshot the deadline: {}",
            cycle.detect_ms
        );
        assert!(cycle.rto_consume_ms >= cycle.detect_ms);
        assert!(cycle.rto_compute_ms >= cycle.detect_ms);
        assert!(cycle.rto_query_ms >= cycle.detect_ms);
        assert!(cycle.catchup_ms >= 0, "replication caught back up");
        assert_eq!(report.lost, 0, "{}", report.summary());
        assert!(report.consumer_failovers >= 1);
    }
}
