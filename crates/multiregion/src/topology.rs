//! Regions, regional/aggregate clusters and cross-region replication.
//!
//! §6: "All the trip events are sent over to the Kafka regional cluster
//! and then aggregated into the aggregate clusters for the global view."

use rtdi_common::{Clock, Error, Membership, MembershipEvent, Record, Result, Timestamp};
use rtdi_stream::cluster::{Cluster, ClusterConfig};
use rtdi_stream::replicator::{OffsetMappingStore, Replicator};
use rtdi_stream::topic::TopicConfig;
use std::sync::Arc;

/// How much of a region is reachable. A region is two failure domains —
/// the regional ingestion cluster and the aggregate cluster — and they
/// can be lost independently (e.g. the aggregate cluster's racks lose
/// power while apps keep producing into the regional cluster).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegionHealth {
    Healthy,
    /// The regional cluster is unreachable: local produce fails, but the
    /// aggregate keeps serving consumers and receiving replication from
    /// other regions.
    RegionalDown,
    /// The aggregate cluster is unreachable: consumers and redundant
    /// compute must fail over, but local produce and outbound
    /// replication continue.
    AggregateDown,
    /// Full region loss.
    Down,
}

impl RegionHealth {
    pub fn name(&self) -> &'static str {
        match self {
            RegionHealth::Healthy => "healthy",
            RegionHealth::RegionalDown => "regional-down",
            RegionHealth::AggregateDown => "aggregate-down",
            RegionHealth::Down => "down",
        }
    }
}

/// One region: a regional ingestion cluster and an aggregate cluster
/// receiving replicated data from every region.
pub struct Region {
    pub name: String,
    pub regional: Arc<Cluster>,
    pub aggregate: Arc<Cluster>,
}

impl Region {
    pub fn new(name: &str) -> Region {
        Region {
            name: name.to_string(),
            regional: Cluster::new(format!("{name}-regional"), ClusterConfig::default()),
            aggregate: Cluster::new(format!("{name}-aggregate"), ClusterConfig::default()),
        }
    }

    /// Build a region whose clusters join a shared membership view, so a
    /// region kill is detectable as a correlated burst of node deaths.
    pub fn with_membership(name: &str, membership: Arc<Membership>) -> Region {
        Region {
            name: name.to_string(),
            regional: Cluster::with_membership(
                format!("{name}-regional"),
                ClusterConfig::default(),
                membership.clone(),
                Some(name),
            ),
            aggregate: Cluster::with_membership(
                format!("{name}-aggregate"),
                ClusterConfig::default(),
                membership,
                Some(name),
            ),
        }
    }

    /// Down (or restore) the whole region: both failure domains.
    pub fn set_down(&self, down: bool) {
        self.regional.set_down(down);
        self.aggregate.set_down(down);
    }

    /// Down only the regional ingestion cluster (partial degradation).
    pub fn set_regional_down(&self, down: bool) {
        self.regional.set_down(down);
    }

    /// Down only the aggregate cluster (partial degradation).
    pub fn set_aggregate_down(&self, down: bool) {
        self.aggregate.set_down(down);
    }

    /// Full region loss: both clusters unreachable. Partial degradation
    /// (one cluster lost) is reported by [`Region::health`], not here —
    /// a region with a live aggregate can still serve consumers, and one
    /// with a live regional cluster still ingests.
    pub fn is_down(&self) -> bool {
        self.regional.is_down() && self.aggregate.is_down()
    }

    /// Which half (if any) of the region is lost.
    pub fn health(&self) -> RegionHealth {
        match (self.regional.is_down(), self.aggregate.is_down()) {
            (false, false) => RegionHealth::Healthy,
            (true, false) => RegionHealth::RegionalDown,
            (false, true) => RegionHealth::AggregateDown,
            (true, true) => RegionHealth::Down,
        }
    }

    /// Region kill: every broker of both clusters falls silent (the
    /// shared failure detector must notice the missed heartbeats) and
    /// both clusters reject operations immediately.
    pub fn fail_region(&self) {
        self.regional.fail_all_nodes_silently();
        self.aggregate.fail_all_nodes_silently();
        self.set_down(true);
    }

    /// Heal a killed region: brokers rejoin their ISRs and operations
    /// resume.
    pub fn heal_region(&self) {
        self.regional.heal_all_nodes();
        self.aggregate.heal_all_nodes();
        self.set_down(false);
    }

    /// Aggregate-only loss: the aggregate cluster's brokers fall silent
    /// while the regional cluster keeps ingesting and replicating out.
    pub fn fail_aggregate(&self) {
        self.aggregate.fail_all_nodes_silently();
        self.set_aggregate_down(true);
    }

    pub fn heal_aggregate(&self) {
        self.aggregate.heal_all_nodes();
        self.set_aggregate_down(false);
    }
}

/// The full mesh: every regional topic replicates into every region's
/// aggregate cluster.
pub struct MultiRegionTopology {
    pub regions: Vec<Region>,
    replicators: Vec<Replicator>,
    mappings: OffsetMappingStore,
    topic: String,
    /// Shared failure detector across every cluster of every region
    /// (only when built via [`MultiRegionTopology::with_clock`]).
    membership: Option<Arc<Membership>>,
}

impl MultiRegionTopology {
    /// Build `n` regions wired for `topic`.
    pub fn new(region_names: &[&str], topic: &str, config: TopicConfig) -> Result<Self> {
        let regions: Vec<Region> = region_names.iter().map(|n| Region::new(n)).collect();
        Self::wire(regions, topic, config, None)
    }

    /// Build the topology on one shared membership view driven by
    /// `clock`: every broker of every cluster registers under its
    /// region, so a region kill surfaces as a correlated burst of
    /// heartbeat-deadline deaths in `membership().region_is_down(...)`
    /// — detected, not announced.
    pub fn with_clock(
        region_names: &[&str],
        topic: &str,
        config: TopicConfig,
        clock: Arc<dyn Clock>,
    ) -> Result<Self> {
        let membership = Membership::new(clock, rtdi_common::MembershipConfig::default());
        let regions: Vec<Region> = region_names
            .iter()
            .map(|n| Region::with_membership(n, membership.clone()))
            .collect();
        Self::wire(regions, topic, config, Some(membership))
    }

    fn wire(
        regions: Vec<Region>,
        topic: &str,
        config: TopicConfig,
        membership: Option<Arc<Membership>>,
    ) -> Result<Self> {
        let mappings = OffsetMappingStore::new();
        for r in &regions {
            r.regional.create_topic(topic, config.clone())?;
            r.aggregate.create_topic(topic, config.clone())?;
        }
        let mut replicators = Vec::new();
        for src in &regions {
            for dst in &regions {
                let route = route_name(&src.name, &dst.name, topic);
                let rep = Replicator::new(
                    route,
                    src.regional.clone(),
                    dst.aggregate.clone(),
                    topic,
                    mappings.clone(),
                    64,
                );
                rep.prepare()?;
                replicators.push(rep);
            }
        }
        Ok(MultiRegionTopology {
            regions,
            replicators,
            mappings,
            topic: topic.to_string(),
            membership,
        })
    }

    pub fn topic(&self) -> &str {
        &self.topic
    }

    pub fn mappings(&self) -> &OffsetMappingStore {
        &self.mappings
    }

    /// The shared failure detector (None unless built with
    /// [`MultiRegionTopology::with_clock`]).
    pub fn membership(&self) -> Option<&Arc<Membership>> {
        self.membership.as_ref()
    }

    /// One heartbeat interval: every live broker of every cluster
    /// heartbeats, then the shared detector runs once. Returns the
    /// detector's state transitions. No-op (empty) without a shared
    /// membership.
    pub fn heartbeat_tick(&self) -> Vec<MembershipEvent> {
        let Some(m) = &self.membership else {
            return Vec::new();
        };
        for r in &self.regions {
            r.regional.heartbeat_nodes();
            r.aggregate.heartbeat_nodes();
        }
        m.tick()
    }

    pub fn region(&self, name: &str) -> Result<&Region> {
        self.regions
            .iter()
            .find(|r| r.name == name)
            .ok_or_else(|| Error::NotFound(format!("region '{name}'")))
    }

    /// Produce an event into a region's regional cluster (what the app in
    /// that region does).
    pub fn produce(&self, region: &str, mut record: Record, now: Timestamp) -> Result<()> {
        record
            .headers
            .set(rtdi_common::record::headers::ORIGIN_REGION, region);
        self.region(region)?
            .regional
            .produce(&self.topic, record, now)?;
        Ok(())
    }

    /// Run every replication route once (skipping routes touching downed
    /// regions). Returns records copied.
    pub fn replicate(&self, now: Timestamp) -> u64 {
        let mut copied = 0;
        for rep in &self.replicators {
            // routes to/from downed clusters simply fail; that is the
            // disaster the failover machinery tolerates
            if let Ok(n) = rep.run_once(now) {
                copied += n;
            }
        }
        copied
    }

    /// Total records in one region's aggregate topic.
    pub fn aggregate_count(&self, region: &str) -> Result<u64> {
        Ok(self
            .region(region)?
            .aggregate
            .topic(&self.topic)?
            .total_records())
    }

    /// Total records across every region's regional (source) topic —
    /// what a fully caught-up aggregate would hold.
    pub fn total_regional_count(&self) -> u64 {
        self.regions
            .iter()
            .filter_map(|r| r.regional.topic(&self.topic).ok())
            .map(|t| t.total_records())
            .sum()
    }

    /// Replication lag of one region's aggregate: records produced
    /// somewhere in the mesh that have not landed in this aggregate yet.
    /// This is the staleness a query against this region's OLAP serving
    /// path inherits during an outage.
    pub fn aggregate_lag(&self, region: &str) -> Result<u64> {
        let target = self.aggregate_count(region)?;
        Ok(self.total_regional_count().saturating_sub(target))
    }
}

/// Canonical name of a replication route.
pub fn route_name(src: &str, dst: &str, topic: &str) -> String {
    format!("{src}->{dst}:{topic}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtdi_common::Row;

    fn trip(i: i64) -> Record {
        Record::new(Row::new().with("trip", i), i).with_key(format!("t{i}"))
    }

    #[test]
    fn aggregate_clusters_converge_to_global_view() {
        let topo = MultiRegionTopology::new(
            &["us-west", "us-east"],
            "trips",
            TopicConfig::default().with_partitions(2),
        )
        .unwrap();
        for i in 0..30 {
            topo.produce("us-west", trip(i), i).unwrap();
        }
        for i in 30..50 {
            topo.produce("us-east", trip(i), i).unwrap();
        }
        topo.replicate(100);
        // both aggregates see all 50 events (the global view)
        assert_eq!(topo.aggregate_count("us-west").unwrap(), 50);
        assert_eq!(topo.aggregate_count("us-east").unwrap(), 50);
    }

    #[test]
    fn downed_region_does_not_block_others() {
        let topo = MultiRegionTopology::new(
            &["a", "b"],
            "trips",
            TopicConfig::default().with_partitions(1),
        )
        .unwrap();
        for i in 0..10 {
            topo.produce("a", trip(i), i).unwrap();
        }
        topo.region("b").unwrap().set_down(true);
        topo.replicate(100);
        assert_eq!(topo.aggregate_count("a").unwrap(), 10);
        assert!(topo.produce("b", trip(99), 99).is_err());
        // b recovers and catches up on the next replication round
        topo.region("b").unwrap().set_down(false);
        topo.replicate(200);
        assert_eq!(topo.aggregate_count("b").unwrap(), 10);
    }

    #[test]
    fn partial_degradation_reports_which_half_is_lost() {
        let topo = MultiRegionTopology::new(
            &["a", "b"],
            "trips",
            TopicConfig::default().with_partitions(1),
        )
        .unwrap();
        let a = topo.region("a").unwrap();
        assert_eq!(a.health(), RegionHealth::Healthy);
        assert!(!a.is_down());

        // aggregate-only loss: produce + outbound replication still work
        a.set_aggregate_down(true);
        assert_eq!(a.health(), RegionHealth::AggregateDown);
        assert!(!a.is_down(), "partial loss is not full region loss");
        for i in 0..5 {
            topo.produce("a", trip(i), i).unwrap();
        }
        topo.replicate(10);
        assert_eq!(topo.aggregate_count("b").unwrap(), 5, "b still converges");
        assert!(topo.aggregate_count("a").is_err(), "a's aggregate is dark");
        assert_eq!(topo.aggregate_lag("b").unwrap(), 0);

        // the aggregate heals and catches up from the live regional side
        a.set_aggregate_down(false);
        topo.replicate(20);
        assert_eq!(topo.aggregate_count("a").unwrap(), 5, "aggregate caught up");

        // regional-only loss: ingest fails, the aggregate keeps serving
        a.set_regional_down(true);
        assert_eq!(a.health(), RegionHealth::RegionalDown);
        assert!(topo.produce("a", trip(9), 9).is_err());
        assert_eq!(topo.aggregate_count("a").unwrap(), 5, "still serving");

        a.set_regional_down(false);
        assert_eq!(a.health(), RegionHealth::Healthy);
        a.set_down(true);
        assert_eq!(a.health(), RegionHealth::Down);
        assert!(a.is_down());
    }

    #[test]
    fn shared_membership_detects_region_kill_by_missed_heartbeats() {
        use rtdi_common::SimClock;
        let clock = Arc::new(SimClock::new(0));
        let topo = MultiRegionTopology::with_clock(
            &["west", "east"],
            "trips",
            TopicConfig::default().with_partitions(1),
            clock.clone(),
        )
        .unwrap();
        let m = topo.membership().unwrap().clone();
        // all brokers of both regions live under their region tags
        assert!(!m.nodes_in_region("west").is_empty());
        for _ in 0..3 {
            clock.advance(1_000);
            topo.heartbeat_tick();
        }
        assert!(!m.region_is_down("west"));

        // west region dies silently: nothing is announced, the shared
        // detector notices the correlated burst of missed deadlines
        topo.region("west").unwrap().fail_region();
        let mut detected_at = None;
        for _ in 0..15 {
            clock.advance(1_000);
            topo.heartbeat_tick();
            if m.region_is_down("west") {
                detected_at = Some(clock.now());
                break;
            }
        }
        let detected_at = detected_at.expect("region death detected");
        assert!(detected_at >= 10_000, "not before the dead deadline");
        assert!(!m.region_is_down("east"), "east unaffected");
        assert_eq!(m.dead_regions(), vec!["west".to_string()]);

        // heal: brokers heartbeat again and the region leaves the dead set
        topo.region("west").unwrap().heal_region();
        clock.advance(1_000);
        topo.heartbeat_tick();
        assert!(!m.region_is_down("west"));
    }

    #[test]
    fn origin_region_stamped() {
        let topo =
            MultiRegionTopology::new(&["a"], "trips", TopicConfig::default().with_partitions(1))
                .unwrap();
        topo.produce("a", trip(1), 1).unwrap();
        let t = topo.region("a").unwrap().regional.topic("trips").unwrap();
        let rec = &t.fetch(0, 0, 1).unwrap().records[0].record;
        assert_eq!(
            rec.headers.get(rtdi_common::record::headers::ORIGIN_REGION),
            Some("a")
        );
    }
}
