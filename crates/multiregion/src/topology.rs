//! Regions, regional/aggregate clusters and cross-region replication.
//!
//! §6: "All the trip events are sent over to the Kafka regional cluster
//! and then aggregated into the aggregate clusters for the global view."

use rtdi_common::{Error, Record, Result, Timestamp};
use rtdi_stream::cluster::{Cluster, ClusterConfig};
use rtdi_stream::replicator::{OffsetMappingStore, Replicator};
use rtdi_stream::topic::TopicConfig;
use std::sync::Arc;

/// One region: a regional ingestion cluster and an aggregate cluster
/// receiving replicated data from every region.
pub struct Region {
    pub name: String,
    pub regional: Arc<Cluster>,
    pub aggregate: Arc<Cluster>,
}

impl Region {
    pub fn new(name: &str) -> Region {
        Region {
            name: name.to_string(),
            regional: Cluster::new(format!("{name}-regional"), ClusterConfig::default()),
            aggregate: Cluster::new(format!("{name}-aggregate"), ClusterConfig::default()),
        }
    }

    pub fn set_down(&self, down: bool) {
        self.regional.set_down(down);
        self.aggregate.set_down(down);
    }

    pub fn is_down(&self) -> bool {
        self.regional.is_down() || self.aggregate.is_down()
    }
}

/// The full mesh: every regional topic replicates into every region's
/// aggregate cluster.
pub struct MultiRegionTopology {
    pub regions: Vec<Region>,
    replicators: Vec<Replicator>,
    mappings: OffsetMappingStore,
    topic: String,
}

impl MultiRegionTopology {
    /// Build `n` regions wired for `topic`.
    pub fn new(region_names: &[&str], topic: &str, config: TopicConfig) -> Result<Self> {
        let regions: Vec<Region> = region_names.iter().map(|n| Region::new(n)).collect();
        let mappings = OffsetMappingStore::new();
        for r in &regions {
            r.regional.create_topic(topic, config.clone())?;
            r.aggregate.create_topic(topic, config.clone())?;
        }
        let mut replicators = Vec::new();
        for src in &regions {
            for dst in &regions {
                let route = route_name(&src.name, &dst.name, topic);
                let rep = Replicator::new(
                    route,
                    src.regional.clone(),
                    dst.aggregate.clone(),
                    topic,
                    mappings.clone(),
                    64,
                );
                rep.prepare()?;
                replicators.push(rep);
            }
        }
        Ok(MultiRegionTopology {
            regions,
            replicators,
            mappings,
            topic: topic.to_string(),
        })
    }

    pub fn topic(&self) -> &str {
        &self.topic
    }

    pub fn mappings(&self) -> &OffsetMappingStore {
        &self.mappings
    }

    pub fn region(&self, name: &str) -> Result<&Region> {
        self.regions
            .iter()
            .find(|r| r.name == name)
            .ok_or_else(|| Error::NotFound(format!("region '{name}'")))
    }

    /// Produce an event into a region's regional cluster (what the app in
    /// that region does).
    pub fn produce(&self, region: &str, mut record: Record, now: Timestamp) -> Result<()> {
        record
            .headers
            .set(rtdi_common::record::headers::ORIGIN_REGION, region);
        self.region(region)?
            .regional
            .produce(&self.topic, record, now)?;
        Ok(())
    }

    /// Run every replication route once (skipping routes touching downed
    /// regions). Returns records copied.
    pub fn replicate(&self, now: Timestamp) -> u64 {
        let mut copied = 0;
        for rep in &self.replicators {
            // routes to/from downed clusters simply fail; that is the
            // disaster the failover machinery tolerates
            if let Ok(n) = rep.run_once(now) {
                copied += n;
            }
        }
        copied
    }

    /// Total records in one region's aggregate topic.
    pub fn aggregate_count(&self, region: &str) -> Result<u64> {
        Ok(self
            .region(region)?
            .aggregate
            .topic(&self.topic)?
            .total_records())
    }
}

/// Canonical name of a replication route.
pub fn route_name(src: &str, dst: &str, topic: &str) -> String {
    format!("{src}->{dst}:{topic}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtdi_common::Row;

    fn trip(i: i64) -> Record {
        Record::new(Row::new().with("trip", i), i).with_key(format!("t{i}"))
    }

    #[test]
    fn aggregate_clusters_converge_to_global_view() {
        let topo = MultiRegionTopology::new(
            &["us-west", "us-east"],
            "trips",
            TopicConfig::default().with_partitions(2),
        )
        .unwrap();
        for i in 0..30 {
            topo.produce("us-west", trip(i), i).unwrap();
        }
        for i in 30..50 {
            topo.produce("us-east", trip(i), i).unwrap();
        }
        topo.replicate(100);
        // both aggregates see all 50 events (the global view)
        assert_eq!(topo.aggregate_count("us-west").unwrap(), 50);
        assert_eq!(topo.aggregate_count("us-east").unwrap(), 50);
    }

    #[test]
    fn downed_region_does_not_block_others() {
        let topo = MultiRegionTopology::new(
            &["a", "b"],
            "trips",
            TopicConfig::default().with_partitions(1),
        )
        .unwrap();
        for i in 0..10 {
            topo.produce("a", trip(i), i).unwrap();
        }
        topo.region("b").unwrap().set_down(true);
        topo.replicate(100);
        assert_eq!(topo.aggregate_count("a").unwrap(), 10);
        assert!(topo.produce("b", trip(99), 99).is_err());
        // b recovers and catches up on the next replication round
        topo.region("b").unwrap().set_down(false);
        topo.replicate(200);
        assert_eq!(topo.aggregate_count("b").unwrap(), 10);
    }

    #[test]
    fn origin_region_stamped() {
        let topo =
            MultiRegionTopology::new(&["a"], "trips", TopicConfig::default().with_partitions(1))
                .unwrap();
        topo.produce("a", trip(1), 1).unwrap();
        let t = topo.region("a").unwrap().regional.topic("trips").unwrap();
        let rec = &t.fetch(0, 0, 1).unwrap().records[0].record;
        assert_eq!(
            rec.headers.get(rtdi_common::record::headers::ORIGIN_REGION),
            Some("a")
        );
    }
}
