//! Active-passive consumption with offset synchronization (§6, Figure 7).
//!
//! "Only one consumer (identified by a unique name) is allowed to consume
//! from the aggregate clusters in one of the regions designated as the
//! primary region at a time... the consumer can neither resume from the
//! high watermark ... nor from the low watermark... when uReplicator
//! replicates messages from source cluster to the destination cluster, it
//! periodically checkpoints the offset mapping... an offset sync job
//! periodically synchronizes the offsets between the two regions... when
//! an active/passive consumer fails over from one region to another, the
//! consumer can take the latest synchronized offset and resume the
//! consumption."

use crate::topology::{route_name, MultiRegionTopology};
use rtdi_common::{Error, Record, Result};
use rtdi_stream::replicator::OffsetMappingStore;
use std::collections::BTreeMap;

/// Translates committed offsets between regions using the replicator's
/// offset-mapping checkpoints.
pub struct OffsetSyncService {
    mappings: OffsetMappingStore,
}

impl OffsetSyncService {
    pub fn new(mappings: OffsetMappingStore) -> Self {
        OffsetSyncService { mappings }
    }

    /// Translate a consumer offset on `from_region`'s aggregate cluster to
    /// a safe resume offset on `to_region`'s aggregate cluster.
    ///
    /// The aggregate topic interleaves messages replicated from every
    /// source region, so the translation goes through each source route
    /// (aggregate offset -> source offset -> other aggregate offset) and
    /// takes the conservative minimum: resuming there can replay a bounded
    /// suffix (at-least-once) but can never skip an unconsumed message.
    pub fn translate(
        &self,
        topic: &str,
        sources: &[String],
        from_region: &str,
        to_region: &str,
        partition: usize,
        offset: u64,
    ) -> u64 {
        let mut resume: Option<u64> = None;
        for src in sources {
            let from_route = route_name(src, from_region, topic);
            let to_route = route_name(src, to_region, topic);
            let candidate = self
                .mappings
                .translate_reverse(&from_route, partition, offset.saturating_sub(1))
                .and_then(|m| self.mappings.translate(&to_route, partition, m.src_offset))
                .map(|m| m.dst_offset)
                .unwrap_or(0);
            resume = Some(match resume {
                None => candidate,
                Some(r) => r.min(candidate),
            });
        }
        resume.unwrap_or(0)
    }
}

/// A uniquely-named consumer that reads one region's aggregate cluster and
/// can fail over with offset translation.
pub struct ActivePassiveConsumer {
    pub name: String,
    topic: String,
    current_region: String,
    /// next offset per partition in the current region's aggregate topic
    offsets: BTreeMap<usize, u64>,
}

impl ActivePassiveConsumer {
    pub fn new(name: &str, topic: &str, region: &str) -> Self {
        ActivePassiveConsumer {
            name: name.to_string(),
            topic: topic.to_string(),
            current_region: region.to_string(),
            offsets: BTreeMap::new(),
        }
    }

    pub fn current_region(&self) -> &str {
        &self.current_region
    }

    pub fn committed(&self, partition: usize) -> u64 {
        *self.offsets.get(&partition).unwrap_or(&0)
    }

    /// Consume everything currently available in the active region.
    pub fn consume_available(&mut self, topo: &MultiRegionTopology) -> Result<Vec<Record>> {
        let region = topo.region(&self.current_region)?;
        // the consumer reads the aggregate cluster: aggregate-only loss
        // forces a failover even while the regional half keeps ingesting
        if region.aggregate.is_down() {
            return Err(Error::Unavailable(format!(
                "region '{}' aggregate down",
                self.current_region
            )));
        }
        let topic = region.aggregate.topic(&self.topic)?;
        let mut out = Vec::new();
        for p in 0..topic.num_partitions() {
            let mut pos = self.committed(p);
            loop {
                let fetch = match topic.fetch(p, pos, 1024) {
                    Ok(f) => f,
                    Err(Error::OffsetOutOfRange { low, .. }) => {
                        pos = low;
                        topic.fetch(p, low, 1024)?
                    }
                    Err(e) => return Err(e),
                };
                let Some(last) = fetch.records.last() else {
                    break;
                };
                pos = last.offset + 1;
                out.extend(fetch.records.into_iter().map(|r| r.into_record()));
            }
            self.offsets.insert(p, pos);
        }
        Ok(out)
    }

    /// Fail over to another region, resuming from synchronized offsets.
    pub fn fail_over(
        &mut self,
        topo: &MultiRegionTopology,
        sync: &OffsetSyncService,
        to_region: &str,
    ) -> Result<()> {
        let target = topo.region(to_region)?;
        if target.aggregate.is_down() {
            return Err(Error::Unavailable(format!(
                "region '{to_region}' aggregate down"
            )));
        }
        let sources: Vec<String> = topo.regions.iter().map(|r| r.name.clone()).collect();
        let topic = target.aggregate.topic(&self.topic)?;
        let mut new_offsets = BTreeMap::new();
        for p in 0..topic.num_partitions() {
            let translated = sync.translate(
                &self.topic,
                &sources,
                &self.current_region,
                to_region,
                p,
                self.committed(p),
            );
            new_offsets.insert(p, translated);
        }
        self.offsets = new_offsets;
        self.current_region = to_region.to_string();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtdi_common::record::headers;
    use rtdi_common::Row;
    use rtdi_stream::topic::TopicConfig;
    use std::collections::BTreeSet;

    fn payment(i: i64) -> Record {
        Record::new(Row::new().with("payment", i), i)
            .with_key(format!("p{i}"))
            .with_header(headers::UNIQUE_ID, format!("pay-{i}"))
    }

    fn ids(records: &[Record]) -> BTreeSet<String> {
        records
            .iter()
            .map(|r| r.unique_id().unwrap().to_string())
            .collect()
    }

    #[test]
    fn failover_loses_nothing_and_bounds_replay() {
        let topo = MultiRegionTopology::new(
            &["west", "east"],
            "payments",
            TopicConfig::lossless().with_partitions(2),
        )
        .unwrap();
        // 200 payments from both regions, replicated with periodic
        // offset-mapping checkpoints
        for i in 0..200 {
            let region = if i % 2 == 0 { "west" } else { "east" };
            topo.produce(region, payment(i), i).unwrap();
        }
        topo.replicate(500);

        let sync = OffsetSyncService::new(topo.mappings().clone());
        let mut consumer = ActivePassiveConsumer::new("payment-processor", "payments", "west");
        let consumed_before = consumer.consume_available(&topo).unwrap();
        assert_eq!(consumed_before.len(), 200);

        // more payments arrive, then the west region dies mid-stream
        for i in 200..260 {
            let region = if i % 2 == 0 { "west" } else { "east" };
            topo.produce(region, payment(i), i).unwrap();
        }
        topo.replicate(600);
        let more = consumer.consume_available(&topo).unwrap();
        assert_eq!(more.len(), 60);
        topo.region("west").unwrap().set_down(true);
        assert!(consumer.consume_available(&topo).is_err());

        // fail over to east and drain
        consumer.fail_over(&topo, &sync, "east").unwrap();
        assert_eq!(consumer.current_region(), "east");
        let after = consumer.consume_available(&topo).unwrap();

        // zero data loss: every payment id seen at least once
        let mut all = ids(&consumed_before);
        all.extend(ids(&more));
        all.extend(ids(&after));
        assert_eq!(all.len(), 260, "payments lost in failover");

        // bounded replay: duplicates are limited to the checkpoint gap,
        // far from a full re-read
        assert!(
            after.len() < 200,
            "resumed from near the sync point, got {} replayed",
            after.len()
        );
    }

    #[test]
    fn failover_under_injected_replication_lag_loses_nothing() {
        use rtdi_common::chaos::{self, FaultKind, FaultPlan, FaultPoint, Trigger};
        let _g = chaos::test_guard();
        chaos::registry().reset(0x1A65);
        let topo = MultiRegionTopology::new(
            &["west", "east"],
            "payments",
            TopicConfig::lossless().with_partitions(2),
        )
        .unwrap();
        for i in 0..200 {
            let region = if i % 2 == 0 { "west" } else { "east" };
            topo.produce(region, payment(i), i).unwrap();
        }
        topo.replicate(500);
        let sync = OffsetSyncService::new(topo.mappings().clone());
        let mut consumer = ActivePassiveConsumer::new("payment-processor", "payments", "west");
        let consumed_before = consumer.consume_available(&topo).unwrap();
        assert_eq!(consumed_before.len(), 200);

        // 60 more payments arrive, then the cross-region links degrade:
        // this replication round only partially lands, so the aggregates
        // diverge (east lags behind west)
        for i in 200..260 {
            let region = if i % 2 == 0 { "west" } else { "east" };
            topo.produce(region, payment(i), i).unwrap();
        }
        chaos::registry().arm(
            FaultPoint::MultiregionReplicate,
            FaultPlan::fail(FaultKind::Timeout, Trigger::Always).with_burst(40, None),
        );
        topo.replicate(600);
        let west_count = topo.aggregate_count("west").unwrap();
        let east_count = topo.aggregate_count("east").unwrap();
        assert!(
            east_count < west_count,
            "lag injected: east {east_count} should trail west {west_count}"
        );
        let more = consumer.consume_available(&topo).unwrap();

        // west dies; the consumer fails over to the lagging region using
        // the synchronized offsets
        topo.region("west").unwrap().set_down(true);
        assert!(consumer.consume_available(&topo).is_err());
        consumer.fail_over(&topo, &sync, "east").unwrap();
        assert_eq!(consumer.current_region(), "east");

        // the links heal and west recovers; replication catches east up,
        // and the consumer drains from the translated resume point
        chaos::registry().disarm_all();
        topo.region("west").unwrap().set_down(false);
        topo.replicate(700);
        let after = consumer.consume_available(&topo).unwrap();

        // zero data loss despite failing over while the target lagged:
        // every payment id seen at least once
        let mut all = ids(&consumed_before);
        all.extend(ids(&more));
        all.extend(ids(&after));
        assert_eq!(all.len(), 260, "payments lost in lagging failover");
        // bounded replay: the conservative translation replays a suffix,
        // never the whole topic
        assert!(
            after.len() < 260,
            "resumed from the sync point, got {} replayed",
            after.len()
        );
    }

    #[test]
    fn failover_without_sync_data_restarts_from_earliest() {
        let topo =
            MultiRegionTopology::new(&["a", "b"], "t", TopicConfig::default().with_partitions(1))
                .unwrap();
        for i in 0..10 {
            topo.produce("a", payment(i), i).unwrap();
        }
        topo.replicate(50);
        // a fresh mapping store = no checkpoints at all
        let sync = OffsetSyncService::new(rtdi_stream::replicator::OffsetMappingStore::new());
        let mut consumer = ActivePassiveConsumer::new("c", "t", "a");
        consumer.consume_available(&topo).unwrap();
        consumer.fail_over(&topo, &sync, "b").unwrap();
        // conservative: resume from earliest (replay everything, lose nothing)
        let replayed = consumer.consume_available(&topo).unwrap();
        assert_eq!(replayed.len(), 10);
    }

    #[test]
    fn cannot_fail_over_to_downed_region() {
        let topo =
            MultiRegionTopology::new(&["a", "b"], "t", TopicConfig::default().with_partitions(1))
                .unwrap();
        topo.region("b").unwrap().set_down(true);
        let sync = OffsetSyncService::new(topo.mappings().clone());
        let mut consumer = ActivePassiveConsumer::new("c", "t", "a");
        assert!(consumer.fail_over(&topo, &sync, "b").is_err());
        assert_eq!(consumer.current_region(), "a");
    }
}
