//! The active-active key-value store (Figure 6's "active/active database
//! for quick lookup").
//!
//! Surge results are written by the primary region's update service and
//! must be readable from every region. The model here is a single
//! logically-replicated store with last-writer-wins per key.

use parking_lot::RwLock;
use rtdi_common::{Row, Timestamp};
use std::collections::HashMap;
use std::sync::Arc;

#[derive(Debug, Clone)]
struct Entry {
    row: Row,
    written_at: Timestamp,
    written_by: String,
}

/// A replicated KV store with last-writer-wins semantics.
#[derive(Clone, Default)]
pub struct ReplicatedKv {
    inner: Arc<RwLock<HashMap<String, Entry>>>,
}

impl ReplicatedKv {
    pub fn new() -> Self {
        Self::default()
    }

    /// Write a value (LWW on timestamp; ties broken by writer name for
    /// determinism).
    pub fn put(&self, key: &str, row: Row, written_at: Timestamp, written_by: &str) {
        let mut inner = self.inner.write();
        let should_write = match inner.get(key) {
            None => true,
            Some(prev) => (written_at, written_by) >= (prev.written_at, prev.written_by.as_str()),
        };
        if should_write {
            inner.insert(
                key.to_string(),
                Entry {
                    row,
                    written_at,
                    written_by: written_by.to_string(),
                },
            );
        }
    }

    pub fn get(&self, key: &str) -> Option<Row> {
        self.inner.read().get(key).map(|e| e.row.clone())
    }

    /// Who wrote the current value (tests assert the primary region wrote).
    pub fn writer_of(&self, key: &str) -> Option<String> {
        self.inner.read().get(key).map(|e| e.written_by.clone())
    }

    pub fn len(&self) -> usize {
        self.inner.read().len()
    }

    pub fn is_empty(&self) -> bool {
        self.inner.read().is_empty()
    }

    pub fn keys(&self) -> Vec<String> {
        self.inner.read().keys().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_roundtrip() {
        let kv = ReplicatedKv::new();
        kv.put("hex-1", Row::new().with("multiplier", 1.5), 100, "us-west");
        assert_eq!(kv.get("hex-1").unwrap().get_double("multiplier"), Some(1.5));
        assert_eq!(kv.writer_of("hex-1").unwrap(), "us-west");
        assert!(kv.get("ghost").is_none());
    }

    #[test]
    fn last_writer_wins() {
        let kv = ReplicatedKv::new();
        kv.put("k", Row::new().with("v", 1i64), 100, "a");
        kv.put("k", Row::new().with("v", 2i64), 200, "b");
        assert_eq!(kv.get("k").unwrap().get_int("v"), Some(2));
        // stale write ignored
        kv.put("k", Row::new().with("v", 3i64), 150, "c");
        assert_eq!(kv.get("k").unwrap().get_int("v"), Some(2));
        // tie on timestamp: writer name breaks deterministically
        kv.put("k", Row::new().with("v", 4i64), 200, "z");
        assert_eq!(kv.get("k").unwrap().get_int("v"), Some(4));
        kv.put("k", Row::new().with("v", 5i64), 200, "a");
        assert_eq!(kv.get("k").unwrap().get_int("v"), Some(4));
    }
}
