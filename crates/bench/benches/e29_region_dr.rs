//! E29: region-scale disaster recovery — failover RTO, replication
//! catch-up, and steady-state replication overhead.
//!
//! Three measurements against the §6 multi-region machinery:
//!
//! - **region failover RTO**: a full `DrDrill` cycle where the serving
//!   region is killed; RTO is split into detection (logical: the region's
//!   nodes must miss the membership dead deadline) and per-layer recovery
//!   (consume / compute / query), with the whole drill's wall time as the
//!   simulation cost;
//! - **replication catch-up throughput**: one region accumulates a
//!   backlog while the mesh is down; the catch-up drain rate is the
//!   records/s the replicator moves into every aggregate once healed,
//!   plus the mirrored checkpoint-store resync rate;
//! - **steady-state replication overhead**: producing with the full-mesh
//!   replication running each round vs producing alone.

use criterion::{criterion_group, criterion_main, Criterion};
use rtdi_bench::{quick_criterion, report, report_header, time_it};
use rtdi_common::chaos::{self, RegionOutageKind};
use rtdi_common::{Record, Row};
use rtdi_multiregion::{DrConfig, DrDrill, MultiRegionTopology};
use rtdi_storage::{FaultyStore, InMemoryStore, MirroredStore, ObjectStore};
use rtdi_stream::topic::TopicConfig;
use std::sync::Arc;

fn event(i: i64) -> Record {
    Record::new(
        Row::new()
            .with("id", format!("r{i:06}"))
            .with("hex", format!("h{}", i % 4))
            .with("kind", if i % 3 == 0 { "supply" } else { "demand" }),
        i,
    )
    .with_key(format!("r{i:06}"))
}

/// Find a seed whose first planned outage kills the home region, so the
/// measured cycle exercises every failover path.
fn home_kill_seed() -> u64 {
    for seed in 0..64 {
        chaos::registry().reset(seed);
        let plan =
            chaos::registry().plan_region_outages(&["west", "east"], 1, 20_000, 40_000, 15_000);
        if plan[0].kind == RegionOutageKind::RegionKill && plan[0].region == "west" {
            return seed;
        }
    }
    unreachable!("no seed in 0..64 kills the home region first");
}

fn region_failover_rto() {
    let seed = home_kill_seed();
    let cfg = DrConfig {
        cycles: 1,
        ..DrConfig::default()
    };
    let (report_out, wall) = time_it(|| DrDrill::new(seed, cfg).unwrap().run().unwrap());
    let cycle = &report_out.cycles[0];
    assert_eq!(cycle.kind, "region-kill");
    assert!(cycle.affected);
    assert_eq!(report_out.lost, 0, "RPO must be zero");
    chaos::registry().reset(seed);
    report(
        "region failover RTO",
        format!(
            "home-region kill under live traffic: detection {} ms logical (membership \
             deadline), RTO consume {} ms / compute {} ms / query {} ms, replication \
             catch-up {} ms after heal; {} records committed with 0 lost and {} consumer \
             replay duplicates; drill wall time {:.0} ms",
            cycle.detect_ms,
            cycle.rto_consume_ms,
            cycle.rto_compute_ms,
            cycle.rto_query_ms,
            cycle.catchup_ms,
            report_out.committed,
            report_out.consumer_duplicates,
            wall.as_secs_f64() * 1e3,
        ),
    );
}

fn replication_catchup_throughput() {
    const BACKLOG: i64 = 40_000;
    chaos::registry().reset(0xE29B);
    let topo = MultiRegionTopology::new(
        &["west", "east"],
        "trips",
        TopicConfig::high_throughput().with_partitions(4),
    )
    .unwrap();
    // the mesh is idle while a backlog accumulates in both regional
    // clusters (e.g. a replicator-lag outage just healed)
    for i in 0..BACKLOG {
        let region = if i % 2 == 0 { "west" } else { "east" };
        topo.produce(region, event(i), i).unwrap();
    }
    let (moved, wall) = time_it(|| topo.replicate(BACKLOG));
    assert_eq!(topo.aggregate_count("west").unwrap(), BACKLOG as u64);
    assert_eq!(topo.aggregate_count("east").unwrap(), BACKLOG as u64);
    report(
        "replication catch-up",
        format!(
            "{moved} route-records drained into 2 aggregate clusters in {:.1} ms \
             ({:.2} M records/s)",
            wall.as_secs_f64() * 1e3,
            moved as f64 / wall.as_secs_f64() / 1e6,
        ),
    );

    // checkpoint-store resync: re-mirror a store that missed every write
    const OBJECTS: usize = 256;
    let primary = Arc::new(InMemoryStore::new());
    let mirror = Arc::new(FaultyStore::new(InMemoryStore::new()));
    let view = MirroredStore::new(primary, mirror.clone() as Arc<dyn ObjectStore>);
    mirror.set_down(true);
    for i in 0..OBJECTS {
        view.put(
            &format!("checkpoints/dr/ckpt-{i:010}"),
            vec![0u8; 4096].into(),
        )
        .unwrap();
    }
    mirror.set_down(false);
    let (copied, wall) = time_it(|| view.resync().unwrap());
    assert_eq!(copied, OBJECTS);
    report(
        "checkpoint resync",
        format!(
            "{copied} x 4 KiB checkpoint objects re-mirrored in {:.2} ms \
             ({:.0} objects/s)",
            wall.as_secs_f64() * 1e3,
            copied as f64 / wall.as_secs_f64(),
        ),
    );
}

fn bench(c: &mut Criterion) {
    report_header(
        "E29 region-scale disaster recovery",
        "multi-region Kafka with full-mesh uReplicator routes, offset-sync \
         consumer failover, cross-region checkpointed compute redeploys, \
         and all-active surge — region loss costs detection plus bounded \
         replay, never data (§6)",
    );
    region_failover_rto();
    replication_catchup_throughput();

    // steady-state overhead: produce+replicate each round vs produce only
    chaos::registry().reset(0xE29C);
    let mirrored = MultiRegionTopology::new(
        &["west", "east"],
        "trips",
        TopicConfig::high_throughput().with_partitions(4),
    )
    .unwrap();
    let solo = MultiRegionTopology::new(
        &["solo"],
        "trips",
        TopicConfig::high_throughput().with_partitions(4),
    )
    .unwrap();
    let mut g = c.benchmark_group("e29_region_dr");
    let mut n = 0i64;
    g.bench_function("produce_with_full_mesh_replication", |b| {
        b.iter(|| {
            n += 1;
            let region = if n % 2 == 0 { "west" } else { "east" };
            mirrored.produce(region, event(n), n).unwrap();
            mirrored.replicate(n)
        })
    });
    let mut m = 0i64;
    g.bench_function("produce_single_region", |b| {
        b.iter(|| {
            m += 1;
            solo.produce("solo", event(m), m).unwrap();
            solo.replicate(m)
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = quick_criterion();
    targets = bench
}
criterion_main!(benches);
