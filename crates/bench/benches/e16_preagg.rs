//! E16 (§5.2): the restaurant-manager tradeoff — "preprocessing during
//! transformation time can create optimized indices and reduce the amount
//! of data for serving, but it reduces the query flexibility on the
//! serving layer."

use criterion::{criterion_group, criterion_main, Criterion};
use rtdi_bench::{quick_criterion, report, report_header, time_it};
use rtdi_usecases::restaurant::{ingest_raw, RestaurantManager};
use rtdi_usecases::workloads::TripEventGenerator;

fn bench(c: &mut Criterion) {
    report_header(
        "E16 transform-time vs query-time processing",
        "Flink pre-aggregation + Pinot indices cut dashboard latency and \
         docs touched by orders of magnitude vs serving from raw events",
    );
    let mut gen = TripEventGenerator::new(77, 64);
    let orders: Vec<_> = (0..200_000)
        .map(|i| gen.eats_order((i as i64) * 50))
        .collect();

    let rm = RestaurantManager::new(60_000).unwrap();
    let (rolled, rollup_t) = time_it(|| rm.ingest_orders(orders.clone()).unwrap());
    rm.stats_table.seal_all().unwrap();
    report(
        "preprocessing",
        format!(
            "{} raw -> {} stat rows ({}x reduction) in {:.0} ms",
            orders.len(),
            rolled,
            orders.len() as u64 / rolled.max(1),
            rollup_t.as_secs_f64() * 1e3
        ),
    );

    let raw_table = RestaurantManager::raw_table().unwrap();
    ingest_raw(&raw_table, &orders).unwrap();
    raw_table.seal_all().unwrap();

    let restaurant = "rest-0005";
    let reps = 20;
    let (pre_docs, pre_t) = {
        let mut docs = 0;
        let (_, t) = time_it(|| {
            for _ in 0..reps {
                docs = rm
                    .load_dashboard(restaurant)
                    .unwrap()
                    .iter()
                    .map(|r| r.docs_scanned)
                    .sum();
            }
        });
        (docs, t / reps)
    };
    let (raw_docs, raw_t) = {
        let queries = RestaurantManager::raw_dashboard_queries(restaurant, 60_000);
        let mut docs = 0;
        let (_, t) = time_it(|| {
            for _ in 0..reps {
                docs = queries
                    .iter()
                    .map(|q| raw_table.query(q).unwrap().docs_scanned)
                    .sum();
            }
        });
        (docs, t / reps)
    };
    report(
        "dashboard page load",
        format!(
            "pre-aggregated {:.2} ms ({pre_docs} docs) vs raw {:.2} ms ({raw_docs} docs) \
             -> {:.1}x latency, {:.0}x docs",
            pre_t.as_secs_f64() * 1e3,
            raw_t.as_secs_f64() * 1e3,
            raw_t.as_secs_f64() / pre_t.as_secs_f64(),
            raw_docs as f64 / pre_docs.max(1) as f64
        ),
    );

    let mut g = c.benchmark_group("e16");
    g.bench_function("dashboard_preagg", |b| {
        b.iter(|| rm.load_dashboard(restaurant).unwrap())
    });
    g.bench_function("dashboard_raw", |b| {
        let queries = RestaurantManager::raw_dashboard_queries(restaurant, 60_000);
        b.iter(|| {
            queries
                .iter()
                .map(|q| raw_table.query(q).unwrap().rows.len())
                .sum::<usize>()
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = quick_criterion();
    targets = bench
}
criterion_main!(benches);
