//! E15 (§5.1, §6, Figure 6): the surge pipeline meets "a strict
//! end-to-end latency SLA ... per time window", drops late arrivals
//! (freshness over completeness), and the active-active setup converges
//! and fails over without losing pricing coverage.

use criterion::{criterion_group, criterion_main, Criterion};
use rtdi_bench::{quick_criterion, report, report_header, time_it};
use rtdi_common::{FieldType, Row, Schema};
use rtdi_core::platform::RealtimePlatform;
use rtdi_multiregion::activeactive::{redundant_compute_round, ActiveActiveCoordinator};
use rtdi_multiregion::kv::ReplicatedKv;
use rtdi_multiregion::topology::MultiRegionTopology;
use rtdi_olap::table::TableConfig;
use rtdi_stream::topic::TopicConfig;
use rtdi_usecases::surge::{LinearSurgeModel, SurgeModel, SurgePipeline};
use rtdi_usecases::workloads::TripEventGenerator;
use std::collections::BTreeMap;
use std::sync::Arc;

fn bench(c: &mut Criterion) {
    report_header(
        "E15 surge pricing end-to-end",
        "seconds-level freshness per pricing window; late events excluded; \
         active-active regions converge and fail over seamlessly",
    );
    // single-region pipeline throughput + freshness
    let pipeline = SurgePipeline::new(2_000, Arc::new(LinearSurgeModel::default()));
    let mut gen = TripEventGenerator::new(5, 128).with_lateness(0.05, 5_000);
    let records = gen.marketplace_batch(0, 120_000, 2_000); // 2 minutes at 2k/s
    let n = records.len();
    let kv = ReplicatedKv::new();
    let job = pipeline.job_from_records("surge", records, kv.clone(), "region");
    let (stats, elapsed) = time_it(|| pipeline.run(job).unwrap());
    report(
        "pipeline throughput",
        format!(
            "{:.0} events/s ({n} events)",
            n as f64 / elapsed.as_secs_f64()
        ),
    );
    report(
        "pricing freshness bound",
        format!(
            "{} ms after window close (SLA: seconds-level)",
            pipeline.freshness_bound_ms()
        ),
    );
    report(
        "hexes priced / peak state",
        format!(
            "{} hexes, {} KiB window state",
            kv.len(),
            stats.peak_state_bytes / 1024
        ),
    );

    // measured per-stage freshness through the full platform path
    // (produce -> broker -> OLAP -> SQL) under the wall clock
    let platform = RealtimePlatform::new();
    let schema = Schema::of(
        "surge",
        &[
            ("hex", FieldType::Str),
            ("kind", FieldType::Str),
            ("ts", FieldType::Timestamp),
        ],
    );
    platform
        .create_topic(
            "surge",
            TopicConfig::default().with_partitions(4),
            schema.clone(),
        )
        .unwrap();
    let producer = platform.producer("surge-bench");
    let mut gen = TripEventGenerator::new(11, 128);
    for t in 0..20_000i64 {
        producer.send("surge", gen.marketplace_event(t)).unwrap();
    }
    let table = platform
        .create_olap_table(
            TableConfig::new("surge", schema)
                .with_time_column("ts")
                .with_partitions(4),
        )
        .unwrap();
    platform
        .ingest_into("surge", table)
        .unwrap()
        .run_once()
        .unwrap();
    platform.sql("SELECT COUNT(*) AS n FROM surge").unwrap();
    let health = platform.health();
    for stage in health.report.pipeline("surge") {
        report(
            &format!("freshness {}", stage.stage),
            format!(
                "p50 {} ms, p99 {} ms, max {} ms over {} records",
                stage.p50_ms, stage.p99_ms, stage.max_ms, stage.count
            ),
        );
    }
    for audit in &health.audits {
        report(
            "chaperone audit",
            format!(
                "{} -> {}: lost {}, duplicated {}",
                audit.from_stage, audit.to_stage, audit.lost, audit.duplicated
            ),
        );
    }
    report(
        "freshness SLA (5s, per traced hop p99)",
        format!(
            "met = {}",
            pipeline.meets_freshness_sla(&health.report, "surge", 5_000)
        ),
    );

    // active-active: convergence + failover time
    let topo = MultiRegionTopology::new(
        &["west", "east"],
        "marketplace",
        TopicConfig::high_throughput().with_partitions(4),
    )
    .unwrap();
    let model = Arc::new(LinearSurgeModel::default());
    let compute = move |rows: &[Row]| -> BTreeMap<String, Row> {
        let mut ds: BTreeMap<String, (f64, f64)> = BTreeMap::new();
        for r in rows {
            if let Some(hex) = r.get_str("hex") {
                let e = ds.entry(hex.to_string()).or_insert((0.0, 0.0));
                match r.get_str("kind") {
                    Some("demand") => e.0 += 1.0,
                    Some("supply") => e.1 += 1.0,
                    _ => {}
                }
            }
        }
        ds.into_iter()
            .map(|(h, (d, s))| (h, Row::new().with("multiplier", model.multiplier(d, s))))
            .collect()
    };
    let mut g1 = TripEventGenerator::new(6, 64);
    let mut g2 = TripEventGenerator::new(7, 64);
    for t in 0..5_000i64 {
        topo.produce("west", g1.marketplace_event(t), t).unwrap();
        topo.produce("east", g2.marketplace_event(t), t).unwrap();
    }
    topo.replicate(10_000);
    let coord = ActiveActiveCoordinator::new("west");
    let kv = ReplicatedKv::new();
    let states = redundant_compute_round(&topo, &coord, &kv, 10_000, &compute).unwrap();
    report(
        "active-active convergence",
        format!(
            "west and east computed identical state over {} hexes: {}",
            states["west"].len(),
            states["west"] == states["east"]
        ),
    );
    let coverage_before = kv.len();
    topo.region("west").unwrap().set_down(true);
    let (_, failover_t) =
        time_it(|| redundant_compute_round(&topo, &coord, &kv, 11_000, &compute).unwrap());
    report(
        "failover",
        format!(
            "primary now {}, pricing recomputed in {:.1} ms, coverage {} -> {} hexes",
            coord.primary(),
            failover_t.as_secs_f64() * 1e3,
            coverage_before,
            kv.len()
        ),
    );
    assert!(kv.len() >= coverage_before);

    let mut g = c.benchmark_group("e15");
    g.bench_function("surge_10k_events", |b| {
        b.iter(|| {
            let mut gen = TripEventGenerator::new(9, 64);
            let records = gen.marketplace_batch(0, 10_000, 1_000);
            let kv = ReplicatedKv::new();
            let p = SurgePipeline::new(2_000, Arc::new(LinearSurgeModel::default()));
            let job = p.job_from_records("s", records, kv, "r");
            p.run(job).unwrap()
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = quick_criterion();
    targets = bench
}
criterion_main!(benches);
