//! E27 (§4.3/§4.5): hybrid-table federation. A dashboard-style aggregate
//! over a recent time window, answered four ways against the same data —
//! a full scan of every archival file, the time-boundary split (zone-map
//! pruned historical slice + realtime slice), the split with
//! partition-pruned scatter on top, and a warm freshness-aware result
//! cache. The paper's claim: hybrid tables keep "seconds-level freshness
//! with historical completeness" while repeated queries cost only the
//! fresh slice.

use criterion::{criterion_group, criterion_main, Criterion};
use rtdi_bench::{
    assert_allocs_at_most, count_allocations, quick_criterion, report, report_header, time_it,
};
use rtdi_common::{AggFn, FieldType, Row, Schema, Value};
use rtdi_olap::query::{Predicate, PredicateOp, Query};
use rtdi_olap::segment::{IndexSpec, Segment};
use rtdi_olap::table::{OlapTable, TableConfig};
use rtdi_sql::catalog::{HybridTable, RealtimeSide};
use rtdi_sql::connector::{Connector, PinotConnector, Pushdown, PushedAgg};
use std::sync::Arc;
use std::time::Duration;

const PARTITIONS: usize = 4;
const TIME_CHUNKS: usize = 4;
/// Rows per (time chunk, partition) archival segment.
const SEG_ROWS: usize = 6_000;
/// Rows in the realtime store past the boundary.
const RT_ROWS: usize = 12_000;
/// ts span covered by each archival time chunk.
const CHUNK_SPAN: i64 = 100_000;
const BOUNDARY: i64 = TIME_CHUNKS as i64 * CHUNK_SPAN - 1;
/// Recent window: the tail of the newest chunk plus everything fresh.
const WINDOW_LO: i64 = BOUNDARY - CHUNK_SPAN / 2;
const ITERS: usize = 30;

const CITIES: [&str; 8] = ["sf", "la", "nyc", "chi", "sea", "mia", "atx", "den"];
const TARGET: &str = "sf";

fn schema() -> Schema {
    Schema::of(
        "trips",
        &[
            ("city", FieldType::Str),
            ("ts", FieldType::Timestamp),
            ("fare", FieldType::Double),
        ],
    )
}

fn partition_of(city: &str) -> usize {
    (Value::from(city).partition_hash() % PARTITIONS as u64) as usize
}

/// Integer-valued fares keep f64 sums exact, so every variant's answer
/// is bit-identical regardless of merge order.
fn row(city: &str, ts: i64, i: usize) -> Row {
    Row::new()
        .with("city", city)
        .with("ts", ts)
        .with("fare", (5 + i % 400) as f64)
}

/// Two archival layouts over the same rows, persisted once and re-opened
/// cold by every variant: one segment per time chunk (cities interleaved
/// — what a partition-oblivious offline pipeline writes), and one
/// segment per (time chunk, partition) for the partition-aware pipeline.
#[allow(clippy::type_complexity)]
fn offline_files() -> (
    Vec<(String, usize, bytes::Bytes)>,
    Vec<(String, usize, bytes::Bytes)>,
) {
    let mut chunk_files = Vec::new();
    let mut part_files = Vec::new();
    for chunk in 0..TIME_CHUNKS {
        let mut all = Vec::new();
        let mut buckets: Vec<Vec<Row>> = vec![Vec::new(); PARTITIONS];
        let per_chunk = SEG_ROWS * PARTITIONS;
        for i in 0..per_chunk {
            let city = CITIES[i % CITIES.len()];
            // spread the chunk's rows across its whole ts span so the
            // newest chunk genuinely reaches the time boundary
            let ts = chunk as i64 * CHUNK_SPAN + i as i64 * CHUNK_SPAN / per_chunk as i64;
            let r = row(city, ts, i);
            buckets[partition_of(city)].push(r.clone());
            all.push(r);
        }
        let name = format!("trips_c{chunk}");
        let seg = Segment::build(&name, &schema(), all, &IndexSpec::none()).unwrap();
        chunk_files.push((name, 0, seg.persist().unwrap()));
        for (p, bucket) in buckets.into_iter().enumerate() {
            if bucket.is_empty() {
                continue;
            }
            let name = format!("trips_c{chunk}_p{p}");
            let seg = Segment::build(&name, &schema(), bucket, &IndexSpec::none()).unwrap();
            part_files.push((name, p, seg.persist().unwrap()));
        }
    }
    (chunk_files, part_files)
}

fn realtime_table() -> Arc<OlapTable> {
    let rt = OlapTable::new(
        TableConfig::new("trips", schema())
            .with_partitions(1)
            .with_query_threads(1)
            .with_time_column("ts"),
    )
    .unwrap();
    for i in 0..RT_ROWS {
        let city = CITIES[i % CITIES.len()];
        rt.ingest(0, row(city, BOUNDARY + 1 + i as i64, i)).unwrap();
    }
    rt
}

fn build_hybrid(
    files: &[(String, usize, bytes::Bytes)],
    rt: &Arc<OlapTable>,
    partition_aware: bool,
) -> HybridTable {
    let mut hybrid = HybridTable::new(
        "trips",
        schema(),
        "ts",
        RealtimeSide::Direct(Arc::clone(rt)),
    )
    .with_query_threads(1);
    if partition_aware {
        hybrid = hybrid.with_partition_spec("city", PARTITIONS);
    }
    for (_, p, bytes) in files {
        let lazy = Arc::new(Segment::load_lazy(bytes.clone()).unwrap());
        let part = partition_aware.then_some(*p);
        hybrid.register_offline_segment(lazy, part).unwrap();
    }
    hybrid
}

fn pushdown(partitions: Option<Vec<usize>>) -> Pushdown {
    Pushdown {
        predicates: Arc::new(vec![
            Predicate::eq("city", TARGET),
            Predicate::new("ts", PredicateOp::Ge, WINDOW_LO),
        ]),
        aggregation: Some(PushedAgg {
            group_by: Arc::new(Vec::new()),
            aggs: Arc::new(vec![
                ("n".to_string(), AggFn::Count),
                ("s".to_string(), AggFn::Sum("fare".into())),
            ]),
        }),
        partitions: partitions.map(Arc::new),
        ..Pushdown::default()
    }
}

fn olap_query() -> Query {
    Query::select_all("trips")
        .filter(Predicate::eq("city", TARGET))
        .filter(Predicate::new("ts", PredicateOp::Ge, WINDOW_LO))
        .aggregate("n", AggFn::Count)
        .aggregate("s", AggFn::Sum("fare".into()))
}

fn scalar(rows: &[Row]) -> (i64, f64) {
    let r = &rows[0];
    let n = r.get_int("n").unwrap_or(0);
    let s = match r.get("s") {
        Some(Value::Double(v)) => *v,
        Some(Value::Int(v)) => *v as f64,
        _ => 0.0,
    };
    (n, s)
}

fn p50(mut times: Vec<Duration>) -> Duration {
    times.sort();
    times[times.len() / 2]
}

/// The pre-federation baseline: open and fully decode every archival
/// file, execute the aggregate on each, merge, then add the realtime
/// slice. No boundary planning, no zone maps, no partition pruning.
fn full_scan(
    files: &[(String, usize, bytes::Bytes)],
    rt: &Arc<OlapTable>,
    q: &Query,
) -> (i64, f64, usize) {
    let mut n = 0i64;
    let mut s = 0.0f64;
    let mut bytes_read = 0usize;
    for (_, _, bytes) in files {
        let lazy = Segment::load_lazy(bytes.clone()).unwrap();
        let seg = lazy.into_segment(&IndexSpec::none()).unwrap();
        let res = seg.execute(q, None).unwrap();
        let (dn, ds) = scalar(&res.rows);
        n += dn;
        s += ds;
        bytes_read += bytes.len();
    }
    let res = rt.query(q).unwrap();
    let (dn, ds) = scalar(&res.rows);
    (n + dn, s + ds, bytes_read)
}

fn bench(c: &mut Criterion) {
    report_header(
        "E27 hybrid-table federation (§4.3/§4.5)",
        "time-boundary planning + partition-pruned scatter + a \
         freshness-aware result cache turn a repeated dashboard aggregate \
         from a full archive scan into a cache hit plus the fresh slice",
    );
    let (chunk_files, part_files) = offline_files();
    let rt = realtime_table();
    let q = olap_query();
    let pd_split = pushdown(None);
    let pd_pruned = pushdown(Some(vec![partition_of(TARGET)]));
    let total_file_bytes: usize = chunk_files.iter().map(|(_, _, b)| b.len()).sum();

    // --- variant 1: full scan of every archival file, every query
    let mut times = Vec::new();
    let mut expected = (0i64, 0.0f64, 0usize);
    for _ in 0..ITERS {
        let (out, t) = time_it(|| full_scan(&chunk_files, &rt, &q));
        expected = out;
        times.push(t);
    }
    let p50_full = p50(times);
    assert!(expected.0 > 0, "the benchmark query must match rows");

    // --- variant 2: time-boundary split; zone maps prune the historical
    // chunks outside the window, cold columns decoded per query
    let mut times = Vec::new();
    let mut split_bytes = 0;
    let mut split_pruned = 0;
    for _ in 0..ITERS {
        let hybrid = build_hybrid(&chunk_files, &rt, false);
        let (out, t) = time_it(|| hybrid.scan(&pd_split).unwrap());
        assert_eq!(scalar(&out.rows), (expected.0, expected.1));
        assert!(!out.cache_hit);
        split_bytes = out.bytes_read;
        split_pruned = out.segments_pruned;
        times.push(t);
    }
    let p50_split = p50(times);
    assert!(
        split_pruned >= chunk_files.len() as u64 - 1,
        "time window must prune the older chunks, pruned {split_pruned} of \
         {}",
        chunk_files.len(),
    );

    // --- variant 3: split + partition-pruned scatter from the city
    // equality; only the target partition's newest chunk is consulted
    let mut times = Vec::new();
    let mut pruned_bytes = 0;
    let mut pruned_queried = 0;
    for _ in 0..ITERS {
        let hybrid = build_hybrid(&part_files, &rt, true);
        let (out, t) = time_it(|| hybrid.scan(&pd_pruned).unwrap());
        assert_eq!(scalar(&out.rows), (expected.0, expected.1));
        pruned_bytes = out.bytes_read;
        pruned_queried = out.segments_queried;
        times.push(t);
    }
    let p50_pruned = p50(times);
    assert_eq!(
        pruned_queried, 2,
        "partition + time pruning leaves 1 archival segment (plus the \
         realtime store's one)"
    );

    // --- variant 4: warm freshness-aware cache; the offline slice is a
    // lookup, only the realtime slice executes
    let hybrid = build_hybrid(&part_files, &rt, true);
    let cold = hybrid.scan(&pd_pruned).unwrap();
    assert_eq!(scalar(&cold.rows), (expected.0, expected.1));
    let mut times = Vec::new();
    for _ in 0..ITERS {
        let (out, t) = time_it(|| hybrid.scan(&pd_pruned).unwrap());
        assert_eq!(scalar(&out.rows), (expected.0, expected.1));
        assert!(out.cache_hit, "warm scan must hit the result cache");
        assert_eq!(out.bytes_read, 0, "cache hit reads no archival bytes");
        times.push(t);
    }
    let p50_cached = p50(times);

    report(
        "repeated hybrid aggregate p50",
        format!(
            "full-scan {:.2} ms | time-split {:.2} ms | split+pruned {:.2} \
             ms | cached {:.3} ms (**{:.0}x vs full-scan**)",
            p50_full.as_secs_f64() * 1e3,
            p50_split.as_secs_f64() * 1e3,
            p50_pruned.as_secs_f64() * 1e3,
            p50_cached.as_secs_f64() * 1e3,
            p50_full.as_secs_f64() / p50_cached.as_secs_f64(),
        ),
    );
    report(
        "archival bytes read per query",
        format!(
            "full-scan {} KiB | time-split {} KiB | split+pruned {} KiB | \
             cached 0 KiB (archive: {} KiB on disk as {} chunk or {} \
             partitioned segments)",
            expected.2 / 1024,
            split_bytes / 1024,
            pruned_bytes / 1024,
            total_file_bytes / 1024,
            chunk_files.len(),
            part_files.len(),
        ),
    );
    assert!(
        p50_cached.as_secs_f64() * 5.0 <= p50_full.as_secs_f64(),
        "acceptance: cached p50 must be >=5x faster than full-scan, got \
         {:.1}x",
        p50_full.as_secs_f64() / p50_cached.as_secs_f64(),
    );
    assert!(
        split_bytes < expected.2 as u64 / 2,
        "split must cut bytes read"
    );
    assert!(pruned_bytes < split_bytes, "pruning must cut bytes further");

    // --- satellite: the Arc-shared pushdown plumbing. Cloning a fully
    // populated pushdown is refcount bumps only, and a warm connector
    // scan stays allocation-bounded instead of re-cloning shape vectors.
    let (_, clone_stats) = count_allocations(|| {
        let c = pd_pruned.clone();
        std::hint::black_box(&c);
    });
    assert_allocs_at_most("Pushdown::clone (Arc-shared shapes)", clone_stats, 0);
    report(
        "allocations per Pushdown::clone",
        format!("{} (shape vectors are Arc-shared)", clone_stats.allocs),
    );
    let conn = PinotConnector::new();
    conn.register(Arc::clone(&rt));
    conn.scan("trips", &pd_split).unwrap();
    let (out, scan_stats) = count_allocations(|| conn.scan("trips", &pd_split).unwrap());
    assert!(!out.rows.is_empty());
    assert_allocs_at_most("warm PinotConnector::scan", scan_stats, 64);
    report(
        "allocations per warm connector scan (12k-row realtime table)",
        scan_stats.allocs,
    );

    let mut g = c.benchmark_group("e27");
    g.bench_function("full_scan", |b| b.iter(|| full_scan(&chunk_files, &rt, &q)));
    g.bench_function("time_split_cold", |b| {
        b.iter(|| {
            let h = build_hybrid(&chunk_files, &rt, false);
            h.scan(&pd_split).unwrap()
        })
    });
    g.bench_function("split_partition_pruned_cold", |b| {
        b.iter(|| {
            let h = build_hybrid(&part_files, &rt, true);
            h.scan(&pd_pruned).unwrap()
        })
    });
    g.bench_function("cached_warm", |b| {
        b.iter(|| hybrid.scan(&pd_pruned).unwrap())
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = quick_criterion();
    targets = bench
}
criterion_main!(benches);
