//! E22 (§11 future work, implemented): tiered log storage. "Storage
//! tiering improves both cost efficiency by storing colder data in a
//! cheaper storage medium as well as elasticity by separating data storage
//! and serving layers." Also dissolves §7's retention wall: old offsets
//! stay replayable.

use criterion::{criterion_group, criterion_main, Criterion};
use rtdi_bench::{quick_criterion, report, report_header, time_it};
use rtdi_common::{Record, Row};
use rtdi_storage::object::InMemoryStore;
use rtdi_stream::tiered::TieredLog;
use std::sync::Arc;

fn rec(i: i64) -> Record {
    Record::new(
        Row::new().with("trip", i).with("payload", "x".repeat(100)),
        i,
    )
}

fn bench(c: &mut Criterion) {
    report_header(
        "E22 tiered log storage (§11 future work)",
        "hot memory shrinks to the serving window while the full history \
         stays replayable from the cheap tier; expiry becomes a cost knob",
    );
    let store = Arc::new(InMemoryStore::new());
    let log = TieredLog::new(store.clone(), "tiered/trips/0");
    let n = 200_000i64;
    for i in 0..n {
        log.append(rec(i), i);
    }
    let hot_before = log.hot_bytes();
    // keep only the newest 10% hot
    let (moved, offload_t) = time_it(|| log.offload_older_than(n * 9 / 10).unwrap());
    report(
        "offload 90% of the log",
        format!(
            "{moved} records in {:.0} ms ({:.1} M rec/s)",
            offload_t.as_secs_f64() * 1e3,
            moved as f64 / offload_t.as_secs_f64() / 1e6
        ),
    );
    report(
        "hot-tier memory",
        format!(
            "{} MiB -> {} MiB ({:.0}x cheaper serving tier); cold tier {} MiB in the archive",
            hot_before / (1 << 20),
            log.hot_bytes() / (1 << 20),
            hot_before as f64 / log.hot_bytes().max(1) as f64,
            store.stored_bytes() / (1 << 20),
        ),
    );
    // serving latency both tiers
    let (_, hot_t) = time_it(|| {
        for _ in 0..100 {
            log.fetch(n as u64 - 1000, 100).unwrap();
        }
    });
    let (_, cold_t) = time_it(|| {
        for _ in 0..100 {
            log.fetch(1_000, 100).unwrap();
        }
    });
    report(
        "fetch 100 records",
        format!(
            "hot tier {:.0} us vs cold tier {:.0} us (cold pays the archive \
             read, stays available)",
            hot_t.as_secs_f64() * 1e4,
            cold_t.as_secs_f64() * 1e4
        ),
    );
    // the §7 consequence: day-old data is replayable from the log itself
    let replay = log.fetch(0, 1_000).unwrap();
    report(
        "replay from offset 0 after offload",
        format!(
            "{} records served (plain retention would have lost them)",
            replay.records.len()
        ),
    );
    assert_eq!(replay.records.len(), 1_000);

    let mut g = c.benchmark_group("e22");
    g.bench_function("fetch_hot_100", |b| {
        b.iter(|| log.fetch(n as u64 - 1_000, 100).unwrap())
    });
    g.bench_function("fetch_cold_100", |b| {
        b.iter(|| log.fetch(5_000, 100).unwrap())
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = quick_criterion();
    targets = bench
}
criterion_main!(benches);
