//! E17 (§5.3): prediction monitoring must scale with "a high volume and
//! high cardinality of data... several hundreds of thousands of time
//! series" — throughput stays flat as model cardinality grows because the
//! join and aggregation state are keyed, not scanned.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rtdi_bench::{quick_criterion, report, report_header, time_it};
use rtdi_common::AggFn;
use rtdi_olap::query::Query;
use rtdi_usecases::prediction::PredictionMonitoring;
use rtdi_usecases::workloads::TripEventGenerator;

fn generate(
    n: usize,
    models: usize,
    seed: u64,
) -> (Vec<rtdi_common::Record>, Vec<rtdi_common::Record>) {
    let mut g = TripEventGenerator::new(seed, 8);
    let mut preds = Vec::with_capacity(n);
    let mut outs = Vec::with_capacity(n);
    for i in 0..n {
        let (p, o) = g.prediction_pair((i as i64) * 5, models, 500);
        preds.push(p);
        outs.push(o);
    }
    (preds, outs)
}

fn bench(c: &mut Criterion) {
    report_header(
        "E17 prediction monitoring at high cardinality",
        "throughput roughly flat from 10 to 1000 models; accuracy cube rows \
         grow with cardinality, query latency served by the Pinot cube",
    );
    let n = 50_000usize;
    for models in [10usize, 100, 1_000] {
        let pm = PredictionMonitoring::new(60_000, 10_000).unwrap();
        let (preds, outs) = generate(n, models, models as u64);
        let (stats, t) = time_it(|| pm.run(preds, outs).unwrap());
        let cube_rows = pm.cube.doc_count();
        report(
            format!("{models} models").as_str(),
            format!(
                "{:.0} events/s, cube rows {}, records {}",
                stats.records_in as f64 / t.as_secs_f64(),
                cube_rows,
                stats.records_in
            ),
        );
    }
    // cube query latency at the highest cardinality
    let pm = PredictionMonitoring::new(60_000, 10_000).unwrap();
    let (preds, outs) = generate(n, 1_000, 42);
    pm.run(preds, outs).unwrap();
    let q = Query::select_all("model_accuracy")
        .aggregate("models", AggFn::DistinctCount("model".into()))
        .aggregate("worst", AggFn::Max("max_abs_error".into()));
    let (res, t) = time_it(|| pm.cube.query(&q).unwrap());
    report(
        "cube health query",
        format!(
            "{} models, worst error {:.3}, {:.2} ms",
            res.rows[0].get_int("models").unwrap(),
            res.rows[0].get_double("worst").unwrap(),
            t.as_secs_f64() * 1e3
        ),
    );

    let mut g = c.benchmark_group("e17");
    for models in [10usize, 1_000] {
        g.bench_with_input(BenchmarkId::new("monitor_10k", models), &models, |b, &m| {
            b.iter(|| {
                let pm = PredictionMonitoring::new(60_000, 10_000).unwrap();
                let (preds, outs) = generate(10_000, m, m as u64);
                pm.run(preds, outs).unwrap()
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = quick_criterion();
    targets = bench
}
criterion_main!(benches);
