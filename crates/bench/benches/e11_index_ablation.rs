//! E11 (§4.3): Pinot "uses specialized indices for faster query execution
//! such as Startree, sorted and range indices, which could result in order
//! of magnitude difference of query latency" vs Druid-like plain columnar.

use criterion::{criterion_group, criterion_main, Criterion};
use rtdi_bench::{quick_criterion, report, report_header, time_it};
use rtdi_common::AggFn;
use rtdi_olap::baselines::{comparison_rows, comparison_schema, druid_like_spec};
use rtdi_olap::query::{Predicate, PredicateOp, Query};
use rtdi_olap::segment::{IndexSpec, Segment};
use rtdi_olap::startree::StarTreeSpec;

fn bench(c: &mut Criterion) {
    report_header(
        "E11 index ablation (Pinot vs Druid-like vs none)",
        "startree/sorted/range indices give order-of-magnitude latency \
         wins on aggregation and selective-range queries",
    );
    let n = 400_000usize;
    let rows = comparison_rows(n);
    let schema = comparison_schema();

    let full_spec = IndexSpec::none()
        .with_inverted(&["city", "restaurant"])
        .with_sorted("ts")
        .with_range(&["total"])
        .with_startree(StarTreeSpec::new(
            &["city", "restaurant"],
            vec![AggFn::Count, AggFn::Sum("total".into())],
        ));
    let pinot = Segment::build("pinot", &schema, rows.clone(), &full_spec).unwrap();
    let druid =
        Segment::build("druid", &schema, rows.clone(), &druid_like_spec(&full_spec)).unwrap();
    let none = Segment::build("none", &schema, rows, &IndexSpec::none()).unwrap();

    // 1. pre-aggregatable group-by (startree territory)
    let groupby = Query::select_all("orders")
        .aggregate("n", AggFn::Count)
        .aggregate("rev", AggFn::Sum("total".into()))
        .group(&["city"]);
    // 2. selective time range (sorted-column territory)
    let timerange = Query::select_all("orders")
        .filter(Predicate::new(
            "ts",
            PredicateOp::Ge,
            1_600_000_050_000_000i64 / 1_000,
        ))
        .filter(Predicate::new(
            "ts",
            PredicateOp::Lt,
            1_600_000_052_000_000i64 / 1_000,
        ))
        .aggregate("n", AggFn::Count);
    // 3. numeric range filter (range-index territory)
    let numrange = Query::select_all("orders")
        .filter(Predicate::new("total", PredicateOp::Gt, 62.0))
        .aggregate("n", AggFn::Count);

    for (name, q) in [
        ("group-by city (startree)", &groupby),
        ("narrow time range (sorted)", &timerange),
        ("selective total>62 (range idx)", &numrange),
    ] {
        let reps = 20;
        let timing = |seg: &Segment| {
            let (_, t) = time_it(|| {
                for _ in 0..reps {
                    seg.execute(q, None).unwrap();
                }
            });
            t.as_secs_f64() * 1e6 / reps as f64
        };
        let (tp, td, tn) = (timing(&pinot), timing(&druid), timing(&none));
        report(
            name,
            format!(
                "pinot {tp:.0}us vs druid-like {td:.0}us ({:.0}x) vs no-index {tn:.0}us ({:.0}x)",
                td / tp,
                tn / tp
            ),
        );
        // equivalence across all three
        assert_eq!(
            pinot.execute(q, None).unwrap().rows,
            druid.execute(q, None).unwrap().rows
        );
        assert_eq!(
            pinot.execute(q, None).unwrap().rows,
            none.execute(q, None).unwrap().rows
        );
    }
    let st = pinot.execute(&groupby, None).unwrap();
    report(
        "startree engaged on group-by",
        format!("{} (docs scanned: {})", st.used_startree, st.docs_scanned),
    );

    let mut g = c.benchmark_group("e11");
    g.bench_function("pinot_groupby", |b| {
        b.iter(|| pinot.execute(&groupby, None).unwrap())
    });
    g.bench_function("druidlike_groupby", |b| {
        b.iter(|| druid.execute(&groupby, None).unwrap())
    });
    g.bench_function("pinot_timerange", |b| {
        b.iter(|| pinot.execute(&timerange, None).unwrap())
    });
    g.bench_function("noindex_timerange", |b| {
        b.iter(|| none.execute(&timerange, None).unwrap())
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = quick_criterion();
    targets = bench
}
criterion_main!(benches);
