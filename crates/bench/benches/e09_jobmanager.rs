//! E9 (§4.2.1-4.2.2, Figure 5): the job manager recovers jobs from
//! transient failures automatically (checkpoint-restore makes restarts
//! cheap, not re-runs), and its resource model separates CPU-bound from
//! memory-bound jobs.

use criterion::{criterion_group, criterion_main, Criterion};
use parking_lot::Mutex;
use rtdi_bench::{quick_criterion, report, report_header, time_it};
use rtdi_common::{Record, Result, Row};
use rtdi_compute::jobmanager::{JobHealth, JobManager, JobSpec, JobType};
use rtdi_compute::operator::{MapOp, Operator};
use rtdi_compute::runtime::{CheckpointStore, ExecutorConfig, Job};
use rtdi_compute::sink::CollectSink;
use rtdi_compute::source::VecSource;
use rtdi_storage::object::InMemoryStore;
use std::sync::Arc;

/// Operator that fails once at a given record index (across restarts the
/// budget is shared so the retry succeeds).
struct FailOnce {
    at: u64,
    seen: u64,
    budget: Arc<Mutex<u32>>,
}

impl Operator for FailOnce {
    fn name(&self) -> &str {
        "fail-once"
    }
    fn process(&mut self, r: Record, out: &mut Vec<Record>) -> Result<()> {
        self.seen += 1;
        if self.seen == self.at {
            let mut b = self.budget.lock();
            if *b > 0 {
                *b -= 1;
                return Err(rtdi_common::Error::Unavailable("node lost".into()));
            }
        }
        out.push(r);
        Ok(())
    }
}

fn spec(n: usize, fail_at: u64, budget: Arc<Mutex<u32>>, sink: CollectSink) -> JobSpec {
    JobSpec {
        name: format!("job-{fail_at}"),
        job_type: JobType::Stateless,
        tier: 1,
        expected_records_per_sec: 10_000,
        factory: Box::new(move || {
            Job::new(
                format!("job-{fail_at}"),
                Box::new(VecSource::new(
                    (0..n)
                        .map(|i| Record::new(Row::new().with("i", i as i64), i as i64))
                        .collect(),
                )),
                vec![
                    Box::new(FailOnce {
                        at: fail_at,
                        seen: 0,
                        budget: budget.clone(),
                    }),
                    Box::new(MapOp::new("id", |r: &Row| r.clone())),
                ],
                Box::new(sink.clone()),
            )
        }),
    }
}

fn bench(c: &mut Criterion) {
    report_header(
        "E9 job manager auto-recovery",
        "transient failures recover automatically from checkpoints; \
         restart cost ~ work since last checkpoint, not the whole job",
    );
    let n = 100_000usize;
    let jm = JobManager::new(
        ExecutorConfig {
            batch_size: 512,
            checkpoint_interval: 10_000,
            checkpoint_store: Some(CheckpointStore::new(Arc::new(InMemoryStore::new()))),
            trace: None,
        },
        3,
    );
    // clean run baseline
    let sink = CollectSink::new();
    let (clean, clean_t) = time_it(|| {
        jm.supervise(&spec(n, u64::MAX, Arc::new(Mutex::new(0)), sink.clone()))
            .unwrap()
    });
    // failure at 90% through; recovery resumes from last checkpoint
    let sink2 = CollectSink::new();
    let (recovered, rec_t) = time_it(|| {
        jm.supervise(&spec(
            n,
            (n as u64) * 9 / 10,
            Arc::new(Mutex::new(1)),
            sink2.clone(),
        ))
        .unwrap()
    });
    report(
        "clean run",
        format!("{} records in {:?}", clean.records_in, clean_t),
    );
    // at-least-once duplicates observed at the sink measure the true replay
    let replayed = sink2.len().saturating_sub(n);
    report(
        "run with injected failure at 90%",
        format!(
            "completed {} records, {} replayed from the last checkpoint \
             ({:.1}% of the job, not a full re-run) in {:?}",
            recovered.records_in,
            replayed,
            replayed as f64 * 100.0 / n as f64,
            rec_t
        ),
    );
    // checkpoint recovery means far less than a full re-run was repeated
    assert!(replayed < n / 2, "full re-run happened");

    // resource model
    let mk = |jt| JobSpec {
        name: "m".into(),
        job_type: jt,
        tier: 0,
        expected_records_per_sec: 100_000,
        factory: Box::new(|| {
            Job::new(
                "x",
                Box::new(VecSource::new(vec![])),
                vec![],
                Box::new(CollectSink::new()),
            )
        }),
    };
    for jt in [
        JobType::Stateless,
        JobType::WindowedAggregation,
        JobType::StreamJoin,
    ] {
        let r = JobManager::estimate_resources(&mk(jt));
        report(
            format!("resource model {jt:?}").as_str(),
            format!("{} cores, {} MB", r.cpu_cores, r.memory_mb),
        );
    }
    // rule engine snapshot
    let action = jm.evaluate_health(&JobHealth {
        lag: 5_000_000,
        records_per_sec: 100_000,
        ..Default::default()
    });
    report(
        "rule engine on 5M lag",
        format!("{:?} via {:?}", action.0, action.1),
    );

    let mut g = c.benchmark_group("e09");
    g.bench_function("supervised_clean_run_10k", |b| {
        b.iter(|| {
            let jm = JobManager::new(ExecutorConfig::default(), 1);
            let sink = CollectSink::new();
            jm.supervise(&spec(10_000, u64::MAX, Arc::new(Mutex::new(0)), sink))
                .unwrap()
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = quick_criterion();
    targets = bench
}
criterion_main!(benches);
