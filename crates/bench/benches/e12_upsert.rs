//! E12 (§4.3.1): upsert via primary-key partitioning is shared-nothing —
//! per-partition key tracking scales with partitions and needs no
//! cross-partition coordination, unlike a centralized location map behind
//! one lock.

use criterion::{criterion_group, criterion_main, Criterion};
use parking_lot::Mutex;
use rtdi_bench::{quick_criterion, report, report_header, time_it};
use rtdi_common::{AggFn, Row, Value};
use rtdi_olap::query::Query;
use rtdi_olap::table::{OlapTable, TableConfig};
use rtdi_olap::upsert::PrimaryKeyIndex;
use std::sync::Arc;

fn fare_row(key: usize, version: usize) -> Row {
    Row::new()
        .with("trip_id", format!("t{key}"))
        .with("fare", version as f64)
        .with("ts", version as i64)
}

fn table_schema() -> rtdi_common::Schema {
    rtdi_common::Schema::of(
        "fares",
        &[
            ("trip_id", rtdi_common::FieldType::Str),
            ("fare", rtdi_common::FieldType::Double),
            ("ts", rtdi_common::FieldType::Timestamp),
        ],
    )
}

/// Pre-built per-thread key streams so the timed section measures key
/// tracking, not string formatting.
fn key_streams(threads: usize, per_thread: usize) -> Vec<Vec<Value>> {
    (0..threads)
        .map(|p| {
            (0..per_thread)
                .map(|i| Value::Str(format!("k{p}-{}", i % 10_000)))
                .collect()
        })
        .collect()
}

/// Shared-nothing: each thread owns its partition's index.
fn partitioned_upserts(keys: &[Vec<Value>]) -> std::time::Duration {
    let (_, t) = time_it(|| {
        std::thread::scope(|s| {
            for stream in keys {
                s.spawn(move || {
                    let mut idx = PrimaryKeyIndex::new();
                    for (i, key) in stream.iter().enumerate() {
                        idx.upsert(key, "seg", i % 100_000);
                    }
                });
            }
        });
    });
    t
}

/// Centralized: every thread contends on one locked index (the design the
/// paper rejects).
fn centralized_upserts(keys: &[Vec<Value>]) -> std::time::Duration {
    let idx = Arc::new(Mutex::new(PrimaryKeyIndex::new()));
    let (_, t) = time_it(|| {
        std::thread::scope(|s| {
            for stream in keys {
                let idx = idx.clone();
                s.spawn(move || {
                    for (i, key) in stream.iter().enumerate() {
                        idx.lock().upsert(key, "seg", i % 100_000);
                    }
                });
            }
        });
    });
    t
}

fn bench(c: &mut Criterion) {
    report_header(
        "E12 upsert: shared-nothing partitioned vs centralized tracking",
        "partition-by-primary-key removes coordination; per-partition \
         tracking scales with nodes while a centralized location service \
         caps at one node's rate and is a single point of failure",
    );
    // real measurement: local per-partition tracking rate on this host
    let keys = key_streams(1, 1_000_000);
    let local = partitioned_upserts(&keys);
    let rate = 1_000_000.0 / local.as_secs_f64();
    report(
        "measured local key-tracking rate (one partition)",
        format!("{:.1} M upserts/s", rate / 1e6),
    );
    // real measurement: same stream through a lock (the centralized
    // tracker's critical section)
    let locked = centralized_upserts(&keys);
    let locked_rate = 1_000_000.0 / locked.as_secs_f64();
    report(
        "measured centralized critical-section rate",
        format!("{:.1} M upserts/s", locked_rate / 1e6),
    );
    // architectural model (this host has too few cores to show parallel
    // wall-clock scaling directly): shared-nothing aggregates one local
    // rate per partition-owning node; the centralized service serializes
    // every update through one node regardless of cluster size
    for nodes in [1usize, 4, 16, 64] {
        report(
            format!("modeled aggregate throughput, {nodes} nodes").as_str(),
            format!(
                "shared-nothing {:.0} M/s vs centralized {:.0} M/s ({}x)",
                nodes as f64 * rate / 1e6,
                locked_rate / 1e6,
                (nodes as f64 * rate / locked_rate).round()
            ),
        );
    }
    report(
        "failure domain",
        "shared-nothing: losing a node affects 1/N of keys; centralized: \
         tracker loss halts ALL ingestion (the paper's SPOF argument)"
            .to_string(),
    );

    // end-to-end correctness + query cost under heavy update pressure
    let table = OlapTable::new(
        TableConfig::new("fares", table_schema())
            .with_upsert("trip_id")
            .with_partitions(4)
            .with_segment_rows(10_000),
    )
    .unwrap();
    let keys = 10_000usize;
    let versions = 10usize;
    let (_, ingest_t) = time_it(|| {
        for v in 0..versions {
            for k in 0..keys {
                let key = Value::Str(format!("t{k}"));
                let p = (key.partition_hash() % 4) as usize;
                table.ingest(p, fare_row(k, v)).unwrap();
            }
        }
    });
    report(
        "upsert ingestion (10 versions x 10k keys)",
        format!(
            "{:.0} rows/s",
            (keys * versions) as f64 / ingest_t.as_secs_f64()
        ),
    );
    let q = Query::select_all("fares").aggregate("n", AggFn::Count);
    let res = table.query(&q).unwrap();
    assert_eq!(
        res.rows[0].get_int("n"),
        Some(keys as i64),
        "duplicates visible!"
    );
    report(
        "live rows after 100k writes",
        format!("{} (exactly one per key)", keys),
    );
    let latest = table.lookup(&Value::Str("t77".into()), "fare").unwrap();
    assert_eq!(latest, Value::Double((versions - 1) as f64));

    let mut g = c.benchmark_group("e12");
    g.bench_function("upsert_query_under_updates", |b| {
        b.iter(|| table.query(&q).unwrap())
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = quick_criterion();
    targets = bench
}
criterion_main!(benches);
