//! E20 (§6, Figure 7): active-passive failover with offset
//! synchronization — "the consumer can take the latest synchronized offset
//! and resume the consumption". No loss ever; the replay after failover is
//! bounded by the offset-checkpoint interval.

use criterion::{criterion_group, criterion_main, Criterion};
use rtdi_bench::{quick_criterion, report, report_header, time_it};
use rtdi_common::record::headers;
use rtdi_common::{Record, Row};
use rtdi_multiregion::activepassive::{ActivePassiveConsumer, OffsetSyncService};
use rtdi_multiregion::topology::MultiRegionTopology;
use rtdi_stream::topic::TopicConfig;
use std::collections::BTreeSet;

fn run_failover(n: usize) -> (usize, usize) {
    let topo = MultiRegionTopology::new(
        &["west", "east"],
        "payments",
        TopicConfig::lossless().with_partitions(4),
    )
    .unwrap();
    // replication runs continuously in production; replicate every 500
    // produced records so aggregate clusters interleave sources finely
    // (one giant replication batch would create artificial region-sized
    // blocks and inflate the conservative failover replay)
    for i in 0..n {
        let region = if i % 2 == 0 { "west" } else { "east" };
        topo.produce(
            region,
            Record::new(Row::new().with("p", i as i64), i as i64)
                .with_key(format!("p{i}"))
                .with_header(headers::UNIQUE_ID, format!("pay-{i}")),
            i as i64,
        )
        .unwrap();
        if i % 500 == 499 {
            topo.replicate(i as i64);
        }
    }
    topo.replicate(n as i64 + 100);
    let sync = OffsetSyncService::new(topo.mappings().clone());
    let mut consumer = ActivePassiveConsumer::new("proc", "payments", "west");
    let before = consumer.consume_available(&topo).unwrap();
    topo.region("west").unwrap().set_down(true);
    consumer.fail_over(&topo, &sync, "east").unwrap();
    let after = consumer.consume_available(&topo).unwrap();
    let mut unique: BTreeSet<String> = BTreeSet::new();
    for r in before.iter().chain(&after) {
        unique.insert(r.unique_id().unwrap().to_string());
    }
    assert_eq!(unique.len(), n, "data lost in failover");
    (after.len(), before.len() + after.len() - unique.len())
}

fn bench(c: &mut Criterion) {
    report_header(
        "E20 active-passive offset sync",
        "failover resumes from the latest synchronized offset: zero loss, \
         replay bounded by the checkpoint gap (not a full re-read)",
    );
    for n in [10_000usize, 50_000] {
        let ((replayed_total, duplicates), t) = time_it(|| run_failover(n));
        report(
            format!("{n} payments, kill primary, fail over").as_str(),
            format!(
                "0 lost, {duplicates} duplicates replayed \
                 ({:.2}% of stream), records read after failover {replayed_total}, end-to-end {:.0} ms",
                duplicates as f64 * 100.0 / n as f64,
                t.as_secs_f64() * 1e3
            ),
        );
    }
    // the naive alternatives the paper rules out:
    report(
        "naive high-watermark resume",
        "would lose every in-flight record (unacceptable for payments)".to_string(),
    );
    report(
        "naive earliest resume",
        "would replay the full retained stream (100% duplicates)".to_string(),
    );

    let mut g = c.benchmark_group("e20");
    g.bench_function("failover_5k", |b| b.iter(|| run_failover(5_000)));
    g.finish();
}

criterion_group! {
    name = benches;
    config = quick_criterion();
    targets = bench
}
criterion_main!(benches);
