//! E23: measured mean-time-to-recovery under injected faults.
//!
//! The chaos layer (rtdi-common::chaos) arms deterministic fault plans at
//! named points across the stack; this bench measures how long each layer
//! takes to return to full service after the fault clears: supervised
//! compute restart from checkpoint, producer retry absorption during an
//! outage burst, OLAP segment re-replication after a server loss, and
//! cross-region replication catch-up plus DLQ drain after a downstream
//! outage. It also pins the cost of a *disarmed* fault point, which must
//! stay at a single atomic load so production code can keep the checks
//! compiled in.

use criterion::{criterion_group, criterion_main, Criterion};
use rtdi_bench::{quick_criterion, report, report_header, time_it};
use rtdi_common::chaos::{self, FaultKind, FaultPlan, FaultPoint, Trigger};
use rtdi_common::{AggFn, FieldType, Record, Row, Schema};
use rtdi_compute::jobmanager::{JobManager, JobSpec, JobType};
use rtdi_compute::operator::MapOp;
use rtdi_compute::runtime::{CheckpointStore, ExecutorConfig, Job};
use rtdi_compute::sink::CollectSink;
use rtdi_compute::source::VecSource;
use rtdi_multiregion::topology::MultiRegionTopology;
use rtdi_olap::broker::{Broker, ServerNode};
use rtdi_olap::query::Query;
use rtdi_olap::segment::{IndexSpec, Segment};
use rtdi_olap::segstore::{SegmentStore, SegmentStoreMode};
use rtdi_storage::object::InMemoryStore;
use rtdi_stream::cluster::{Cluster, ClusterConfig};
use rtdi_stream::dlq::{DeadLetterQueue, ParkReason};
use rtdi_stream::producer::{Producer, ProducerConfig};
use rtdi_stream::topic::TopicConfig;
use std::sync::Arc;

fn seg(name: &str, n: usize) -> Arc<Segment> {
    let schema = Schema::of("t", &[("city", FieldType::Str), ("v", FieldType::Int)]);
    let rows: Vec<Row> = (0..n)
        .map(|i| {
            Row::new()
                .with("city", ["sf", "la"][i % 2])
                .with("v", i as i64)
        })
        .collect();
    Arc::new(Segment::build(name, &schema, rows, &IndexSpec::none()).unwrap())
}

fn compute_job_spec(name: &str, n: usize, sink: CollectSink) -> JobSpec {
    let job_name = name.to_string();
    JobSpec {
        name: name.to_string(),
        job_type: JobType::Stateless,
        tier: 1,
        expected_records_per_sec: 100_000,
        factory: Box::new(move || {
            Job::new(
                job_name.clone(),
                Box::new(VecSource::from_rows(
                    (0..n as i64)
                        .map(|i| (i, Row::new().with("i", i)))
                        .collect(),
                )),
                vec![Box::new(MapOp::new("identity", |row| row.clone()))],
                Box::new(sink.clone()),
            )
        }),
    }
}

fn compute_restart_mttr() {
    const N: usize = 50_000;
    chaos::registry().reset(0xE23);
    let config = |store: Arc<InMemoryStore>| ExecutorConfig {
        batch_size: 512,
        checkpoint_interval: 5_000,
        checkpoint_store: Some(CheckpointStore::new(store)),
        trace: None,
    };
    // warm-up run so allocation effects don't skew the clean baseline
    let jm = JobManager::new(config(Arc::new(InMemoryStore::new())), 3);
    jm.supervise(&compute_job_spec("warmup", N, CollectSink::new()))
        .unwrap();
    // clean run: no faults armed
    let jm = JobManager::new(config(Arc::new(InMemoryStore::new())), 3);
    let (_, clean) = time_it(|| {
        jm.supervise(&compute_job_spec("clean", N, CollectSink::new()))
            .unwrap()
    });
    // chaos run: the job is killed mid-stream at record ~N/2, well past a
    // checkpoint; supervision re-instantiates and resumes from it
    chaos::registry().arm(
        FaultPoint::ComputeProcess,
        FaultPlan::fail(FaultKind::ProcessingFailed, Trigger::Always)
            .with_burst(N as u64 / 2, Some(1)),
    );
    let jm = JobManager::new(config(Arc::new(InMemoryStore::new())), 3);
    let (stats, crashed) = time_it(|| {
        jm.supervise(&compute_job_spec("crashed", N, CollectSink::new()))
            .unwrap()
    });
    chaos::registry().disarm_all();
    let restarts = jm.status("crashed").unwrap().restarts;
    assert!(restarts >= 1 && stats.records_in as usize >= N);
    report(
        "compute crash MTTR",
        format!(
            "{N} records, crash at ~{}: clean {:.1} ms vs crash+checkpoint-recovery {:.1} ms (recovery overhead {:.1} ms, {restarts} restart)",
            N / 2,
            clean.as_secs_f64() * 1e3,
            crashed.as_secs_f64() * 1e3,
            (crashed.as_secs_f64() - clean.as_secs_f64()) * 1e3,
        ),
    );
}

fn producer_outage_mttr() {
    chaos::registry().reset(0xE23A);
    let cluster = Cluster::new("c1", ClusterConfig::default());
    cluster
        .create_topic("trips", TopicConfig::default().with_partitions(4))
        .unwrap();
    // the Cluster endpoint impl carries the stream.append fault point
    let producer = Producer::new(
        cluster,
        ProducerConfig {
            service: "bench".into(),
            ..Default::default()
        },
    );
    let rec = || Record::new(Row::new().with("i", 1i64), 0).with_key("k");
    // warm up, then take the healthy baseline
    producer.send("trips", rec()).unwrap();
    let (_, healthy) = time_it(|| producer.send("trips", rec()).unwrap());
    // a 3-failure outage burst: exactly absorbed by the 4-attempt budget
    chaos::registry().arm(
        FaultPoint::StreamAppend,
        FaultPlan::fail(FaultKind::Unavailable, Trigger::Always).with_burst(0, Some(3)),
    );
    let (_, outage) = time_it(|| producer.send("trips", rec()).unwrap());
    chaos::registry().disarm_all();
    report(
        "producer outage-burst MTTR",
        format!(
            "healthy send {:.0} us vs send through 3-deep outage burst {:.0} us (backoff absorbed, zero caller involvement)",
            healthy.as_secs_f64() * 1e6,
            outage.as_secs_f64() * 1e6,
        ),
    );
}

fn segment_loss_mttr() {
    const SEGMENTS: usize = 8;
    const ROWS: usize = 5_000;
    // deep store holds backups of every segment the dead server hosted
    let deep = SegmentStore::new(
        Arc::new(InMemoryStore::new()),
        SegmentStoreMode::Centralized,
        IndexSpec::none(),
    );
    let names: Vec<String> = (0..SEGMENTS).map(|i| format!("s{i}")).collect();
    for name in &names {
        deep.backup("t", seg(name, ROWS)).unwrap();
    }
    // a fresh replacement server comes up empty behind the broker
    let broker = Broker::new(vec![ServerNode::new(0)]);
    broker.register_table("t", false);
    let q = Query::select_all("t").aggregate("n", AggFn::Count);
    let (_, mttr) = time_it(|| {
        for name in &names {
            let recovered = deep.recover("t", name, &[]).unwrap();
            broker.place_segment("t", recovered, None, 1).unwrap();
        }
        assert_eq!(
            broker.query(&q).unwrap().rows[0].get_int("n"),
            Some((SEGMENTS * ROWS) as i64)
        );
    });
    report(
        "segment-loss MTTR",
        format!(
            "{SEGMENTS} segments x {ROWS} rows rebuilt from deep store to full query service in {:.1} ms ({:.2} ms/segment)",
            mttr.as_secs_f64() * 1e3,
            mttr.as_secs_f64() * 1e3 / SEGMENTS as f64,
        ),
    );
}

fn replication_catchup_mttr() {
    const BACKLOG: usize = 20_000;
    chaos::registry().reset(0xE23B);
    let topo = MultiRegionTopology::new(
        &["west", "east"],
        "trips",
        TopicConfig::default().with_partitions(4),
    )
    .unwrap();
    for i in 0..BACKLOG {
        topo.produce(
            "west",
            Record::new(Row::new().with("i", i as i64), i as i64).with_key(format!("k{i}")),
            i as i64,
        )
        .unwrap();
    }
    // the cross-region link is dead: replication makes no progress
    chaos::registry().arm(
        FaultPoint::MultiregionReplicate,
        FaultPlan::fail(FaultKind::Unavailable, Trigger::Always),
    );
    assert_eq!(topo.replicate(100), 0);
    // the link heals: measure catching up the whole backlog
    chaos::registry().disarm_all();
    let (copied, mttr) = time_it(|| topo.replicate(200));
    assert_eq!(copied, 2 * BACKLOG as u64, "both aggregates catch up");
    report(
        "replication catch-up MTTR",
        format!(
            "{BACKLOG}-record backlog after link outage drained in {:.1} ms ({:.0} krec/s)",
            mttr.as_secs_f64() * 1e3,
            copied as f64 / mttr.as_secs_f64() / 1e3,
        ),
    );
}

fn dlq_drain_mttr() {
    const PARKED: usize = 1_000;
    let cluster = Cluster::new("c1", ClusterConfig::default());
    cluster
        .create_topic("trips", TopicConfig::default().with_partitions(4))
        .unwrap();
    let dlq = DeadLetterQueue::new("trips").unwrap();
    for i in 0..PARKED {
        dlq.park(
            Record::new(Row::new().with("i", i as i64), 0).with_key(format!("k{i}")),
            ParkReason::RetriesExhausted,
            "downstream outage",
            0,
        );
    }
    let (merged, mttr) = time_it(|| dlq.merge(&*cluster, 10).unwrap());
    assert_eq!(merged, PARKED);
    assert_eq!(dlq.depth(), 0);
    report(
        "DLQ drain MTTR",
        format!(
            "{PARKED} parked records republished after downstream fix in {:.1} ms",
            mttr.as_secs_f64() * 1e3,
        ),
    );
}

fn bench(c: &mut Criterion) {
    report_header(
        "E23 chaos MTTR: recovery time under injected faults",
        "deterministic fault injection at named points; every layer returns \
         to full service via shared retry/backoff policies, checkpoint \
         restart or degraded serving — recovery time is measured, not hoped",
    );
    compute_restart_mttr();
    producer_outage_mttr();
    segment_loss_mttr();
    replication_catchup_mttr();
    dlq_drain_mttr();

    // the acceptance gate for leaving fault points compiled into hot
    // paths: a disarmed check is one relaxed atomic load
    let mut g = c.benchmark_group("e23");
    g.bench_function("disarmed_fault_check", |b| {
        b.iter(|| chaos::check(FaultPoint::StreamAppend).unwrap())
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = quick_criterion();
    targets = bench
}
criterion_main!(benches);
