//! E10 (§4.3): "With the same amount of data ingested into Elasticsearch
//! and Pinot, Elasticsearch's memory usage was 4x higher and disk usage
//! was 8x higher than Pinot. In addition, Elasticsearch's query latency
//! was 2x-4x higher than Pinot, benchmarked with a combination of
//! filters, aggregation and group by/order by queries."

use criterion::{criterion_group, criterion_main, Criterion};
use rtdi_bench::{count_allocations, quick_criterion, report, report_header, time_it};
use rtdi_common::AggFn;
use rtdi_olap::baselines::{comparison_rows, comparison_schema, HeapStore};
use rtdi_olap::query::{Predicate, PredicateOp, Query, SortOrder};
use rtdi_olap::segment::{IndexSpec, Segment};
use rtdi_storage::colfile;

/// The paper's query mix: filters, aggregation, group by / order by.
fn query_suite() -> Vec<Query> {
    vec![
        Query::select_all("orders")
            .filter(Predicate::eq("city", "sf"))
            .aggregate("n", AggFn::Count)
            .aggregate("rev", AggFn::Sum("total".into())),
        Query::select_all("orders")
            .filter(Predicate::new("total", PredicateOp::Gt, 50.0))
            .aggregate("n", AggFn::Count)
            .group(&["city"]),
        Query::select_all("orders")
            .filter(Predicate::eq("restaurant", "rest-0042"))
            .aggregate("avg_total", AggFn::Avg("total".into())),
        Query::select_all("orders")
            .aggregate("n", AggFn::Count)
            .aggregate("rev", AggFn::Sum("total".into()))
            .group(&["city"])
            .order("rev", SortOrder::Desc)
            .limit(3),
    ]
}

fn bench(c: &mut Criterion) {
    report_header(
        "E10 columnar OLAP vs ES-like heap store",
        "ES memory ~4x, disk ~8x, query latency 2-4x higher than Pinot",
    );
    let n = 400_000usize;
    let rows = comparison_rows(n);
    let schema = comparison_schema();

    let mut heap = HeapStore::new();
    for r in &rows {
        heap.index(r.clone());
    }
    let spec = IndexSpec::none()
        .with_inverted(&["city", "restaurant"])
        .with_sorted("ts")
        .with_range(&["total"]);
    let seg = Segment::build("orders", &schema, rows.clone(), &spec).unwrap();

    // footprints
    let col_disk = colfile::encode_columnar(&schema, &rows).unwrap().len();
    report(
        "memory",
        format!(
            "heap-store {} MiB vs columnar {} MiB -> {:.1}x (paper ~4x)",
            heap.memory_bytes() / (1 << 20),
            seg.memory_bytes() / (1 << 20),
            heap.memory_bytes() as f64 / seg.memory_bytes() as f64
        ),
    );
    report(
        "disk",
        format!(
            "heap-store {} MiB vs columnar {} MiB -> {:.1}x (paper ~8x)",
            heap.disk_bytes() / (1 << 20),
            col_disk / (1 << 20),
            heap.disk_bytes() as f64 / col_disk as f64
        ),
    );

    // latency over the paper's query mix
    let suite = query_suite();
    let (_, heap_t) = time_it(|| {
        for q in &suite {
            heap.execute(q).unwrap();
        }
    });
    let (_, col_t) = time_it(|| {
        for q in &suite {
            seg.execute(q, None).unwrap();
        }
    });
    report(
        "query-suite latency",
        format!(
            "heap-store {:.1} ms vs columnar {:.1} ms -> {:.1}x (paper 2-4x)",
            heap_t.as_secs_f64() * 1e3,
            col_t.as_secs_f64() * 1e3,
            heap_t.as_secs_f64() / col_t.as_secs_f64()
        ),
    );
    // allocation traffic for the same suite (vectorized execution should
    // allocate far less than the per-doc heap store)
    let (_, heap_a) = count_allocations(|| {
        for q in &suite {
            heap.execute(q).unwrap();
        }
    });
    let (_, col_a) = count_allocations(|| {
        for q in &suite {
            seg.execute(q, None).unwrap();
        }
    });
    report(
        "query-suite allocations",
        format!("heap-store {heap_a} vs columnar {col_a}"),
    );
    // results agree
    for q in &suite {
        assert_eq!(
            heap.execute(q).unwrap().rows,
            seg.execute(q, None).unwrap().rows,
            "engines disagree on {q:?}"
        );
    }

    let mut g = c.benchmark_group("e10");
    let q = &query_suite()[1];
    g.bench_function("heapstore_groupby", |b| b.iter(|| heap.execute(q).unwrap()));
    g.bench_function("columnar_groupby", |b| {
        b.iter(|| seg.execute(q, None).unwrap())
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = quick_criterion();
    targets = bench
}
criterion_main!(benches);
