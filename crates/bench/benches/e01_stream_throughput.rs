//! E1 (§4.1, Figure 3): the streaming substrate sustains high-throughput
//! partitioned pub/sub with low produce/fetch latency — the foundation for
//! "trillions of messages and Petabytes of data per day" (scaled to one
//! process).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rtdi_bench::{quick_criterion, report, report_header, time_it};
use rtdi_common::{Record, Row};
use rtdi_stream::cluster::{Cluster, ClusterConfig};
use rtdi_stream::consumer::{ConsumerGroup, TopicSubscription};
use rtdi_stream::topic::TopicConfig;

fn record(i: usize) -> Record {
    Record::new(
        Row::new()
            .with("city", ["sf", "la", "nyc", "chi"][i % 4])
            .with("fare", 12.5)
            .with("ts", i as i64),
        i as i64,
    )
    .with_key(format!("k{i}"))
}

fn bench(c: &mut Criterion) {
    report_header(
        "E1 stream throughput",
        "Kafka-class pub/sub: high write throughput, partitioned ordering, \
         cheap sequential consumption",
    );
    // headline numbers outside criterion for the report
    let cluster = Cluster::new("c", ClusterConfig::default());
    cluster
        .create_topic("trips", TopicConfig::default().with_partitions(8))
        .unwrap();
    let n = 200_000usize;
    let (_, produce_elapsed) = time_it(|| {
        for i in 0..n {
            cluster.produce("trips", record(i), 0).unwrap();
        }
    });
    report(
        "produce throughput (8 partitions)",
        format!("{:.0} records/s", n as f64 / produce_elapsed.as_secs_f64()),
    );
    let topic = cluster.topic("trips").unwrap();
    let group = ConsumerGroup::new("g", TopicSubscription::new(topic));
    group.join("m");
    let (consumed, consume_elapsed) = time_it(|| {
        let mut total = 0usize;
        loop {
            let recs = group.poll("m", 4096).unwrap();
            if recs.is_empty() {
                break;
            }
            total += recs.len();
            group.commit("m");
        }
        total
    });
    report(
        "consume throughput",
        format!(
            "{:.0} records/s ({consumed} consumed)",
            consumed as f64 / consume_elapsed.as_secs_f64()
        ),
    );

    let mut g = c.benchmark_group("e01");
    for partitions in [1usize, 4, 16] {
        let cluster = Cluster::new("b", ClusterConfig::default());
        cluster
            .create_topic("t", TopicConfig::default().with_partitions(partitions))
            .unwrap();
        g.throughput(Throughput::Elements(1000));
        g.bench_with_input(
            BenchmarkId::new("produce_1k", partitions),
            &partitions,
            |b, _| {
                let mut i = 0usize;
                b.iter(|| {
                    for _ in 0..1000 {
                        cluster.produce("t", record(i), 0).unwrap();
                        i += 1;
                    }
                });
            },
        );
    }
    // fetch latency on a warm log
    let cluster = Cluster::new("f", ClusterConfig::default());
    cluster
        .create_topic("t", TopicConfig::default().with_partitions(1))
        .unwrap();
    for i in 0..100_000 {
        cluster.produce("t", record(i), 0).unwrap();
    }
    let topic = cluster.topic("t").unwrap();
    g.bench_function("fetch_1k_sequential", |b| {
        let mut offset = 0u64;
        b.iter(|| {
            let f = topic.fetch(0, offset, 1000).unwrap();
            offset = match f.records.last() {
                Some(r) if r.offset + 1 < 99_000 => r.offset + 1,
                _ => 0,
            };
            f.records.len()
        });
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = quick_criterion();
    targets = bench
}
criterion_main!(benches);
