//! E24: node-level failure domains — failover MTTR and committed-record
//! durability.
//!
//! Three measurements against the PR-4 replication machinery:
//!
//! - leader failover MTTR, split into its two components: the *detection*
//!   latency of the heartbeat deadline detector (logical time: a silent
//!   node must miss `dead_after_ms` of beats) and the *failover* work
//!   itself (wall time: ISR eviction + epoch bump + in-sync election
//!   across every partition the dead broker led);
//! - segment re-hosting MTTR: a dead OLAP server leaves placements
//!   under-replicated; the rebalancer recovers each segment (peer first,
//!   deep store fallback) and re-hosts it to full query coverage;
//! - durability under kill/heal cycles: every record committed under
//!   acks=all survives repeated leader kills exactly once, in order.

use criterion::{criterion_group, criterion_main, Criterion};
use rtdi_bench::{quick_criterion, report, report_header, time_it};
use rtdi_common::chaos;
use rtdi_common::{AggFn, Clock, FieldType, NodeState, Record, Row, Schema, SimClock};
use rtdi_olap::broker::{Broker, ServerNode};
use rtdi_olap::query::Query;
use rtdi_olap::rebalance::Rebalancer;
use rtdi_olap::segment::{IndexSpec, Segment};
use rtdi_olap::segstore::{SegmentStore, SegmentStoreMode};
use rtdi_storage::object::InMemoryStore;
use rtdi_stream::cluster::{Cluster, ClusterConfig};
use rtdi_stream::topic::TopicConfig;
use std::sync::Arc;

fn replicated_topic() -> TopicConfig {
    TopicConfig {
        partitions: 8,
        replication: 3,
        lossless: true,
        min_insync: 2,
        ..Default::default()
    }
}

fn leader_failover_mttr() {
    chaos::registry().reset(0xE24);
    let clock = Arc::new(SimClock::new(0));
    let cluster = Cluster::with_clock(
        "core",
        ClusterConfig {
            nodes: 6,
            ..Default::default()
        },
        clock.clone(),
    );
    let topic = cluster.create_topic("trips", replicated_topic()).unwrap();
    for i in 0..2_000i64 {
        cluster
            .produce(
                "trips",
                Record::new(Row::new().with("i", i), i).with_key(format!("k{i}")),
                i,
            )
            .unwrap();
    }

    // --- detection latency (logical): the node falls silent and the
    // deadline detector must notice the missed heartbeats
    let victim = topic.replica_status(0).unwrap().leader.unwrap();
    let led_before: usize = (0..topic.num_partitions())
        .filter(|&p| topic.replica_status(p).unwrap().leader.as_deref() == Some(victim.as_str()))
        .count();
    let killed_at = clock.now();
    cluster.fail_node_silently(&victim);
    let interval = cluster.membership().config().heartbeat_interval_ms;
    let mut detect_ms = None;
    for _ in 0..30 {
        clock.advance(interval);
        let evs = cluster.heartbeat_tick();
        if evs
            .iter()
            .any(|e| e.node == victim && e.to == NodeState::Dead)
        {
            detect_ms = Some(clock.now() - killed_at);
            break;
        }
    }
    let detect_ms = detect_ms.expect("detector declares the silent node dead");
    cluster.heal_node(&victim);
    clock.advance(interval);
    cluster.heartbeat_tick();

    // --- failover work (wall): announced kill, so the measured time is
    // purely ISR eviction + election across every partition the node led
    let victim = topic.replica_status(0).unwrap().leader.unwrap();
    let (_, failover) = time_it(|| cluster.kill_node(&victim));
    let still_led: usize = (0..topic.num_partitions())
        .filter(|&p| topic.replica_status(p).unwrap().leader.as_deref() == Some(victim.as_str()))
        .count();
    assert_eq!(still_led, 0, "no partition keeps the dead leader");
    cluster.heal_node(&victim);
    chaos::registry().reset(0xE24);
    report(
        "leader failover MTTR",
        format!(
            "detection {detect_ms} ms logical (deadline detector, {} ms heartbeat interval), \
             failover of a broker leading {led_before}/8 partitions in {:.0} us wall",
            interval,
            failover.as_secs_f64() * 1e6,
        ),
    );
}

fn segment_rehost_mttr() {
    const SEGMENTS: usize = 16;
    const ROWS: usize = 5_000;
    chaos::registry().reset(0xE24B);
    let schema = Schema::of("t", &[("city", FieldType::Str), ("v", FieldType::Int)]);
    let servers: Vec<Arc<ServerNode>> = (0..4).map(ServerNode::new).collect();
    let broker = Arc::new(Broker::new(servers));
    broker.register_table("t", false);
    let store = Arc::new(SegmentStore::new(
        Arc::new(InMemoryStore::new()),
        SegmentStoreMode::PeerToPeer,
        IndexSpec::none(),
    ));
    for s in 0..SEGMENTS {
        let rows: Vec<Row> = (0..ROWS)
            .map(|j| {
                Row::new()
                    .with("city", ["sf", "la"][j % 2])
                    .with("v", (s * ROWS + j) as i64)
            })
            .collect();
        let seg =
            Arc::new(Segment::build(format!("s{s}"), &schema, rows, &IndexSpec::none()).unwrap());
        store.backup("t", seg.clone()).unwrap();
        broker.place_segment("t", seg, None, 2).unwrap();
    }
    store.flush_pending().unwrap();
    let rebalancer = Rebalancer::new(broker.clone(), store);

    let victim = broker.servers()[0].name().to_string();
    chaos::registry().kill_node(&victim);
    let q = Query::select_all("t").aggregate("n", AggFn::Count);
    let (report_out, mttr) = time_it(|| rebalancer.rebalance().unwrap());
    assert!(report_out.unrecovered.is_empty());
    let healed = broker.query(&q).unwrap();
    assert!(!healed.partial);
    assert_eq!(
        healed.rows[0].get_int("n"),
        Some((SEGMENTS * ROWS) as i64),
        "full coverage after re-host"
    );
    chaos::registry().heal_node(&victim);
    chaos::registry().reset(0xE24B);
    report(
        "segment re-host MTTR",
        format!(
            "server death stranded {} replicas; rebalancer re-hosted them (peer-first) to full \
             query coverage in {:.0} us ({:.0} us/segment)",
            report_out.moves.len(),
            mttr.as_secs_f64() * 1e6,
            mttr.as_secs_f64() * 1e6 / report_out.moves.len().max(1) as f64,
        ),
    );
}

fn durability_under_kill_cycles() {
    const CYCLES: usize = 6;
    chaos::registry().reset(0xE24C);
    let clock = Arc::new(SimClock::new(0));
    let cluster = Cluster::with_clock(
        "core",
        ClusterConfig {
            nodes: 5,
            ..Default::default()
        },
        clock.clone(),
    );
    let topic = cluster.create_topic("trips", replicated_topic()).unwrap();
    let mut committed: Vec<Vec<i64>> = vec![Vec::new(); topic.num_partitions()];
    let mut i = 0i64;
    let mut rejected = 0u64;
    let (_, elapsed) = time_it(|| {
        for cycle in 0..CYCLES {
            let victim = topic
                .replica_status(cycle % topic.num_partitions())
                .unwrap()
                .leader
                .unwrap();
            cluster.kill_node(&victim);
            for _ in 0..2_000 {
                let rec = Record::new(Row::new().with("i", i), i).with_key(format!("k{i}"));
                match cluster.produce("trips", rec, i) {
                    Ok((p, _)) => committed[p].push(i),
                    Err(_) => rejected += 1,
                }
                i += 1;
            }
            cluster.heal_node(&victim);
            clock.advance(1_000);
            cluster.heartbeat_tick();
        }
    });
    let mut total = 0usize;
    for (p, expect) in committed.iter().enumerate() {
        let fetched: Vec<i64> = topic
            .fetch(p, 0, usize::MAX)
            .unwrap()
            .records
            .into_iter()
            .map(|r| r.record.value.get_int("i").unwrap())
            .collect();
        assert_eq!(&fetched, expect, "partition {p} exactly once, in order");
        total += expect.len();
    }
    chaos::registry().reset(0xE24C);
    report(
        "durability under kill/heal",
        format!(
            "{CYCLES} leader kill/heal cycles while producing: {total} committed records all \
             delivered exactly once ({rejected} rejected by acks=all, exempt), {:.1} ms total",
            elapsed.as_secs_f64() * 1e3,
        ),
    );
}

fn bench(c: &mut Criterion) {
    report_header(
        "E24 node failover: replicated partitions, failure detection, self-healing",
        "per-partition replica sets with ISR/acks=all commit semantics, a \
         heartbeat deadline failure detector, and the OLAP rebalancer — \
         MTTR is split into detection (logical deadline) and repair (wall)",
    );
    leader_failover_mttr();
    segment_rehost_mttr();
    durability_under_kill_cycles();

    // hot-path cost of commit bookkeeping: an acks=all append through a
    // 3-replica ISR vs the single-copy baseline
    let mut g = c.benchmark_group("e24");
    let replicated = Cluster::new("r", ClusterConfig::default());
    replicated.create_topic("t", replicated_topic()).unwrap();
    let single = Cluster::new("s", ClusterConfig::default());
    single
        .create_topic(
            "t",
            TopicConfig {
                replication: 1,
                min_insync: 1,
                ..replicated_topic()
            },
        )
        .unwrap();
    let mut n = 0i64;
    g.bench_function("append_acks_all_r3", |b| {
        b.iter(|| {
            n += 1;
            replicated
                .produce("t", Record::new(Row::new().with("i", n), n), n)
                .unwrap()
        })
    });
    let mut m = 0i64;
    g.bench_function("append_single_copy", |b| {
        b.iter(|| {
            m += 1;
            single
                .produce("t", Record::new(Row::new().with("i", m), m), m)
                .unwrap()
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = quick_criterion();
    targets = bench
}
criterion_main!(benches);
