//! E7 (§4.2): "Spark jobs consumed 5-10 times more memory than a
//! corresponding Flink job for the same workload." Micro-batch execution
//! materializes whole batches plus per-key shuffle groups; pipelined
//! streaming keeps only incremental accumulators.

use criterion::{criterion_group, criterion_main, Criterion};
use rtdi_bench::{quick_criterion, report, report_header};
use rtdi_common::{AggFn, Record, Row};
use rtdi_compute::baselines::{streaming_windowed_agg, MicroBatchEngine};

fn workload(n: usize) -> Vec<Record> {
    (0..n)
        .map(|i| {
            Record::new(
                Row::new()
                    .with("city", format!("c{}", i % 16))
                    .with("fare", 5.0 + (i % 20) as f64),
                (i as i64) * 10,
            )
        })
        .collect()
}

fn bench(c: &mut Criterion) {
    report_header(
        "E7 engine memory: micro-batch vs pipelined streaming",
        "micro-batch uses 5-10x more memory than streaming for the same \
         windowed aggregation",
    );
    let aggs = vec![
        ("n".to_string(), AggFn::Count),
        ("revenue".to_string(), AggFn::Sum("fare".into())),
    ];
    for n in [50_000usize, 200_000] {
        let records = workload(n);
        let mb = MicroBatchEngine::new(10_000).run_windowed_agg(&records, "city", &aggs);
        let (st_rows, st_peak) = streaming_windowed_agg(&records, "city", &aggs, 10_000);
        assert_eq!(mb.rows.len(), st_rows.len(), "engines disagree");
        report(
            format!("{n} records").as_str(),
            format!(
                "micro-batch peak {} KiB vs streaming peak {} KiB -> {:.1}x",
                mb.peak_bytes / 1024,
                st_peak / 1024,
                mb.peak_bytes as f64 / st_peak as f64
            ),
        );
    }

    let records = workload(50_000);
    let mut g = c.benchmark_group("e07");
    g.bench_function("microbatch_50k", |b| {
        b.iter(|| MicroBatchEngine::new(10_000).run_windowed_agg(&records, "city", &aggs))
    });
    g.bench_function("streaming_50k", |b| {
        b.iter(|| streaming_windowed_agg(&records, "city", &aggs, 10_000))
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = quick_criterion();
    targets = bench
}
criterion_main!(benches);
