//! E26 (§4.3): the real on-disk segment format. Pinot-style segments —
//! per-column dictionaries, bit-packed forward indexes, RLE runs, null
//! bitmaps and zone maps behind a CRC-checked footer — against the naive
//! row encoding the archival layer uses for raw records. The paper's
//! footprint claim (§4.3, E10) is about memory AND disk; this experiment
//! pins the disk half and the two read-path consequences: lazy per-column
//! loads and header-only zone-map pruning.

use criterion::{criterion_group, criterion_main, Criterion};
use rtdi_bench::{quick_criterion, report, report_header, time_it};
use rtdi_common::{AggFn, FieldType, Row, Schema};
use rtdi_olap::query::{Predicate, PredicateOp, Query};
use rtdi_olap::segment::{IndexSpec, Segment};
use rtdi_storage::archival;
use std::sync::Arc;

const ROWS: usize = 100_000;

fn schema() -> Schema {
    Schema::of(
        "trips",
        &[
            ("city", FieldType::Str),
            ("status", FieldType::Str),
            ("fare", FieldType::Double),
            ("n_riders", FieldType::Int),
            ("ts", FieldType::Timestamp),
        ],
    )
}

fn rows() -> Vec<Row> {
    let cities = ["sf", "la", "nyc", "chi", "sea", "mia", "atx", "den"];
    let statuses = ["completed", "completed", "completed", "canceled"];
    (0..ROWS)
        .map(|i| {
            Row::new()
                .with("city", cities[i % cities.len()])
                .with("status", statuses[(i / 7) % statuses.len()])
                .with("fare", 5.0 + (i % 400) as f64 / 10.0)
                .with("n_riders", 1 + (i % 4) as i64)
                .with("ts", 1_600_000_000_000 + (i as i64) * 250)
        })
        .collect()
}

fn bench(c: &mut Criterion) {
    report_header(
        "E26 on-disk segment format (§4.3)",
        "dictionary + bit-packed columns with zone maps vs naive row \
         encoding; lazy loads decode only the columns a query touches, \
         zone-pruned segments never read past the header",
    );
    let rows = rows();
    let seg =
        Arc::new(Segment::build("trips_0", &schema(), rows.clone(), &IndexSpec::none()).unwrap());

    // --- disk footprint: segment format vs the naive row encoding
    let (segment_bytes, encode_t) = time_it(|| seg.persist().unwrap());
    let naive = archival::encode_rows(&rows);
    let ratio = naive.len() as f64 / segment_bytes.len() as f64;
    report(
        "disk footprint (100k rows)",
        format!(
            "segment {} KiB vs naive rows {} KiB (**{ratio:.1}x smaller**); \
             encode {:.1} ms",
            segment_bytes.len() / 1024,
            naive.len() / 1024,
            encode_t.as_secs_f64() * 1e3,
        ),
    );
    assert!(
        ratio >= 4.0,
        "acceptance: segment must be >=4x smaller than naive rows, got {ratio:.2}x"
    );
    // both encodings must carry the same data before sizes count
    let (_, decoded) = rtdi_storage::segfile::decode_rows_segment(&segment_bytes).unwrap();
    assert_eq!(decoded.len(), rows.len());

    // --- lazy load: a 1-column aggregation decodes 1 of 5 columns
    let q_one_col = Query::select_all("trips")
        .filter(Predicate::new("city", PredicateOp::Eq, "sf"))
        .aggregate("n", AggFn::Count);
    let (full_res, full_t) = time_it(|| {
        let lazy = Segment::load_lazy(segment_bytes.clone()).unwrap();
        let s = lazy.into_segment(&IndexSpec::none()).unwrap();
        s.execute(&q_one_col, None).unwrap()
    });
    let lazy = Segment::load_lazy(segment_bytes.clone()).unwrap();
    let (lazy_res, lazy_t) = time_it(|| lazy.execute(&q_one_col).unwrap());
    assert_eq!(full_res.rows, lazy_res.rows, "lazy answers must match full");
    report(
        "single-column count query on a cold segment",
        format!(
            "full load {:.2} ms vs lazy load {:.2} ms (**{:.1}x**); lazy \
             decoded {}/{} columns, {} of {} KiB",
            full_t.as_secs_f64() * 1e3,
            lazy_t.as_secs_f64() * 1e3,
            full_t.as_secs_f64() / lazy_t.as_secs_f64(),
            lazy.columns_loaded(),
            schema().fields.len(),
            lazy.bytes_loaded() / 1024,
            lazy.file_bytes() / 1024,
        ),
    );
    assert!(lazy_t < full_t, "lazy load must beat full load");
    assert_eq!(lazy.columns_loaded(), 1, "count query touches 1 column");

    // --- zone-map pruning: a time predicate outside the segment's range
    // answers from the header alone, zero column bytes decoded
    let q_pruned = Query::select_all("trips")
        .filter(Predicate::new("ts", PredicateOp::Gt, 1_700_000_000_000i64))
        .aggregate("n", AggFn::Count);
    let cold = Segment::load_lazy(segment_bytes.clone()).unwrap();
    let (pruned_res, pruned_t) = time_it(|| cold.execute(&q_pruned).unwrap());
    assert_eq!(pruned_res.segments_pruned, 1, "zone map must prune");
    assert_eq!(cold.columns_loaded(), 0, "pruning decodes no column");
    assert_eq!(
        cold.bytes_loaded(),
        cold.header_bytes(),
        "pruned segment reads header only"
    );
    report(
        "zone-map pruned time query",
        format!(
            "{:.0} us, {} header bytes read of a {} KiB file, 0/{} columns \
             decoded",
            pruned_t.as_secs_f64() * 1e6,
            cold.header_bytes(),
            cold.file_bytes() / 1024,
            schema().fields.len(),
        ),
    );

    let mut g = c.benchmark_group("e26");
    g.bench_function("persist_100k", |b| b.iter(|| seg.persist().unwrap()));
    g.bench_function("lazy_open_plus_count", |b| {
        b.iter(|| {
            let l = Segment::load_lazy(segment_bytes.clone()).unwrap();
            l.execute(&q_one_col).unwrap()
        })
    });
    g.bench_function("zone_pruned_query", |b| {
        b.iter(|| {
            let l = Segment::load_lazy(segment_bytes.clone()).unwrap();
            l.execute(&q_pruned).unwrap()
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = quick_criterion();
    targets = bench
}
criterion_main!(benches);
