//! E21 (§7): backfill. Kappa (replaying Kafka) is impossible past the
//! retention window; Kappa+ replays the archive through the same
//! streaming operators, throttled, with results identical to the original
//! streaming run.

use criterion::{criterion_group, criterion_main, Criterion};
use rtdi_bench::{quick_criterion, report, report_header, time_it};
use rtdi_common::{AggFn, Record, Row, Schema};
use rtdi_compute::backfill::{kafka_retains, kappa_plus_job, BackfillConfig};
use rtdi_compute::operator::{Operator, WindowAggregateOp};
use rtdi_compute::runtime::{Executor, ExecutorConfig, Job};
use rtdi_compute::sink::CollectSink;
use rtdi_compute::source::VecSource;
use rtdi_compute::window::WindowAssigner;
use rtdi_storage::hive::HiveCatalog;
use rtdi_storage::object::InMemoryStore;
use rtdi_stream::topic::{Topic, TopicConfig};
use std::sync::Arc;

fn agg_chain() -> Vec<Box<dyn Operator>> {
    vec![Box::new(WindowAggregateOp::new(
        "hourly",
        vec!["city".into()],
        WindowAssigner::tumbling(3_600_000),
        vec![
            ("trips".into(), AggFn::Count),
            ("revenue".into(), AggFn::Sum("fare".into())),
        ],
        0,
    ))]
}

fn trip(i: usize, days: usize, n: usize) -> (i64, Row) {
    let span = days as i64 * 86_400_000;
    let ts = (i as i64) * span / n as i64;
    (
        ts,
        Row::new()
            .with("city", ["sf", "la"][i % 2])
            .with("fare", 10.0 + (i % 9) as f64)
            .with("ts", ts)
            .with("__ts", ts),
    )
}

fn bench(c: &mut Criterion) {
    report_header(
        "E21 Kappa+ backfill",
        "Kafka retention (days) makes Kappa impossible for week-old data; \
         Kappa+ replays the archive with the same operators and matches \
         the streaming results",
    );
    let n = 200_000usize;
    let days = 7;
    // archive the full history
    let store = Arc::new(InMemoryStore::new());
    let catalog = HiveCatalog::new(store);
    let schema = Schema::of(
        "trips",
        &[
            ("city", rtdi_common::FieldType::Str),
            ("fare", rtdi_common::FieldType::Double),
            ("ts", rtdi_common::FieldType::Timestamp),
            ("__ts", rtdi_common::FieldType::Timestamp),
        ],
    );
    let table = catalog.create_table("trips", schema).unwrap();
    let mut by_day: std::collections::BTreeMap<String, Vec<Row>> = Default::default();
    for i in 0..n {
        let (ts, row) = trip(i, days, n);
        by_day
            .entry(rtdi_storage::archival::date_partition(ts))
            .or_default()
            .push(row);
    }
    for (day, rows) in &by_day {
        catalog.write_rows("trips", day, rows).unwrap();
    }

    // the topic only retains the last ~2 days
    let topic = Arc::new(
        Topic::new(
            "trips",
            TopicConfig {
                partitions: 4,
                retention_ms: 2 * 86_400_000,
                ..Default::default()
            },
        )
        .unwrap(),
    );
    for i in 0..n {
        let (ts, row) = trip(i, days, n);
        topic
            .append(Record::new(row, ts).with_key(format!("k{i}")), ts)
            .unwrap();
    }
    report(
        "Kappa feasible for day-1 data?",
        format!("{}", kafka_retains(&topic, 86_400_000)),
    );

    // streaming reference (what the original job computed live)
    let stream_sink = CollectSink::new();
    let records: Vec<Record> = (0..n)
        .map(|i| {
            let (ts, row) = trip(i, days, n);
            Record::new(row, ts)
        })
        .collect();
    let mut stream_job = Job::new(
        "live",
        Box::new(VecSource::new(records)),
        agg_chain(),
        Box::new(stream_sink.clone()),
    );
    Executor::new(ExecutorConfig::default())
        .run(&mut stream_job)
        .unwrap();

    // Kappa+ over the archive
    let bf_sink = CollectSink::new();
    let mut bf_job = kappa_plus_job(
        "backfill",
        &table,
        agg_chain(),
        Box::new(bf_sink.clone()),
        &BackfillConfig::default(),
    )
    .unwrap();
    let (stats, t) = time_it(|| {
        Executor::new(ExecutorConfig::default())
            .run(&mut bf_job)
            .unwrap()
    });
    report(
        "Kappa+ replay throughput",
        format!(
            "{:.0} events/s over {} archived events",
            stats.records_in as f64 / t.as_secs_f64(),
            stats.records_in
        ),
    );
    let canon = |rows: Vec<Row>| {
        let mut v: Vec<(String, i64, i64)> = rows
            .iter()
            .map(|r| {
                (
                    r.get_str("city").unwrap().to_string(),
                    r.get_int("window_start").unwrap(),
                    r.get_int("trips").unwrap(),
                )
            })
            .collect();
        v.sort();
        v
    };
    let matches = canon(stream_sink.rows()) == canon(bf_sink.rows());
    report(
        "backfill == original streaming results",
        format!("{matches}"),
    );
    assert!(matches);

    let mut g = c.benchmark_group("e21");
    g.bench_function("kappa_plus_50k", |b| {
        b.iter(|| {
            let sink = CollectSink::new();
            let mut job = kappa_plus_job(
                "bf",
                &table,
                agg_chain(),
                Box::new(sink),
                &BackfillConfig {
                    from: 0,
                    to: 2 * 86_400_000,
                    ..Default::default()
                },
            )
            .unwrap();
            Executor::new(ExecutorConfig::default())
                .run(&mut job)
                .unwrap()
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = quick_criterion();
    targets = bench
}
criterion_main!(benches);
