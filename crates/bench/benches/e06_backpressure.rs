//! E6 (§4.2): "Storm performed poorly in handling back pressure when
//! faced with a massive input backlog of millions of messages, taking
//! several hours to recover whereas Flink only took 20 minutes."
//!
//! Reproduced as a discrete-time simulation of both engines draining a
//! 5M-message backlog at 5k msg/s capacity with 1k msg/s of live input
//! (see `rtdi_compute::baselines::simulate_recovery`).

use criterion::{criterion_group, criterion_main, Criterion};
use rtdi_bench::{quick_criterion, report, report_header};
use rtdi_compute::baselines::{simulate_recovery, EngineModel};

fn bench(c: &mut Criterion) {
    report_header(
        "E6 backlog recovery: Flink-like vs Storm-like",
        "Flink ~20 minutes, Storm several hours (>=6x slower) on a \
         multi-million message backlog",
    );
    let backlog = 5_000_000;
    let capacity = 5_000;
    let input = 1_000;
    let horizon = 200_000_000;
    let flink = simulate_recovery(
        EngineModel::FlinkLike {
            buffer_capacity: 10_000,
        },
        backlog,
        capacity,
        input,
        horizon,
    );
    let storm = simulate_recovery(
        EngineModel::StormLike {
            ack_timeout_ms: 60_000,
            emit_multiplier: 1.2,
        },
        backlog,
        capacity,
        input,
        horizon,
    );
    report(
        "Flink-like (credit-based backpressure)",
        format!(
            "{:.1} minutes, {} wasted replays",
            flink.recovery_ms as f64 / 60_000.0,
            flink.wasted_replays
        ),
    );
    report(
        "Storm-like (ack timeout, no flow control)",
        format!(
            "{:.1} minutes, {} wasted replays{}",
            storm.recovery_ms as f64 / 60_000.0,
            storm.wasted_replays,
            if storm.timed_out {
                " (hit simulation horizon)"
            } else {
                ""
            }
        ),
    );
    report(
        "recovery ratio storm/flink",
        format!(
            "{:.1}x",
            storm.recovery_ms as f64 / flink.recovery_ms as f64
        ),
    );
    // shape check from the paper: ~20 min for Flink, hours for Storm
    assert!((15.0..30.0).contains(&(flink.recovery_ms as f64 / 60_000.0)));
    assert!(storm.recovery_ms as f64 / flink.recovery_ms as f64 >= 5.0);

    let mut g = c.benchmark_group("e06");
    g.bench_function("simulate_flink_recovery", |b| {
        b.iter(|| {
            simulate_recovery(
                EngineModel::FlinkLike {
                    buffer_capacity: 10_000,
                },
                500_000,
                5_000,
                1_000,
                10_000_000,
            )
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = quick_criterion();
    targets = bench
}
criterion_main!(benches);
