//! E6 (§4.2): "Storm performed poorly in handling back pressure when
//! faced with a massive input backlog of millions of messages, taking
//! several hours to recover whereas Flink only took 20 minutes."
//!
//! Reproduced as a discrete-time simulation of both engines draining a
//! 5M-message backlog at 5k msg/s capacity with 1k msg/s of live input
//! (see `rtdi_compute::baselines::simulate_recovery`).

use criterion::{criterion_group, criterion_main, Criterion};
use rtdi_bench::{quick_criterion, report, report_header, time_it};
use rtdi_common::{AggFn, Row, Timestamp};
use rtdi_compute::baselines::{simulate_recovery, EngineModel};
use rtdi_compute::operator::{FilterOp, MapOp, Operator, WindowAggregateOp};
use rtdi_compute::runtime::{run_staged_with, Job, StagedConfig};
use rtdi_compute::sink::CollectSink;
use rtdi_compute::source::VecSource;
use rtdi_compute::window::WindowAssigner;

/// Drain a pre-built backlog through the staged runtime's 4-stage
/// map/filter/window/map pipeline under one channel protocol; the bounded
/// channels are the credit-based backpressure being measured, so drain
/// throughput is exactly how fast the engine works through a backlog.
fn drain_backlog(n: usize, cfg: &StagedConfig) -> (f64, usize) {
    let rows: Vec<(Timestamp, Row)> = (0..n)
        .map(|i| {
            (
                (i as i64) * 10,
                Row::new()
                    .with("city", ["sf", "la"][i % 2])
                    .with("fare", 8.0 + (i % 25) as f64),
            )
        })
        .collect();
    let sink = CollectSink::new();
    let ops: Vec<Box<dyn Operator>> = vec![
        Box::new(MapOp::new("tag", |r: &Row| {
            let mut out = r.clone();
            out.push("fare2", r.get_double("fare").unwrap_or(0.0) * 2.0);
            out
        })),
        Box::new(FilterOp::new("nonneg", |r: &Row| {
            r.get_double("fare").unwrap_or(0.0) >= 0.0
        })),
        Box::new(WindowAggregateOp::new(
            "agg",
            vec!["city".into()],
            WindowAssigner::tumbling(1_000),
            vec![("trips".into(), AggFn::Count)],
            0,
        )),
        Box::new(MapOp::new("post", |r: &Row| r.clone())),
    ];
    let job = Job::new(
        "drain",
        Box::new(VecSource::from_rows(rows)),
        ops,
        Box::new(sink.clone()),
    );
    let (stats, elapsed) = time_it(|| run_staged_with(job, cfg).unwrap());
    assert_eq!(stats.records_in, n as u64);
    (n as f64 / elapsed.as_secs_f64(), sink.len())
}

fn bench(c: &mut Criterion) {
    report_header(
        "E6 backlog recovery: Flink-like vs Storm-like",
        "Flink ~20 minutes, Storm several hours (>=6x slower) on a \
         multi-million message backlog",
    );
    let backlog = 5_000_000;
    let capacity = 5_000;
    let input = 1_000;
    let horizon = 200_000_000;
    let flink = simulate_recovery(
        EngineModel::FlinkLike {
            buffer_capacity: 10_000,
        },
        backlog,
        capacity,
        input,
        horizon,
    );
    let storm = simulate_recovery(
        EngineModel::StormLike {
            ack_timeout_ms: 60_000,
            emit_multiplier: 1.2,
        },
        backlog,
        capacity,
        input,
        horizon,
    );
    report(
        "Flink-like (credit-based backpressure)",
        format!(
            "{:.1} minutes, {} wasted replays",
            flink.recovery_ms as f64 / 60_000.0,
            flink.wasted_replays
        ),
    );
    report(
        "Storm-like (ack timeout, no flow control)",
        format!(
            "{:.1} minutes, {} wasted replays{}",
            storm.recovery_ms as f64 / 60_000.0,
            storm.wasted_replays,
            if storm.timed_out {
                " (hit simulation horizon)"
            } else {
                ""
            }
        ),
    );
    report(
        "recovery ratio storm/flink",
        format!(
            "{:.1}x",
            storm.recovery_ms as f64 / flink.recovery_ms as f64
        ),
    );
    // shape check from the paper: ~20 min for Flink, hours for Storm
    assert!((15.0..30.0).contains(&(flink.recovery_ms as f64 / 60_000.0)));
    assert!(storm.recovery_ms as f64 / flink.recovery_ms as f64 >= 5.0);

    // The real staged runtime draining a backlog under its three channel
    // protocols: per-record reference, micro-batched, and micro-batched
    // with the stateless operators chained into one stage.
    let n = 80_000;
    let (per_record, out_a) = drain_backlog(n, &StagedConfig::reference(64));
    let (batched, out_b) = drain_backlog(
        n,
        &StagedConfig {
            fuse_operators: false,
            ..StagedConfig::batched(64, 64)
        },
    );
    let (fused, out_c) = drain_backlog(n, &StagedConfig::batched(64, 64));
    assert_eq!(out_a, out_b);
    assert_eq!(out_a, out_c);
    report("staged drain per-record", format!("{per_record:.0} rec/s"));
    report("staged drain batch=64", format!("{batched:.0} rec/s"));
    report(
        "staged drain batch=64 + chained",
        format!("{fused:.0} rec/s"),
    );

    let mut g = c.benchmark_group("e06");
    g.bench_function("simulate_flink_recovery", |b| {
        b.iter(|| {
            simulate_recovery(
                EngineModel::FlinkLike {
                    buffer_capacity: 10_000,
                },
                500_000,
                5_000,
                1_000,
                10_000_000,
            )
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = quick_criterion();
    targets = bench
}
criterion_main!(benches);
