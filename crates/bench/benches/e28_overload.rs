//! E28 (§4.1, §8): offered-load sweep with and without admission
//! control. The paper's tiers survive multiples of sustained capacity
//! because every layer sheds rather than queues: "the Kafka clusters ...
//! enforce quotas" and the query layer degrades instead of dying. Here a
//! discrete-time drive at 1×/2×/5×/10× offered load compares the real
//! [`AdmissionController`] (tenant quota sized to capacity, lag-fed
//! watermarks) against an unprotected unbounded queue whose service time
//! degrades as the backlog grows — the classic congestion-collapse shape.
//!
//! Acceptance (asserted in-bench): the protected pipeline sustains ≥90%
//! of its saturation goodput at 5× offered load; the unprotected
//! baseline's p99 grows super-linearly and its goodput collapses. Exact
//! accounting holds at every point: offered = processed + shed + queued.

use criterion::{criterion_group, criterion_main, Criterion};
use rtdi_bench::{quick_criterion, report, report_header};
use rtdi_common::{AdmissionConfig, AdmissionController, Priority, Quota, SimClock};
use std::collections::VecDeque;
use std::sync::Arc;

/// Sustained service capacity, records/second.
const CAPACITY_PER_SEC: u64 = 5_000;
/// A record delivered within this budget counts toward goodput.
const SLA_MS: i64 = 500;
/// Drive duration per sweep point.
const DURATION_MS: i64 = 10_000;

struct SweepPoint {
    offered: u64,
    processed: u64,
    shed: u64,
    queued_at_end: u64,
    goodput_per_sec: f64,
    p99_ms: i64,
}

/// Backlog the service tolerates at full speed; beyond it the effective
/// drain rate degrades as capacity / (1 + excess/5000) — paging/GC
/// pressure once the queue no longer fits the fast path.
const FREE_QUEUE: f64 = 2_000.0;

/// Drive `mult`× offered load for 10 simulated seconds. The service
/// drains `CAPACITY_PER_SEC` until the backlog exceeds `FREE_QUEUE`,
/// then degrades. Admission (when present) gates arrivals with a
/// capacity-sized tenant quota and sees the live queue depth.
fn drive(mult: u64, protected: bool) -> SweepPoint {
    let clock = Arc::new(SimClock::new(0));
    let admission = protected.then(|| {
        AdmissionController::new(
            clock.clone(),
            AdmissionConfig {
                max_in_flight: 0, // sim has no concurrent dispatch
                queue_high_watermark: 2_000,
                queue_low_watermark: 500,
                default_tenant_quota: Some(
                    Quota::per_sec(CAPACITY_PER_SEC).with_burst(CAPACITY_PER_SEC / 1_000),
                ),
            },
        )
    });

    let arrivals_per_ms = (mult * CAPACITY_PER_SEC) as f64 / 1_000.0;
    let capacity_per_ms = CAPACITY_PER_SEC as f64 / 1_000.0;
    let mut queue: VecDeque<i64> = VecDeque::new();
    let mut latencies: Vec<i64> = Vec::new();
    let (mut offered, mut shed) = (0u64, 0u64);
    let (mut arrival_credit, mut drain_credit) = (0.0f64, 0.0f64);

    for now in 0..DURATION_MS {
        clock.advance(1);
        arrival_credit += arrivals_per_ms;
        while arrival_credit >= 1.0 {
            arrival_credit -= 1.0;
            offered += 1;
            let admitted = match &admission {
                Some(ac) => {
                    ac.set_queue_depth(queue.len() as u64);
                    ac.admit("city-ops", Priority::Interactive).is_ok()
                }
                None => true,
            };
            if admitted {
                queue.push_back(now);
            } else {
                shed += 1;
            }
        }
        let excess = (queue.len() as f64 - FREE_QUEUE).max(0.0);
        drain_credit += capacity_per_ms / (1.0 + excess / 5_000.0);
        while drain_credit >= 1.0 {
            drain_credit -= 1.0;
            match queue.pop_front() {
                Some(arrived) => latencies.push(now - arrived),
                None => break,
            }
        }
    }

    if let Some(ac) = &admission {
        let s = ac.stats();
        assert_eq!(s.offered, offered, "admission saw every arrival");
        assert_eq!(s.shed_total(), shed, "admission ledger balances");
    }
    let processed = latencies.len() as u64;
    assert_eq!(
        offered,
        processed + shed + queue.len() as u64,
        "exact accounting: offered = processed + shed + queued"
    );
    latencies.sort_unstable();
    let p99_ms = if latencies.is_empty() {
        0
    } else {
        latencies[(latencies.len() - 1) * 99 / 100]
    };
    let good = latencies.iter().filter(|&&l| l <= SLA_MS).count();
    SweepPoint {
        offered,
        processed,
        shed,
        queued_at_end: queue.len() as u64,
        goodput_per_sec: good as f64 / (DURATION_MS as f64 / 1_000.0),
        p99_ms,
    }
}

fn bench(c: &mut Criterion) {
    report_header(
        "E28 offered-load sweep: admission control vs unprotected queue",
        "quota-protected tiers hold goodput flat under burst; an \
         unbounded queue collapses super-linearly",
    );
    report(
        "workload",
        format!(
            "{CAPACITY_PER_SEC} rec/s capacity, {SLA_MS}ms SLA, {}s per point",
            DURATION_MS / 1_000
        ),
    );

    let mut protected_at = std::collections::BTreeMap::new();
    let mut unprotected_at = std::collections::BTreeMap::new();
    for mult in [1u64, 2, 5, 10] {
        for protected in [false, true] {
            let p = drive(mult, protected);
            let label = if protected {
                "protected"
            } else {
                "unprotected"
            };
            report(
                &format!("{label} {mult}x"),
                format!(
                    "offered={} goodput={:.0}/s p99={}ms shed={} queued_at_end={}",
                    p.offered, p.goodput_per_sec, p.p99_ms, p.shed, p.queued_at_end
                ),
            );
            if protected {
                protected_at.insert(mult, p);
            } else {
                unprotected_at.insert(mult, p);
            }
        }
    }

    // acceptance: >=90% of saturation goodput at 5x offered load
    let saturation = protected_at[&1].goodput_per_sec;
    let at_5x = protected_at[&5].goodput_per_sec;
    report(
        "protected goodput retention at 5x",
        format!("{:.1}% of saturation", 100.0 * at_5x / saturation),
    );
    assert!(
        at_5x >= 0.9 * saturation,
        "admission control must hold >=90% of saturation goodput at 5x \
         ({at_5x:.0}/s vs {saturation:.0}/s)"
    );
    assert!(
        protected_at[&10].goodput_per_sec >= 0.9 * saturation,
        "and at 10x"
    );
    // the unprotected baseline collapses: p99 explodes super-linearly
    // (>10x for a 5x load increase) and goodput craters
    let base_p99 = unprotected_at[&1].p99_ms.max(1);
    assert!(
        unprotected_at[&5].p99_ms > 10 * base_p99,
        "unprotected p99 must degrade super-linearly: {} vs {}",
        unprotected_at[&5].p99_ms,
        base_p99
    );
    assert!(
        unprotected_at[&5].goodput_per_sec < 0.5 * unprotected_at[&1].goodput_per_sec,
        "unprotected goodput must collapse under 5x"
    );
    // protection sheds loudly, never silently: everything is accounted
    assert!(protected_at[&5].shed > 0);
    assert_eq!(unprotected_at[&5].shed, 0, "baseline sheds nothing");
    report(
        "unprotected p99 1x -> 5x",
        format!("{}ms -> {}ms", base_p99, unprotected_at[&5].p99_ms),
    );

    // the admission gate itself is cheap enough for a per-record hot path
    let clock = Arc::new(SimClock::new(0));
    let gate = AdmissionController::new(
        clock.clone(),
        AdmissionConfig {
            max_in_flight: 0,
            default_tenant_quota: None,
            ..Default::default()
        },
    );
    let mut g = c.benchmark_group("e28");
    g.bench_function("admit_permit_drop", |b| {
        b.iter(|| {
            clock.advance(1);
            gate.admit("city-ops", Priority::Interactive).is_ok()
        })
    });
    g.bench_function("protected_drive_1s_at_5x", |b| {
        b.iter(|| drive(5, true).processed)
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = quick_criterion();
    targets = bench
}
criterion_main!(benches);
