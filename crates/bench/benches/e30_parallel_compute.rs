//! E30 (§4.2): data-parallel keyed compute — sharded stateful operators
//! with salted hot-key pre-aggregation. Flink scales a keyed aggregation
//! by hashing keys into key groups and sharding the operator; a hot key
//! pins its whole stream to one subtask unless it is salted across
//! shards and re-combined. This bench (a) decomposes the sharded plan's
//! critical path (route / shard fold / merge) with real timers on the
//! real operator code and projects multi-core throughput — the container
//! has ONE core, so wall-clock parallel speedup is physically impossible
//! here and the projection (records / max stage busy time) is the honest
//! stand-in; and (b) replays a Zipf s=1.5 hot-key storm through the real
//! threaded runtime, unsalted vs salted, comparing shard imbalance and
//! projected p99 window freshness.

use criterion::{criterion_group, criterion_main, Criterion};
use rtdi_bench::{quick_criterion, report, report_header, time_it};
use rtdi_common::{AggFn, CountMinSketch, Record, Value};
use rtdi_compute::operator::{key_string, Operator, WindowAggregateOp};
use rtdi_compute::runtime::{run_staged_with, Job, StagedConfig};
use rtdi_compute::sink::CollectSink;
use rtdi_compute::source::VecSource;
use rtdi_compute::window::WindowAssigner;
use rtdi_storage::keyed::{key_group_of, shard_of_group};
use rtdi_usecases::CityDriverGenerator;
use std::sync::Arc;
use std::time::Duration;

/// Storm-phase window; also the epoch the freshness model is scored on.
const WINDOW_MS: i64 = 1_000;
/// Sweep-phase window: wider, so the output volume (and hence the merge
/// stage) stays in realistic proportion to the input volume.
const SWEEP_WINDOW_MS: i64 = 2_000;
const HOT_THRESHOLD: u64 = 64;

fn agg_op(window_ms: i64, parallelism: usize, salted: bool) -> WindowAggregateOp {
    let op = WindowAggregateOp::new(
        "agg",
        vec!["city".into()],
        WindowAssigner::tumbling(window_ms),
        vec![
            ("trips".into(), AggFn::Count),
            ("revenue".into(), AggFn::Sum("fare".into())),
            ("min_fare".into(), AggFn::Min("fare".into())),
            ("max_fare".into(), AggFn::Max("fare".into())),
        ],
        0,
    )
    .with_parallelism(parallelism);
    if salted {
        op.with_hot_key_salting(HOT_THRESHOLD)
    } else {
        op
    }
}

fn job(
    name: &str,
    window_ms: i64,
    rows: Vec<Record>,
    sink: CollectSink,
    parallelism: usize,
    salted: bool,
) -> Job {
    Job::new(
        name,
        Box::new(VecSource::new(rows)),
        vec![Box::new(agg_op(window_ms, parallelism, salted))],
        Box::new(sink),
    )
}

/// Drive an operator instance over its share of the stream the way a
/// shard thread does: batched process_batch calls with a watermark per
/// batch, then the terminal flush. Returns (busy time, emissions).
fn fold_time(op: &mut Box<dyn Operator>, share: &[Arc<Record>]) -> (Duration, Vec<Record>) {
    let mut out = Vec::new();
    let (res, t) = time_it(|| {
        for chunk in share.chunks(256) {
            let mut batch: Vec<Record> = chunk.iter().map(|r| (**r).clone()).collect();
            let wm = batch.last().map(|r| r.timestamp).unwrap_or(0);
            op.process_batch(&mut batch, &mut out)?;
            op.on_watermark(wm, &mut out);
        }
        op.on_watermark(i64::MAX, &mut out);
        Ok::<(), rtdi_common::Error>(())
    });
    res.unwrap();
    (t, out)
}

struct Projection {
    parallelism: usize,
    route_s: f64,
    max_shard_s: f64,
    merge_s: f64,
    projected_rec_s: f64,
}

/// Critical-path decomposition: time each pipeline-stage's busy work
/// sequentially on the real operator code, then project throughput as
/// n / max(stage busy time) — what p cores would sustain with the
/// stages overlapped.
fn project(rows: &[Arc<Record>], parallelism: usize) -> Projection {
    let n = rows.len();
    let key_cols = vec!["city".to_string()];

    // stage 1: the router — hash every key to its key-group home shard
    let mut buckets: Vec<Vec<Arc<Record>>> = vec![Vec::new(); parallelism];
    let (_, route_t) = time_it(|| {
        for r in rows {
            let h = Value::hash_of_str(&key_string(&r.value, &key_cols));
            let s = shard_of_group(key_group_of(h), parallelism);
            buckets[s].push(Arc::clone(r));
        }
    });

    // stage 2: each shard folds its share; the slowest shard gates the epoch
    let template = agg_op(SWEEP_WINDOW_MS, parallelism, false);
    let mut max_shard = Duration::ZERO;
    let mut merged: Vec<Vec<Record>> = Vec::new();
    for (i, bucket) in buckets.iter().enumerate() {
        let mut shard = if parallelism > 1 {
            template.make_shard(i, parallelism).unwrap()
        } else {
            Box::new(agg_op(SWEEP_WINDOW_MS, 1, false)) as Box<dyn Operator>
        };
        let (t, out) = fold_time(&mut shard, bucket);
        max_shard = max_shard.max(t);
        merged.push(out);
    }

    // stage 3: the deterministic merge — stable sort flushed windows into
    // serial emission order
    let (_, merge_t) = time_it(|| {
        let mut all: Vec<Record> = merged.into_iter().flatten().collect();
        all.sort_by_cached_key(|r| {
            (
                key_string(&r.value, &key_cols),
                r.value.get_int("window_start").unwrap_or(r.timestamp),
                r.value.get_int("window_end").unwrap_or(0),
            )
        });
        all.len()
    });

    let critical = route_t.max(max_shard).max(merge_t);
    Projection {
        parallelism,
        route_s: route_t.as_secs_f64(),
        max_shard_s: max_shard.as_secs_f64(),
        merge_s: merge_t.as_secs_f64(),
        projected_rec_s: n as f64 / critical.as_secs_f64(),
    }
}

fn best_projection(rows: &[Arc<Record>], parallelism: usize) -> Projection {
    let mut best = project(rows, parallelism);
    for _ in 0..2 {
        let p = project(rows, parallelism);
        if p.projected_rec_s > best.projected_rec_s {
            best = p;
        }
    }
    best
}

/// Replay the router's shard assignment offline (same hash, same CMS,
/// same round-robin salt) and return per-window-epoch per-shard record
/// counts — the input to the projected-freshness model.
fn epoch_shard_counts(rows: &[Record], parallelism: usize, salted: bool) -> Vec<Vec<u64>> {
    let key_cols = vec!["city".to_string()];
    let mut sketch = CountMinSketch::new(4, 1024);
    let mut epochs: Vec<Vec<u64>> = Vec::new();
    for (seq, r) in rows.iter().enumerate() {
        let h = Value::hash_of_str(&key_string(&r.value, &key_cols));
        let s = if salted && sketch.observe(h) >= HOT_THRESHOLD {
            seq % parallelism
        } else {
            shard_of_group(key_group_of(h), parallelism)
        };
        let epoch = (r.timestamp / WINDOW_MS) as usize;
        if epochs.len() <= epoch {
            epochs.resize(epoch + 1, vec![0u64; parallelism]);
        }
        epochs[epoch][s] += 1;
    }
    epochs
}

/// p99 of the per-epoch critical-shard busy time: the slowest shard
/// gates when a window's results can merge, i.e. the window's freshness.
fn projected_p99_freshness_ms(epochs: &[Vec<u64>], per_rec_us: f64) -> f64 {
    let mut lags: Vec<f64> = epochs
        .iter()
        .map(|shards| *shards.iter().max().unwrap() as f64 * per_rec_us / 1_000.0)
        .collect();
    lags.sort_by(|a, b| a.partial_cmp(b).unwrap());
    lags[(lags.len() * 99 / 100).min(lags.len() - 1)]
}

fn bench(c: &mut Criterion) {
    report_header(
        "E30 data-parallel keyed compute",
        "sharded keyed window aggregation projects >=2.5x records/s at \
         parallelism=4 (critical-path decomposition; 1-core host) and \
         salted pre-aggregation cuts hot-key shard imbalance and p99 \
         window freshness under a Zipf s=1.5 storm",
    );

    // ---- phase 1: parallelism sweep, mild skew ----------------------
    // 512 cities at s=0.5 spread well across the 128 key groups, so the
    // sweep isolates the sharding protocol's scaling rather than skew
    // (skew is phase 2's subject)
    let n = 200_000;
    let rows: Vec<Record> = CityDriverGenerator::new(0xE30, 512, 4_000, 0.5).trips(n, 1);
    let shared: Vec<Arc<Record>> = rows.iter().cloned().map(Arc::new).collect();

    // real threaded runs first: correctness + honest 1-core wall numbers
    let serial_sink = CollectSink::new();
    let (_, serial_wall) = time_it(|| {
        run_staged_with(
            job(
                "e30-serial",
                SWEEP_WINDOW_MS,
                rows.clone(),
                serial_sink.clone(),
                1,
                false,
            ),
            &StagedConfig::batched(64, 256),
        )
        .unwrap()
    });
    for p in [2usize, 4, 8] {
        let sink = CollectSink::new();
        let (stats, wall) = time_it(|| {
            run_staged_with(
                job(
                    "e30-par",
                    SWEEP_WINDOW_MS,
                    rows.clone(),
                    sink.clone(),
                    p,
                    false,
                ),
                &StagedConfig::batched(64, 256),
            )
            .unwrap()
        });
        assert_eq!(
            sink.records(),
            serial_sink.records(),
            "parallel output diverged at p={p}"
        );
        let stage = stats
            .stages
            .iter()
            .find(|s| s.stage.starts_with("agg[x"))
            .unwrap();
        assert_eq!(stage.shards.len(), p);
        report(
            &format!("threaded wall p={p} (1 core)"),
            format!(
                "{:>9.0} rec/s (serial {:.0})",
                n as f64 / wall.as_secs_f64(),
                n as f64 / serial_wall.as_secs_f64()
            ),
        );
    }

    // critical-path projection: what the sharded plan sustains when each
    // stage has its own core
    let base = best_projection(&shared, 1);
    let serial_rec_s = n as f64 / base.max_shard_s;
    report(
        "projection p=1",
        format!("{serial_rec_s:>9.0} rec/s (fold-bound)"),
    );
    let mut speedup_at_4 = 0.0;
    for p in [2usize, 4, 8] {
        let proj = best_projection(&shared, p);
        let speedup = proj.projected_rec_s / serial_rec_s;
        if p == 4 {
            speedup_at_4 = speedup;
        }
        report(
            &format!("projection p={p}"),
            format!(
                "{:>9.0} rec/s ({speedup:.2}x) route={:.1}ms shard_max={:.1}ms merge={:.1}ms",
                proj.projected_rec_s,
                proj.route_s * 1e3,
                proj.max_shard_s * 1e3,
                proj.merge_s * 1e3
            ),
        );
        assert_eq!(proj.parallelism, p);
    }
    assert!(
        speedup_at_4 >= 2.5,
        "projected speedup at parallelism=4 is {speedup_at_4:.2}x, need >=2.5x"
    );

    // ---- phase 2: Zipf s=1.5 hot-key storm, salted vs unsalted ------
    let storm_n = 120_000;
    let storm: Vec<Record> = CityDriverGenerator::new(0x5707, 24, 4_000, 1.5).trips(storm_n, 7);
    let storm_serial = CollectSink::new();
    run_staged_with(
        job(
            "e30-storm-ser",
            WINDOW_MS,
            storm.clone(),
            storm_serial.clone(),
            1,
            false,
        ),
        &StagedConfig::batched(64, 256),
    )
    .unwrap();

    let imbalance = |salted: bool| {
        let sink = CollectSink::new();
        let stats = run_staged_with(
            job(
                "e30-storm",
                WINDOW_MS,
                storm.clone(),
                sink.clone(),
                4,
                salted,
            ),
            &StagedConfig::batched(64, 256),
        )
        .unwrap();
        assert_eq!(
            sink.records(),
            storm_serial.records(),
            "storm output diverged (salted={salted})"
        );
        let stage = stats
            .stages
            .iter()
            .find(|s| s.stage.starts_with("agg[x4]"))
            .unwrap();
        let max = stage.shards.iter().map(|s| s.records_in).max().unwrap() as f64;
        let mean = storm_n as f64 / 4.0;
        max / mean
    };
    let (unsalted_imb, salted_imb) = (imbalance(false), imbalance(true));
    report(
        "hot-key shard imbalance (max/mean, p=4)",
        format!("unsalted {unsalted_imb:.2}x -> salted {salted_imb:.2}x"),
    );
    assert!(
        salted_imb < unsalted_imb,
        "salting must spread the hot key: {salted_imb:.2} !< {unsalted_imb:.2}"
    );

    // projected p99 freshness: per-record fold cost from phase 1, epoch
    // critical-shard counts from the replayed router
    let per_rec_us = base.max_shard_s * 1e6 / n as f64;
    let p99_unsalted =
        projected_p99_freshness_ms(&epoch_shard_counts(&storm, 4, false), per_rec_us);
    let p99_salted = projected_p99_freshness_ms(&epoch_shard_counts(&storm, 4, true), per_rec_us);
    report(
        "projected p99 window freshness (p=4)",
        format!("unsalted {p99_unsalted:.2}ms -> salted {p99_salted:.2}ms"),
    );
    assert!(
        p99_salted < p99_unsalted,
        "salting must improve projected p99 freshness: {p99_salted:.2} !< {p99_unsalted:.2}"
    );

    let mut g = c.benchmark_group("e30");
    let small: Vec<Arc<Record>> = shared.iter().take(30_000).cloned().collect();
    g.bench_function("projection_p4", |b| {
        b.iter(|| project(&small, 4).projected_rec_s)
    });
    g.bench_function("projection_p1", |b| {
        b.iter(|| project(&small, 1).projected_rec_s)
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = quick_criterion();
    targets = bench
}
criterion_main!(benches);
