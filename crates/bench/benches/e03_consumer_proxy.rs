//! E3 (§4.1.3, Figure 4): the consumer proxy's push dispatch "can greatly
//! improve the consumption throughput by enabling higher parallelism for
//! slow consumers with negligible latency overhead", beating the consumer
//! library's partition-bounded polling; poison messages divert to the DLQ
//! without impeding live traffic (§4.1.2).

use criterion::{criterion_group, criterion_main, Criterion};
use rtdi_bench::{quick_criterion, report, report_header, time_it};
use rtdi_common::{Record, Row};
use rtdi_stream::consumer::{ConsumerGroup, TopicSubscription};
use rtdi_stream::dlq::DeadLetterQueue;
use rtdi_stream::proxy::{ConsumerProxy, ConsumerService, DispatchMode, ProxyConfig};
use rtdi_stream::topic::{Topic, TopicConfig};
use std::sync::Arc;
use std::time::Duration;

fn topic_with(partitions: usize, records: usize) -> Arc<Topic> {
    let t = Arc::new(Topic::new("t", TopicConfig::default().with_partitions(partitions)).unwrap());
    for i in 0..records {
        t.append(
            Record::new(Row::new().with("i", i as i64), i as i64).with_key(format!("k{i}")),
            0,
        )
        .unwrap();
    }
    t
}

fn run(
    mode: DispatchMode,
    partitions: usize,
    records: usize,
    service: Arc<dyn ConsumerService>,
) -> Duration {
    let topic = topic_with(partitions, records);
    let group = ConsumerGroup::new("g", TopicSubscription::new(topic));
    let proxy = ConsumerProxy::new(
        ProxyConfig {
            mode,
            max_attempts: 3,
            poll_batch: 256,
            ..Default::default()
        },
        service,
        Arc::new(DeadLetterQueue::new("t").unwrap()),
    );
    let (_, elapsed) = time_it(|| proxy.run_until_caught_up(&group).unwrap());
    elapsed
}

fn bench(c: &mut Criterion) {
    report_header(
        "E3 consumer proxy: push vs poll",
        "push dispatch beats partition-bounded polling for slow consumers; \
         parallelism no longer capped by partition count",
    );
    // slow downstream service: 500us per message, 4 partitions, 2000 msgs
    let slow: Arc<dyn ConsumerService> = Arc::new(|_: &Record| {
        std::thread::sleep(Duration::from_micros(500));
        Ok(())
    });
    let records = 2_000;
    let partitions = 4;
    let poll = run(DispatchMode::Poll, partitions, records, slow.clone());
    report(
        "poll mode (parallelism <= partitions)",
        format!("{:.0} msg/s", records as f64 / poll.as_secs_f64()),
    );
    for workers in [4usize, 16, 64] {
        let push = run(
            DispatchMode::Push(workers),
            partitions,
            records,
            slow.clone(),
        );
        report(
            format!("push mode, {workers} workers").as_str(),
            format!(
                "{:.0} msg/s ({:.1}x vs poll)",
                records as f64 / push.as_secs_f64(),
                poll.as_secs_f64() / push.as_secs_f64()
            ),
        );
    }
    // latency overhead for FAST consumers (the "negligible overhead" claim)
    let fast: Arc<dyn ConsumerService> = Arc::new(|_: &Record| Ok(()));
    let poll_fast = run(DispatchMode::Poll, partitions, 50_000, fast.clone());
    let push_fast = run(DispatchMode::Push(16), partitions, 50_000, fast.clone());
    report(
        "fast-consumer overhead (push/poll wall time)",
        format!("{:.2}x", push_fast.as_secs_f64() / poll_fast.as_secs_f64()),
    );

    // criterion anchors
    let mut g = c.benchmark_group("e03");
    g.bench_function("poll_200_slow_msgs", |b| {
        b.iter(|| run(DispatchMode::Poll, 4, 200, slow.clone()))
    });
    g.bench_function("push16_200_slow_msgs", |b| {
        b.iter(|| run(DispatchMode::Push(16), 4, 200, slow.clone()))
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = quick_criterion();
    targets = bench
}
criterion_main!(benches);
