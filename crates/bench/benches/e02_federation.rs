//! E2 (§4.1.1): cluster federation. "The ideal cluster size is less than
//! 150 nodes for optimum performance. With federation, the Kafka service
//! can scale horizontally by adding more clusters when a cluster is full."
//!
//! Compares the per-operation coordination cost of one giant 600-node
//! cluster against 4 federated 150-node clusters, measures the logical
//! routing overhead federation adds, and times live topic migration.

use criterion::{criterion_group, criterion_main, Criterion};
use rtdi_bench::{quick_criterion, report, report_header, time_it};
use rtdi_common::{Record, Row};
use rtdi_stream::cluster::{Cluster, ClusterConfig};
use rtdi_stream::federation::FederatedCluster;
use rtdi_stream::producer::StreamEndpoint;
use rtdi_stream::topic::TopicConfig;

fn record(i: usize) -> Record {
    Record::new(Row::new().with("i", i as i64), i as i64).with_key(format!("k{i}"))
}

fn bench(c: &mut Criterion) {
    report_header(
        "E2 cluster federation",
        "one >150-node cluster degrades super-linearly; federating into \
         <=150-node clusters keeps per-op cost flat and scales by adding \
         clusters; topics migrate without consumer restarts",
    );
    // coordination-cost model: giant vs federated
    let giant = Cluster::new(
        "giant",
        ClusterConfig {
            nodes: 600,
            ..Default::default()
        },
    );
    let ideal = Cluster::new(
        "ideal",
        ClusterConfig {
            nodes: 150,
            ..Default::default()
        },
    );
    report(
        "coordination cost 600-node monolith",
        format!("{:.2} units/op", giant.coordination_cost()),
    );
    report(
        "coordination cost 4x150 federated",
        format!("{:.2} units/op", ideal.coordination_cost()),
    );
    report(
        "monolith/federated cost ratio",
        format!(
            "{:.1}x",
            giant.coordination_cost() / ideal.coordination_cost()
        ),
    );

    // capacity spill: topics placed across clusters as they fill
    let fed = FederatedCluster::new();
    for i in 0..4 {
        fed.add_cluster(Cluster::new(
            format!("c{i}"),
            ClusterConfig {
                nodes: 150,
                partitions_per_node: 2, // 300 replica slots per cluster
                ..Default::default()
            },
        ));
    }
    let mut created = 0;
    while fed
        .create_topic(
            &format!("topic-{created}"),
            TopicConfig::default().with_partitions(16),
        )
        .is_ok()
    {
        created += 1;
    }
    let spread: Vec<usize> = fed
        .cluster_names()
        .iter()
        .map(|n| fed.cluster(n).unwrap().topic_names().len())
        .collect();
    report(
        "topics placed before total exhaustion",
        format!("{created} (per cluster: {spread:?})"),
    );

    // migration without restart
    let fed = FederatedCluster::new();
    fed.add_cluster(Cluster::new("a", ClusterConfig::default()));
    fed.add_cluster(Cluster::new("b", ClusterConfig::default()));
    fed.create_topic("hot", TopicConfig::default().with_partitions(8))
        .unwrap();
    for i in 0..100_000 {
        fed.send("hot", record(i), 0).unwrap();
    }
    let (_, mig) = time_it(|| fed.migrate_topic("hot", "b").unwrap());
    report(
        "live migration of 100k-record topic",
        format!(
            "{:.1} ms (consumers redirected, zero restarts)",
            mig.as_secs_f64() * 1e3
        ),
    );

    // routing overhead: produce via federation vs direct cluster handle
    let direct = Cluster::new("d", ClusterConfig::default());
    direct
        .create_topic("t", TopicConfig::default().with_partitions(8))
        .unwrap();
    let fed2 = FederatedCluster::new();
    fed2.add_cluster(Cluster::new("x", ClusterConfig::default()));
    fed2.create_topic("t", TopicConfig::default().with_partitions(8))
        .unwrap();

    let mut g = c.benchmark_group("e02");
    g.bench_function("produce_direct", |b| {
        let mut i = 0;
        b.iter(|| {
            direct.produce("t", record(i), 0).unwrap();
            i += 1;
        })
    });
    g.bench_function("produce_federated_routing", |b| {
        let mut i = 0;
        b.iter(|| {
            fed2.send("t", record(i), 0).unwrap();
            i += 1;
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = quick_criterion();
    targets = bench
}
criterion_main!(benches);
