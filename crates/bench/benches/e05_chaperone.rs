//! E5 (§4.1.4): Chaperone "collects key statistics like the number of
//! unique messages in a tumbling time window from every stage of the
//! replication pipeline ... and generates alerts when mismatch is
//! detected" — at auditing cost low enough to run on every message.

use criterion::{criterion_group, criterion_main, Criterion};
use rtdi_bench::{quick_criterion, report, report_header, time_it};
use rtdi_common::record::headers;
use rtdi_common::{Record, Row};
use rtdi_stream::chaperone::{AlertKind, Chaperone};

fn rec(i: usize) -> Record {
    Record::new(Row::new(), (i as i64) * 3).with_header(headers::UNIQUE_ID, format!("m{i}"))
}

fn bench(c: &mut Criterion) {
    report_header(
        "E5 Chaperone end-to-end audit",
        "per-window unique-message accounting across stages detects loss \
         and duplication exactly; overhead is a hash insert per message",
    );
    let ch = Chaperone::new(10_000);
    let n = 200_000usize;
    let (_, observe_elapsed) = time_it(|| {
        for i in 0..n {
            let r = rec(i);
            ch.observe("regional", &r);
            // replicate with injected faults: drop 100, duplicate 50
            if i % 2_000 == 0 {
                continue; // loss
            }
            ch.observe("aggregate", &r);
            if i % 4_000 == 1 {
                ch.observe("aggregate", &r); // duplication
            }
        }
    });
    report(
        "observe throughput (2 stages)",
        format!(
            "{:.0} msgs/s",
            (2 * n) as f64 / observe_elapsed.as_secs_f64()
        ),
    );
    let (alerts, audit_elapsed) = time_it(|| ch.audit("regional", "aggregate"));
    let losses: u64 = alerts
        .iter()
        .filter(|a| a.kind == AlertKind::Loss)
        .map(|a| a.magnitude)
        .sum();
    let dups: u64 = alerts
        .iter()
        .filter(|a| a.kind == AlertKind::Duplication)
        .map(|a| a.magnitude)
        .sum();
    report(
        "detected",
        format!(
            "{losses} lost (injected 100), {dups} duplicated (injected 50), audit in {:.1} ms",
            audit_elapsed.as_secs_f64() * 1e3
        ),
    );
    assert_eq!(losses, 100);
    assert_eq!(dups, 50);

    let mut g = c.benchmark_group("e05");
    g.bench_function("observe_1k_msgs", |b| {
        let ch = Chaperone::new(10_000);
        let mut i = 0usize;
        b.iter(|| {
            for _ in 0..1000 {
                ch.observe("stage", &rec(i));
                i += 1;
            }
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = quick_criterion();
    targets = bench
}
criterion_main!(benches);
