//! E8 (§4.2.1): FlinkSQL "compiles the queries to reliable, efficient,
//! distributed Flink applications" — the generated job matches a
//! hand-built dataflow in both results and throughput, and compilation is
//! cheap enough for interactive provisioning ("a span of mere hours"
//! includes zero compile cost).

use criterion::{criterion_group, criterion_main, Criterion};
use rtdi_bench::{quick_criterion, report, report_header, time_it};
use rtdi_common::{AggFn, Record, Row};
use rtdi_compute::operator::{Operator, WindowAggregateOp};
use rtdi_compute::runtime::{run_staged_with, Executor, ExecutorConfig, Job, StagedConfig};
use rtdi_compute::sink::CollectSink;
use rtdi_compute::source::TopicSource;
use rtdi_compute::window::WindowAssigner;
use rtdi_flinksql::compiler::{compile_streaming, CompileOptions};
use rtdi_stream::topic::{Topic, TopicConfig};
use std::sync::Arc;

const SQL: &str = "SELECT city, TUMBLE(ts, 10000) AS w, COUNT(*) AS trips, \
                   SUM(fare) AS revenue FROM trips GROUP BY city, TUMBLE(ts, 10000)";

fn topic(n: usize) -> Arc<Topic> {
    let t = Arc::new(Topic::new("trips", TopicConfig::default().with_partitions(4)).unwrap());
    for i in 0..n {
        t.append(
            Record::new(
                Row::new()
                    .with("city", ["sf", "la", "nyc"][i % 3])
                    .with("fare", 10.0)
                    .with("ts", (i as i64) * 10),
                (i as i64) * 10,
            )
            .with_key(format!("k{i}")),
            0,
        )
        .unwrap();
    }
    t
}

/// Stateless filter + projection pipeline: the shape the operator-chaining
/// pass collapses into a single `fused[where->project]` stage.
const PROJ_SQL: &str = "SELECT city, fare * 2 AS fare2 FROM trips WHERE ts >= 0";

/// Run the compiled stateless pipeline through the staged runtime under
/// one channel-protocol configuration; returns (records/s, result rows).
fn staged_sql_run(n: usize, chain: bool, cfg: &StagedConfig) -> (f64, Vec<Row>) {
    let opts = CompileOptions {
        chain_operators: chain,
        ..CompileOptions::default()
    };
    let sink = CollectSink::new();
    let job = compile_streaming("proj", PROJ_SQL, topic(n), Box::new(sink.clone()), &opts).unwrap();
    let (stats, elapsed) = time_it(|| run_staged_with(job, cfg).unwrap());
    assert_eq!(stats.records_in, n as u64);
    assert_eq!(stats.stages.len(), if chain { 1 } else { 2 });
    (n as f64 / elapsed.as_secs_f64(), sink.rows())
}

fn hand_built(t: Arc<Topic>, sink: CollectSink) -> Job {
    let ops: Vec<Box<dyn Operator>> = vec![Box::new(WindowAggregateOp::new(
        "agg",
        vec!["city".into()],
        WindowAssigner::tumbling(10_000),
        vec![
            ("trips".into(), AggFn::Count),
            ("revenue".into(), AggFn::Sum("fare".into())),
        ],
        0,
    ))];
    Job::new(
        "hand",
        Box::new(TopicSource::bounded(t).unwrap()),
        ops,
        Box::new(sink),
    )
    .with_out_of_orderness(1_000)
}

fn bench(c: &mut Criterion) {
    report_header(
        "E8 FlinkSQL compilation parity",
        "SQL-compiled job == hand-built dataflow in results; compile cost \
         negligible vs job runtime",
    );
    let n = 100_000;
    let (_, compile_cost) = time_it(|| {
        compile_streaming(
            "x",
            SQL,
            topic(0),
            Box::new(CollectSink::new()),
            &CompileOptions::default(),
        )
        .unwrap()
    });
    report("SQL->job compile time", format!("{:?}", compile_cost));

    let sql_sink = CollectSink::new();
    let mut sql_job = compile_streaming(
        "sql",
        SQL,
        topic(n),
        Box::new(sql_sink.clone()),
        &CompileOptions::default(),
    )
    .unwrap();
    let (_, sql_time) = time_it(|| {
        Executor::new(ExecutorConfig::default())
            .run(&mut sql_job)
            .unwrap()
    });

    let hand_sink = CollectSink::new();
    let mut hand_job = hand_built(topic(n), hand_sink.clone());
    let (_, hand_time) = time_it(|| {
        Executor::new(ExecutorConfig::default())
            .run(&mut hand_job)
            .unwrap()
    });

    let total = |rows: Vec<Row>| -> i64 { rows.iter().map(|r| r.get_int("trips").unwrap()).sum() };
    let (a, b) = (total(sql_sink.rows()), total(hand_sink.rows()));
    assert_eq!(a, n as i64);
    assert_eq!(a, b, "SQL job and hand-built job disagree");
    report(
        "throughput SQL-compiled",
        format!("{:.0} rec/s", n as f64 / sql_time.as_secs_f64()),
    );
    report(
        "throughput hand-built",
        format!("{:.0} rec/s", n as f64 / hand_time.as_secs_f64()),
    );
    report(
        "SQL overhead",
        format!("{:.2}x", sql_time.as_secs_f64() / hand_time.as_secs_f64()),
    );

    // Channel-protocol sweep over the compiled WHERE+projection pipeline:
    // per-record reference vs micro-batched vs micro-batched + chained
    // (the compiler's chain_operators pass fuses where->project into one
    // stage, removing the channel hop entirely).
    let (per_record, rows_ref) = staged_sql_run(n, false, &StagedConfig::reference(64));
    let (batched, rows_batched) = staged_sql_run(
        n,
        false,
        &StagedConfig {
            fuse_operators: false,
            ..StagedConfig::batched(64, 64)
        },
    );
    let (chained, rows_chained) = staged_sql_run(n, true, &StagedConfig::batched(64, 64));
    assert_eq!(rows_ref, rows_batched);
    assert_eq!(rows_ref, rows_chained);
    report(
        "staged per-record (2 stages)",
        format!("{per_record:.0} rec/s"),
    );
    report("staged batch=64 (2 stages)", format!("{batched:.0} rec/s"));
    report(
        "staged batch=64 + chained (1 stage)",
        format!("{chained:.0} rec/s"),
    );

    let mut g = c.benchmark_group("e08");
    g.bench_function("compile_sql_to_job", |b| {
        let t = topic(0);
        b.iter(|| {
            compile_streaming(
                "x",
                SQL,
                t.clone(),
                Box::new(CollectSink::new()),
                &CompileOptions::default(),
            )
            .unwrap()
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = quick_criterion();
    targets = bench
}
criterion_main!(benches);
