//! E13 (§4.3.4): the centralized single-controller segment backup "was a
//! huge scalability bottleneck and caused data freshness violation";
//! Uber's asynchronous peer-to-peer scheme removes the stall and lets
//! replicas serve recovery.

use criterion::{criterion_group, criterion_main, Criterion};
use rtdi_bench::{quick_criterion, report, report_header, time_it};
use rtdi_common::Row;
use rtdi_olap::broker::ServerNode;
use rtdi_olap::segment::{IndexSpec, Segment};
use rtdi_olap::segstore::{SegmentStore, SegmentStoreMode};
use rtdi_storage::object::{FaultyStore, InMemoryStore};
use std::sync::Arc;

fn seg(name: &str, n: usize) -> Arc<Segment> {
    let rows: Vec<Row> = (0..n)
        .map(|i| {
            Row::new()
                .with("city", ["sf", "la"][i % 2])
                .with("v", i as i64)
        })
        .collect();
    let schema = rtdi_common::Schema::of(
        "t",
        &[
            ("city", rtdi_common::FieldType::Str),
            ("v", rtdi_common::FieldType::Int),
        ],
    );
    Arc::new(Segment::build(name, &schema, rows, &IndexSpec::none()).unwrap())
}

fn bench(c: &mut Criterion) {
    report_header(
        "E13 segment backup & recovery: centralized vs peer-to-peer",
        "synchronous single-controller backups stall sealing (freshness \
         violation); async p2p returns immediately and replicas serve \
         recovery even with the archive down",
    );
    // the archive has 3ms upload latency through ONE controller
    let slow_archive = Arc::new(FaultyStore::new(InMemoryStore::new()).with_put_delay(3_000, true));
    let centralized = SegmentStore::new(
        slow_archive.clone(),
        SegmentStoreMode::Centralized,
        IndexSpec::none(),
    );
    let p2p_archive = Arc::new(FaultyStore::new(InMemoryStore::new()).with_put_delay(3_000, true));
    let p2p = SegmentStore::new(p2p_archive, SegmentStoreMode::PeerToPeer, IndexSpec::none());

    // 16 servers seal a segment "simultaneously"
    let segments: Vec<Arc<Segment>> = (0..16).map(|i| seg(&format!("s{i}"), 2_000)).collect();
    let (_, cen_t) = time_it(|| {
        std::thread::scope(|s| {
            for sg in &segments {
                let store = &centralized;
                let sg = sg.clone();
                s.spawn(move || store.backup("t", sg).unwrap());
            }
        });
    });
    let (_, p2p_t) = time_it(|| {
        std::thread::scope(|s| {
            for sg in &segments {
                let store = &p2p;
                let sg = sg.clone();
                s.spawn(move || store.backup("t", sg).unwrap());
            }
        });
    });
    report(
        "16 concurrent segment seals, ingestion stall",
        format!(
            "centralized {:.1} ms (serialized through controller) vs p2p {:.3} ms ({:.0}x less stall)",
            cen_t.as_secs_f64() * 1e3,
            p2p_t.as_secs_f64() * 1e3,
            cen_t.as_secs_f64() / p2p_t.as_secs_f64().max(1e-9)
        ),
    );
    // async uploads complete in the background
    let pending = p2p.pending_count();
    p2p.flush_pending().unwrap();
    report("p2p deferred uploads flushed", format!("{pending}"));

    // recovery: peer fetch vs deep-store rebuild
    let peer = ServerNode::new(0);
    peer.host(segments[0].clone());
    let (_, peer_t) = time_it(|| p2p.recover("t", "s0", std::slice::from_ref(&peer)).unwrap());
    let (_, deep_t) = time_it(|| centralized.recover("t", "s0", &[]).unwrap());
    report(
        "recovery latency",
        format!(
            "from peer replica {:.3} ms vs deep-store fetch+rebuild {:.1} ms",
            peer_t.as_secs_f64() * 1e3,
            deep_t.as_secs_f64() * 1e3
        ),
    );
    // availability: archive down entirely
    slow_archive.set_down(true);
    assert!(centralized
        .recover("t", "s1", std::slice::from_ref(&peer))
        .is_err());
    peer.host(segments[1].clone());
    assert!(p2p.recover("t", "s1", &[peer]).is_ok());
    report(
        "archive outage",
        "centralized: recovery impossible; p2p: served from replica".to_string(),
    );

    let mut g = c.benchmark_group("e13");
    g.bench_function("p2p_backup_enqueue", |b| {
        let s = seg("bench", 2_000);
        b.iter(|| p2p.backup("t", s.clone()).unwrap())
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = quick_criterion();
    targets = bench
}
criterion_main!(benches);
