//! E14 (§4.5): "predicate pushdowns and aggregation function pushdowns
//! enable us to achieve sub-second query latencies for such PrestoSQL
//! queries — which is not possible to do on standard backends such as
//! HDFS/Hive."

use criterion::{criterion_group, criterion_main, Criterion};
use rtdi_bench::{quick_criterion, report, report_header, time_it};
use rtdi_olap::baselines::{comparison_rows, comparison_schema};
use rtdi_olap::segment::IndexSpec;
use rtdi_olap::table::{OlapTable, TableConfig};
use rtdi_sql::connector::PinotConnector;
use rtdi_sql::engine::{EngineConfig, SqlEngine};
use std::sync::Arc;

const QUERIES: &[&str] = &[
    "SELECT city, COUNT(*) AS n, SUM(total) AS rev FROM orders GROUP BY city",
    "SELECT restaurant, COUNT(*) AS n FROM orders WHERE city = 'sf' \
     GROUP BY restaurant ORDER BY n DESC LIMIT 10",
    "SELECT COUNT(*) AS n FROM orders WHERE total > 55 AND city = 'la'",
    "SELECT restaurant, total FROM orders WHERE city = 'nyc' ORDER BY total DESC LIMIT 5",
];

fn engine(pushdown: bool, table: Arc<OlapTable>) -> SqlEngine {
    let pinot = PinotConnector::new();
    pinot.register(table);
    let mut e = SqlEngine::new(EngineConfig {
        default_catalog: "pinot".into(),
        enable_pushdown: pushdown,
    });
    e.register_connector("pinot", Arc::new(pinot));
    e
}

fn bench(c: &mut Criterion) {
    report_header(
        "E14 connector pushdown ablation",
        "predicate/aggregation/limit pushdown turns federated SQL into \
         sub-second index lookups; without it every query ships the table",
    );
    let n = 400_000usize;
    let table = OlapTable::new(
        TableConfig::new("orders", comparison_schema())
            .with_index_spec(
                IndexSpec::none()
                    .with_inverted(&["city", "restaurant"])
                    .with_range(&["total"]),
            )
            .with_time_column("ts")
            .with_partitions(2)
            .with_segment_rows(100_000),
    )
    .unwrap();
    for (i, row) in comparison_rows(n).into_iter().enumerate() {
        table.ingest(i % 2, row).unwrap();
    }
    let with_pd = engine(true, table.clone());
    let without_pd = engine(false, table);

    let run_suite = |e: &SqlEngine| {
        let mut shipped = 0;
        let (_, t) = time_it(|| {
            for q in QUERIES {
                let out = e.query(q).unwrap();
                shipped += out.stats.rows_shipped;
            }
        });
        (t, shipped)
    };
    let (t_on, ship_on) = run_suite(&with_pd);
    let (t_off, ship_off) = run_suite(&without_pd);
    let total_shipped = (ship_on, ship_off);
    report(
        "suite latency",
        format!(
            "pushdown ON {:.1} ms vs OFF {:.1} ms -> {:.1}x faster",
            t_on.as_secs_f64() * 1e3,
            t_off.as_secs_f64() * 1e3,
            t_off.as_secs_f64() / t_on.as_secs_f64()
        ),
    );
    report(
        "rows shipped connector->engine",
        format!(
            "ON {} vs OFF {} ({}x reduction)",
            total_shipped.0,
            total_shipped.1,
            total_shipped.1 / total_shipped.0.max(1)
        ),
    );
    // correctness: identical answers either way
    for q in QUERIES {
        assert_eq!(
            with_pd.query(q).unwrap().rows,
            without_pd.query(q).unwrap().rows,
            "pushdown changed results for {q}"
        );
    }

    let mut g = c.benchmark_group("e14");
    g.bench_function("pushdown_on_groupby", |b| {
        b.iter(|| with_pd.query(QUERIES[0]).unwrap())
    });
    g.bench_function("pushdown_off_groupby", |b| {
        b.iter(|| without_pd.query(QUERIES[0]).unwrap())
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = quick_criterion();
    targets = bench
}
criterion_main!(benches);
