//! E4 (§4.1.4): uReplicator "has an in-built rebalancing algorithm so that
//! it minimizes the number of the affected topic partitions during
//! rebalancing... when there is bursty traffic it can dynamically
//! redistribute the load to the standby workers."

use criterion::{criterion_group, criterion_main, Criterion};
use rtdi_bench::{quick_criterion, report, report_header, time_it};
use rtdi_common::{Record, Row};
use rtdi_stream::cluster::{Cluster, ClusterConfig};
use rtdi_stream::replicator::{OffsetMappingStore, Replicator, StickyAssigner};
use rtdi_stream::topic::TopicConfig;

fn bench(c: &mut Criterion) {
    report_header(
        "E4 uReplicator rebalancing",
        "sticky rebalancing touches ~1/(n+1) of partitions when adding a \
         worker; naive modulo rehash reshuffles almost everything",
    );
    let partitions = 1_000u32;
    // adding one worker to ten
    let mut sticky = StickyAssigner::new((0..10).map(|i| format!("w{i}")).collect(), vec![]);
    sticky.rebalance(partitions);
    sticky.add_worker("w10");
    let moved_sticky = sticky.rebalance(partitions).len();
    let mut naive = StickyAssigner::new((0..10).map(|i| format!("w{i}")).collect(), vec![]);
    naive.naive_rebalance(partitions);
    naive.add_worker("w10");
    let moved_naive = naive.naive_rebalance(partitions).len();
    report(
        "partitions moved adding worker #11 of 1000 partitions",
        format!(
            "sticky {moved_sticky} vs naive {moved_naive} ({:.0}x fewer)",
            moved_naive as f64 / moved_sticky.max(1) as f64
        ),
    );
    report(
        "post-rebalance skew (sticky)",
        format!("{:.2}", sticky.skew(partitions)),
    );

    // losing a worker
    let mut sticky = StickyAssigner::new((0..10).map(|i| format!("w{i}")).collect(), vec![]);
    sticky.rebalance(partitions);
    sticky.remove_worker("w3");
    let moved = sticky.rebalance(partitions).len();
    report(
        "partitions moved losing 1 of 10 workers",
        format!("sticky {moved} (only the dead worker's share)"),
    );

    // burst absorption via standby promotion
    let mut burst = StickyAssigner::new(
        (0..4).map(|i| format!("w{i}")).collect(),
        (0..4).map(|i| format!("s{i}")).collect(),
    );
    burst.rebalance(partitions);
    let promoted = burst.promote_standby(4);
    let moved = burst.rebalance(partitions).len();
    report(
        "burst: promoted standbys",
        format!(
            "{promoted} promoted, {moved} partitions shifted, skew {:.2}",
            burst.skew(partitions)
        ),
    );

    // replication copy throughput
    let src = Cluster::new("regional", ClusterConfig::default());
    src.create_topic("trips", TopicConfig::default().with_partitions(8))
        .unwrap();
    for i in 0..100_000usize {
        src.produce(
            "trips",
            Record::new(Row::new().with("i", i as i64), i as i64).with_key(format!("k{i}")),
            0,
        )
        .unwrap();
    }
    let dst = Cluster::new("aggregate", ClusterConfig::default());
    let rep = Replicator::new("r", src, dst, "trips", OffsetMappingStore::new(), 1_000);
    rep.prepare().unwrap();
    let (copied, elapsed) = time_it(|| rep.run_once(0).unwrap());
    report(
        "cross-cluster replication throughput",
        format!(
            "{:.0} records/s ({copied} copied)",
            copied as f64 / elapsed.as_secs_f64()
        ),
    );

    let mut g = c.benchmark_group("e04");
    g.bench_function("sticky_rebalance_1k_partitions", |b| {
        b.iter(|| {
            let mut a = StickyAssigner::new((0..10).map(|i| format!("w{i}")).collect(), vec![]);
            a.rebalance(1_000);
            a.add_worker("w10");
            a.rebalance(1_000).len()
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = quick_criterion();
    targets = bench
}
criterion_main!(benches);
