//! E25 (§4.2): micro-batching + operator chaining in the staged dataflow
//! runtime. Flink amortizes per-record overhead by moving serialized
//! buffers between tasks and by chaining adjacent operators into one task
//! so eligible hops cost a function call instead of a network/channel
//! transfer. This bench sweeps the batch size over a 4-stage
//! map/filter/window-aggregate/map job and toggles the chaining pass,
//! reporting records/s and allocations-per-record for each point.

use criterion::{criterion_group, criterion_main, Criterion};
use rtdi_bench::{count_allocations, quick_criterion, report, report_header, time_it};
use rtdi_common::{AggFn, Row, Timestamp};
use rtdi_compute::operator::{FilterOp, MapOp, Operator, WindowAggregateOp};
use rtdi_compute::runtime::{run_staged_with, Job, StagedConfig};
use rtdi_compute::sink::CollectSink;
use rtdi_compute::source::VecSource;
use rtdi_compute::window::WindowAssigner;

fn trip_rows(n: usize) -> Vec<(Timestamp, Row)> {
    (0..n)
        .map(|i| {
            (
                (i as i64) * 10,
                Row::new()
                    .with("city", ["sf", "la", "nyc"][i % 3])
                    .with("fare", 5.0 + (i % 40) as f64),
            )
        })
        .collect()
}

/// The 4-stage job from the staged-runtime tests: two stateless stages
/// (chain-eligible), a keyed tumbling-window aggregation, and a stateless
/// post-projection.
fn four_stage_job(name: &str, rows: Vec<(Timestamp, Row)>, sink: CollectSink) -> Job {
    let ops: Vec<Box<dyn Operator>> = vec![
        Box::new(MapOp::new("tag", |r: &Row| {
            let mut out = r.clone();
            out.push("fare2", r.get_double("fare").unwrap_or(0.0) * 2.0);
            out
        })),
        Box::new(FilterOp::new("nonneg", |r: &Row| {
            r.get_double("fare").unwrap_or(0.0) >= 0.0
        })),
        Box::new(WindowAggregateOp::new(
            "agg",
            vec!["city".into()],
            WindowAssigner::tumbling(1_000),
            vec![
                ("trips".into(), AggFn::Count),
                ("total2".into(), AggFn::Sum("fare2".into())),
            ],
            0,
        )),
        Box::new(MapOp::new("post", |r: &Row| {
            let mut out = r.clone();
            out.push(
                "avg2",
                r.get_double("total2").unwrap_or(0.0) / r.get_int("trips").unwrap_or(1) as f64,
            );
            out
        })),
    ];
    Job::new(
        name,
        Box::new(VecSource::from_rows(rows)),
        ops,
        Box::new(sink),
    )
    .with_out_of_orderness(0)
}

struct Point {
    batch: usize,
    fused: bool,
    rec_per_s: f64,
    allocs_per_rec: f64,
    out_rows: usize,
}

/// Best-of-3 runs: the single-core container schedules the stage threads
/// noisily, and we are after the protocol's shape, not scheduler jitter.
fn run_point(rows: &[(Timestamp, Row)], batch: usize, fused: bool) -> Point {
    let cfg = StagedConfig {
        channel_capacity: 64,
        batch_size: batch,
        fuse_operators: fused,
        checkpoint_interval: 0,
        checkpoint_store: None,
        trace: None,
        rescale: None,
    };
    let mut best = f64::MIN;
    let mut best_allocs = f64::MAX;
    let mut out_rows = 0;
    for _ in 0..3 {
        let sink = CollectSink::new();
        let job = four_stage_job("e25", rows.to_vec(), sink.clone());
        let ((stats, elapsed), allocs) =
            count_allocations(|| time_it(|| run_staged_with(job, &cfg).unwrap()));
        assert_eq!(stats.records_in, rows.len() as u64);
        best = best.max(rows.len() as f64 / elapsed.as_secs_f64());
        best_allocs = best_allocs.min(allocs.allocs as f64 / rows.len() as f64);
        out_rows = sink.len();
    }
    Point {
        batch,
        fused,
        rec_per_s: best,
        allocs_per_rec: best_allocs,
        out_rows,
    }
}

fn bench(c: &mut Criterion) {
    report_header(
        "E25 compute micro-batching + operator chaining",
        "batched channel hops + chained stateless operators >=3x records/s \
         over the per-record unchained protocol, with fewer allocs/record",
    );
    let n = 120_000;
    let rows = trip_rows(n);

    let mut points = Vec::new();
    for fused in [false, true] {
        for batch in [1usize, 16, 64, 256] {
            let p = run_point(&rows, batch, fused);
            report(
                &format!(
                    "batch={:>3} {:7}",
                    p.batch,
                    if p.fused { "fused" } else { "unfused" }
                ),
                format!(
                    "{:>9.0} rec/s, {:.2} allocs/rec",
                    p.rec_per_s, p.allocs_per_rec
                ),
            );
            points.push(p);
        }
    }
    let expected_rows = points[0].out_rows;
    assert!(expected_rows > 0);
    assert!(
        points.iter().all(|p| p.out_rows == expected_rows),
        "all protocol variants must emit the same result rows"
    );

    let baseline = points.iter().find(|p| p.batch == 1 && !p.fused).unwrap();
    let tuned = points.iter().find(|p| p.batch == 64 && p.fused).unwrap();
    report(
        "speedup batch=64+fused vs batch=1 unfused",
        format!("{:.1}x", tuned.rec_per_s / baseline.rec_per_s),
    );
    report(
        "allocs/rec drop",
        format!(
            "{:.2} -> {:.2}",
            baseline.allocs_per_rec, tuned.allocs_per_rec
        ),
    );
    assert!(
        tuned.rec_per_s >= 3.0 * baseline.rec_per_s,
        "expected >=3x: batch=64+fused {:.0} rec/s vs batch=1 unfused {:.0} rec/s",
        tuned.rec_per_s,
        baseline.rec_per_s
    );
    assert!(
        tuned.allocs_per_rec < baseline.allocs_per_rec,
        "batching must reduce allocations per record"
    );

    let mut g = c.benchmark_group("e25");
    let small = trip_rows(20_000);
    g.bench_function("staged_batch64_fused", |b| {
        b.iter(|| run_point(&small, 64, true).rec_per_s)
    });
    g.bench_function("staged_per_record_reference", |b| {
        b.iter(|| run_point(&small, 1, false).rec_per_s)
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = quick_criterion();
    targets = bench
}
criterion_main!(benches);
