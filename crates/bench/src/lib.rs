//! Shared helpers for the experiment benches.
//!
//! Every table/figure/quantitative claim in the paper has a bench target
//! under `benches/` (see DESIGN.md §3 for the experiment index and
//! EXPERIMENTS.md for recorded results). Each bench prints a
//! paper-vs-measured report before its criterion timings so the headline
//! numbers survive in the bench logs.

use criterion::Criterion;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// A [`System`]-backed allocator that counts every allocation. Installed
/// as the global allocator for every binary linking this crate (all the
/// E1–E22 benches), so reports can include bytes-allocated alongside
/// latency — the vectorized-execution work trades per-doc allocations
/// for batch buffers and the benches prove it.
pub struct CountingAllocator;

static ALLOC_COUNT: AtomicU64 = AtomicU64::new(0);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_COUNT.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_COUNT.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(
            new_size.saturating_sub(layout.size()) as u64,
            Ordering::Relaxed,
        );
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

/// Allocation totals observed while a closure ran (see
/// [`count_allocations`]). Counts are process-wide, so keep concurrent
/// allocating threads quiet while measuring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AllocStats {
    pub allocs: u64,
    pub bytes: u64,
}

impl std::fmt::Display for AllocStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} allocs / {:.1} KiB",
            self.allocs,
            self.bytes as f64 / 1024.0
        )
    }
}

/// Run `f` and report how many heap allocations (and net grown bytes)
/// happened while it ran.
pub fn count_allocations<T>(f: impl FnOnce() -> T) -> (T, AllocStats) {
    let c0 = ALLOC_COUNT.load(Ordering::Relaxed);
    let b0 = ALLOC_BYTES.load(Ordering::Relaxed);
    let out = f();
    let stats = AllocStats {
        allocs: ALLOC_COUNT.load(Ordering::Relaxed) - c0,
        bytes: ALLOC_BYTES.load(Ordering::Relaxed) - b0,
    };
    (out, stats)
}

/// Assert that a measured region stayed under an allocation budget.
/// Panics with the measured numbers so a regressing kernel fails loudly
/// in the bench log.
pub fn assert_allocs_at_most(label: &str, stats: AllocStats, max_allocs: u64) {
    assert!(
        stats.allocs <= max_allocs,
        "{label}: expected at most {max_allocs} allocations, measured {stats}"
    );
}

/// A Criterion tuned so the whole 20-experiment suite finishes in minutes:
/// the comparisons in this paper are order-of-magnitude shapes, not
/// nanosecond deltas.
pub fn quick_criterion() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600))
        .configure_from_args()
}

/// Print a report header for an experiment.
pub fn report_header(experiment: &str, paper_claim: &str) {
    println!("\n=== {experiment} ===");
    println!("paper: {paper_claim}");
}

/// Print one measured line.
pub fn report(metric: &str, value: impl std::fmt::Display) {
    println!("measured: {metric} = {value}");
}

/// Wall-clock one closure.
pub fn time_it<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = std::time::Instant::now();
    let out = f();
    (out, start.elapsed())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_allocator_sees_heap_traffic() {
        let (v, stats) = count_allocations(|| vec![0u8; 4096]);
        assert_eq!(v.len(), 4096);
        assert!(stats.allocs >= 1);
        assert!(stats.bytes >= 4096);
    }

    #[test]
    fn allocation_budget_holds_for_arithmetic() {
        let (sum, stats) = count_allocations(|| (0u64..1000).sum::<u64>());
        assert_eq!(sum, 499_500);
        assert_allocs_at_most("pure arithmetic", stats, 0);
    }

    #[test]
    #[should_panic(expected = "expected at most 0 allocations")]
    fn allocation_budget_violations_panic() {
        let (_, stats) = count_allocations(|| vec![0u8; 1024].len());
        assert_allocs_at_most("vec build", stats, 0);
    }
}
