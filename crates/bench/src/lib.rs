//! Shared helpers for the experiment benches.
//!
//! Every table/figure/quantitative claim in the paper has a bench target
//! under `benches/` (see DESIGN.md §3 for the experiment index and
//! EXPERIMENTS.md for recorded results). Each bench prints a
//! paper-vs-measured report before its criterion timings so the headline
//! numbers survive in the bench logs.

use criterion::Criterion;
use std::time::Duration;

/// A Criterion tuned so the whole 20-experiment suite finishes in minutes:
/// the comparisons in this paper are order-of-magnitude shapes, not
/// nanosecond deltas.
pub fn quick_criterion() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600))
        .configure_from_args()
}

/// Print a report header for an experiment.
pub fn report_header(experiment: &str, paper_claim: &str) {
    println!("\n=== {experiment} ===");
    println!("paper: {paper_claim}");
}

/// Print one measured line.
pub fn report(metric: &str, value: impl std::fmt::Display) {
    println!("measured: {metric} = {value}");
}

/// Wall-clock one closure.
pub fn time_it<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = std::time::Instant::now();
    let out = f();
    (out, start.elapsed())
}
