//! Pushdown optimizer (§4.5).
//!
//! "One challenge we overcame during this connector development is to be
//! intelligent and selective on which parts of the physical plan can be
//! pushed down to the Pinot layer... we enhanced Presto's query planner
//! and extended Presto Connector API to push as many operators down to the
//! Pinot layer as possible, such as projection, aggregation and limit."
//!
//! Rules (applied bottom-up, gated by connector capabilities):
//! 1. predicate pushdown: conjuncts of the form `column <op> literal`
//!    move from Filter nodes into the scan;
//! 2. aggregation pushdown: an Aggregate directly over a (filtered) scan
//!    whose group keys are bare columns and whose aggregates map to the
//!    OLAP aggregation functions collapses into the scan;
//! 3. projection pushdown: scans ship only referenced columns;
//! 4. order/limit pushdown: Sort+Limit over a pushable scan ships at most
//!    `limit` rows.

use crate::ast::{AggName, BinOp, Expr};
use crate::connector::{Capabilities, PushedAgg};
use crate::plan::{AggItem, Plan};
use rtdi_common::{AggFn, Value};
use rtdi_olap::query::{Predicate, PredicateOp};
use std::sync::Arc;

/// Resolve connector capabilities for a catalog.
pub type CapsResolver<'a> = &'a dyn Fn(&Option<String>) -> Capabilities;

/// Resolve a table's partition layout — `(column, partition count)` when
/// the connector partitions rows by `hash(column) % count`.
pub type PartitionResolver<'a> = &'a dyn Fn(&Option<String>, &str) -> Option<(String, usize)>;

/// Optimize a plan. `enable` gates all pushdown (the E14 ablation flag).
pub fn optimize(plan: Plan, caps: CapsResolver, enable: bool) -> Plan {
    optimize_with(plan, caps, &|_, _| None, enable)
}

/// [`optimize`] plus partition derivation: after predicate pushdown, an
/// equality predicate on a table's partition column pins the scatter to
/// the single partition `hash(value) % count` (§4.3's partition-aware
/// routing, derived by the planner instead of declared by the client).
pub fn optimize_with(
    plan: Plan,
    caps: CapsResolver,
    partitions: PartitionResolver,
    enable: bool,
) -> Plan {
    if !enable {
        return plan;
    }
    let plan = push_filters(plan, caps);
    let plan = push_aggregation(plan, caps);
    let plan = push_order_limit(plan, caps);
    let plan = push_projection(plan, caps);
    derive_partitions(plan, partitions)
}

fn derive_partitions(plan: Plan, parts: PartitionResolver) -> Plan {
    match plan {
        Plan::Scan {
            catalog,
            table,
            binding,
            mut pushdown,
        } => {
            if let Some((col, n)) = parts(&catalog, &table) {
                let ids: Vec<usize> = pushdown
                    .predicates
                    .iter()
                    .filter(|p| p.op == PredicateOp::Eq && p.column == col)
                    .map(|p| (p.value.partition_hash() % n as u64) as usize)
                    .collect();
                if !ids.is_empty() {
                    // the hint is a routing superset: contradictory
                    // equality conjuncts still route somewhere, and the
                    // predicates themselves empty the scan
                    pushdown.partitions = Some(Arc::new(ids));
                }
            }
            Plan::Scan {
                catalog,
                table,
                binding,
                pushdown,
            }
        }
        other => map_children(other, &mut |p| derive_partitions(p, parts)),
    }
}

/// Split an AND-tree into conjuncts.
fn conjuncts(expr: &Expr, out: &mut Vec<Expr>) {
    match expr {
        Expr::Binary {
            left,
            op: BinOp::And,
            right,
        } => {
            conjuncts(left, out);
            conjuncts(right, out);
        }
        other => out.push(other.clone()),
    }
}

/// Recombine conjuncts into an AND-tree.
fn combine(mut exprs: Vec<Expr>) -> Option<Expr> {
    let mut acc = exprs.pop()?;
    while let Some(e) = exprs.pop() {
        acc = Expr::Binary {
            left: Box::new(e),
            op: BinOp::And,
            right: Box::new(acc),
        };
    }
    Some(acc)
}

/// `column <op> literal` (either side) -> OLAP predicate.
fn as_predicate(expr: &Expr) -> Option<Predicate> {
    let (col, op, lit, flipped) = match expr {
        Expr::Binary { left, op, right } => match (&**left, &**right) {
            (Expr::Column { name, .. }, Expr::Literal(v)) => (name.clone(), *op, v.clone(), false),
            (Expr::Literal(v), Expr::Column { name, .. }) => (name.clone(), *op, v.clone(), true),
            _ => return None,
        },
        _ => return None,
    };
    let pop = match (op, flipped) {
        (BinOp::Eq, _) => PredicateOp::Eq,
        (BinOp::Neq, _) => PredicateOp::Ne,
        (BinOp::Lt, false) | (BinOp::Gt, true) => PredicateOp::Lt,
        (BinOp::Le, false) | (BinOp::Ge, true) => PredicateOp::Le,
        (BinOp::Gt, false) | (BinOp::Lt, true) => PredicateOp::Gt,
        (BinOp::Ge, false) | (BinOp::Le, true) => PredicateOp::Ge,
        _ => return None,
    };
    if matches!(lit, Value::Json(_) | Value::Bytes(_)) {
        return None;
    }
    Some(Predicate::new(col, pop, lit))
}

fn push_filters(plan: Plan, caps: CapsResolver) -> Plan {
    match plan {
        Plan::Filter { input, predicate } => {
            let input = push_filters(*input, caps);
            if let Plan::Scan {
                catalog,
                table,
                binding,
                mut pushdown,
            } = input
            {
                if caps(&catalog).filters {
                    let mut all = Vec::new();
                    conjuncts(&predicate, &mut all);
                    let mut kept = Vec::new();
                    for c in all {
                        match as_predicate(&c) {
                            Some(p) => Arc::make_mut(&mut pushdown.predicates).push(p),
                            None => kept.push(c),
                        }
                    }
                    let scan = Plan::Scan {
                        catalog,
                        table,
                        binding,
                        pushdown,
                    };
                    return match combine(kept) {
                        Some(rest) => Plan::Filter {
                            input: Box::new(scan),
                            predicate: rest,
                        },
                        None => scan,
                    };
                }
                return Plan::Filter {
                    input: Box::new(Plan::Scan {
                        catalog,
                        table,
                        binding,
                        pushdown,
                    }),
                    predicate,
                };
            }
            Plan::Filter {
                input: Box::new(input),
                predicate,
            }
        }
        other => map_children(other, &mut |p| push_filters(p, caps)),
    }
}

/// Map an AggItem to a pushable OLAP aggregation function.
fn pushable_agg(item: &AggItem) -> Option<AggFn> {
    let col = match &item.arg {
        None => None,
        Some(Expr::Column { name, .. }) => Some(name.clone()),
        _ => return None, // expression arguments stay in the engine
    };
    match (item.func, item.distinct, col) {
        (AggName::Count, false, None) => Some(AggFn::Count),
        // COUNT(col) skips NULLs in SQL; the OLAP Count does not — not pushable
        (AggName::Count, false, Some(_)) => None,
        (AggName::Count, true, Some(c)) => Some(AggFn::DistinctCount(c)),
        (AggName::Sum, false, Some(c)) => Some(AggFn::Sum(c)),
        (AggName::Avg, false, Some(c)) => Some(AggFn::Avg(c)),
        (AggName::Min, false, Some(c)) => Some(AggFn::Min(c)),
        (AggName::Max, false, Some(c)) => Some(AggFn::Max(c)),
        _ => None,
    }
}

fn push_aggregation(plan: Plan, caps: CapsResolver) -> Plan {
    match plan {
        Plan::Aggregate {
            input,
            group_by,
            aggs,
        } => {
            let input = push_aggregation(*input, caps);
            if let Plan::Scan {
                catalog,
                table,
                binding,
                mut pushdown,
            } = input
            {
                let supported = caps(&catalog).aggregation && pushdown.aggregation.is_none();
                // group keys must be bare columns whose output name equals
                // the column name (the OLAP store names them that way)
                let simple_groups: Option<Vec<String>> = group_by
                    .iter()
                    .map(|(name, e)| match e {
                        Expr::Column { name: col, .. } if col == name => Some(col.clone()),
                        _ => None,
                    })
                    .collect();
                let pushed: Option<Vec<(String, AggFn)>> = aggs
                    .iter()
                    .map(|a| pushable_agg(a).map(|f| (a.name.clone(), f)))
                    .collect();
                if let (true, Some(groups), Some(fns)) = (supported, simple_groups, pushed) {
                    pushdown.aggregation = Some(PushedAgg {
                        group_by: Arc::new(groups),
                        aggs: Arc::new(fns),
                    });
                    return Plan::Scan {
                        catalog,
                        table,
                        binding,
                        pushdown,
                    };
                }
                return Plan::Aggregate {
                    input: Box::new(Plan::Scan {
                        catalog,
                        table,
                        binding,
                        pushdown,
                    }),
                    group_by,
                    aggs,
                };
            }
            Plan::Aggregate {
                input: Box::new(input),
                group_by,
                aggs,
            }
        }
        other => map_children(other, &mut |p| push_aggregation(p, caps)),
    }
}

fn push_order_limit(plan: Plan, caps: CapsResolver) -> Plan {
    match plan {
        Plan::Limit { input, n } => {
            let input = push_order_limit(*input, caps);
            let input = apply_limit_below(input, None, n, caps);
            Plan::Limit {
                input: Box::new(input),
                n,
            }
        }
        other => map_children(other, &mut |p| push_order_limit(p, caps)),
    }
}

/// Try to sink `limit` (and optionally `order`) through 1:1 nodes
/// (Project) and a Sort into the scan. Returns the (possibly updated)
/// subtree; outer Sort/Limit nodes are kept — the pushdown only reduces
/// shipped rows, the engine still enforces semantics.
fn apply_limit_below(
    plan: Plan,
    order: Option<Vec<(String, bool)>>,
    n: usize,
    caps: CapsResolver,
) -> Plan {
    match plan {
        Plan::Scan {
            catalog,
            table,
            binding,
            mut pushdown,
        } => {
            let keys_ok = match (&order, &pushdown.aggregation) {
                // plain limit without order: only safe when no engine-side
                // sort follows — the caller passes order=None exactly then
                (None, _) => true,
                (Some(keys), Some(agg)) => keys.iter().all(|(k, _)| {
                    agg.group_by.contains(k) || agg.aggs.iter().any(|(n2, _)| n2 == k)
                }),
                (Some(keys), None) => !keys.iter().any(|(k, _)| k.starts_with("__sort")),
            };
            if caps(&catalog).limit && keys_ok {
                if let Some(keys) = order {
                    pushdown.order_by = keys;
                }
                pushdown.limit = Some(n);
            }
            Plan::Scan {
                catalog,
                table,
                binding,
                pushdown,
            }
        }
        Plan::Sort { input, keys } => {
            // map the sort keys through a Project below, if any, so the
            // scan sees underlying column names
            let mapped = map_keys_through(&input, &keys);
            let input = match mapped {
                Some(scan_keys) => apply_limit_below(*input, Some(scan_keys), n, caps),
                None => *input,
            };
            Plan::Sort {
                input: Box::new(input),
                keys,
            }
        }
        Plan::Project { input, items } => {
            let input = apply_limit_below(*input, order, n, caps);
            Plan::Project {
                input: Box::new(input),
                items,
            }
        }
        other => other,
    }
}

/// Resolve sort keys (projected names) to scan column names through an
/// optional Project node. Returns None when any key is not a bare column.
fn map_keys_through(plan: &Plan, keys: &[(String, bool)]) -> Option<Vec<(String, bool)>> {
    match plan {
        Plan::Project { items, .. } => keys
            .iter()
            .map(|(k, desc)| {
                items
                    .iter()
                    .find(|(name, _)| name == k)
                    .and_then(|(_, e)| match e {
                        Expr::Column { name, .. } => Some((name.clone(), *desc)),
                        _ => None,
                    })
            })
            .collect(),
        Plan::Scan { .. } => Some(keys.to_vec()),
        _ => None,
    }
}

fn push_projection(plan: Plan, caps: CapsResolver) -> Plan {
    // collect referenced columns down a linear Project/Filter/Sort chain
    fn walk(plan: Plan, needed: Option<Vec<String>>, caps: CapsResolver) -> Plan {
        match plan {
            Plan::Project { input, items } => {
                let mut cols = Vec::new();
                for (_, e) in &items {
                    e.referenced_columns(&mut cols);
                }
                Plan::Project {
                    input: Box::new(walk(*input, Some(cols), caps)),
                    items,
                }
            }
            Plan::Filter { input, predicate } => {
                let needed = needed.map(|mut cols| {
                    predicate.referenced_columns(&mut cols);
                    cols
                });
                Plan::Filter {
                    input: Box::new(walk(*input, needed, caps)),
                    predicate,
                }
            }
            Plan::Sort { input, keys } => {
                let needed = needed.map(|mut cols| {
                    for (k, _) in &keys {
                        if !cols.contains(k) {
                            cols.push(k.clone());
                        }
                    }
                    cols
                });
                Plan::Sort {
                    input: Box::new(walk(*input, needed, caps)),
                    keys,
                }
            }
            Plan::Limit { input, n } => Plan::Limit {
                input: Box::new(walk(*input, needed, caps)),
                n,
            },
            Plan::Scan {
                catalog,
                table,
                binding,
                mut pushdown,
            } => {
                if let Some(cols) = needed {
                    if caps(&catalog).projection
                        && pushdown.aggregation.is_none()
                        && pushdown.projection.is_none()
                        && !cols.is_empty()
                    {
                        // also ship columns needed by pushed order_by
                        let mut cols = cols;
                        for (k, _) in &pushdown.order_by {
                            if !cols.contains(k) {
                                cols.push(k.clone());
                            }
                        }
                        pushdown.projection = Some(Arc::new(cols));
                    }
                }
                Plan::Scan {
                    catalog,
                    table,
                    binding,
                    pushdown,
                }
            }
            // joins/aggregates: recurse without projection info (their
            // column needs are conservative)
            other => map_children(other, &mut |p| walk(p, None, caps)),
        }
    }
    walk(plan, None, caps)
}

fn map_children(plan: Plan, f: &mut dyn FnMut(Plan) -> Plan) -> Plan {
    match plan {
        Plan::Filter { input, predicate } => Plan::Filter {
            input: Box::new(f(*input)),
            predicate,
        },
        Plan::Project { input, items } => Plan::Project {
            input: Box::new(f(*input)),
            items,
        },
        Plan::Aggregate {
            input,
            group_by,
            aggs,
        } => Plan::Aggregate {
            input: Box::new(f(*input)),
            group_by,
            aggs,
        },
        Plan::Join {
            left,
            right,
            left_binding,
            right_binding,
            on_left,
            on_right,
        } => Plan::Join {
            left: Box::new(f(*left)),
            right: Box::new(f(*right)),
            left_binding,
            right_binding,
            on_left,
            on_right,
        },
        Plan::Sort { input, keys } => Plan::Sort {
            input: Box::new(f(*input)),
            keys,
        },
        Plan::Limit { input, n } => Plan::Limit {
            input: Box::new(f(*input)),
            n,
        },
        scan @ Plan::Scan { .. } => scan,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::connector::Pushdown;
    use crate::parser::parse_select;
    use crate::plan::plan_select;

    fn full_caps(_: &Option<String>) -> Capabilities {
        Capabilities {
            filters: true,
            projection: true,
            aggregation: true,
            limit: true,
        }
    }

    fn no_caps(_: &Option<String>) -> Capabilities {
        Capabilities::default()
    }

    fn optimized(sql: &str, caps: CapsResolver) -> Plan {
        optimize(
            plan_select(&parse_select(sql).unwrap()).unwrap(),
            caps,
            true,
        )
    }

    fn find_scan(p: &Plan) -> &Pushdown {
        match p {
            Plan::Scan { pushdown, .. } => pushdown,
            Plan::Filter { input, .. }
            | Plan::Project { input, .. }
            | Plan::Sort { input, .. }
            | Plan::Limit { input, .. }
            | Plan::Aggregate { input, .. } => find_scan(input),
            Plan::Join { left, .. } => find_scan(left),
        }
    }

    #[test]
    fn partition_hint_derived_from_equality_predicate() {
        let parts =
            |_: &Option<String>, table: &str| (table == "t").then(|| ("city".to_string(), 8usize));
        let plan = optimize_with(
            plan_select(
                &parse_select("SELECT COUNT(*) AS n FROM t WHERE city = 'sf' AND ts > 5").unwrap(),
            )
            .unwrap(),
            &full_caps,
            &parts,
            true,
        );
        let pd = find_scan(&plan);
        let expect = (Value::from("sf").partition_hash() % 8) as usize;
        assert_eq!(pd.partitions.as_deref(), Some(&vec![expect]));

        // range predicates on the partition column derive nothing
        let plan = optimize_with(
            plan_select(&parse_select("SELECT COUNT(*) AS n FROM t WHERE city > 'a'").unwrap())
                .unwrap(),
            &full_caps,
            &parts,
            true,
        );
        assert!(find_scan(&plan).partitions.is_none());

        // unpartitioned tables derive nothing
        let plan = optimize_with(
            plan_select(&parse_select("SELECT COUNT(*) AS n FROM u WHERE city = 'sf'").unwrap())
                .unwrap(),
            &full_caps,
            &parts,
            true,
        );
        assert!(find_scan(&plan).partitions.is_none());
    }

    #[test]
    fn predicates_move_into_scan() {
        let p = optimized(
            "SELECT city FROM t WHERE total > 10 AND city = 'sf' AND total + 1 > 5",
            &full_caps,
        );
        let pd = find_scan(&p);
        assert_eq!(pd.predicates.len(), 2);
        // the arithmetic conjunct stays as an engine-side filter
        assert!(p.explain().contains("Filter"));
        // flipped literal-first comparisons normalize
        let p = optimized("SELECT city FROM t WHERE 10 < total", &full_caps);
        assert_eq!(find_scan(&p).predicates[0].op, PredicateOp::Gt);
    }

    #[test]
    fn aggregation_collapses_into_scan() {
        let p = optimized(
            "SELECT city, COUNT(*) AS n, AVG(total) AS a FROM t WHERE total > 5 GROUP BY city",
            &full_caps,
        );
        let pd = find_scan(&p);
        let agg = pd.aggregation.as_ref().expect("aggregation pushed");
        assert_eq!(*agg.group_by, vec!["city".to_string()]);
        assert_eq!(agg.aggs.len(), 2);
        assert!(!p.explain().contains("Aggregate"), "{}", p.explain());
    }

    #[test]
    fn complex_aggregations_stay_in_engine() {
        // expression argument -> not pushable
        let p = optimized("SELECT SUM(a + b) AS s FROM t", &full_caps);
        assert!(find_scan(&p).aggregation.is_none());
        assert!(p.explain().contains("Aggregate"));
        // COUNT(col) (null-sensitive) -> not pushable
        let p = optimized("SELECT COUNT(a) AS s FROM t", &full_caps);
        assert!(find_scan(&p).aggregation.is_none());
        // COUNT(DISTINCT col) -> pushable
        let p = optimized("SELECT COUNT(DISTINCT a) AS s FROM t", &full_caps);
        assert!(find_scan(&p).aggregation.is_some());
    }

    #[test]
    fn limit_and_topn_pushdown() {
        let p = optimized("SELECT city FROM t LIMIT 7", &full_caps);
        assert_eq!(find_scan(&p).limit, Some(7));
        let p = optimized(
            "SELECT city, total FROM t ORDER BY total DESC LIMIT 3",
            &full_caps,
        );
        let pd = find_scan(&p);
        assert_eq!(pd.limit, Some(3));
        assert_eq!(pd.order_by, vec![("total".to_string(), true)]);
        // top-n over pushed aggregation
        let p = optimized(
            "SELECT city, COUNT(*) AS n FROM t GROUP BY city ORDER BY n DESC LIMIT 2",
            &full_caps,
        );
        let pd = find_scan(&p);
        assert!(pd.aggregation.is_some());
        assert_eq!(pd.limit, Some(2));
    }

    #[test]
    fn projection_pushdown_ships_only_referenced() {
        let p = optimized("SELECT city FROM t WHERE total > 10", &full_caps);
        let pd = find_scan(&p);
        let proj = pd.projection.as_ref().expect("projection pushed");
        assert!(proj.contains(&"city".to_string()));
        // `total` fully pushed as predicate: not needed, but conservative
        // inclusion is fine — just assert it's a subset of {city,total}
        assert!(proj.iter().all(|c| c == "city" || c == "total"));
    }

    #[test]
    fn no_caps_means_no_pushdown() {
        let p = optimized(
            "SELECT city, COUNT(*) n FROM t WHERE total > 5 GROUP BY city LIMIT 3",
            &no_caps,
        );
        let pd = find_scan(&p);
        assert!(pd.is_empty());
        assert!(p.explain().contains("Aggregate"));
        assert!(p.explain().contains("Filter"));
    }

    #[test]
    fn disable_flag_bypasses_everything() {
        let plan =
            plan_select(&parse_select("SELECT city FROM t WHERE total > 10").unwrap()).unwrap();
        let same = optimize(plan.clone(), &full_caps, false);
        assert_eq!(plan, same);
    }
}
