//! Recursive-descent SQL parser.

use crate::ast::*;
use crate::lexer::{tokenize, Token};
use rtdi_common::{Error, Result, Value};

/// Parse a SELECT statement.
pub fn parse_select(sql: &str) -> Result<SelectStmt> {
    let tokens = tokenize(sql)?;
    let mut p = Parser { tokens, pos: 0 };
    let stmt = p.select()?;
    if p.pos != p.tokens.len() {
        return Err(Error::Sql(format!(
            "trailing tokens after statement: {:?}",
            &p.tokens[p.pos..]
        )));
    }
    Ok(stmt)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

const RESERVED: &[&str] = &[
    "SELECT", "FROM", "WHERE", "GROUP", "BY", "HAVING", "ORDER", "LIMIT", "JOIN", "ON", "AS",
    "AND", "OR", "ASC", "DESC", "INNER", "DISTINCT",
];

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn bump(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek().map(|t| t.is_kw(kw)).unwrap_or(false) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(Error::Sql(format!(
                "expected {kw}, found {:?}",
                self.peek()
            )))
        }
    }

    fn expect(&mut self, t: Token) -> Result<()> {
        if self.peek() == Some(&t) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::Sql(format!(
                "expected {t:?}, found {:?}",
                self.peek()
            )))
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.bump() {
            Some(Token::Ident(s)) => Ok(s),
            other => Err(Error::Sql(format!("expected identifier, found {other:?}"))),
        }
    }

    fn peek_is_reserved(&self) -> bool {
        matches!(self.peek(), Some(Token::Ident(s))
            if RESERVED.iter().any(|k| s.eq_ignore_ascii_case(k)))
    }

    fn select(&mut self) -> Result<SelectStmt> {
        self.expect_kw("SELECT")?;
        let mut projections = Vec::new();
        loop {
            let expr = self.expr()?;
            let alias = if self.eat_kw("AS") {
                Some(self.ident()?)
            } else if !self.peek_is_reserved() {
                // implicit alias: bare identifier after an expression
                match self.peek() {
                    Some(Token::Ident(_)) => Some(self.ident()?),
                    _ => None,
                }
            } else {
                None
            };
            projections.push(SelectItem { expr, alias });
            if !matches!(self.peek(), Some(Token::Comma)) {
                break;
            }
            self.pos += 1;
        }
        self.expect_kw("FROM")?;
        let from = self.table_ref()?;
        let mut joins = Vec::new();
        loop {
            let inner = self.eat_kw("INNER");
            if self.eat_kw("JOIN") {
                let table = self.table_ref()?;
                self.expect_kw("ON")?;
                // equi-join condition: parse operands below the comparison
                // level so the '=' is ours to consume
                let on_left = self.add_expr()?;
                self.expect(Token::Eq)?;
                let on_right = self.add_expr()?;
                joins.push(Join {
                    table,
                    on_left,
                    on_right,
                });
            } else if inner {
                return Err(Error::Sql("expected JOIN after INNER".into()));
            } else {
                break;
            }
        }
        let where_clause = if self.eat_kw("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        let mut group_by = Vec::new();
        if self.eat_kw("GROUP") {
            self.expect_kw("BY")?;
            loop {
                group_by.push(self.expr()?);
                if !matches!(self.peek(), Some(Token::Comma)) {
                    break;
                }
                self.pos += 1;
            }
        }
        let having = if self.eat_kw("HAVING") {
            Some(self.expr()?)
        } else {
            None
        };
        let mut order_by = Vec::new();
        if self.eat_kw("ORDER") {
            self.expect_kw("BY")?;
            loop {
                let expr = self.expr()?;
                let desc = if self.eat_kw("DESC") {
                    true
                } else {
                    self.eat_kw("ASC");
                    false
                };
                order_by.push(OrderItem { expr, desc });
                if !matches!(self.peek(), Some(Token::Comma)) {
                    break;
                }
                self.pos += 1;
            }
        }
        let limit = if self.eat_kw("LIMIT") {
            match self.bump() {
                Some(Token::Number(n)) if n >= 0.0 && n.fract() == 0.0 => Some(n as usize),
                other => return Err(Error::Sql(format!("bad LIMIT value {other:?}"))),
            }
        } else {
            None
        };
        Ok(SelectStmt {
            projections,
            from,
            joins,
            where_clause,
            group_by,
            having,
            order_by,
            limit,
        })
    }

    fn table_ref(&mut self) -> Result<TableRef> {
        if matches!(self.peek(), Some(Token::LParen)) {
            self.pos += 1;
            let query = self.select()?;
            self.expect(Token::RParen)?;
            self.eat_kw("AS");
            let alias = self.ident()?;
            return Ok(TableRef::Subquery {
                query: Box::new(query),
                alias,
            });
        }
        let first = self.ident()?;
        let (catalog, name) = if matches!(self.peek(), Some(Token::Dot)) {
            self.pos += 1;
            (Some(first), self.ident()?)
        } else {
            (None, first)
        };
        let alias = if self.eat_kw("AS") {
            Some(self.ident()?)
        } else if !self.peek_is_reserved() {
            match self.peek() {
                Some(Token::Ident(_)) => Some(self.ident()?),
                _ => None,
            }
        } else {
            None
        };
        Ok(TableRef::Table {
            catalog,
            name,
            alias,
        })
    }

    // expression precedence: OR < AND < comparison < add/sub < mul/div < unary/primary
    fn expr(&mut self) -> Result<Expr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr> {
        let mut left = self.and_expr()?;
        while self.eat_kw("OR") {
            let right = self.and_expr()?;
            left = Expr::Binary {
                left: Box::new(left),
                op: BinOp::Or,
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<Expr> {
        let mut left = self.cmp_expr()?;
        while self.eat_kw("AND") {
            let right = self.cmp_expr()?;
            left = Expr::Binary {
                left: Box::new(left),
                op: BinOp::And,
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn cmp_expr(&mut self) -> Result<Expr> {
        let left = self.add_expr()?;
        let op = match self.peek() {
            Some(Token::Eq) => BinOp::Eq,
            Some(Token::Neq) => BinOp::Neq,
            Some(Token::Lt) => BinOp::Lt,
            Some(Token::Le) => BinOp::Le,
            Some(Token::Gt) => BinOp::Gt,
            Some(Token::Ge) => BinOp::Ge,
            _ => return Ok(left),
        };
        self.pos += 1;
        let right = self.add_expr()?;
        Ok(Expr::Binary {
            left: Box::new(left),
            op,
            right: Box::new(right),
        })
    }

    fn add_expr(&mut self) -> Result<Expr> {
        let mut left = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                Some(Token::Plus) => BinOp::Add,
                Some(Token::Minus) => BinOp::Sub,
                _ => break,
            };
            self.pos += 1;
            let right = self.mul_expr()?;
            left = Expr::Binary {
                left: Box::new(left),
                op,
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn mul_expr(&mut self) -> Result<Expr> {
        let mut left = self.primary()?;
        loop {
            let op = match self.peek() {
                Some(Token::Star) => BinOp::Mul,
                Some(Token::Slash) => BinOp::Div,
                _ => break,
            };
            self.pos += 1;
            let right = self.primary()?;
            left = Expr::Binary {
                left: Box::new(left),
                op,
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn primary(&mut self) -> Result<Expr> {
        match self.bump() {
            Some(Token::Number(n)) => Ok(Expr::Literal(if n.fract() == 0.0 && n.abs() < 1e15 {
                Value::Int(n as i64)
            } else {
                Value::Double(n)
            })),
            Some(Token::Str(s)) => Ok(Expr::Literal(Value::Str(s))),
            Some(Token::Minus) => {
                // unary minus on a numeric literal
                match self.bump() {
                    Some(Token::Number(n)) => {
                        Ok(Expr::Literal(if n.fract() == 0.0 && n.abs() < 1e15 {
                            Value::Int(-(n as i64))
                        } else {
                            Value::Double(-n)
                        }))
                    }
                    other => Err(Error::Sql(format!(
                        "expected number after '-', got {other:?}"
                    ))),
                }
            }
            Some(Token::Star) => Ok(Expr::Star),
            Some(Token::LParen) => {
                let e = self.expr()?;
                self.expect(Token::RParen)?;
                Ok(e)
            }
            Some(Token::Ident(name)) => {
                // aggregate / function call?
                if matches!(self.peek(), Some(Token::LParen)) {
                    self.pos += 1;
                    let upper = name.to_ascii_uppercase();
                    let agg = match upper.as_str() {
                        "COUNT" => Some(AggName::Count),
                        "SUM" => Some(AggName::Sum),
                        "AVG" => Some(AggName::Avg),
                        "MIN" => Some(AggName::Min),
                        "MAX" => Some(AggName::Max),
                        _ => None,
                    };
                    if let Some(func) = agg {
                        let distinct = self.eat_kw("DISTINCT");
                        let arg = if matches!(self.peek(), Some(Token::Star)) {
                            self.pos += 1;
                            None
                        } else {
                            Some(Box::new(self.expr()?))
                        };
                        self.expect(Token::RParen)?;
                        return Ok(Expr::Agg {
                            func,
                            distinct,
                            arg,
                        });
                    }
                    let mut args = Vec::new();
                    if !matches!(self.peek(), Some(Token::RParen)) {
                        loop {
                            args.push(self.expr()?);
                            if !matches!(self.peek(), Some(Token::Comma)) {
                                break;
                            }
                            self.pos += 1;
                        }
                    }
                    self.expect(Token::RParen)?;
                    return Ok(Expr::Function { name, args });
                }
                // qualified column?
                if matches!(self.peek(), Some(Token::Dot)) {
                    self.pos += 1;
                    let col = self.ident()?;
                    return Ok(Expr::Column {
                        qualifier: Some(name),
                        name: col,
                    });
                }
                Ok(Expr::Column {
                    qualifier: None,
                    name,
                })
            }
            other => Err(Error::Sql(format!("unexpected token {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_select() {
        let s = parse_select("SELECT city, total FROM orders").unwrap();
        assert_eq!(s.projections.len(), 2);
        assert_eq!(s.projections[0].output_name(), "city");
        assert!(matches!(s.from, TableRef::Table { ref name, .. } if name == "orders"));
        assert!(s.where_clause.is_none());
    }

    #[test]
    fn parses_full_aggregation_query() {
        let s = parse_select(
            "SELECT city, COUNT(*) AS n, AVG(total) avg_total \
             FROM pinot.orders \
             WHERE total > 10 AND city <> 'chi' \
             GROUP BY city \
             HAVING COUNT(*) > 5 \
             ORDER BY n DESC \
             LIMIT 3",
        )
        .unwrap();
        assert_eq!(s.projections.len(), 3);
        assert_eq!(s.projections[1].output_name(), "n");
        assert_eq!(s.projections[2].output_name(), "avg_total");
        assert!(matches!(
            s.from,
            TableRef::Table {
                catalog: Some(ref c),
                ..
            } if c == "pinot"
        ));
        assert_eq!(s.group_by.len(), 1);
        assert!(s.having.is_some());
        assert!(s.order_by[0].desc);
        assert_eq!(s.limit, Some(3));
        assert!(!s.where_clause.unwrap().contains_agg());
    }

    #[test]
    fn parses_join() {
        let s = parse_select(
            "SELECT o.city, r.cuisine FROM orders o \
             JOIN restaurants r ON o.restaurant_id = r.id",
        )
        .unwrap();
        assert_eq!(s.joins.len(), 1);
        assert_eq!(
            s.joins[0].on_left,
            Expr::Column {
                qualifier: Some("o".into()),
                name: "restaurant_id".into()
            }
        );
        assert_eq!(s.from.binding_name(), "o");
    }

    #[test]
    fn parses_subquery_in_from() {
        let s = parse_select(
            "SELECT n FROM (SELECT COUNT(*) AS n FROM orders GROUP BY city) t WHERE n > 10",
        )
        .unwrap();
        match &s.from {
            TableRef::Subquery { query, alias } => {
                assert_eq!(alias, "t");
                assert_eq!(query.group_by.len(), 1);
            }
            other => panic!("expected subquery, got {other:?}"),
        }
    }

    #[test]
    fn parses_count_distinct_and_function_calls() {
        let s = parse_select(
            "SELECT COUNT(DISTINCT rider) riders, TUMBLE(ts, 60000) w \
             FROM trips GROUP BY TUMBLE(ts, 60000)",
        )
        .unwrap();
        assert!(matches!(
            s.projections[0].expr,
            Expr::Agg {
                func: AggName::Count,
                distinct: true,
                ..
            }
        ));
        assert!(matches!(
            s.group_by[0],
            Expr::Function { ref name, ref args } if name == "TUMBLE" && args.len() == 2
        ));
    }

    #[test]
    fn parses_arithmetic_with_precedence() {
        let s = parse_select("SELECT a + b * 2 AS x FROM t").unwrap();
        match &s.projections[0].expr {
            Expr::Binary {
                op: BinOp::Add,
                right,
                ..
            } => {
                assert!(matches!(**right, Expr::Binary { op: BinOp::Mul, .. }));
            }
            other => panic!("precedence broken: {other:?}"),
        }
        // parenthesized override
        let s = parse_select("SELECT (a + b) * 2 AS x FROM t").unwrap();
        assert!(matches!(
            s.projections[0].expr,
            Expr::Binary { op: BinOp::Mul, .. }
        ));
    }

    #[test]
    fn parses_or_and_precedence() {
        let s = parse_select("SELECT * FROM t WHERE a = 1 OR b = 2 AND c = 3").unwrap();
        match s.where_clause.unwrap() {
            Expr::Binary {
                op: BinOp::Or,
                right,
                ..
            } => {
                assert!(matches!(*right, Expr::Binary { op: BinOp::And, .. }));
            }
            other => panic!("OR/AND precedence broken: {other:?}"),
        }
    }

    #[test]
    fn negative_literals() {
        let s = parse_select("SELECT * FROM t WHERE x > -5").unwrap();
        match s.where_clause.unwrap() {
            Expr::Binary { right, .. } => {
                assert_eq!(*right, Expr::Literal(Value::Int(-5)));
            }
            _ => panic!(),
        }
    }

    #[test]
    fn rejects_malformed_sql() {
        assert!(parse_select("SELECT").is_err());
        assert!(parse_select("SELECT a FROM").is_err());
        assert!(parse_select("SELECT a FROM t WHERE").is_err());
        assert!(parse_select("SELECT a FROM t LIMIT x").is_err());
        assert!(parse_select("SELECT a FROM t extra garbage !").is_err());
        assert!(parse_select("SELECT a FROM t INNER WHERE a = 1").is_err());
        assert!(parse_select("SELECT a FROM t LIMIT 1.5").is_err());
    }
}
