//! # rtdi-sql
//!
//! The full SQL layer — the Presto stand-in of §4.5 — over the OLAP store
//! and the warehouse:
//!
//! - [`lexer`], [`ast`], [`parser`]: a SQL frontend covering the
//!   analytical subset the paper's use cases need (projections,
//!   aggregations, GROUP BY / HAVING / ORDER BY / LIMIT, inner joins,
//!   subqueries in FROM, function calls such as `TUMBLE` used by
//!   FlinkSQL);
//! - [`expr`]: expression evaluation over rows;
//! - [`plan`]: logical plans and the AST-to-plan translator;
//! - [`optimizer`]: predicate / projection / aggregation / limit pushdown
//!   into connectors — the §4.5 contribution ("we enhanced Presto's query
//!   planner and extended Presto Connector API to push as many operators
//!   down to the Pinot layer as possible");
//! - [`connector`]: the Connector API plus the Pinot and Hive connectors;
//! - [`catalog`]: hybrid-table federation — the time-boundary planner
//!   splitting each query between the realtime store and archival
//!   segments, with partition-pruned scatter and a freshness-aware
//!   result cache;
//! - [`engine`]: the MPP-style in-memory executor and the federated query
//!   entry point.

pub mod ast;
pub mod catalog;
pub mod connector;
pub mod engine;
pub mod expr;
pub mod lexer;
pub mod optimizer;
pub mod parser;
pub mod plan;

pub use catalog::{HybridTable, OfflineSegment, RealtimeSide};
pub use connector::{Connector, HiveConnector, PinotConnector, Pushdown, ScanOutput};
pub use engine::{EngineConfig, SqlEngine};
pub use parser::parse_select;
