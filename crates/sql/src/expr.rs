//! Expression evaluation over rows.

use crate::ast::{BinOp, Expr};
use rtdi_common::{Error, Result, Row, Value};

/// Evaluate an expression against a row. Qualified columns (`o.city`)
/// resolve against `qualifier.column` entries first, then bare names
/// (join outputs carry both). Rows are schemaless, so a column absent
/// from a row evaluates to NULL — the same semantics the OLAP layer
/// applies — rather than erroring.
pub fn eval(expr: &Expr, row: &Row) -> Result<Value> {
    match expr {
        Expr::Column { qualifier, name } => {
            if let Some(q) = qualifier {
                let qualified = format!("{q}.{name}");
                if let Some(v) = row.get(&qualified) {
                    return Ok(v.clone());
                }
            }
            Ok(row.get(name).cloned().unwrap_or(Value::Null))
        }
        Expr::Literal(v) => Ok(v.clone()),
        Expr::Binary { left, op, right } => {
            let l = eval(left, row)?;
            let r = eval(right, row)?;
            eval_binary(&l, *op, &r)
        }
        Expr::Function { name, args } => eval_function(name, args, row),
        Expr::Star => Err(Error::Sql("'*' is not a scalar expression".into())),
        Expr::Agg { .. } => Err(Error::Sql(
            "aggregate evaluated outside an aggregation context".into(),
        )),
    }
}

fn eval_binary(l: &Value, op: BinOp, r: &Value) -> Result<Value> {
    use BinOp::*;
    match op {
        And => Ok(Value::Bool(truthy(l) && truthy(r))),
        Or => Ok(Value::Bool(truthy(l) || truthy(r))),
        Eq | Neq | Lt | Le | Gt | Ge => {
            if l.is_null() || r.is_null() {
                // SQL three-valued logic collapsed to false
                return Ok(Value::Bool(false));
            }
            let ord = l.total_cmp(r);
            let b = match op {
                Eq => ord == std::cmp::Ordering::Equal,
                Neq => ord != std::cmp::Ordering::Equal,
                Lt => ord == std::cmp::Ordering::Less,
                Le => ord != std::cmp::Ordering::Greater,
                Gt => ord == std::cmp::Ordering::Greater,
                Ge => ord != std::cmp::Ordering::Less,
                _ => unreachable!(),
            };
            Ok(Value::Bool(b))
        }
        Add | Sub | Mul | Div => {
            if l.is_null() || r.is_null() {
                return Ok(Value::Null);
            }
            // integer arithmetic stays integral except division
            if let (Some(a), Some(b), false) = (l.as_int(), r.as_int(), op == Div) {
                // only when both are actual Ints (not round doubles)
                if matches!(l, Value::Int(_)) && matches!(r, Value::Int(_)) {
                    return Ok(Value::Int(match op {
                        Add => a.wrapping_add(b),
                        Sub => a.wrapping_sub(b),
                        Mul => a.wrapping_mul(b),
                        _ => unreachable!(),
                    }));
                }
            }
            let a = l
                .as_double()
                .ok_or_else(|| Error::Sql(format!("non-numeric operand {l:?}")))?;
            let b = r
                .as_double()
                .ok_or_else(|| Error::Sql(format!("non-numeric operand {r:?}")))?;
            let v = match op {
                Add => a + b,
                Sub => a - b,
                Mul => a * b,
                Div => {
                    if b == 0.0 {
                        return Ok(Value::Null); // SQL: division by zero -> NULL (lenient)
                    }
                    a / b
                }
                _ => unreachable!(),
            };
            Ok(Value::Double(v))
        }
    }
}

fn eval_function(name: &str, args: &[Expr], row: &Row) -> Result<Value> {
    let upper = name.to_ascii_uppercase();
    match upper.as_str() {
        // TUMBLE(ts, size): window start of the tumbling window containing ts
        "TUMBLE" => {
            if args.len() != 2 {
                return Err(Error::Sql("TUMBLE(ts, size_ms) takes 2 arguments".into()));
            }
            let ts = eval(&args[0], row)?
                .as_int()
                .ok_or_else(|| Error::Sql("TUMBLE ts must be integral".into()))?;
            let size = eval(&args[1], row)?
                .as_int()
                .filter(|s| *s > 0)
                .ok_or_else(|| Error::Sql("TUMBLE size must be positive".into()))?;
            Ok(Value::Int(ts.div_euclid(size) * size))
        }
        "ABS" => {
            let v = eval(&args[0], row)?;
            match v {
                Value::Int(i) => Ok(Value::Int(i.abs())),
                Value::Double(d) => Ok(Value::Double(d.abs())),
                Value::Null => Ok(Value::Null),
                other => Err(Error::Sql(format!("ABS on non-numeric {other:?}"))),
            }
        }
        "COALESCE" => {
            for a in args {
                let v = eval(a, row)?;
                if !v.is_null() {
                    return Ok(v);
                }
            }
            Ok(Value::Null)
        }
        "LOWER" => match eval(&args[0], row)? {
            Value::Str(s) => Ok(Value::Str(s.to_lowercase())),
            Value::Null => Ok(Value::Null),
            other => Err(Error::Sql(format!("LOWER on non-string {other:?}"))),
        },
        "UPPER" => match eval(&args[0], row)? {
            Value::Str(s) => Ok(Value::Str(s.to_uppercase())),
            Value::Null => Ok(Value::Null),
            other => Err(Error::Sql(format!("UPPER on non-string {other:?}"))),
        },
        other => Err(Error::Sql(format!("unknown function '{other}'"))),
    }
}

/// SQL truthiness for WHERE/HAVING results.
pub fn truthy(v: &Value) -> bool {
    match v {
        Value::Bool(b) => *b,
        Value::Null => false,
        Value::Int(i) => *i != 0,
        Value::Double(d) => *d != 0.0,
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_select;

    fn where_expr(sql: &str) -> Expr {
        parse_select(&format!("SELECT * FROM t WHERE {sql}"))
            .unwrap()
            .where_clause
            .unwrap()
    }

    fn proj_expr(sql: &str) -> Expr {
        parse_select(&format!("SELECT {sql} FROM t"))
            .unwrap()
            .projections
            .remove(0)
            .expr
    }

    fn sample() -> Row {
        Row::new()
            .with("city", "sf")
            .with("fare", 12.5)
            .with("items", 3i64)
            .with("o.city", "la")
    }

    #[test]
    fn comparisons() {
        let row = sample();
        assert_eq!(
            eval(&where_expr("fare > 10"), &row).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            eval(&where_expr("fare > 20"), &row).unwrap(),
            Value::Bool(false)
        );
        assert_eq!(
            eval(&where_expr("city = 'sf' AND items <= 3"), &row).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            eval(&where_expr("city = 'nyc' OR items = 3"), &row).unwrap(),
            Value::Bool(true)
        );
    }

    #[test]
    fn qualified_columns_resolve_qualified_first() {
        let row = sample();
        assert_eq!(
            eval(&proj_expr("o.city"), &row).unwrap(),
            Value::Str("la".into())
        );
        assert_eq!(
            eval(&proj_expr("city"), &row).unwrap(),
            Value::Str("sf".into())
        );
        // unknown qualifier falls back to bare name
        assert_eq!(
            eval(&proj_expr("x.city"), &row).unwrap(),
            Value::Str("sf".into())
        );
    }

    #[test]
    fn arithmetic_types() {
        let row = sample();
        assert_eq!(eval(&proj_expr("items + 1"), &row).unwrap(), Value::Int(4));
        assert_eq!(
            eval(&proj_expr("fare * 2"), &row).unwrap(),
            Value::Double(25.0)
        );
        assert_eq!(
            eval(&proj_expr("items / 2"), &row).unwrap(),
            Value::Double(1.5)
        );
        assert_eq!(eval(&proj_expr("items / 0"), &row).unwrap(), Value::Null);
    }

    #[test]
    fn null_propagation() {
        let row = Row::new().with("x", Value::Null);
        assert_eq!(eval(&proj_expr("x + 1"), &row).unwrap(), Value::Null);
        assert_eq!(
            eval(&where_expr("x = 1"), &row).unwrap(),
            Value::Bool(false)
        );
        assert_eq!(
            eval(&where_expr("x != 1"), &row).unwrap(),
            Value::Bool(false)
        );
    }

    #[test]
    fn tumble_function() {
        let row = Row::new().with("ts", 12_345i64);
        assert_eq!(
            eval(&proj_expr("TUMBLE(ts, 1000)"), &row).unwrap(),
            Value::Int(12_000)
        );
        assert!(eval(&proj_expr("TUMBLE(ts, 0)"), &row).is_err());
    }

    #[test]
    fn scalar_functions() {
        let row = Row::new()
            .with("s", "MiXeD")
            .with("n", -4i64)
            .with("z", Value::Null);
        assert_eq!(
            eval(&proj_expr("LOWER(s)"), &row).unwrap(),
            Value::Str("mixed".into())
        );
        assert_eq!(eval(&proj_expr("ABS(n)"), &row).unwrap(), Value::Int(4));
        assert_eq!(
            eval(&proj_expr("COALESCE(z, n, 9)"), &row).unwrap(),
            Value::Int(-4)
        );
        assert!(eval(&proj_expr("NO_SUCH_FN(s)"), &row).is_err());
    }

    #[test]
    fn absent_column_is_null_but_misuse_errors() {
        let row = sample();
        // schemaless rows: absent column evaluates to NULL (matches OLAP)
        assert_eq!(eval(&proj_expr("ghost"), &row).unwrap(), Value::Null);
        assert_eq!(
            eval(&where_expr("ghost = 1"), &row).unwrap(),
            Value::Bool(false)
        );
        assert!(eval(&proj_expr("COUNT(fare)"), &row).is_err()); // agg outside agg ctx
    }
}
