//! Logical plans and the AST-to-plan translator.
//!
//! The planner mirrors Presto's structure at a small scale: relational
//! operators over named bindings, aggregates extracted into an Aggregate
//! node with projections rewritten to reference aggregate outputs, and
//! scans carrying a [`crate::connector::Pushdown`] that the optimizer
//! fills in.

use crate::ast::{AggName, Expr, OrderItem, SelectStmt, TableRef};
use crate::connector::Pushdown;
use rtdi_common::{Error, Result};

/// One aggregate computed by an Aggregate node.
#[derive(Debug, Clone, PartialEq)]
pub struct AggItem {
    /// Output column name.
    pub name: String,
    pub func: AggName,
    pub distinct: bool,
    /// `None` = COUNT(*).
    pub arg: Option<Expr>,
}

/// A logical plan node.
#[derive(Debug, Clone, PartialEq)]
pub enum Plan {
    Scan {
        catalog: Option<String>,
        table: String,
        binding: String,
        pushdown: Pushdown,
    },
    Filter {
        input: Box<Plan>,
        predicate: Expr,
    },
    Project {
        input: Box<Plan>,
        items: Vec<(String, Expr)>,
    },
    Aggregate {
        input: Box<Plan>,
        /// (output name, group expression)
        group_by: Vec<(String, Expr)>,
        aggs: Vec<AggItem>,
    },
    Join {
        left: Box<Plan>,
        right: Box<Plan>,
        left_binding: String,
        right_binding: String,
        on_left: Expr,
        on_right: Expr,
    },
    Sort {
        input: Box<Plan>,
        /// (output column name, desc)
        keys: Vec<(String, bool)>,
    },
    Limit {
        input: Box<Plan>,
        n: usize,
    },
}

impl Plan {
    /// Human-readable plan tree (EXPLAIN-style), for tests and docs.
    pub fn explain(&self) -> String {
        let mut out = String::new();
        self.explain_into(0, &mut out);
        out
    }

    fn explain_into(&self, depth: usize, out: &mut String) {
        let pad = "  ".repeat(depth);
        match self {
            Plan::Scan {
                catalog,
                table,
                pushdown,
                ..
            } => {
                let cat = catalog.as_deref().unwrap_or("default");
                out.push_str(&format!(
                    "{pad}Scan {cat}.{table} [filters={} proj={} agg={} limit={:?}]\n",
                    pushdown.predicates.len(),
                    pushdown
                        .projection
                        .as_ref()
                        .map(|p| p.len().to_string())
                        .unwrap_or_else(|| "*".into()),
                    pushdown.aggregation.is_some(),
                    pushdown.limit,
                ));
            }
            Plan::Filter { input, predicate } => {
                out.push_str(&format!("{pad}Filter {predicate:?}\n"));
                input.explain_into(depth + 1, out);
            }
            Plan::Project { input, items } => {
                let names: Vec<&str> = items.iter().map(|(n, _)| n.as_str()).collect();
                out.push_str(&format!("{pad}Project [{}]\n", names.join(", ")));
                input.explain_into(depth + 1, out);
            }
            Plan::Aggregate {
                input,
                group_by,
                aggs,
            } => {
                let g: Vec<&str> = group_by.iter().map(|(n, _)| n.as_str()).collect();
                let a: Vec<&str> = aggs.iter().map(|x| x.name.as_str()).collect();
                out.push_str(&format!(
                    "{pad}Aggregate group=[{}] aggs=[{}]\n",
                    g.join(", "),
                    a.join(", ")
                ));
                input.explain_into(depth + 1, out);
            }
            Plan::Join {
                left,
                right,
                on_left,
                on_right,
                ..
            } => {
                out.push_str(&format!("{pad}Join on {on_left:?} = {on_right:?}\n"));
                left.explain_into(depth + 1, out);
                right.explain_into(depth + 1, out);
            }
            Plan::Sort { input, keys } => {
                out.push_str(&format!("{pad}Sort {keys:?}\n"));
                input.explain_into(depth + 1, out);
            }
            Plan::Limit { input, n } => {
                out.push_str(&format!("{pad}Limit {n}\n"));
                input.explain_into(depth + 1, out);
            }
        }
    }
}

/// Translate a parsed SELECT into a logical plan.
pub fn plan_select(stmt: &SelectStmt) -> Result<Plan> {
    // FROM (+ JOINs)
    let mut plan = plan_table_ref(&stmt.from)?;
    let mut left_binding = stmt.from.binding_name().to_string();
    for join in &stmt.joins {
        let right = plan_table_ref(&join.table)?;
        let right_binding = join.table.binding_name().to_string();
        plan = Plan::Join {
            left: Box::new(plan),
            right: Box::new(right),
            left_binding: left_binding.clone(),
            right_binding: right_binding.clone(),
            on_left: join.on_left.clone(),
            on_right: join.on_right.clone(),
        };
        left_binding = format!("{left_binding}+{right_binding}");
    }

    // WHERE
    if let Some(w) = &stmt.where_clause {
        if w.contains_agg() {
            return Err(Error::Sql("aggregates are not allowed in WHERE".into()));
        }
        plan = Plan::Filter {
            input: Box::new(plan),
            predicate: w.clone(),
        };
    }

    // aggregation?
    let has_agg = stmt.projections.iter().any(|p| p.expr.contains_agg())
        || stmt
            .having
            .as_ref()
            .map(|h| h.contains_agg())
            .unwrap_or(false)
        || stmt.order_by.iter().any(|o| o.expr.contains_agg())
        || !stmt.group_by.is_empty();

    let mut projections: Vec<(String, Expr)> = Vec::new();
    let mut having = stmt.having.clone();
    let mut order_exprs: Vec<OrderItem> = stmt.order_by.clone();

    if has_agg {
        // name group expressions; reuse a projection alias when the
        // projection is exactly the group expression
        let mut group_by: Vec<(String, Expr)> = Vec::new();
        for g in &stmt.group_by {
            let name = stmt
                .projections
                .iter()
                .find(|p| &p.expr == g)
                .map(|p| p.output_name())
                .unwrap_or_else(|| g.default_name());
            group_by.push((name, g.clone()));
        }
        // collect aggregate calls from projections / having / order by
        let mut aggs: Vec<AggItem> = Vec::new();
        let mut rewritten_projs = Vec::new();
        for item in &stmt.projections {
            if matches!(item.expr, Expr::Star) {
                return Err(Error::Sql(
                    "SELECT * cannot be combined with aggregation".into(),
                ));
            }
            let rewritten = extract_aggs(&item.expr, &mut aggs);
            // group expressions referenced by name
            let rewritten = rewrite_group_refs(&rewritten, &group_by);
            rewritten_projs.push((item.output_name(), rewritten));
        }
        if let Some(h) = having.take() {
            having = Some(rewrite_group_refs(&extract_aggs(&h, &mut aggs), &group_by));
        }
        for o in &mut order_exprs {
            o.expr = rewrite_group_refs(&extract_aggs(&o.expr, &mut aggs), &group_by);
        }
        // validate: non-agg projections must be group expressions
        for (name, expr) in &rewritten_projs {
            validate_grouped_expr(expr, &group_by, name)?;
        }
        plan = Plan::Aggregate {
            input: Box::new(plan),
            group_by,
            aggs,
        };
        if let Some(h) = having {
            plan = Plan::Filter {
                input: Box::new(plan),
                predicate: h,
            };
        }
        projections = rewritten_projs;
    } else {
        for item in &stmt.projections {
            if matches!(item.expr, Expr::Star) {
                // star projection handled by executor as identity
                projections.clear();
                break;
            }
            projections.push((item.output_name(), item.expr.clone()));
        }
    }

    // ORDER BY is evaluated over the projected output: resolve each key to
    // an output column, adding hidden projections for non-trivial exprs
    let mut sort_keys: Vec<(String, bool)> = Vec::new();
    for (i, o) in order_exprs.iter().enumerate() {
        let name = match &o.expr {
            Expr::Column { name, .. }
                if projections.is_empty() || projections.iter().any(|(n, _)| n == name) =>
            {
                name.clone()
            }
            expr => {
                if projections.is_empty() {
                    return Err(Error::Sql(
                        "ORDER BY expression requires explicit projections".into(),
                    ));
                }
                let hidden = format!("__sort{i}");
                projections.push((hidden.clone(), expr.clone()));
                hidden
            }
        };
        sort_keys.push((name, o.desc));
    }

    if !projections.is_empty() {
        plan = Plan::Project {
            input: Box::new(plan),
            items: projections,
        };
    }
    if !sort_keys.is_empty() {
        plan = Plan::Sort {
            input: Box::new(plan),
            keys: sort_keys,
        };
    }
    if let Some(n) = stmt.limit {
        plan = Plan::Limit {
            input: Box::new(plan),
            n,
        };
    }
    Ok(plan)
}

fn plan_table_ref(t: &TableRef) -> Result<Plan> {
    match t {
        TableRef::Table {
            catalog,
            name,
            alias,
        } => Ok(Plan::Scan {
            catalog: catalog.clone(),
            table: name.clone(),
            binding: alias.clone().unwrap_or_else(|| name.clone()),
            pushdown: Pushdown::default(),
        }),
        TableRef::Subquery { query, .. } => plan_select(query),
    }
}

/// Replace aggregate calls with references to named aggregate outputs,
/// appending new [`AggItem`]s as discovered.
fn extract_aggs(expr: &Expr, aggs: &mut Vec<AggItem>) -> Expr {
    match expr {
        Expr::Agg {
            func,
            distinct,
            arg,
        } => {
            let item = AggItem {
                name: expr.default_name(),
                func: *func,
                distinct: *distinct,
                arg: arg.as_deref().cloned(),
            };
            // dedupe identical aggregates
            let name = match aggs
                .iter()
                .find(|a| a.func == item.func && a.distinct == item.distinct && a.arg == item.arg)
            {
                Some(existing) => existing.name.clone(),
                None => {
                    let name = if aggs.iter().any(|a| a.name == item.name) {
                        format!("{}_{}", item.name, aggs.len())
                    } else {
                        item.name.clone()
                    };
                    aggs.push(AggItem {
                        name: name.clone(),
                        ..item
                    });
                    name
                }
            };
            Expr::Column {
                qualifier: None,
                name,
            }
        }
        Expr::Binary { left, op, right } => Expr::Binary {
            left: Box::new(extract_aggs(left, aggs)),
            op: *op,
            right: Box::new(extract_aggs(right, aggs)),
        },
        Expr::Function { name, args } => Expr::Function {
            name: name.clone(),
            args: args.iter().map(|a| extract_aggs(a, aggs)).collect(),
        },
        other => other.clone(),
    }
}

/// Replace group-by expressions with references to their output columns
/// (e.g. `TUMBLE(ts, 1000)` in the projection becomes a column ref to the
/// aggregate's group output).
fn rewrite_group_refs(expr: &Expr, group_by: &[(String, Expr)]) -> Expr {
    if let Some((name, _)) = group_by.iter().find(|(_, g)| g == expr) {
        return Expr::Column {
            qualifier: None,
            name: name.clone(),
        };
    }
    match expr {
        Expr::Binary { left, op, right } => Expr::Binary {
            left: Box::new(rewrite_group_refs(left, group_by)),
            op: *op,
            right: Box::new(rewrite_group_refs(right, group_by)),
        },
        Expr::Function { name, args } => Expr::Function {
            name: name.clone(),
            args: args
                .iter()
                .map(|a| rewrite_group_refs(a, group_by))
                .collect(),
        },
        other => other.clone(),
    }
}

fn validate_grouped_expr(expr: &Expr, group_by: &[(String, Expr)], context: &str) -> Result<()> {
    match expr {
        Expr::Column { name, .. } => {
            // must be a group output or an aggregate output (aggregate
            // outputs were created by extract_aggs, which uses names not
            // present in group_by; we cannot distinguish here, so accept
            // names matching either source — unknown names surface at
            // execution time)
            let _ = (name, group_by);
            Ok(())
        }
        Expr::Binary { left, right, .. } => {
            validate_grouped_expr(left, group_by, context)?;
            validate_grouped_expr(right, group_by, context)
        }
        Expr::Function { args, .. } => {
            for a in args {
                validate_grouped_expr(a, group_by, context)?;
            }
            Ok(())
        }
        Expr::Literal(_) => Ok(()),
        Expr::Star => Err(Error::Sql(format!(
            "'*' invalid in grouped context '{context}'"
        ))),
        Expr::Agg { .. } => Err(Error::Sql("nested aggregate".into())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_select;

    fn plan(sql: &str) -> Plan {
        plan_select(&parse_select(sql).unwrap()).unwrap()
    }

    #[test]
    fn simple_select_plans_project_over_scan() {
        let p = plan("SELECT city, fare FROM trips WHERE fare > 10 LIMIT 5");
        let text = p.explain();
        assert!(text.contains("Limit 5"));
        assert!(text.contains("Project [city, fare]"));
        assert!(text.contains("Filter"));
        assert!(text.contains("Scan default.trips"));
    }

    #[test]
    fn aggregation_extraction_and_having() {
        let p = plan(
            "SELECT city, COUNT(*) AS n FROM trips GROUP BY city HAVING COUNT(*) > 5 ORDER BY n DESC",
        );
        let text = p.explain();
        assert!(text.contains("Aggregate group=[city] aggs=[count_star]"));
        // HAVING rewritten to reference the aggregate output
        assert!(text.contains("Filter"));
        assert!(text.contains("Sort"));
        // deduplicated: COUNT(*) appears once even though used twice
        match find_aggregate(&p) {
            Some(Plan::Aggregate { aggs, .. }) => assert_eq!(aggs.len(), 1),
            other => panic!("no aggregate: {other:?}"),
        }
    }

    fn find_aggregate(p: &Plan) -> Option<&Plan> {
        match p {
            Plan::Aggregate { .. } => Some(p),
            Plan::Filter { input, .. }
            | Plan::Project { input, .. }
            | Plan::Sort { input, .. }
            | Plan::Limit { input, .. } => find_aggregate(input),
            Plan::Join { left, right, .. } => {
                find_aggregate(left).or_else(|| find_aggregate(right))
            }
            Plan::Scan { .. } => None,
        }
    }

    #[test]
    fn group_expr_references_rewritten() {
        let p =
            plan("SELECT TUMBLE(ts, 1000) AS w, SUM(fare) FROM trips GROUP BY TUMBLE(ts, 1000)");
        match &p {
            Plan::Project { items, .. } => {
                assert_eq!(items[0].0, "w");
                assert!(matches!(items[0].1, Expr::Column { ref name, .. } if name == "w"));
            }
            other => panic!("expected project, got {other:?}"),
        }
    }

    #[test]
    fn join_plan_structure() {
        let p = plan("SELECT o.city FROM orders o JOIN rest r ON o.rid = r.id WHERE o.total > 5");
        let text = p.explain();
        assert!(text.contains("Join"));
        assert!(text.matches("Scan").count() == 2);
    }

    #[test]
    fn subquery_plans_inline() {
        let p = plan("SELECT n FROM (SELECT COUNT(*) AS n FROM t GROUP BY city) s WHERE n > 2");
        let text = p.explain();
        assert!(text.contains("Aggregate"));
        assert!(text.contains("Filter"));
    }

    #[test]
    fn order_by_expression_gets_hidden_projection() {
        let p = plan("SELECT city, fare FROM t ORDER BY fare * 2 DESC");
        match &p {
            Plan::Sort { keys, input } => {
                assert_eq!(keys[0], ("__sort0".to_string(), true));
                match &**input {
                    Plan::Project { items, .. } => {
                        assert!(items.iter().any(|(n, _)| n == "__sort0"));
                    }
                    other => panic!("expected project, got {other:?}"),
                }
            }
            other => panic!("expected sort, got {other:?}"),
        }
    }

    #[test]
    fn rejects_agg_in_where_and_star_with_group() {
        assert!(plan_select(
            &parse_select("SELECT city FROM t WHERE COUNT(*) > 1 GROUP BY city").unwrap()
        )
        .is_err());
        assert!(plan_select(&parse_select("SELECT * FROM t GROUP BY city").unwrap()).is_err());
    }
}
