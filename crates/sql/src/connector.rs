//! The Connector API and the Pinot / Hive connectors (§4.5).
//!
//! "Presto ... provides a Connector API with high performance I/O
//! interface to multiple data sources... we enhanced Presto's query
//! planner and extended Presto Connector API to push as many operators
//! down to the Pinot layer as possible, such as projection, aggregation
//! and limit."

use crate::catalog::HybridTable;
use rtdi_common::{AggFn, Deadline, Error, FieldType, Priority, Result, Row, Schema, Value};
use rtdi_olap::broker::Broker;
use rtdi_olap::query::{Predicate, Query as OlapQuery, SortOrder};
use rtdi_olap::table::OlapTable;
use rtdi_storage::hive::HiveCatalog;
use std::collections::HashMap;
use std::sync::Arc;

/// A fully-pushable aggregation.
///
/// Shape vectors are `Arc`-shared: the optimizer builds them once and
/// every scan hands them to the OLAP [`Query`](OlapQuery) as a refcount
/// bump instead of a deep clone (repeated dashboard queries used to
/// re-clone the whole pushdown per scan).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PushedAgg {
    pub group_by: Arc<Vec<String>>,
    /// (output name, function over a bare column)
    pub aggs: Arc<Vec<(String, AggFn)>>,
}

/// What the planner asks a connector to apply during the scan.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Pushdown {
    pub predicates: Arc<Vec<Predicate>>,
    pub projection: Option<Arc<Vec<String>>>,
    pub aggregation: Option<PushedAgg>,
    /// (column, desc) — only honored together with `limit`.
    pub order_by: Vec<(String, bool)>,
    pub limit: Option<usize>,
    /// Partition-pruned scatter: partition ids derived by the optimizer
    /// from equality predicates on the table's partition column.
    pub partitions: Option<Arc<Vec<usize>>>,
    /// End-to-end deadline propagated from the engine: connectors shed
    /// work they cannot finish in budget instead of serving stale answers
    /// late (degraded-serving, not an error).
    pub deadline: Option<Deadline>,
    /// Scheduling lane: backfill scans are the first to be shed and run
    /// at reduced parallelism.
    pub priority: Priority,
}

impl Pushdown {
    pub fn is_empty(&self) -> bool {
        self.predicates.is_empty()
            && self.projection.is_none()
            && self.aggregation.is_none()
            && self.limit.is_none()
    }
}

/// What a connector can apply server-side.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Capabilities {
    pub filters: bool,
    pub projection: bool,
    pub aggregation: bool,
    pub limit: bool,
}

/// Scan result plus execution statistics (for the pushdown experiments).
#[derive(Debug, Clone, Default)]
pub struct ScanOutput {
    pub rows: Vec<Row>,
    /// Documents the backing store had to touch.
    pub docs_scanned: u64,
    /// Rows shipped from the connector to the engine.
    pub rows_shipped: u64,
    /// Pinot partial-response semantics: the backing store could not reach
    /// every segment and the rows cover only the available ones.
    pub partial: bool,
    /// Segments the backing store could not reach.
    pub segments_unavailable: u64,
    /// Segments actually consulted after pruning.
    pub segments_queried: u64,
    /// Segments skipped by time-boundary, partition, or zone-map pruning.
    pub segments_pruned: u64,
    /// Cold bytes decoded from archival segment files for this scan
    /// (0 when every touched column was already resident or cached).
    pub bytes_read: u64,
    /// True when the scan was answered from a federation result cache.
    pub cache_hit: bool,
    /// The scan's deadline expired mid-scatter; `rows` cover only the
    /// segments served before the budget ran out.
    pub deadline_exceeded: bool,
    /// Segments abandoned because the deadline expired.
    pub segments_shed: u64,
}

/// A data source exposed to the SQL engine.
pub trait Connector: Send + Sync {
    fn capabilities(&self) -> Capabilities;
    fn table_schema(&self, table: &str) -> Result<Schema>;
    /// Scan a table applying the (capability-compatible) pushdown.
    fn scan(&self, table: &str, pushdown: &Pushdown) -> Result<ScanOutput>;
    fn table_names(&self) -> Vec<String>;
    /// `(column, partition count)` when the table partitions rows by
    /// `hash(column) % count` on every side — lets the optimizer derive a
    /// partition-pruned scatter from an equality predicate.
    fn partition_spec(&self, table: &str) -> Option<(String, usize)> {
        let _ = table;
        None
    }
}

/// How the Pinot connector reaches a table's segments.
#[derive(Clone)]
enum PinotSource {
    /// In-process hybrid table (no server fan-out).
    Direct(Arc<OlapTable>),
    /// Table served through a scatter-gather [`Broker`] over server
    /// nodes. Server death surfaces here as Pinot partial-response
    /// metadata rather than a hard error.
    Brokered { schema: Schema, broker: Arc<Broker> },
    /// Federated hybrid table: realtime side + archival segments, split
    /// at the time boundary by [`HybridTable`].
    Hybrid(Arc<HybridTable>),
}

/// Connector over the real-time OLAP store. Tables can be registered
/// after the connector is shared with the engine (`register` takes
/// `&self`), matching how new Pinot tables appear to Presto without a
/// restart.
pub struct PinotConnector {
    tables: parking_lot::RwLock<HashMap<String, PinotSource>>,
}

impl PinotConnector {
    pub fn new() -> Self {
        PinotConnector {
            tables: parking_lot::RwLock::new(HashMap::new()),
        }
    }

    pub fn register(&self, table: Arc<OlapTable>) {
        self.tables
            .write()
            .insert(table.name().to_string(), PinotSource::Direct(table));
    }

    /// Register a table served by a scatter-gather broker. Queries route
    /// through the broker's replica-aware plan, so a dead server degrades
    /// the scan to `partial=true` instead of failing it.
    pub fn register_brokered(&self, name: &str, schema: Schema, broker: Arc<Broker>) {
        self.tables
            .write()
            .insert(name.to_string(), PinotSource::Brokered { schema, broker });
    }

    /// Register a federated hybrid table: queries split at the time
    /// boundary between its realtime side and its archival segments.
    pub fn register_hybrid(&self, table: Arc<HybridTable>) {
        self.tables
            .write()
            .insert(table.name().to_string(), PinotSource::Hybrid(table));
    }

    fn table(&self, name: &str) -> Result<PinotSource> {
        self.tables
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| Error::NotFound(format!("pinot table '{name}'")))
    }
}

impl Default for PinotConnector {
    fn default() -> Self {
        Self::new()
    }
}

impl Connector for PinotConnector {
    fn capabilities(&self) -> Capabilities {
        Capabilities {
            filters: true,
            projection: true,
            aggregation: true,
            limit: true,
        }
    }

    fn table_schema(&self, table: &str) -> Result<Schema> {
        Ok(match self.table(table)? {
            PinotSource::Direct(t) => t.config().schema.clone(),
            PinotSource::Brokered { schema, .. } => schema,
            PinotSource::Hybrid(t) => t.schema().clone(),
        })
    }

    fn table_names(&self) -> Vec<String> {
        self.tables.read().keys().cloned().collect()
    }

    fn partition_spec(&self, table: &str) -> Option<(String, usize)> {
        match self.table(table).ok()? {
            PinotSource::Hybrid(t) => t.partition_spec(),
            _ => None,
        }
    }

    fn scan(&self, table: &str, pushdown: &Pushdown) -> Result<ScanOutput> {
        let source = self.table(table)?;
        let q = pushdown_query(table, pushdown);
        let (mut result, schema) = match &source {
            PinotSource::Direct(t) => (t.query(&q)?, t.config().schema.clone()),
            PinotSource::Brokered { schema, broker } => (broker.query(&q)?, schema.clone()),
            // the hybrid table runs its own two-sided plan over the raw
            // pushdown (it must split the time predicate itself)
            PinotSource::Hybrid(t) => return t.scan(pushdown),
        };
        if let Some(agg) = &pushdown.aggregation {
            restore_group_key_types(&mut result.rows, &agg.group_by, &schema);
        }
        Ok(ScanOutput {
            rows_shipped: result.rows.len() as u64,
            docs_scanned: result.docs_scanned,
            partial: result.partial,
            segments_unavailable: result.segments_unavailable,
            segments_queried: result.segments_queried,
            segments_pruned: result.segments_pruned,
            bytes_read: 0,
            cache_hit: false,
            deadline_exceeded: result.deadline_exceeded,
            segments_shed: result.segments_shed,
            rows: result.rows,
        })
    }
}

/// Build the OLAP query a pushdown describes. The shape vectors are
/// shared with the pushdown via `Arc`, so repeated scans of the same
/// plan allocate no per-scan copies. Shared by the direct Pinot scan and
/// the hybrid federation planner.
pub(crate) fn pushdown_query(table: &str, pushdown: &Pushdown) -> OlapQuery {
    let mut q = OlapQuery::select_all(table);
    q.predicates = Arc::clone(&pushdown.predicates);
    q.partitions = pushdown.partitions.as_ref().map(Arc::clone);
    q.deadline = pushdown.deadline.clone();
    q.priority = pushdown.priority;
    if let Some(agg) = &pushdown.aggregation {
        q.aggregations = Arc::clone(&agg.aggs);
        q.group_by = Arc::clone(&agg.group_by);
    } else if let Some(proj) = &pushdown.projection {
        q.select = Arc::clone(proj);
    }
    if pushdown.limit.is_some() {
        for (col, desc) in &pushdown.order_by {
            q = q.order(
                col.clone(),
                if *desc {
                    SortOrder::Desc
                } else {
                    SortOrder::Asc
                },
            );
        }
        // LIMIT without ORDER BY is only pushable for selections; for
        // aggregations the engine applies it post-merge (already merged
        // here, so applying is safe either way)
        q.limit = pushdown.limit;
    }
    q
}

/// The OLAP store renders non-null group keys as strings (NULL keys
/// arrive as real `Value::Null`); restore the schema types so pushed and
/// unpushed plans produce identical rows.
pub(crate) fn restore_group_key_types(rows: &mut [Row], group_by: &[String], schema: &Schema) {
    for row in rows {
        for col in group_by {
            let Some(field) = schema.field(col) else {
                continue;
            };
            let Some(Value::Str(s)) = row.get(col).cloned() else {
                continue;
            };
            let typed = match field.field_type {
                FieldType::Int | FieldType::Timestamp => {
                    s.parse::<i64>().map(Value::Int).unwrap_or(Value::Str(s))
                }
                FieldType::Double => s.parse::<f64>().map(Value::Double).unwrap_or(Value::Str(s)),
                FieldType::Bool => match s.as_str() {
                    "true" => Value::Bool(true),
                    "false" => Value::Bool(false),
                    _ => Value::Str(s),
                },
                _ => Value::Str(s),
            };
            row.set(col, typed);
        }
    }
}

/// Connector over the warehouse: full scans only (the paper's point —
/// "sub-second query latencies ... is not possible to do on standard
/// backends such as HDFS/Hive").
pub struct HiveConnector {
    catalog: HiveCatalog,
}

impl HiveConnector {
    pub fn new(catalog: HiveCatalog) -> Self {
        HiveConnector { catalog }
    }
}

impl Connector for HiveConnector {
    fn capabilities(&self) -> Capabilities {
        Capabilities::default() // nothing pushable
    }

    fn table_schema(&self, table: &str) -> Result<Schema> {
        Ok(self.catalog.table(table)?.schema())
    }

    fn table_names(&self) -> Vec<String> {
        self.catalog.table_names()
    }

    fn scan(&self, table: &str, pushdown: &Pushdown) -> Result<ScanOutput> {
        if !pushdown.is_empty() {
            return Err(Error::Internal(
                "planner pushed operators into a connector without capabilities".into(),
            ));
        }
        let t = self.catalog.table(table)?;
        let rows = t.scan_all()?;
        Ok(ScanOutput {
            docs_scanned: rows.len() as u64,
            rows_shipped: rows.len() as u64,
            rows,
            ..Default::default()
        })
    }
}

/// In-memory connector over fixed row sets (tests, examples and the
/// "inject such queries into the automation framework" path of §5.4).
#[derive(Default)]
pub struct MemoryConnector {
    tables: HashMap<String, (Schema, Vec<Row>)>,
}

impl MemoryConnector {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn add_table(&mut self, name: &str, schema: Schema, rows: Vec<Row>) {
        self.tables.insert(name.to_string(), (schema, rows));
    }
}

impl Connector for MemoryConnector {
    fn capabilities(&self) -> Capabilities {
        Capabilities::default()
    }

    fn table_schema(&self, table: &str) -> Result<Schema> {
        self.tables
            .get(table)
            .map(|(s, _)| s.clone())
            .ok_or_else(|| Error::NotFound(format!("memory table '{table}'")))
    }

    fn table_names(&self) -> Vec<String> {
        self.tables.keys().cloned().collect()
    }

    fn scan(&self, table: &str, _pushdown: &Pushdown) -> Result<ScanOutput> {
        let (_, rows) = self
            .tables
            .get(table)
            .ok_or_else(|| Error::NotFound(format!("memory table '{table}'")))?;
        Ok(ScanOutput {
            docs_scanned: rows.len() as u64,
            rows_shipped: rows.len() as u64,
            rows: rows.clone(),
            ..Default::default()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtdi_common::FieldType;
    use rtdi_olap::segment::IndexSpec;
    use rtdi_olap::table::TableConfig;

    fn pinot_with_data() -> PinotConnector {
        let schema = Schema::of(
            "orders",
            &[
                ("city", FieldType::Str),
                ("total", FieldType::Double),
                ("ts", FieldType::Timestamp),
            ],
        );
        let table = OlapTable::new(
            TableConfig::new("orders", schema)
                .with_index_spec(IndexSpec::none().with_inverted(&["city"]))
                .with_partitions(1)
                .with_segment_rows(100),
        )
        .unwrap();
        for i in 0..500 {
            table
                .ingest(
                    0,
                    Row::new()
                        .with("city", ["sf", "la"][i % 2])
                        .with("total", i as f64)
                        .with("ts", i as i64),
                )
                .unwrap();
        }
        let c = PinotConnector::new();
        c.register(table);
        c
    }

    #[test]
    fn pinot_scan_with_filter_pushdown() {
        let c = pinot_with_data();
        let pd = Pushdown {
            predicates: Arc::new(vec![Predicate::eq("city", "sf")]),
            ..Default::default()
        };
        let out = c.scan("orders", &pd).unwrap();
        assert_eq!(out.rows.len(), 250);
        assert!(out.rows.iter().all(|r| r.get_str("city") == Some("sf")));
    }

    #[test]
    fn pinot_aggregation_pushdown_ships_tiny_results() {
        let c = pinot_with_data();
        let pd = Pushdown {
            aggregation: Some(PushedAgg {
                group_by: Arc::new(vec!["city".into()]),
                aggs: Arc::new(vec![
                    ("n".into(), AggFn::Count),
                    ("rev".into(), AggFn::Sum("total".into())),
                ]),
            }),
            ..Default::default()
        };
        let out = c.scan("orders", &pd).unwrap();
        assert_eq!(out.rows.len(), 2);
        assert_eq!(out.rows_shipped, 2);
        let total: i64 = out.rows.iter().map(|r| r.get_int("n").unwrap()).sum();
        assert_eq!(total, 500);
    }

    #[test]
    fn pinot_limit_and_order_pushdown() {
        let c = pinot_with_data();
        let pd = Pushdown {
            projection: Some(Arc::new(vec!["total".into()])),
            order_by: vec![("total".into(), true)],
            limit: Some(3),
            ..Default::default()
        };
        let out = c.scan("orders", &pd).unwrap();
        assert_eq!(out.rows.len(), 3);
        assert_eq!(out.rows[0].get_double("total"), Some(499.0));
    }

    #[test]
    fn hive_rejects_pushdown_and_scans_fully() {
        use rtdi_storage::object::InMemoryStore;
        let catalog = HiveCatalog::new(Arc::new(InMemoryStore::new()));
        let schema = Schema::of("t", &[("x", FieldType::Int)]);
        catalog.create_table("t", schema).unwrap();
        catalog
            .write_rows("t", "d000000", &[Row::new().with("x", 1i64)])
            .unwrap();
        let c = HiveConnector::new(catalog);
        assert!(!c.capabilities().filters);
        let out = c.scan("t", &Pushdown::default()).unwrap();
        assert_eq!(out.rows.len(), 1);
        let pd = Pushdown {
            predicates: Arc::new(vec![Predicate::eq("x", 1i64)]),
            ..Default::default()
        };
        assert!(c.scan("t", &pd).is_err());
    }

    #[test]
    fn unknown_tables_error() {
        let c = pinot_with_data();
        assert!(c.scan("ghost", &Pushdown::default()).is_err());
        assert!(c.table_schema("ghost").is_err());
        assert_eq!(c.table_names(), vec!["orders".to_string()]);
    }

    fn brokered_pinot() -> (PinotConnector, Arc<Broker>) {
        use rtdi_olap::broker::ServerNode;
        use rtdi_olap::segment::Segment;
        let schema = Schema::of(
            "orders",
            &[("city", FieldType::Str), ("total", FieldType::Double)],
        );
        let servers: Vec<Arc<ServerNode>> = (0..2).map(ServerNode::new).collect();
        let broker = Arc::new(Broker::new(servers));
        broker.register_table("orders", false);
        for s in 0..4 {
            let rows: Vec<Row> = (0..100)
                .map(|i| {
                    Row::new()
                        .with("city", ["sf", "la"][i % 2])
                        .with("total", (s * 100 + i) as f64)
                })
                .collect();
            let seg = Segment::build(format!("s{s}"), &schema, rows, &IndexSpec::none()).unwrap();
            // replication 1: a server death strands half the segments
            broker
                .place_segment("orders", Arc::new(seg), None, 1)
                .unwrap();
        }
        let c = PinotConnector::new();
        c.register_brokered("orders", schema, broker.clone());
        (c, broker)
    }

    #[test]
    fn brokered_scan_surfaces_partial_response() {
        let (c, broker) = brokered_pinot();
        let pd = Pushdown {
            aggregation: Some(PushedAgg {
                group_by: Arc::new(vec![]),
                aggs: Arc::new(vec![("n".into(), AggFn::Count)]),
            }),
            ..Default::default()
        };
        let healthy = c.scan("orders", &pd).unwrap();
        assert!(!healthy.partial);
        assert_eq!(healthy.segments_unavailable, 0);
        assert_eq!(healthy.rows[0].get_int("n"), Some(400));

        broker.servers()[1].set_down(true);
        let degraded = c.scan("orders", &pd).unwrap();
        assert!(degraded.partial, "dead server must mark the scan partial");
        assert_eq!(degraded.segments_unavailable, 2);
        assert_eq!(degraded.rows[0].get_int("n"), Some(200));

        broker.servers()[1].set_down(false);
        let healed = c.scan("orders", &pd).unwrap();
        assert!(!healed.partial);
        assert_eq!(healed.rows[0].get_int("n"), Some(400));
    }
}
