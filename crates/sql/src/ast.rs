//! SQL abstract syntax tree.

use rtdi_common::Value;

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    Eq,
    Neq,
    Lt,
    Le,
    Gt,
    Ge,
    And,
    Or,
    Add,
    Sub,
    Mul,
    Div,
}

/// Aggregate function names.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggName {
    Count,
    Sum,
    Avg,
    Min,
    Max,
}

/// An expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// `qualifier.column` or bare `column`.
    Column {
        qualifier: Option<String>,
        name: String,
    },
    Literal(Value),
    Binary {
        left: Box<Expr>,
        op: BinOp,
        right: Box<Expr>,
    },
    /// Aggregate call; `distinct` only meaningful for COUNT.
    Agg {
        func: AggName,
        distinct: bool,
        /// `None` = COUNT(*)
        arg: Option<Box<Expr>>,
    },
    /// Scalar/table function call (e.g. `TUMBLE(ts, 60000)`).
    Function {
        name: String,
        args: Vec<Expr>,
    },
    /// `*`
    Star,
}

impl Expr {
    pub fn col(name: &str) -> Expr {
        Expr::Column {
            qualifier: None,
            name: name.to_string(),
        }
    }

    /// Does this expression (transitively) contain an aggregate call?
    pub fn contains_agg(&self) -> bool {
        match self {
            Expr::Agg { .. } => true,
            Expr::Binary { left, right, .. } => left.contains_agg() || right.contains_agg(),
            Expr::Function { args, .. } => args.iter().any(Expr::contains_agg),
            _ => false,
        }
    }

    /// Column names referenced by this expression.
    pub fn referenced_columns(&self, out: &mut Vec<String>) {
        match self {
            Expr::Column { name, .. } if !out.contains(name) => {
                out.push(name.clone());
            }
            Expr::Column { .. } => {}
            Expr::Binary { left, right, .. } => {
                left.referenced_columns(out);
                right.referenced_columns(out);
            }
            Expr::Agg { arg: Some(a), .. } => a.referenced_columns(out),
            Expr::Function { args, .. } => {
                for a in args {
                    a.referenced_columns(out);
                }
            }
            _ => {}
        }
    }

    /// A display name used when no alias is given.
    pub fn default_name(&self) -> String {
        match self {
            Expr::Column { name, .. } => name.clone(),
            Expr::Literal(v) => v.to_string(),
            Expr::Agg {
                func,
                distinct,
                arg,
            } => {
                let f = match func {
                    AggName::Count => "count",
                    AggName::Sum => "sum",
                    AggName::Avg => "avg",
                    AggName::Min => "min",
                    AggName::Max => "max",
                };
                match arg {
                    None => format!("{f}_star"),
                    Some(a) => {
                        if *distinct {
                            format!("{f}_distinct_{}", a.default_name())
                        } else {
                            format!("{f}_{}", a.default_name())
                        }
                    }
                }
            }
            Expr::Function { name, args } => {
                let inner: Vec<String> = args.iter().map(|a| a.default_name()).collect();
                format!("{}({})", name.to_lowercase(), inner.join(","))
            }
            Expr::Binary { left, op, right } => {
                format!("{}_{op:?}_{}", left.default_name(), right.default_name())
            }
            Expr::Star => "*".into(),
        }
    }
}

/// One projected item.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectItem {
    pub expr: Expr,
    pub alias: Option<String>,
}

impl SelectItem {
    pub fn output_name(&self) -> String {
        self.alias
            .clone()
            .unwrap_or_else(|| self.expr.default_name())
    }
}

/// A table reference in FROM.
#[derive(Debug, Clone, PartialEq)]
pub enum TableRef {
    /// `catalog.table` or bare `table`.
    Table {
        catalog: Option<String>,
        name: String,
        alias: Option<String>,
    },
    /// `(SELECT ...) alias`
    Subquery {
        query: Box<SelectStmt>,
        alias: String,
    },
}

impl TableRef {
    /// The name other clauses refer to this relation by.
    pub fn binding_name(&self) -> &str {
        match self {
            TableRef::Table { alias: Some(a), .. } => a,
            TableRef::Table { name, .. } => name,
            TableRef::Subquery { alias, .. } => alias,
        }
    }
}

/// An inner join clause.
#[derive(Debug, Clone, PartialEq)]
pub struct Join {
    pub table: TableRef,
    /// Equi-join condition: (left expr, right expr).
    pub on_left: Expr,
    pub on_right: Expr,
}

/// ORDER BY item.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderItem {
    pub expr: Expr,
    pub desc: bool,
}

/// A SELECT statement.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectStmt {
    pub projections: Vec<SelectItem>,
    pub from: TableRef,
    pub joins: Vec<Join>,
    pub where_clause: Option<Expr>,
    pub group_by: Vec<Expr>,
    pub having: Option<Expr>,
    pub order_by: Vec<OrderItem>,
    pub limit: Option<usize>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contains_agg_walks_tree() {
        let e = Expr::Binary {
            left: Box::new(Expr::col("a")),
            op: BinOp::Add,
            right: Box::new(Expr::Agg {
                func: AggName::Sum,
                distinct: false,
                arg: Some(Box::new(Expr::col("b"))),
            }),
        };
        assert!(e.contains_agg());
        assert!(!Expr::col("a").contains_agg());
    }

    #[test]
    fn referenced_columns_dedupes() {
        let e = Expr::Binary {
            left: Box::new(Expr::col("a")),
            op: BinOp::Mul,
            right: Box::new(Expr::Binary {
                left: Box::new(Expr::col("a")),
                op: BinOp::Add,
                right: Box::new(Expr::col("b")),
            }),
        };
        let mut cols = Vec::new();
        e.referenced_columns(&mut cols);
        assert_eq!(cols, vec!["a".to_string(), "b".to_string()]);
    }

    #[test]
    fn default_names() {
        assert_eq!(Expr::col("x").default_name(), "x");
        let count_star = Expr::Agg {
            func: AggName::Count,
            distinct: false,
            arg: None,
        };
        assert_eq!(count_star.default_name(), "count_star");
        let avg = Expr::Agg {
            func: AggName::Avg,
            distinct: false,
            arg: Some(Box::new(Expr::col("fare"))),
        };
        assert_eq!(avg.default_name(), "avg_fare");
    }

    #[test]
    fn binding_names() {
        let t = TableRef::Table {
            catalog: Some("pinot".into()),
            name: "orders".into(),
            alias: None,
        };
        assert_eq!(t.binding_name(), "orders");
        let t = TableRef::Table {
            catalog: None,
            name: "orders".into(),
            alias: Some("o".into()),
        };
        assert_eq!(t.binding_name(), "o");
    }
}
