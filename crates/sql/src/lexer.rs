//! SQL tokenizer.

use rtdi_common::{Error, Result};

/// One SQL token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Keyword or identifier (uppercased keywords are matched
    /// case-insensitively by the parser; identifiers keep their case).
    Ident(String),
    /// Single-quoted string literal.
    Str(String),
    Number(f64),
    Comma,
    Dot,
    LParen,
    RParen,
    Star,
    Plus,
    Minus,
    Slash,
    Eq,
    Neq,
    Lt,
    Le,
    Gt,
    Ge,
}

impl Token {
    /// Is this token the given keyword (case-insensitive)?
    pub fn is_kw(&self, kw: &str) -> bool {
        matches!(self, Token::Ident(s) if s.eq_ignore_ascii_case(kw))
    }
}

/// Tokenize a SQL string.
pub fn tokenize(input: &str) -> Result<Vec<Token>> {
    let bytes = input.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            c if c.is_whitespace() => i += 1,
            ',' => {
                out.push(Token::Comma);
                i += 1;
            }
            '.' => {
                out.push(Token::Dot);
                i += 1;
            }
            '(' => {
                out.push(Token::LParen);
                i += 1;
            }
            ')' => {
                out.push(Token::RParen);
                i += 1;
            }
            '*' => {
                out.push(Token::Star);
                i += 1;
            }
            '+' => {
                out.push(Token::Plus);
                i += 1;
            }
            '-' => {
                // SQL comment `--`
                if bytes.get(i + 1) == Some(&b'-') {
                    while i < bytes.len() && bytes[i] != b'\n' {
                        i += 1;
                    }
                } else {
                    out.push(Token::Minus);
                    i += 1;
                }
            }
            '/' => {
                out.push(Token::Slash);
                i += 1;
            }
            '=' => {
                out.push(Token::Eq);
                i += 1;
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token::Neq);
                    i += 2;
                } else {
                    return Err(Error::Sql(format!("unexpected '!' at byte {i}")));
                }
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token::Le);
                    i += 2;
                } else if bytes.get(i + 1) == Some(&b'>') {
                    out.push(Token::Neq);
                    i += 2;
                } else {
                    out.push(Token::Lt);
                    i += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token::Ge);
                    i += 2;
                } else {
                    out.push(Token::Gt);
                    i += 1;
                }
            }
            '\'' => {
                let mut s = String::new();
                i += 1;
                loop {
                    match bytes.get(i) {
                        None => return Err(Error::Sql("unterminated string literal".into())),
                        Some(b'\'') => {
                            // doubled quote = escaped quote
                            if bytes.get(i + 1) == Some(&b'\'') {
                                s.push('\'');
                                i += 2;
                            } else {
                                i += 1;
                                break;
                            }
                        }
                        Some(&b) => {
                            s.push(b as char);
                            i += 1;
                        }
                    }
                }
                out.push(Token::Str(s));
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_digit()
                        || bytes[i] == b'.'
                        || bytes[i] == b'e'
                        || bytes[i] == b'E'
                        || ((bytes[i] == b'+' || bytes[i] == b'-')
                            && matches!(bytes.get(i - 1), Some(b'e') | Some(b'E'))))
                {
                    i += 1;
                }
                let text = &input[start..i];
                let n: f64 = text
                    .parse()
                    .map_err(|_| Error::Sql(format!("bad number '{text}'")))?;
                out.push(Token::Number(n));
            }
            c if c.is_ascii_alphabetic() || c == '_' || c == '"' => {
                if c == '"' {
                    // quoted identifier
                    let start = i + 1;
                    let mut j = start;
                    while j < bytes.len() && bytes[j] != b'"' {
                        j += 1;
                    }
                    if j >= bytes.len() {
                        return Err(Error::Sql("unterminated quoted identifier".into()));
                    }
                    out.push(Token::Ident(input[start..j].to_string()));
                    i = j + 1;
                } else {
                    let start = i;
                    while i < bytes.len()
                        && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                    {
                        i += 1;
                    }
                    out.push(Token::Ident(input[start..i].to_string()));
                }
            }
            c => {
                return Err(Error::Sql(format!(
                    "unexpected character '{c}' at byte {i}"
                )))
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizes_a_query() {
        let toks = tokenize(
            "SELECT city, COUNT(*) AS n FROM orders WHERE total >= 12.5 AND city != 'sf' LIMIT 10",
        )
        .unwrap();
        assert!(toks.contains(&Token::Ident("SELECT".into())));
        assert!(toks.contains(&Token::Star));
        assert!(toks.contains(&Token::Ge));
        assert!(toks.contains(&Token::Neq));
        assert!(toks.contains(&Token::Number(12.5)));
        assert!(toks.contains(&Token::Str("sf".into())));
    }

    #[test]
    fn string_escapes_and_comments() {
        let toks = tokenize("SELECT 'it''s' -- trailing comment\n, 2").unwrap();
        assert_eq!(toks[1], Token::Str("it's".into()));
        assert_eq!(toks[2], Token::Comma);
        assert_eq!(toks[3], Token::Number(2.0));
    }

    #[test]
    fn operators_and_diamond_neq() {
        let toks = tokenize("a <> b <= c >= d < e > f = g").unwrap();
        assert_eq!(toks[1], Token::Neq);
        assert_eq!(toks[3], Token::Le);
        assert_eq!(toks[5], Token::Ge);
    }

    #[test]
    fn quoted_identifiers() {
        let toks = tokenize("SELECT \"Weird Col\" FROM t").unwrap();
        assert_eq!(toks[1], Token::Ident("Weird Col".into()));
    }

    #[test]
    fn rejects_garbage() {
        assert!(tokenize("SELECT 'unterminated").is_err());
        assert!(tokenize("a ! b").is_err());
        assert!(tokenize("price: 10").is_err());
    }

    #[test]
    fn keyword_matching_is_case_insensitive() {
        let toks = tokenize("select").unwrap();
        assert!(toks[0].is_kw("SELECT"));
        assert!(toks[0].is_kw("select"));
        assert!(!toks[0].is_kw("FROM"));
    }

    #[test]
    fn scientific_numbers() {
        let toks = tokenize("1e3 2.5E-2").unwrap();
        assert_eq!(toks[0], Token::Number(1000.0));
        assert_eq!(toks[1], Token::Number(0.025));
    }
}
