//! Hybrid-table federation: the time-boundary planner over a realtime
//! store and archival segment files (§4.3, §4.5).
//!
//! §4.3: "Pinot employs the lambda architecture to present a federated
//! view between real-time and historical (offline) data." The realtime
//! side of a table holds the freshest minutes-to-hours; the offline side
//! holds compacted, immutable archival segments pushed from the
//! warehouse. A query must see exactly one copy of every row, so the
//! planner splits its time predicate at the **time boundary** — the
//! newest timestamp the offline side is authoritative for:
//!
//! ```text
//!            offline (authoritative)        realtime (fresh)
//!   ────────────────────────────────┤├──────────────────────────▶ time
//!                       ts <= boundary │ ts > boundary
//! ```
//!
//! The offline slice executes against [`LazySegment`] archives — zone-map
//! headers prune segments without reading column bytes, and surviving
//! segments decode only the touched columns. The realtime slice executes
//! against the live [`OlapTable`] or a scatter-gather [`Broker`].
//! Aggregations merge as [`PartialResult`]s *before* finalizing so AVG
//! and DISTINCTCOUNT stay exact across the boundary.
//!
//! **Freshness-aware result cache.** The offline slice is immutable
//! between segment events (seal/push, rebalance, compaction), so its
//! partial result is cached keyed on `(normalized pushdown, time
//! boundary, segment-version)`. The realtime slice is *never* cached —
//! it recomputes on every query — so a cache hit can never serve stale
//! fresh-side data. Any segment event bumps the version and drops every
//! cached slice.

use crate::connector::{pushdown_query, restore_group_key_types, Pushdown, ScanOutput};
use parking_lot::{Mutex, RwLock};
use rtdi_common::{Error, Result, Schema};
use rtdi_olap::broker::Broker;
use rtdi_olap::query::{sort_and_limit, PartialResult, Predicate, PredicateOp, Query, QueryResult};
use rtdi_olap::scatter::scatter;
use rtdi_olap::segment::LazySegment;
use rtdi_olap::table::OlapTable;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// One archival segment in a hybrid table's offline inventory.
#[derive(Clone)]
pub struct OfflineSegment {
    pub segment: Arc<LazySegment>,
    /// Inclusive `(min, max)` of the time column, read from the zone-map
    /// header at registration — no column bytes touched.
    pub time_range: (i64, i64),
    /// Partition id when the offline pipeline partitions its output the
    /// same way as the realtime topic (enables partition-pruned scatter).
    pub partition: Option<usize>,
}

/// How the federation reaches the fresh side of a hybrid table.
#[derive(Clone)]
pub enum RealtimeSide {
    /// In-process hybrid table (no server fan-out).
    Direct(Arc<OlapTable>),
    /// Scatter-gather broker over server nodes; server death degrades the
    /// realtime slice to `partial=true` instead of failing the query.
    Brokered(Arc<Broker>),
}

/// Cached offline slice: a partially-executed aggregation or a finished
/// selection, plus the scan statistics it cost when first computed.
#[derive(Clone)]
enum CachedSlice {
    Agg(PartialResult),
    Rows(QueryResult),
}

/// What one side of the split contributed.
enum SliceOutcome {
    Agg(PartialResult),
    Rows(QueryResult),
    Skipped { segments_pruned: u64 },
}

const CACHE_CAPACITY: usize = 64;

/// A federated hybrid table: realtime store + offline segment inventory +
/// the time-boundary planner + the freshness-aware result cache.
pub struct HybridTable {
    name: String,
    schema: Schema,
    time_column: String,
    /// `(column, partition count)` when both sides partition by the same
    /// key — lets the optimizer derive a partition-pruned scatter from an
    /// equality predicate.
    partition_spec: Option<(String, usize)>,
    realtime: RealtimeSide,
    offline: RwLock<Vec<OfflineSegment>>,
    /// Bumped on every segment event (register / remove / compaction /
    /// rebalance); part of every cache key.
    version: AtomicU64,
    cache: Mutex<HashMap<String, CachedSlice>>,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    /// Scatter threads for the offline side (0 = one per core).
    query_threads: usize,
}

impl HybridTable {
    pub fn new(
        name: impl Into<String>,
        schema: Schema,
        time_column: impl Into<String>,
        realtime: RealtimeSide,
    ) -> Self {
        HybridTable {
            name: name.into(),
            schema,
            time_column: time_column.into(),
            partition_spec: None,
            realtime,
            offline: RwLock::new(Vec::new()),
            version: AtomicU64::new(0),
            cache: Mutex::new(HashMap::new()),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            query_threads: 0,
        }
    }

    /// Declare that both sides partition rows by `column % n`, enabling
    /// partition-pruned scatter for equality predicates on that column.
    pub fn with_partition_spec(mut self, column: &str, n: usize) -> Self {
        self.partition_spec = Some((column.to_string(), n.max(1)));
        self
    }

    pub fn with_query_threads(mut self, n: usize) -> Self {
        self.query_threads = n;
        self
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    pub fn time_column(&self) -> &str {
        &self.time_column
    }

    pub fn partition_spec(&self) -> Option<(String, usize)> {
        self.partition_spec.clone()
    }

    /// `(hits, misses)` of the freshness-aware result cache.
    pub fn cache_stats(&self) -> (u64, u64) {
        (
            self.cache_hits.load(Ordering::Relaxed),
            self.cache_misses.load(Ordering::Relaxed),
        )
    }

    /// Current segment-inventory version (bumped by every segment event).
    pub fn version(&self) -> u64 {
        self.version.load(Ordering::Relaxed)
    }

    /// Register an archival segment into the offline inventory. The time
    /// range comes from the zone-map header; a segment whose time column
    /// carries no integer zone statistics cannot participate in boundary
    /// planning and is rejected.
    pub fn register_offline_segment(
        &self,
        segment: Arc<LazySegment>,
        partition: Option<usize>,
    ) -> Result<()> {
        let time_range = segment.int_range(&self.time_column).ok_or_else(|| {
            Error::InvalidArgument(format!(
                "offline segment '{}' has no zone statistics for time column '{}'",
                segment.name(),
                self.time_column
            ))
        })?;
        self.offline.write().push(OfflineSegment {
            segment,
            time_range,
            partition,
        });
        self.invalidate();
        Ok(())
    }

    /// Drop an offline segment by name (retention, or a rebalance moving
    /// it elsewhere). Returns whether it existed.
    pub fn remove_offline_segment(&self, name: &str) -> bool {
        let mut inv = self.offline.write();
        let before = inv.len();
        inv.retain(|s| s.segment.name() != name);
        let removed = inv.len() != before;
        drop(inv);
        if removed {
            self.invalidate();
        }
        removed
    }

    /// Replace the whole offline inventory in one step — the compaction
    /// path (k input segments rewritten as one).
    pub fn replace_offline_segments(
        &self,
        segments: Vec<(Arc<LazySegment>, Option<usize>)>,
    ) -> Result<()> {
        let mut rebuilt = Vec::with_capacity(segments.len());
        for (segment, partition) in segments {
            let time_range = segment.int_range(&self.time_column).ok_or_else(|| {
                Error::InvalidArgument(format!(
                    "offline segment '{}' has no zone statistics for time column '{}'",
                    segment.name(),
                    self.time_column
                ))
            })?;
            rebuilt.push(OfflineSegment {
                segment,
                time_range,
                partition,
            });
        }
        *self.offline.write() = rebuilt;
        self.invalidate();
        Ok(())
    }

    /// Segment event hook: bump the inventory version and drop every
    /// cached offline slice. Called by every registration path; also the
    /// entry point for external events (a broker rebalance, a realtime
    /// seal crossing into the archive).
    pub fn invalidate(&self) {
        self.version.fetch_add(1, Ordering::Relaxed);
        self.cache.lock().clear();
    }

    pub fn offline_segment_count(&self) -> usize {
        self.offline.read().len()
    }

    /// The time boundary: the newest timestamp the offline side is
    /// authoritative for (max of every segment's zone-map max). `None`
    /// when there is no offline data — the realtime side then serves the
    /// whole time axis.
    pub fn time_boundary(&self) -> Option<i64> {
        self.offline.read().iter().map(|s| s.time_range.1).max()
    }

    /// Execute a pushdown against the federated view.
    pub fn scan(&self, pushdown: &Pushdown) -> Result<ScanOutput> {
        let base = pushdown_query(&self.name, pushdown);
        let boundary = self.time_boundary();
        let window = query_time_window(&base, &self.time_column);

        // Split at the boundary. Each side is `None` when the query's own
        // time window proves it empty — the planner skips it entirely.
        let (offline_q, realtime_q) = match boundary {
            None => (None, Some(base.clone())),
            Some(b) => {
                let offline_active = window.0.is_none_or(|lo| lo <= b);
                let realtime_active = window.1.is_none_or(|hi| hi > b);
                let off = offline_active.then(|| {
                    base.clone()
                        .filter(Predicate::new(&self.time_column, PredicateOp::Le, b))
                });
                let rt = realtime_active.then(|| {
                    base.clone()
                        .filter(Predicate::new(&self.time_column, PredicateOp::Gt, b))
                });
                (off, rt)
            }
        };

        // Deadline-budget split: when both sides run, the offline slice is
        // granted half the remaining budget so a slow archive scan cannot
        // starve the fresh side; the realtime slice keeps the parent
        // deadline (whatever the offline side leaves of it).
        let offline_q = offline_q.map(|mut q| {
            if realtime_q.is_some() {
                if let Some(d) = &base.deadline {
                    q.deadline = Some(d.with_budget_fraction(1, 2));
                }
            }
            q
        });

        let mut bytes_read = 0u64;
        let mut cache_hit = false;
        let offline_out = match &offline_q {
            None => SliceOutcome::Skipped {
                segments_pruned: self.offline.read().len() as u64,
            },
            // a fully-shed slice degrades the federated answer instead of
            // failing it — the other side may still be in budget
            Some(q) => match self.offline_slice(q, boundary, &mut bytes_read, &mut cache_hit) {
                Err(Error::DeadlineExceeded(_)) => shed_slice(&base),
                other => other?,
            },
        };
        let realtime_out = match &realtime_q {
            None => SliceOutcome::Skipped { segments_pruned: 0 },
            Some(q) => match self.realtime_slice(q) {
                Err(Error::DeadlineExceeded(_)) => shed_slice(&base),
                other => other?,
            },
        };

        let mut result = if base.is_aggregation() {
            let mut merged = PartialResult::default();
            for out in [offline_out, realtime_out] {
                match out {
                    SliceOutcome::Agg(p) => merged.merge(p, &base),
                    SliceOutcome::Skipped { segments_pruned } => {
                        merged.segments_pruned += segments_pruned
                    }
                    SliceOutcome::Rows(_) => unreachable!("aggregation slice returned rows"),
                }
            }
            merged.finalize(&base)
        } else {
            let mut merged = QueryResult::default();
            for out in [offline_out, realtime_out] {
                match out {
                    SliceOutcome::Rows(r) => {
                        merged.rows.extend(r.rows);
                        merged.docs_scanned += r.docs_scanned;
                        merged.segments_queried += r.segments_queried;
                        merged.segments_pruned += r.segments_pruned;
                        merged.partial |= r.partial;
                        merged.segments_unavailable += r.segments_unavailable;
                        merged.deadline_exceeded |= r.deadline_exceeded;
                        merged.segments_shed += r.segments_shed;
                    }
                    SliceOutcome::Skipped { segments_pruned } => {
                        merged.segments_pruned += segments_pruned
                    }
                    SliceOutcome::Agg(_) => unreachable!("selection slice returned aggregates"),
                }
            }
            sort_and_limit(&mut merged.rows, &base.order_by, base.limit);
            merged
        };

        if result.deadline_exceeded && result.segments_queried == 0 {
            return Err(Error::DeadlineExceeded(format!(
                "table '{}': deadline expired before either side served a segment",
                self.name
            )));
        }
        if let Some(agg) = &pushdown.aggregation {
            restore_group_key_types(&mut result.rows, &agg.group_by, &self.schema);
        }
        Ok(ScanOutput {
            rows_shipped: result.rows.len() as u64,
            docs_scanned: result.docs_scanned,
            partial: result.partial,
            segments_unavailable: result.segments_unavailable,
            segments_queried: result.segments_queried,
            segments_pruned: result.segments_pruned,
            bytes_read,
            cache_hit,
            deadline_exceeded: result.deadline_exceeded,
            segments_shed: result.segments_shed,
            rows: result.rows,
        })
    }

    /// Execute (or replay from cache) the offline slice.
    fn offline_slice(
        &self,
        query: &Query,
        boundary: Option<i64>,
        bytes_read: &mut u64,
        cache_hit: &mut bool,
    ) -> Result<SliceOutcome> {
        let key = cache_key(query, boundary, self.version());
        if let Some(slice) = self.cache.lock().get(&key).cloned() {
            self.cache_hits.fetch_add(1, Ordering::Relaxed);
            *cache_hit = true;
            return Ok(match slice {
                CachedSlice::Agg(p) => SliceOutcome::Agg(p),
                CachedSlice::Rows(r) => SliceOutcome::Rows(r),
            });
        }
        self.cache_misses.fetch_add(1, Ordering::Relaxed);

        // Prune the inventory: partition hint, per-segment time range,
        // then the full zone-map check (other columns). Pruned segments
        // cost header bytes only.
        let window = query_time_window(query, &self.time_column);
        let inventory = self.offline.read().clone();
        let mut pruned = 0u64;
        let tasks: Vec<&OfflineSegment> = inventory
            .iter()
            .filter(|s| {
                let admitted = query.admits_partition(s.partition)
                    && window.0.is_none_or(|lo| s.time_range.1 >= lo)
                    && window.1.is_none_or(|hi| s.time_range.0 <= hi)
                    && s.segment.zones_may_match(query);
                if !admitted {
                    pruned += 1;
                }
                admitted
            })
            .collect();

        let before: u64 = tasks.iter().map(|s| s.segment.bytes_loaded() as u64).sum();
        let outcome = if query.is_aggregation() {
            let partials = scatter(tasks.len(), self.query_threads, |i| {
                if let Some(d) = &query.deadline {
                    d.check(tasks[i].segment.name())?;
                }
                tasks[i].segment.execute_partial(query)
            });
            let mut merged = PartialResult {
                segments_pruned: pruned,
                ..Default::default()
            };
            for p in partials {
                match p {
                    Ok(p) => {
                        merged.segments_queried += 1;
                        merged.docs_scanned += p.docs_scanned;
                        merged.agg.merge(p, query);
                    }
                    Err(Error::DeadlineExceeded(_)) => {
                        merged.segments_shed += 1;
                        merged.deadline_exceeded = true;
                        merged.partial = true;
                    }
                    Err(e) => return Err(e),
                }
            }
            SliceOutcome::Agg(merged)
        } else {
            let results = scatter(tasks.len(), self.query_threads, |i| {
                if let Some(d) = &query.deadline {
                    d.check(tasks[i].segment.name())?;
                }
                tasks[i].segment.execute(query)
            });
            let mut merged = QueryResult {
                segments_pruned: pruned,
                ..Default::default()
            };
            for r in results {
                match r {
                    Ok(r) => {
                        merged.segments_queried += 1;
                        merged.rows.extend(r.rows);
                        merged.docs_scanned += r.docs_scanned;
                    }
                    Err(Error::DeadlineExceeded(_)) => {
                        merged.segments_shed += 1;
                        merged.deadline_exceeded = true;
                        merged.partial = true;
                    }
                    Err(e) => return Err(e),
                }
            }
            // Do NOT apply the limit here: the slice is cached and later
            // merged with a live realtime slice, so truncation must wait
            // for the union. Ordering alone keeps the cache deterministic.
            sort_and_limit(&mut merged.rows, &query.order_by, None);
            SliceOutcome::Rows(merged)
        };
        *bytes_read = tasks
            .iter()
            .map(|s| s.segment.bytes_loaded() as u64)
            .sum::<u64>()
            .saturating_sub(before);

        // Never cache a deadline-truncated slice: it covers only the
        // segments served before the budget ran out, and a later query
        // with a healthy budget must not replay the truncation.
        let slice = match &outcome {
            SliceOutcome::Agg(p) if !p.deadline_exceeded => Some(CachedSlice::Agg(p.clone())),
            SliceOutcome::Rows(r) if !r.deadline_exceeded => Some(CachedSlice::Rows(r.clone())),
            _ => None,
        };
        if let Some(slice) = slice {
            let mut cache = self.cache.lock();
            if cache.len() >= CACHE_CAPACITY {
                // segment events clear the map wholesale; between events a
                // full map means an unusually diverse query mix — dropping
                // it costs one recompute per shape, never correctness
                cache.clear();
            }
            cache.insert(key, slice);
        }
        Ok(outcome)
    }

    /// Execute the realtime slice — always live, never cached.
    fn realtime_slice(&self, query: &Query) -> Result<SliceOutcome> {
        Ok(match (&self.realtime, query.is_aggregation()) {
            (RealtimeSide::Direct(t), true) => SliceOutcome::Agg(t.query_partial(query)?),
            (RealtimeSide::Direct(t), false) => SliceOutcome::Rows(t.query(query)?),
            (RealtimeSide::Brokered(b), true) => SliceOutcome::Agg(b.query_partial(query)?),
            (RealtimeSide::Brokered(b), false) => SliceOutcome::Rows(b.query(query)?),
        })
    }
}

/// A slice whose deadline expired before any segment was served: an empty
/// degraded contribution so the other side's answer still goes out.
fn shed_slice(base: &Query) -> SliceOutcome {
    if base.is_aggregation() {
        SliceOutcome::Agg(PartialResult {
            partial: true,
            deadline_exceeded: true,
            ..Default::default()
        })
    } else {
        SliceOutcome::Rows(QueryResult {
            partial: true,
            deadline_exceeded: true,
            ..Default::default()
        })
    }
}

/// The inclusive `(lo, hi)` window a query's conjunctive predicates pin
/// the time column into (`None` = unbounded on that side).
fn query_time_window(query: &Query, time_column: &str) -> (Option<i64>, Option<i64>) {
    let mut lo: Option<i64> = None;
    let mut hi: Option<i64> = None;
    for p in query.predicates.iter() {
        if p.column != time_column {
            continue;
        }
        let Some(v) = p.value.as_int() else { continue };
        match p.op {
            PredicateOp::Eq => {
                lo = Some(lo.map_or(v, |x| x.max(v)));
                hi = Some(hi.map_or(v, |x| x.min(v)));
            }
            PredicateOp::Ge => lo = Some(lo.map_or(v, |x| x.max(v))),
            PredicateOp::Gt => lo = Some(lo.map_or(v + 1, |x| x.max(v + 1))),
            PredicateOp::Le => hi = Some(hi.map_or(v, |x| x.min(v))),
            PredicateOp::Lt => hi = Some(hi.map_or(v - 1, |x| x.min(v - 1))),
            PredicateOp::Ne => {}
        }
    }
    (lo, hi)
}

/// Cache key: normalized query shape + the boundary it was split at + the
/// segment-inventory version it ran against. `cache_shape()` strips the
/// deadline and priority first — an absolute expiry timestamp in the key
/// would make every repeat of the same dashboard query a cache miss.
fn cache_key(query: &Query, boundary: Option<i64>, version: u64) -> String {
    let shape = query.cache_shape();
    format!("v{version}|b{boundary:?}|{shape:?}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::connector::PushedAgg;
    use rtdi_common::AggFn;
    use rtdi_common::{FieldType, Row};
    use rtdi_olap::segment::{IndexSpec, Segment};
    use rtdi_olap::table::{OlapTable, TableConfig};

    fn schema() -> Schema {
        Schema::of(
            "trips",
            &[
                ("city", FieldType::Str),
                ("ts", FieldType::Timestamp),
                ("fare", FieldType::Double),
            ],
        )
    }

    fn trip(city: &str, ts: i64) -> Row {
        Row::new()
            .with("city", city)
            .with("ts", ts)
            .with("fare", ts as f64 / 10.0)
    }

    fn offline(name: &str, ts: std::ops::RangeInclusive<i64>) -> Arc<LazySegment> {
        let rows: Vec<Row> = ts
            .map(|t| trip(["sf", "la"][(t % 2) as usize], t))
            .collect();
        let seg = Segment::build(name, &schema(), rows, &IndexSpec::none()).unwrap();
        Arc::new(Segment::load_lazy(seg.persist().unwrap()).unwrap())
    }

    /// Offline: ts 0..=199 over two segments. Realtime: ts 150..=249 —
    /// the 150..=199 overlap is exactly what the boundary must dedup.
    fn hybrid() -> (Arc<HybridTable>, Arc<OlapTable>) {
        let table = OlapTable::new(
            TableConfig::new("trips", schema())
                .with_partitions(1)
                .with_time_column("ts"),
        )
        .unwrap();
        for t in 150..=249 {
            table
                .ingest(0, trip(["sf", "la"][(t % 2) as usize], t))
                .unwrap();
        }
        let hybrid = HybridTable::new("trips", schema(), "ts", RealtimeSide::Direct(table.clone()));
        hybrid
            .register_offline_segment(offline("off_0", 0..=99), None)
            .unwrap();
        hybrid
            .register_offline_segment(offline("off_1", 100..=199), None)
            .unwrap();
        (Arc::new(hybrid), table)
    }

    fn count_pushdown() -> Pushdown {
        Pushdown {
            aggregation: Some(PushedAgg {
                group_by: Arc::new(vec![]),
                aggs: Arc::new(vec![("n".into(), AggFn::Count)]),
            }),
            ..Default::default()
        }
    }

    #[test]
    fn boundary_dedups_the_overlap() {
        let (h, _) = hybrid();
        assert_eq!(h.time_boundary(), Some(199));
        let out = h.scan(&count_pushdown()).unwrap();
        // 200 offline rows + 50 realtime rows past the boundary; the 50
        // overlapping realtime rows (150..=199) must not be recounted
        assert_eq!(out.rows[0].get_int("n"), Some(250));
    }

    #[test]
    fn avg_is_exact_across_the_boundary() {
        let (h, _) = hybrid();
        let pd = Pushdown {
            aggregation: Some(PushedAgg {
                group_by: Arc::new(vec![]),
                aggs: Arc::new(vec![("a".into(), AggFn::Avg("fare".into()))]),
            }),
            ..Default::default()
        };
        let out = h.scan(&pd).unwrap();
        let expect = (0..=249).map(|t| t as f64 / 10.0).sum::<f64>() / 250.0;
        let got = out.rows[0].get_double("a").unwrap();
        assert!((got - expect).abs() < 1e-9, "avg {got} != {expect}");
    }

    #[test]
    fn recent_window_skips_the_offline_side() {
        let (h, _) = hybrid();
        let pd = Pushdown {
            predicates: Arc::new(vec![Predicate::new("ts", PredicateOp::Gt, 210i64)]),
            ..count_pushdown()
        };
        let out = h.scan(&pd).unwrap();
        assert_eq!(out.rows[0].get_int("n"), Some(39)); // 211..=249
        assert_eq!(out.segments_pruned, 2); // both archives skipped
        assert_eq!(out.bytes_read, 0); // without touching a single byte
        let (hits, misses) = h.cache_stats();
        assert_eq!((hits, misses), (0, 0)); // skipped side never cached
    }

    #[test]
    fn historical_window_skips_the_realtime_side() {
        let (h, rt) = hybrid();
        let pd = Pushdown {
            predicates: Arc::new(vec![Predicate::new("ts", PredicateOp::Le, 50i64)]),
            ..count_pushdown()
        };
        let out = h.scan(&pd).unwrap();
        assert_eq!(out.rows[0].get_int("n"), Some(51)); // 0..=50
                                                        // zone maps prune the 100..=199 archive without loading columns
        assert_eq!(out.segments_pruned, 1);
        // the realtime store was never consulted: ingest more overlap and
        // ask again — the answer must not move
        for t in 0..=50 {
            rt.ingest(0, trip("dup", t)).unwrap();
        }
        let again = h.scan(&pd).unwrap();
        assert_eq!(again.rows[0].get_int("n"), Some(51));
        assert!(again.cache_hit);
    }

    #[test]
    fn cache_hits_are_fresh_for_realtime_data() {
        let (h, rt) = hybrid();
        let first = h.scan(&count_pushdown()).unwrap();
        assert_eq!(first.rows[0].get_int("n"), Some(250));
        assert!(!first.cache_hit);
        // new realtime rows must show up even though the offline slice
        // replays from cache
        for t in 250..260 {
            rt.ingest(0, trip("sf", t)).unwrap();
        }
        let second = h.scan(&count_pushdown()).unwrap();
        assert!(second.cache_hit);
        assert_eq!(second.rows[0].get_int("n"), Some(260));
        assert_eq!(second.bytes_read, 0);
        assert_eq!(h.cache_stats(), (1, 1));
    }

    #[test]
    fn segment_events_invalidate_the_cache() {
        let (h, _) = hybrid();
        let v0 = h.version();
        h.scan(&count_pushdown()).unwrap();
        assert!(h.scan(&count_pushdown()).unwrap().cache_hit);
        // a new archive lands (a realtime seal crossed into the store)
        h.register_offline_segment(offline("off_2", 200..=219), None)
            .unwrap();
        assert!(h.version() > v0);
        let out = h.scan(&count_pushdown()).unwrap();
        assert!(!out.cache_hit);
        // boundary moved to 219: 220 offline rows + 30 realtime (220..=249)
        assert_eq!(out.rows[0].get_int("n"), Some(250));
        // compaction-style replacement also invalidates
        h.replace_offline_segments(vec![(offline("compacted", 0..=219), None)])
            .unwrap();
        let out = h.scan(&count_pushdown()).unwrap();
        assert!(!out.cache_hit);
        assert_eq!(out.rows[0].get_int("n"), Some(250));
        assert!(h.remove_offline_segment("compacted"));
        // archive gone: realtime serves the whole axis again
        assert_eq!(h.time_boundary(), None);
        let out = h.scan(&count_pushdown()).unwrap();
        assert_eq!(out.rows[0].get_int("n"), Some(100)); // ts 150..=249
    }

    #[test]
    fn partition_hint_prunes_offline_scatter() {
        let rt = OlapTable::new(
            TableConfig::new("trips", schema())
                .with_partitions(1)
                .with_time_column("ts"),
        )
        .unwrap();
        let h = HybridTable::new("trips", schema(), "ts", RealtimeSide::Direct(rt))
            .with_partition_spec("city", 4);
        for p in 0..4 {
            h.register_offline_segment(offline(&format!("off_{p}"), 0..=99), Some(p))
                .unwrap();
        }
        let pd = Pushdown {
            partitions: Some(Arc::new(vec![2])),
            ..count_pushdown()
        };
        let out = h.scan(&pd).unwrap();
        assert_eq!(out.segments_queried, 1);
        assert_eq!(out.segments_pruned, 3);
        assert_eq!(out.rows[0].get_int("n"), Some(100));
    }

    #[test]
    fn federated_selection_orders_and_limits_across_sides() {
        let (h, _) = hybrid();
        let pd = Pushdown {
            projection: Some(Arc::new(vec!["ts".into()])),
            order_by: vec![("ts".into(), true)],
            limit: Some(3),
            ..Default::default()
        };
        let out = h.scan(&pd).unwrap();
        let ts: Vec<i64> = out.rows.iter().map(|r| r.get_int("ts").unwrap()).collect();
        assert_eq!(ts, vec![249, 248, 247]); // newest three, realtime side
        let pd_asc = Pushdown {
            projection: Some(Arc::new(vec!["ts".into()])),
            order_by: vec![("ts".into(), false)],
            limit: Some(3),
            ..Default::default()
        };
        let out = h.scan(&pd_asc).unwrap();
        let ts: Vec<i64> = out.rows.iter().map(|r| r.get_int("ts").unwrap()).collect();
        assert_eq!(ts, vec![0, 1, 2]); // oldest three, offline side
    }
}
