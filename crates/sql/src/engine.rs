//! The federated SQL engine: Presto-style in-memory MPP execution over
//! connectors.
//!
//! §4.5: "Presto was designed from the ground up for fast analytical
//! queries against large scale datasets by employing a Massively Parallel
//! Processing (MPP) engine and performing all computations in-memory...
//! data scientists and engineers often want to do exploration on real-time
//! data... we have leveraged Presto's connector model and built a Pinot
//! connector."

use crate::ast::AggName;
use crate::connector::Connector;
use crate::expr::{eval, truthy};
use crate::optimizer::optimize_with;
use crate::parser::parse_select;
use crate::plan::{plan_select, AggItem, Plan};
use rtdi_common::{
    AggAcc, AggFn, Clock, Deadline, Error, PipelineTracer, Priority, Result, Row, Value,
};
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    pub default_catalog: String,
    /// Gate for all connector pushdown (E14 ablation).
    pub enable_pushdown: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            default_catalog: "pinot".into(),
            enable_pushdown: true,
        }
    }
}

/// Execution statistics for one query.
#[derive(Debug, Clone, Default)]
pub struct QueryStats {
    /// Documents touched inside connectors.
    pub docs_scanned: u64,
    /// Rows shipped from connectors into the engine.
    pub rows_shipped: u64,
    /// Some scan ran degraded (a connector could not reach every segment)
    /// and the rows cover only the available data.
    pub partial: bool,
    /// Segments connectors could not reach across all scans.
    pub segments_unavailable: u64,
    /// Segments consulted after pruning, across all scans.
    pub segments_queried: u64,
    /// Segments skipped by time-boundary, partition, or zone-map pruning.
    pub segments_pruned: u64,
    /// Cold bytes decoded from archival segment files (0 for scans that
    /// hit only resident columns or a federation result cache).
    pub bytes_read: u64,
    /// Scans answered entirely from a federation result cache.
    pub cache_hits: u64,
    /// Some scan's deadline expired mid-scatter and its rows cover only
    /// the segments served in budget.
    pub deadline_exceeded: bool,
    /// Segments abandoned across all scans because a deadline expired.
    pub segments_shed: u64,
    /// How stale the freshest data behind this query is, per the
    /// freshness tracer — `None` when the engine has no tracer attached
    /// or the pipeline has not produced yet. During a region outage this
    /// is the replication-lag signal the DR drill surfaces alongside
    /// `partial`.
    pub staleness_ms: Option<i64>,
    /// EXPLAIN text of the optimized plan.
    pub plan: String,
}

/// Query result.
#[derive(Debug, Clone, Default)]
pub struct QueryOutput {
    pub rows: Vec<Row>,
    pub stats: QueryStats,
}

/// The engine.
pub struct SqlEngine {
    connectors: HashMap<String, Arc<dyn Connector>>,
    config: EngineConfig,
    freshness: Option<(PipelineTracer, String, Arc<dyn Clock>)>,
}

impl SqlEngine {
    pub fn new(config: EngineConfig) -> Self {
        SqlEngine {
            connectors: HashMap::new(),
            config,
            freshness: None,
        }
    }

    pub fn register_connector(&mut self, catalog: &str, connector: Arc<dyn Connector>) {
        self.connectors.insert(catalog.to_string(), connector);
    }

    /// Attach the freshness tracer feeding the tables this engine serves.
    /// Every query then records query-time staleness under the tracer's
    /// SQL stage and reports it in [`QueryStats::staleness_ms`].
    pub fn with_freshness(
        mut self,
        tracer: PipelineTracer,
        pipeline: &str,
        clock: Arc<dyn Clock>,
    ) -> Self {
        self.freshness = Some((tracer, pipeline.to_string(), clock));
        self
    }

    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    pub fn set_pushdown(&mut self, enable: bool) {
        self.config.enable_pushdown = enable;
    }

    fn connector(&self, catalog: &Option<String>) -> Result<&Arc<dyn Connector>> {
        let name = catalog
            .clone()
            .unwrap_or_else(|| self.config.default_catalog.clone());
        self.connectors
            .get(&name)
            .ok_or_else(|| Error::NotFound(format!("catalog '{name}'")))
    }

    fn resolve_catalogs(&self, plan: Plan) -> Plan {
        match plan {
            Plan::Scan {
                catalog,
                table,
                binding,
                pushdown,
            } => Plan::Scan {
                catalog: catalog.or_else(|| Some(self.config.default_catalog.clone())),
                table,
                binding,
                pushdown,
            },
            Plan::Filter { input, predicate } => Plan::Filter {
                input: Box::new(self.resolve_catalogs(*input)),
                predicate,
            },
            Plan::Project { input, items } => Plan::Project {
                input: Box::new(self.resolve_catalogs(*input)),
                items,
            },
            Plan::Aggregate {
                input,
                group_by,
                aggs,
            } => Plan::Aggregate {
                input: Box::new(self.resolve_catalogs(*input)),
                group_by,
                aggs,
            },
            Plan::Join {
                left,
                right,
                left_binding,
                right_binding,
                on_left,
                on_right,
            } => Plan::Join {
                left: Box::new(self.resolve_catalogs(*left)),
                right: Box::new(self.resolve_catalogs(*right)),
                left_binding,
                right_binding,
                on_left,
                on_right,
            },
            Plan::Sort { input, keys } => Plan::Sort {
                input: Box::new(self.resolve_catalogs(*input)),
                keys,
            },
            Plan::Limit { input, n } => Plan::Limit {
                input: Box::new(self.resolve_catalogs(*input)),
                n,
            },
        }
    }

    /// Parse, plan, optimize and execute a SQL query.
    pub fn query(&self, sql: &str) -> Result<QueryOutput> {
        self.query_with(sql, None, Priority::default())
    }

    /// Execute with an end-to-end deadline and a scheduling lane. The
    /// deadline is stamped onto every scan in the plan, so connectors shed
    /// segments they cannot serve in budget (degraded partial answers)
    /// instead of running long; backfill-lane scans are the first shed
    /// under pressure and run at reduced parallelism.
    pub fn query_with(
        &self,
        sql: &str,
        deadline: Option<Deadline>,
        priority: Priority,
    ) -> Result<QueryOutput> {
        let mut plan = self.optimized_plan(sql)?;
        stamp_overload(&mut plan, &deadline, priority);
        let mut stats = QueryStats {
            plan: plan.explain(),
            ..Default::default()
        };
        let rows = self.execute(&plan, &mut stats)?;
        if let Some((tracer, pipeline, clock)) = &self.freshness {
            stats.staleness_ms = tracer.note_query(pipeline, clock.now());
        }
        Ok(QueryOutput { rows, stats })
    }

    /// EXPLAIN: the optimized plan without executing it.
    pub fn explain(&self, sql: &str) -> Result<String> {
        Ok(self.optimized_plan(sql)?.explain())
    }

    fn optimized_plan(&self, sql: &str) -> Result<Plan> {
        let stmt = parse_select(sql)?;
        let plan = self.resolve_catalogs(plan_select(&stmt)?);
        let caps = |catalog: &Option<String>| {
            self.connector(catalog)
                .map(|c| c.capabilities())
                .unwrap_or_default()
        };
        let parts = |catalog: &Option<String>, table: &str| {
            self.connector(catalog)
                .ok()
                .and_then(|c| c.partition_spec(table))
        };
        Ok(optimize_with(
            plan,
            &caps,
            &parts,
            self.config.enable_pushdown,
        ))
    }

    fn execute(&self, plan: &Plan, stats: &mut QueryStats) -> Result<Vec<Row>> {
        match plan {
            Plan::Scan {
                catalog,
                table,
                binding,
                pushdown,
            } => {
                let out = self.connector(catalog)?.scan(table, pushdown)?;
                stats.docs_scanned += out.docs_scanned;
                stats.rows_shipped += out.rows_shipped;
                stats.partial |= out.partial;
                stats.segments_unavailable += out.segments_unavailable;
                stats.segments_queried += out.segments_queried;
                stats.segments_pruned += out.segments_pruned;
                stats.bytes_read += out.bytes_read;
                stats.cache_hits += u64::from(out.cache_hit);
                stats.deadline_exceeded |= out.deadline_exceeded;
                stats.segments_shed += out.segments_shed;
                let _ = binding;
                Ok(out.rows)
            }
            Plan::Filter { input, predicate } => {
                let rows = self.execute(input, stats)?;
                let mut out = Vec::with_capacity(rows.len());
                for row in rows {
                    if truthy(&eval(predicate, &row)?) {
                        out.push(row);
                    }
                }
                Ok(out)
            }
            Plan::Project { input, items } => {
                let rows = self.execute(input, stats)?;
                rows.into_iter()
                    .map(|row| {
                        let mut out = Row::with_capacity(items.len());
                        for (name, expr) in items {
                            out.push(name.clone(), eval(expr, &row)?);
                        }
                        Ok(out)
                    })
                    .collect()
            }
            Plan::Aggregate {
                input,
                group_by,
                aggs,
            } => {
                let rows = self.execute(input, stats)?;
                execute_aggregate(&rows, group_by, aggs)
            }
            Plan::Join {
                left,
                right,
                left_binding,
                right_binding,
                on_left,
                on_right,
            } => {
                let left_rows = self.execute(left, stats)?;
                let right_rows = self.execute(right, stats)?;
                hash_join(
                    &left_rows,
                    &right_rows,
                    left_binding,
                    right_binding,
                    on_left,
                    on_right,
                )
            }
            Plan::Sort { input, keys } => {
                let mut rows = self.execute(input, stats)?;
                rows.sort_by(|a, b| {
                    for (col, desc) in keys {
                        let va = a.get(col).unwrap_or(&Value::Null);
                        let vb = b.get(col).unwrap_or(&Value::Null);
                        let ord = va.total_cmp(vb);
                        let ord = if *desc { ord.reverse() } else { ord };
                        if ord != std::cmp::Ordering::Equal {
                            return ord;
                        }
                    }
                    std::cmp::Ordering::Equal
                });
                // strip hidden sort columns
                if rows
                    .first()
                    .map(|r| r.column_names().any(|c| c.starts_with("__sort")))
                    .unwrap_or(false)
                {
                    rows = rows
                        .into_iter()
                        .map(|r| {
                            r.iter()
                                .filter(|(n, _)| !n.starts_with("__sort"))
                                .map(|(n, v)| (n.to_string(), v.clone()))
                                .collect()
                        })
                        .collect();
                }
                Ok(rows)
            }
            Plan::Limit { input, n } => {
                let mut rows = self.execute(input, stats)?;
                rows.truncate(*n);
                Ok(rows)
            }
        }
    }
}

/// Stamp a deadline and scheduling lane onto every scan in the plan.
fn stamp_overload(plan: &mut Plan, deadline: &Option<Deadline>, priority: Priority) {
    match plan {
        Plan::Scan { pushdown, .. } => {
            pushdown.deadline = deadline.clone();
            pushdown.priority = priority;
        }
        Plan::Filter { input, .. }
        | Plan::Project { input, .. }
        | Plan::Aggregate { input, .. }
        | Plan::Sort { input, .. }
        | Plan::Limit { input, .. } => stamp_overload(input, deadline, priority),
        Plan::Join { left, right, .. } => {
            stamp_overload(left, deadline, priority);
            stamp_overload(right, deadline, priority);
        }
    }
}

fn agg_fn_for(item: &AggItem) -> AggFn {
    match (item.func, item.distinct) {
        (AggName::Count, true) => AggFn::DistinctCount("__arg".into()),
        (AggName::Count, false) => AggFn::Count,
        (AggName::Sum, _) => AggFn::Sum("__arg".into()),
        (AggName::Avg, _) => AggFn::Avg("__arg".into()),
        (AggName::Min, _) => AggFn::Min("__arg".into()),
        (AggName::Max, _) => AggFn::Max("__arg".into()),
    }
}

fn execute_aggregate(
    rows: &[Row],
    group_by: &[(String, crate::ast::Expr)],
    aggs: &[AggItem],
) -> Result<Vec<Row>> {
    let fns: Vec<AggFn> = aggs.iter().map(agg_fn_for).collect();
    // group key -> (representative group values, accumulators); NULL keys
    // are None so they never collide with a literal "NULL" string
    type GroupKey = Vec<Option<String>>;
    let mut groups: BTreeMap<GroupKey, (Vec<Value>, Vec<AggAcc>)> = BTreeMap::new();
    for row in rows {
        let mut key = Vec::with_capacity(group_by.len());
        let mut vals = Vec::with_capacity(group_by.len());
        for (_, g) in group_by {
            let v = eval(g, row)?;
            key.push(if v.is_null() {
                None
            } else {
                Some(v.to_string())
            });
            vals.push(v);
        }
        let (_, accs) = groups
            .entry(key)
            .or_insert_with(|| (vals, fns.iter().map(|f| f.new_acc()).collect()));
        for ((acc, f), item) in accs.iter_mut().zip(&fns).zip(aggs) {
            let arg_val = match &item.arg {
                None => Value::Int(1), // COUNT(*)
                Some(e) => eval(e, row)?,
            };
            // SQL semantics: aggregates skip NULL arguments (except COUNT(*))
            if item.arg.is_some() && arg_val.is_null() {
                continue;
            }
            let tmp = Row::new().with("__arg", arg_val);
            acc.add(f, &tmp);
        }
    }
    if groups.is_empty() && group_by.is_empty() {
        // global aggregate over empty input still yields one row
        let mut row = Row::new();
        for (item, f) in aggs.iter().zip(&fns) {
            row.push(item.name.clone(), f.new_acc().result());
        }
        return Ok(vec![row]);
    }
    let mut out = Vec::with_capacity(groups.len());
    for (_, (vals, accs)) in groups {
        let mut row = Row::with_capacity(group_by.len() + aggs.len());
        for ((name, _), v) in group_by.iter().zip(vals) {
            row.push(name.clone(), v);
        }
        for (item, acc) in aggs.iter().zip(&accs) {
            row.push(item.name.clone(), acc.result());
        }
        out.push(row);
    }
    Ok(out)
}

fn hash_join(
    left: &[Row],
    right: &[Row],
    left_binding: &str,
    right_binding: &str,
    on_left: &crate::ast::Expr,
    on_right: &crate::ast::Expr,
) -> Result<Vec<Row>> {
    // build side: right
    let mut table: HashMap<String, Vec<&Row>> = HashMap::new();
    for row in right {
        let k = eval(on_right, row)?;
        if k.is_null() {
            continue;
        }
        table.entry(k.to_string()).or_default().push(row);
    }
    let mut out = Vec::new();
    for lrow in left {
        let k = eval(on_left, lrow)?;
        if k.is_null() {
            continue;
        }
        if let Some(matches) = table.get(&k.to_string()) {
            for rrow in matches {
                out.push(merge_joined(lrow, rrow, left_binding, right_binding));
            }
        }
    }
    Ok(out)
}

fn merge_joined(l: &Row, r: &Row, lb: &str, rb: &str) -> Row {
    let mut out = Row::with_capacity(l.len() + r.len());
    for (n, v) in l.iter() {
        out.push(n.to_string(), v.clone());
        if !n.contains('.') {
            // last element of a composite binding chain (a+b) is not a
            // valid qualifier; only qualify with simple bindings
            if !lb.contains('+') {
                out.push(format!("{lb}.{n}"), v.clone());
            }
        }
    }
    for (n, v) in r.iter() {
        if out.get(n).is_none() {
            out.push(n.to_string(), v.clone());
        }
        if !n.contains('.') && !rb.contains('+') {
            out.push(format!("{rb}.{n}"), v.clone());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::connector::MemoryConnector;
    use rtdi_common::{FieldType, Schema};

    fn engine() -> SqlEngine {
        let mut mem = MemoryConnector::new();
        mem.add_table(
            "orders",
            Schema::of(
                "orders",
                &[
                    ("city", FieldType::Str),
                    ("restaurant_id", FieldType::Int),
                    ("total", FieldType::Double),
                ],
            ),
            (0..100)
                .map(|i| {
                    Row::new()
                        .with("city", ["sf", "la", "nyc"][i % 3])
                        .with("restaurant_id", (i % 10) as i64)
                        .with("total", i as f64)
                })
                .collect(),
        );
        mem.add_table(
            "restaurants",
            Schema::of(
                "restaurants",
                &[("id", FieldType::Int), ("cuisine", FieldType::Str)],
            ),
            (0..10)
                .map(|i| {
                    Row::new()
                        .with("id", i as i64)
                        .with("cuisine", if i % 2 == 0 { "thai" } else { "diner" })
                })
                .collect(),
        );
        let mut e = SqlEngine::new(EngineConfig {
            default_catalog: "mem".into(),
            enable_pushdown: true,
        });
        e.register_connector("mem", Arc::new(mem));
        e
    }

    #[test]
    fn select_with_filter_order_limit() {
        let e = engine();
        let out = e
            .query("SELECT city, total FROM orders WHERE total >= 95 ORDER BY total DESC LIMIT 2")
            .unwrap();
        assert_eq!(out.rows.len(), 2);
        assert_eq!(out.rows[0].get_double("total"), Some(99.0));
        assert_eq!(out.rows[0].len(), 2);
    }

    #[test]
    fn group_by_having_order() {
        let e = engine();
        let out = e
            .query(
                "SELECT city, COUNT(*) AS n, AVG(total) AS avg_total \
                 FROM orders GROUP BY city HAVING COUNT(*) > 33 ORDER BY n DESC",
            )
            .unwrap();
        // 100 rows over 3 cities: 34/33/33 -> only 'sf' (34) survives HAVING > 33
        assert_eq!(out.rows.len(), 1);
        assert_eq!(out.rows[0].get_str("city"), Some("sf"));
        assert_eq!(out.rows[0].get_int("n"), Some(34));
    }

    #[test]
    fn count_distinct_and_count_col_null_handling() {
        let mut mem = MemoryConnector::new();
        mem.add_table(
            "t",
            Schema::of("t", &[("x", FieldType::Int)]),
            vec![
                Row::new().with("x", 1i64),
                Row::new().with("x", Value::Null),
                Row::new().with("x", 1i64),
                Row::new().with("x", 2i64),
            ],
        );
        let mut e = SqlEngine::new(EngineConfig {
            default_catalog: "mem".into(),
            enable_pushdown: true,
        });
        e.register_connector("mem", Arc::new(mem));
        let out = e
            .query(
                "SELECT COUNT(*) AS all_rows, COUNT(x) AS non_null, COUNT(DISTINCT x) AS d FROM t",
            )
            .unwrap();
        assert_eq!(out.rows[0].get_int("all_rows"), Some(4));
        assert_eq!(out.rows[0].get_int("non_null"), Some(3));
        assert_eq!(out.rows[0].get_int("d"), Some(2));
    }

    #[test]
    fn join_with_qualifiers() {
        let e = engine();
        let out = e
            .query(
                "SELECT o.city, r.cuisine, COUNT(*) AS n \
                 FROM orders o JOIN restaurants r ON o.restaurant_id = r.id \
                 WHERE r.cuisine = 'thai' GROUP BY o.city, r.cuisine ORDER BY n DESC",
            )
            .unwrap();
        assert_eq!(out.rows.len(), 3);
        assert!(out
            .rows
            .iter()
            .all(|r| r.get_str("cuisine") == Some("thai")));
        let total: i64 = out.rows.iter().map(|r| r.get_int("n").unwrap()).sum();
        assert_eq!(total, 50); // half the restaurants are thai
    }

    #[test]
    fn subquery_in_from() {
        let e = engine();
        let out = e
            .query(
                "SELECT n FROM \
                 (SELECT city, COUNT(*) AS n FROM orders GROUP BY city) sub \
                 WHERE n > 33",
            )
            .unwrap();
        assert_eq!(out.rows.len(), 1);
        assert_eq!(out.rows[0].get_int("n"), Some(34));
    }

    #[test]
    fn arithmetic_projection() {
        let e = engine();
        let out = e
            .query("SELECT total * 2 AS double_total FROM orders WHERE total = 10")
            .unwrap();
        assert_eq!(out.rows[0].get_double("double_total"), Some(20.0));
    }

    #[test]
    fn empty_aggregate_yields_zero_row() {
        let e = engine();
        let out = e
            .query("SELECT COUNT(*) AS n FROM orders WHERE total > 10000")
            .unwrap();
        assert_eq!(out.rows.len(), 1);
        assert_eq!(out.rows[0].get_int("n"), Some(0));
    }

    #[test]
    fn unknown_catalog_or_table() {
        let e = engine();
        assert!(e.query("SELECT * FROM nosuch.t").is_err());
        assert!(e.query("SELECT * FROM ghost_table").is_err());
    }

    #[test]
    fn degraded_scan_metadata_reaches_sql_stats() {
        use crate::connector::PinotConnector;
        use rtdi_common::{FieldType, Schema};
        use rtdi_olap::broker::{Broker, ServerNode};
        use rtdi_olap::segment::{IndexSpec, Segment};

        let schema = Schema::of(
            "trips",
            &[("city", FieldType::Str), ("fare", FieldType::Double)],
        );
        let servers: Vec<Arc<ServerNode>> = (0..2).map(ServerNode::new).collect();
        let broker = Arc::new(Broker::new(servers));
        broker.register_table("trips", false);
        for s in 0..4 {
            let rows: Vec<Row> = (0..50)
                .map(|i| {
                    Row::new()
                        .with("city", ["sf", "la"][i % 2])
                        .with("fare", (s * 50 + i) as f64)
                })
                .collect();
            let seg = Segment::build(format!("s{s}"), &schema, rows, &IndexSpec::none()).unwrap();
            broker
                .place_segment("trips", Arc::new(seg), None, 1)
                .unwrap();
        }
        let pinot = PinotConnector::new();
        pinot.register_brokered("trips", schema, broker.clone());
        let mut e = SqlEngine::new(EngineConfig::default());
        e.register_connector("pinot", Arc::new(pinot));

        let healthy = e.query("SELECT COUNT(*) AS n FROM trips").unwrap();
        assert!(!healthy.stats.partial);
        assert_eq!(healthy.stats.segments_unavailable, 0);
        assert_eq!(healthy.rows[0].get_int("n"), Some(200));

        // kill a server: the SQL result must carry the degradation
        // metadata end-to-end, not silently return a partial count
        broker.servers()[0].set_down(true);
        let degraded = e.query("SELECT COUNT(*) AS n FROM trips").unwrap();
        assert!(degraded.stats.partial);
        assert_eq!(degraded.stats.segments_unavailable, 2);
        assert_eq!(degraded.rows[0].get_int("n"), Some(100));
    }

    #[test]
    fn hybrid_federation_end_to_end() {
        use crate::catalog::{HybridTable, RealtimeSide};
        use crate::connector::PinotConnector;
        use rtdi_olap::segment::{IndexSpec, LazySegment, Segment};
        use rtdi_olap::table::{OlapTable, TableConfig};

        let schema = Schema::of(
            "trips",
            &[
                ("city", FieldType::Str),
                ("ts", FieldType::Timestamp),
                ("fare", FieldType::Double),
            ],
        );
        let parts = 4usize;
        let cities = ["sf", "la", "nyc", "chi"];
        let trip = |city: &str, ts: i64| {
            Row::new()
                .with("city", city)
                .with("ts", ts)
                .with("fare", ts as f64)
        };

        // realtime side: ts 100..=149, all cities
        let rt = OlapTable::new(
            TableConfig::new("trips", schema.clone())
                .with_partitions(1)
                .with_time_column("ts"),
        )
        .unwrap();
        for ts in 100..=149 {
            rt.ingest(0, trip(cities[(ts % 4) as usize], ts)).unwrap();
        }

        // offline side: one archive per city, ts 0..=99, registered under
        // the partition its city hashes to
        let hybrid = Arc::new(
            HybridTable::new("trips", schema.clone(), "ts", RealtimeSide::Direct(rt))
                .with_partition_spec("city", parts),
        );
        for city in cities {
            let rows: Vec<Row> = (0..=99).map(|ts| trip(city, ts)).collect();
            let seg =
                Segment::build(format!("off_{city}"), &schema, rows, &IndexSpec::none()).unwrap();
            let lazy: LazySegment = Segment::load_lazy(seg.persist().unwrap()).unwrap();
            let p = (Value::from(city).partition_hash() % parts as u64) as usize;
            hybrid
                .register_offline_segment(Arc::new(lazy), Some(p))
                .unwrap();
        }

        let pinot = PinotConnector::new();
        pinot.register_hybrid(hybrid.clone());
        let mut e = SqlEngine::new(EngineConfig::default());
        e.register_connector("pinot", Arc::new(pinot));

        // equality on the partition column scatters only to the matching
        // partition's archives; everything federates across the boundary
        let sql = "SELECT COUNT(*) AS n FROM trips WHERE city = 'sf'";
        let out = e.query(sql).unwrap();
        assert_eq!(out.rows[0].get_int("n"), Some(100 + 13)); // offline + realtime sf
        assert!(out.stats.segments_pruned >= 3, "other partitions pruned");
        assert_eq!(out.stats.cache_hits, 0);

        // the repeat replays the offline slice from the result cache
        let again = e.query(sql).unwrap();
        assert_eq!(again.rows[0].get_int("n"), Some(113));
        assert_eq!(again.stats.cache_hits, 1);
        assert_eq!(again.stats.bytes_read, 0);
        assert_eq!(hybrid.cache_stats(), (1, 1));
    }

    #[test]
    fn deadline_propagates_from_sql_to_scan() {
        use crate::connector::PinotConnector;
        use rtdi_common::{FieldType, Schema, SimClock};
        use rtdi_olap::table::{OlapTable, TableConfig};

        let schema = Schema::of(
            "trips",
            &[("city", FieldType::Str), ("fare", FieldType::Double)],
        );
        let table = OlapTable::new(
            TableConfig::new("trips", schema)
                .with_partitions(1)
                .with_segment_rows(50),
        )
        .unwrap();
        for i in 0..200 {
            table
                .ingest(
                    0,
                    Row::new()
                        .with("city", ["sf", "la"][i % 2])
                        .with("fare", i as f64),
                )
                .unwrap();
        }
        let pinot = PinotConnector::new();
        pinot.register(table);
        let mut e = SqlEngine::new(EngineConfig::default());
        e.register_connector("pinot", Arc::new(pinot));

        let clock = Arc::new(SimClock::new(0));
        let sql = "SELECT COUNT(*) AS n FROM trips";
        // a live budget serves everything
        let out = e
            .query_with(
                sql,
                Some(Deadline::within_ms(clock.clone(), 1_000)),
                Priority::Interactive,
            )
            .unwrap();
        assert!(!out.stats.deadline_exceeded);
        assert_eq!(out.rows[0].get_int("n"), Some(200));
        // an already-spent budget is a hard deadline error, not a silent
        // empty answer
        clock.advance(2_000);
        let err = e
            .query_with(
                sql,
                Some(Deadline::within_ms(clock.clone(), 0)),
                Priority::Interactive,
            )
            .unwrap_err();
        assert!(matches!(err, Error::DeadlineExceeded(_)), "{err:?}");
    }

    #[test]
    fn query_stats_surface_pipeline_staleness() {
        use rtdi_common::{Record, SimClock};

        let clock = Arc::new(SimClock::new(0));
        let tracer = PipelineTracer::new();
        let e = engine().with_freshness(tracer.clone(), "orders", clock.clone());

        // no data traced yet: staleness is unknown, not zero
        let out = e.query("SELECT COUNT(*) AS n FROM orders").unwrap();
        assert_eq!(out.stats.staleness_ms, None);

        // a record lands at t=100; at t=5100 queries see 5s of lag
        clock.advance(100);
        let mut rec = Record::new(Row::new().with("i", 1i64), 100);
        PipelineTracer::stamp(&mut rec, 100);
        tracer.observe_hop("orders", "ingest", &mut rec, 100);
        clock.advance(5_000);
        let out = e.query("SELECT COUNT(*) AS n FROM orders").unwrap();
        assert_eq!(out.stats.staleness_ms, Some(5_000));
    }

    #[test]
    fn explain_renders_plan() {
        let e = engine();
        let text = e
            .explain("SELECT city FROM orders WHERE total > 5")
            .unwrap();
        assert!(text.contains("Scan mem.orders"));
    }

    #[test]
    fn select_star() {
        let e = engine();
        let out = e.query("SELECT * FROM restaurants LIMIT 4").unwrap();
        assert_eq!(out.rows.len(), 4);
        assert!(out.rows[0].get("cuisine").is_some());
        assert!(out.rows[0].get("id").is_some());
    }
}
