//! UberEats Restaurant Manager (§5.2).
//!
//! "This dashboard enables the owner of a Restaurant to get insights from
//! the UberEats orders regarding customer satisfaction, popular menu
//! items, sales and service quality... we used Pinot with the efficient
//! pre-aggregation indices... Also, we built preprocessors in Flink such
//! as aggressive filtering, partial aggregate and roll-ups to further
//! reduce the processing time in Pinot... we trade the query flexibility
//! required for ad-hoc exploration and complexity of query evolution for
//! lower latency."

use rtdi_common::{AggFn, Error, FieldType, Record, Result, Row, Schema};
use rtdi_compute::operator::{FilterOp, Operator, WindowAggregateOp};
use rtdi_compute::runtime::{Executor, ExecutorConfig, Job};
use rtdi_compute::source::VecSource;
use rtdi_compute::window::WindowAssigner;
use rtdi_flinksql::sinks::PinotSink;
use rtdi_olap::query::{Predicate, Query, QueryResult, SortOrder};
use rtdi_olap::segment::IndexSpec;
use rtdi_olap::startree::StarTreeSpec;
use rtdi_olap::table::{OlapTable, TableConfig};
use std::sync::Arc;

/// The restaurant-manager deployment: a pre-aggregated stats table plus
/// (for the E16 comparison) an optional raw-events table.
pub struct RestaurantManager {
    pub stats_table: Arc<OlapTable>,
    window_ms: i64,
}

impl RestaurantManager {
    pub fn stats_schema() -> Schema {
        Schema::of(
            "restaurant_stats",
            &[
                ("restaurant", FieldType::Str),
                ("window_start", FieldType::Timestamp),
                ("window_end", FieldType::Timestamp),
                ("orders", FieldType::Int),
                ("revenue", FieldType::Double),
                ("avg_rating", FieldType::Double),
                ("distinct_items", FieldType::Int),
                ("ingest_ts", FieldType::Timestamp),
            ],
        )
    }

    /// The raw-order schema (used by the no-preagg baseline table).
    pub fn raw_schema() -> Schema {
        Schema::of(
            "eats_orders_raw",
            &[
                ("restaurant", FieldType::Str),
                ("item", FieldType::Str),
                ("items", FieldType::Int),
                ("total", FieldType::Double),
                ("rating", FieldType::Int),
                ("hex", FieldType::Str),
                ("ts", FieldType::Timestamp),
            ],
        )
    }

    /// Create the pre-aggregated dashboard table with the "efficient
    /// pre-aggregation indices": inverted on restaurant, sorted by window,
    /// star-tree over (restaurant) with the dashboard metrics.
    pub fn new(window_ms: i64) -> Result<Self> {
        let index_spec = IndexSpec::none()
            .with_inverted(&["restaurant"])
            .with_sorted("window_start")
            .with_startree(StarTreeSpec::new(
                &["restaurant"],
                vec![
                    AggFn::Sum("orders".into()),
                    AggFn::Sum("revenue".into()),
                    AggFn::Count,
                ],
            ));
        let stats_table = OlapTable::new(
            TableConfig::new("restaurant_stats", Self::stats_schema())
                .with_index_spec(index_spec)
                .with_time_column("ingest_ts")
                .with_partitions(2)
                .with_segment_rows(4096),
        )?;
        Ok(RestaurantManager {
            stats_table,
            window_ms,
        })
    }

    /// The Flink preprocessor: aggressive filtering (malformed orders
    /// dropped) + partial aggregation/roll-up per restaurant per window.
    pub fn preprocessor(&self) -> Vec<Box<dyn Operator>> {
        vec![
            Box::new(FilterOp::new("valid-orders", |r: &Row| {
                r.get_str("restaurant").is_some()
                    && r.get_double("total").map(|t| t > 0.0).unwrap_or(false)
            })),
            Box::new(WindowAggregateOp::new(
                "order-rollup",
                vec!["restaurant".into()],
                WindowAssigner::tumbling(self.window_ms),
                vec![
                    ("orders".into(), AggFn::Count),
                    ("revenue".into(), AggFn::Sum("total".into())),
                    ("avg_rating".into(), AggFn::Avg("rating".into())),
                    ("distinct_items".into(), AggFn::DistinctCount("item".into())),
                ],
                0,
            )),
        ]
    }

    /// Run the preprocessing pipeline over a batch of raw order events
    /// into the stats table.
    pub fn ingest_orders(&self, orders: Vec<Record>) -> Result<u64> {
        let mut job = Job::new(
            "restaurant-rollup",
            Box::new(VecSource::new(orders)),
            self.preprocessor(),
            Box::new(PinotSink::new(self.stats_table.clone())),
        );
        let stats = Executor::new(ExecutorConfig::default()).run(&mut job)?;
        Ok(stats.records_out)
    }

    /// Dashboard page load: the fixed query set §5.2 describes (sales,
    /// popular items proxy, satisfaction), all against one restaurant.
    pub fn dashboard_queries(&self, restaurant: &str) -> Vec<Query> {
        vec![
            // sales trend: revenue + orders per window
            Query::select_all("restaurant_stats")
                .filter(Predicate::eq("restaurant", restaurant))
                .columns(&["window_start", "orders", "revenue"])
                .order("window_start", SortOrder::Desc)
                .limit(48),
            // lifetime totals (star-tree answerable)
            Query::select_all("restaurant_stats")
                .filter(Predicate::eq("restaurant", restaurant))
                .aggregate("total_orders", AggFn::Sum("orders".into()))
                .aggregate("total_revenue", AggFn::Sum("revenue".into())),
            // satisfaction
            Query::select_all("restaurant_stats")
                .filter(Predicate::eq("restaurant", restaurant))
                .aggregate("rating", AggFn::Avg("avg_rating".into())),
        ]
    }

    /// Serve one dashboard page load; returns per-query results.
    pub fn load_dashboard(&self, restaurant: &str) -> Result<Vec<QueryResult>> {
        self.dashboard_queries(restaurant)
            .iter()
            .map(|q| self.stats_table.query(q))
            .collect()
    }

    /// The E16 baseline: the same dashboard served from raw events (no
    /// Flink preprocessing). Returns the equivalent query set against a
    /// raw table.
    pub fn raw_dashboard_queries(restaurant: &str, window_ms: i64) -> Vec<Query> {
        let _ = window_ms;
        vec![
            Query::select_all("eats_orders_raw")
                .filter(Predicate::eq("restaurant", restaurant))
                .aggregate("orders", AggFn::Count)
                .aggregate("revenue", AggFn::Sum("total".into()))
                .group(&["ts"]), // per-event granularity: the flexibility cost
            Query::select_all("eats_orders_raw")
                .filter(Predicate::eq("restaurant", restaurant))
                .aggregate("total_orders", AggFn::Count)
                .aggregate("total_revenue", AggFn::Sum("total".into())),
            Query::select_all("eats_orders_raw")
                .filter(Predicate::eq("restaurant", restaurant))
                .aggregate("rating", AggFn::Avg("rating".into())),
        ]
    }

    /// Build the raw-events comparison table.
    pub fn raw_table() -> Result<Arc<OlapTable>> {
        OlapTable::new(
            TableConfig::new("eats_orders_raw", Self::raw_schema())
                .with_index_spec(IndexSpec::none().with_inverted(&["restaurant"]))
                .with_time_column("ts")
                .with_partitions(2)
                .with_segment_rows(65_536),
        )
    }

    pub fn window_ms(&self) -> i64 {
        self.window_ms
    }
}

/// Ingest raw orders into the baseline table (no preprocessing).
pub fn ingest_raw(table: &OlapTable, orders: &[Record]) -> Result<()> {
    for (i, rec) in orders.iter().enumerate() {
        table.ingest(i % table.config().partitions, rec.value.clone())?;
    }
    Ok(())
}

/// Convenience error helper for tests/benches.
pub fn first_row(result: &QueryResult) -> Result<&Row> {
    result
        .rows
        .first()
        .ok_or_else(|| Error::Internal("empty result".into()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::TripEventGenerator;

    fn orders(n: usize) -> Vec<Record> {
        let mut g = TripEventGenerator::new(21, 32);
        (0..n).map(|i| g.eats_order((i as i64) * 100)).collect()
    }

    #[test]
    fn rollup_reduces_rows_dramatically() {
        let rm = RestaurantManager::new(60_000).unwrap();
        let raw = orders(20_000);
        let rolled = rm.ingest_orders(raw).unwrap();
        // 20k orders over ~2000s = ~34 windows x active restaurants —
        // orders of magnitude fewer rows than raw
        assert!(rolled < 20_000 / 2, "rollup produced {rolled} rows");
        assert_eq!(rm.stats_table.doc_count() as u64, rolled);
    }

    #[test]
    fn dashboard_answers_match_raw_truth() {
        let rm = RestaurantManager::new(60_000).unwrap();
        let raw = orders(5_000);
        // ground truth from the raw events
        let target = "rest-0003";
        let true_orders = raw
            .iter()
            .filter(|r| r.value.get_str("restaurant") == Some(target))
            .count() as f64;
        let true_revenue: f64 = raw
            .iter()
            .filter(|r| r.value.get_str("restaurant") == Some(target))
            .map(|r| r.value.get_double("total").unwrap())
            .sum();
        rm.ingest_orders(raw).unwrap();
        let results = rm.load_dashboard(target).unwrap();
        let totals = first_row(&results[1]).unwrap();
        assert_eq!(totals.get_double("total_orders"), Some(true_orders));
        let revenue = totals.get_double("total_revenue").unwrap();
        assert!((revenue - true_revenue).abs() < 1e-6);
        // satisfaction query returns a rating in range
        let rating = first_row(&results[2])
            .unwrap()
            .get_double("rating")
            .unwrap();
        assert!((1.0..=5.0).contains(&rating));
    }

    #[test]
    fn lifetime_totals_use_startree_after_seal() {
        let rm = RestaurantManager::new(60_000).unwrap();
        rm.ingest_orders(orders(10_000)).unwrap();
        rm.stats_table.seal_all().unwrap();
        let q = &rm.dashboard_queries("rest-0001")[1];
        let res = rm.stats_table.query(q).unwrap();
        assert!(res.used_startree, "pre-aggregation index not used");
        assert!(res.docs_scanned == 0);
    }

    #[test]
    fn malformed_orders_filtered_by_preprocessor() {
        let rm = RestaurantManager::new(60_000).unwrap();
        let mut raw = orders(100);
        raw.push(Record::new(Row::new().with("total", 5.0), 1)); // no restaurant
        raw.push(Record::new(
            Row::new()
                .with("restaurant", "rest-bad")
                .with("total", -3.0),
            2,
        ));
        rm.ingest_orders(raw).unwrap();
        let res = rm
            .stats_table
            .query(
                &Query::select_all("restaurant_stats")
                    .filter(Predicate::eq("restaurant", "rest-bad"))
                    .aggregate("n", AggFn::Count),
            )
            .unwrap();
        assert_eq!(res.rows[0].get_int("n"), Some(0));
    }
}
