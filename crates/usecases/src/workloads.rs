//! Seeded synthetic workload generators.
//!
//! Substitutes for the production traces the paper's pipelines consume
//! (trips, marketplace events, eats orders, ML predictions). All
//! generators are deterministic given a seed, skewed like real traffic
//! (hot geofences, hot restaurants) and can inject late arrivals — the
//! property the surge pipeline must tolerate (§5.1).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rtdi_common::{Record, Row, Timestamp};

/// A seeded Zipfian sampler over ranks `0..n`: rank `k` is drawn with
/// probability proportional to `1 / (k + 1)^s`. `s ~ 1` matches the
/// skew of real keyed traffic (hot cities, hot restaurants); larger `s`
/// concentrates more mass on the head — the hot-key storm the salted
/// pre-aggregation path is built for.
#[derive(Debug, Clone)]
pub struct Zipf {
    /// Normalized cumulative distribution over ranks; `cdf[k]` is
    /// `P(rank <= k)`, with `cdf[n-1] == 1.0`.
    cdf: Vec<f64>,
}

impl Zipf {
    pub fn new(n: usize, s: f64) -> Self {
        let n = n.max(1);
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for k in 0..n {
            acc += 1.0 / ((k + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Zipf { cdf }
    }

    pub fn n(&self) -> usize {
        self.cdf.len()
    }

    /// Draw a rank in `0..n` (rank 0 is the hottest key).
    pub fn sample(&self, rng: &mut StdRng) -> usize {
        let u: f64 = rng.gen_range(0.0..1.0);
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

/// Keyed trip generator for the parallel-compute experiments: trips
/// keyed by city (Zipf over `cities`) with a per-trip driver id (Zipf
/// over `drivers`). Fares are dyadic rationals (multiples of 0.25) so
/// floating-point sums are exact regardless of fold order — parallel /
/// salted aggregation can then be checked for *byte-identical* output
/// against the serial plan, not just approximate equality.
pub struct CityDriverGenerator {
    rng: StdRng,
    cities: Zipf,
    drivers: Zipf,
}

impl CityDriverGenerator {
    pub fn new(seed: u64, cities: usize, drivers: usize, skew: f64) -> Self {
        CityDriverGenerator {
            rng: StdRng::seed_from_u64(seed),
            cities: Zipf::new(cities, skew),
            drivers: Zipf::new(drivers, 1.0),
        }
    }

    pub fn trip(&mut self, ts: Timestamp) -> Record {
        let city = format!("city-{:03}", self.cities.sample(&mut self.rng));
        let driver = format!("drv-{:05}", self.drivers.sample(&mut self.rng));
        // quarter-dollar fares: exactly representable, order-independent sums
        let fare = self.rng.gen_range(4..200) as f64 * 0.25;
        Record::new(
            Row::new()
                .with("city", city.clone())
                .with("driver", driver)
                .with("fare", fare)
                .with("ts", ts),
            ts,
        )
        .with_key(city)
    }

    pub fn trips(&mut self, n: usize, interval_ms: i64) -> Vec<Record> {
        (0..n).map(|i| self.trip(i as i64 * interval_ms)).collect()
    }
}

/// Map a (lat, lon) position onto a hexagon-ish geofence id. A square
/// grid stands in for H3 hexagons: what matters to the pipeline is a
/// deterministic position -> cell mapping with controllable granularity.
pub fn hex_for(lat: f64, lon: f64, cell_deg: f64) -> String {
    let r = (lat / cell_deg).floor() as i64;
    let c = (lon / cell_deg).floor() as i64;
    format!("hex_{r}_{c}")
}

/// Marketplace event generator: demand (ride requests) and supply
/// (driver availability) events over a grid of geofences.
pub struct TripEventGenerator {
    rng: StdRng,
    /// Number of distinct geofences.
    pub cells: usize,
    /// Probability an event is late by up to `max_lateness_ms`.
    pub late_probability: f64,
    pub max_lateness_ms: i64,
    /// Demand:supply ratio skew per cell (hot cells get more demand).
    hot_cells: usize,
    /// Zipfian order distribution over restaurants (hot restaurants
    /// draw most orders).
    restaurants: Zipf,
}

impl TripEventGenerator {
    pub fn new(seed: u64, cells: usize) -> Self {
        TripEventGenerator {
            rng: StdRng::seed_from_u64(seed),
            cells: cells.max(1),
            late_probability: 0.0,
            max_lateness_ms: 0,
            hot_cells: (cells / 8).max(1),
            restaurants: Zipf::new(500, 1.05),
        }
    }

    pub fn with_lateness(mut self, probability: f64, max_ms: i64) -> Self {
        self.late_probability = probability.clamp(0.0, 1.0);
        self.max_lateness_ms = max_ms.max(0);
        self
    }

    fn cell(&mut self) -> String {
        // 50% of traffic concentrates on the hot cells
        let c = if self.rng.gen_bool(0.5) {
            self.rng.gen_range(0..self.hot_cells)
        } else {
            self.rng.gen_range(0..self.cells)
        };
        format!("hex_{}_{}", c / 16, c % 16)
    }

    /// One marketplace event at (approximately) event time `ts`.
    pub fn marketplace_event(&mut self, ts: Timestamp) -> Record {
        let late = self.rng.gen_bool(self.late_probability);
        let event_ts = if late {
            ts - self.rng.gen_range(1..=self.max_lateness_ms.max(1))
        } else {
            ts
        };
        let hex = self.cell();
        let kind = if self.rng.gen_bool(0.6) {
            "demand"
        } else {
            "supply"
        };
        Record::new(
            Row::new()
                .with("hex", hex.clone())
                .with("kind", kind)
                .with("rider", format!("u{}", self.rng.gen_range(0..10_000)))
                .with("ts", event_ts),
            event_ts,
        )
        .with_key(hex)
    }

    /// A batch of events covering `[start, start + duration_ms)` at a
    /// fixed rate.
    pub fn marketplace_batch(
        &mut self,
        start: Timestamp,
        duration_ms: i64,
        events_per_sec: usize,
    ) -> Vec<Record> {
        let total = (duration_ms as usize * events_per_sec) / 1000;
        (0..total)
            .map(|i| {
                let ts = start + (i as i64 * duration_ms) / total.max(1) as i64;
                self.marketplace_event(ts)
            })
            .collect()
    }

    /// UberEats order events for the restaurant-manager and ops use cases.
    pub fn eats_order(&mut self, ts: Timestamp) -> Record {
        // hot restaurants get most orders (seeded Zipfian over 500)
        let restaurant = format!("rest-{:04}", self.restaurants.sample(&mut self.rng));
        let items = self.rng.gen_range(1..=8i64);
        let total = items as f64 * self.rng.gen_range(6.0..25.0);
        let rating = self.rng.gen_range(1..=5i64);
        Record::new(
            Row::new()
                .with("restaurant", restaurant.clone())
                .with("item", format!("item-{}", self.rng.gen_range(0..50)))
                .with("items", items)
                .with("total", (total * 100.0).round() / 100.0)
                .with("rating", rating)
                .with("hex", self.cell())
                .with("ts", ts),
            ts,
        )
        .with_key(restaurant)
    }

    /// Prediction + delayed outcome pair for model monitoring (§5.3).
    /// Returns `(prediction, outcome)` where the outcome arrives
    /// `outcome_delay_ms` later.
    pub fn prediction_pair(
        &mut self,
        ts: Timestamp,
        models: usize,
        outcome_delay_ms: i64,
    ) -> (Record, Record) {
        let model = format!("model-{:04}", self.rng.gen_range(0..models.max(1)));
        let feature = format!("f{}", self.rng.gen_range(0..100));
        let case = format!("case-{}-{}", ts, self.rng.gen_range(0..1_000_000));
        let predicted = self.rng.gen_range(0.0..1.0);
        let noise: f64 = self.rng.gen_range(-0.1..0.1);
        let actual = (predicted + noise).clamp(0.0, 1.0);
        let pred = Record::new(
            Row::new()
                .with("case_id", case.clone())
                .with("model", model.clone())
                .with("feature", feature.clone())
                .with("predicted", predicted)
                .with("ts", ts),
            ts,
        )
        .with_key(case.clone());
        let outcome = Record::new(
            Row::new()
                .with("case_id", case.clone())
                .with("model", model)
                .with("actual", actual)
                .with("ts", ts + outcome_delay_ms),
            ts + outcome_delay_ms,
        )
        .with_key(case);
        (pred, outcome)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = TripEventGenerator::new(42, 64);
        let mut b = TripEventGenerator::new(42, 64);
        for i in 0..50 {
            assert_eq!(a.marketplace_event(i).value, b.marketplace_event(i).value);
        }
        let mut c = TripEventGenerator::new(43, 64);
        let differs = (0..50).any(|i| {
            TripEventGenerator::new(42, 64).marketplace_event(i).value
                != c.marketplace_event(i).value
        });
        assert!(differs);
    }

    #[test]
    fn hex_mapping_is_stable_grid() {
        assert_eq!(
            hex_for(37.77, -122.41, 0.01),
            hex_for(37.7701, -122.4099, 0.01)
        );
        assert_ne!(hex_for(37.77, -122.41, 0.01), hex_for(37.80, -122.41, 0.01));
    }

    #[test]
    fn traffic_is_skewed_to_hot_cells() {
        let mut g = TripEventGenerator::new(7, 128);
        let mut counts = std::collections::HashMap::new();
        for i in 0..10_000 {
            let e = g.marketplace_event(i);
            *counts
                .entry(e.value.get_str("hex").unwrap().to_string())
                .or_insert(0usize) += 1;
        }
        let mut freqs: Vec<usize> = counts.values().copied().collect();
        freqs.sort_unstable_by(|a, b| b.cmp(a));
        let top_share: usize = freqs.iter().take(16).sum();
        assert!(
            top_share * 100 / 10_000 > 40,
            "hot cells should draw a large share, got {}%",
            top_share * 100 / 10_000
        );
    }

    #[test]
    fn lateness_injection_respects_bounds() {
        let mut g = TripEventGenerator::new(1, 16).with_lateness(1.0, 5_000);
        for i in 0..100 {
            let ts = 1_000_000 + i;
            let e = g.marketplace_event(ts);
            assert!(e.timestamp < ts && e.timestamp >= ts - 5_000);
        }
        let mut g = TripEventGenerator::new(1, 16); // no lateness
        for i in 0..100 {
            assert_eq!(g.marketplace_event(i).timestamp, i);
        }
    }

    #[test]
    fn batch_spans_requested_window() {
        let mut g = TripEventGenerator::new(5, 32);
        let batch = g.marketplace_batch(10_000, 2_000, 500);
        assert_eq!(batch.len(), 1000);
        assert!(batch.first().unwrap().timestamp >= 10_000);
        assert!(batch.last().unwrap().timestamp < 12_000);
    }

    #[test]
    fn zipf_is_deterministic_and_head_heavy() {
        let z = Zipf::new(100, 1.2);
        let mut a = StdRng::seed_from_u64(11);
        let mut b = StdRng::seed_from_u64(11);
        let sa: Vec<usize> = (0..200).map(|_| z.sample(&mut a)).collect();
        let sb: Vec<usize> = (0..200).map(|_| z.sample(&mut b)).collect();
        assert_eq!(sa, sb);
        assert!(sa.iter().all(|&r| r < 100));

        // rank-0 share grows with the skew parameter
        let share = |s: f64| {
            let z = Zipf::new(100, s);
            let mut rng = StdRng::seed_from_u64(3);
            (0..20_000).filter(|_| z.sample(&mut rng) == 0).count()
        };
        let (mild, hot) = (share(0.8), share(1.5));
        assert!(
            hot > mild && hot > 20_000 / 5,
            "s=1.5 rank-0 share {hot} should beat s=0.8 share {mild}"
        );
    }

    #[test]
    fn eats_orders_remain_zipf_skewed() {
        let mut g = TripEventGenerator::new(13, 32);
        let mut counts = std::collections::HashMap::new();
        for i in 0..10_000 {
            let o = g.eats_order(i);
            *counts
                .entry(o.value.get_str("restaurant").unwrap().to_string())
                .or_insert(0usize) += 1;
        }
        let mut freqs: Vec<usize> = counts.values().copied().collect();
        freqs.sort_unstable_by(|a, b| b.cmp(a));
        let top_share: usize = freqs.iter().take(20).sum();
        assert!(
            top_share * 100 / 10_000 > 35,
            "top-20 restaurants should draw a large share, got {}%",
            top_share * 100 / 10_000
        );
        // the low ranks the dashboards query are all present
        for target in ["rest-0001", "rest-0003", "rest-0005"] {
            assert!(counts.contains_key(target), "{target} never generated");
        }
    }

    #[test]
    fn city_driver_trips_are_deterministic_with_dyadic_fares() {
        let mut a = CityDriverGenerator::new(21, 16, 1000, 1.1);
        let mut b = CityDriverGenerator::new(21, 16, 1000, 1.1);
        let ta = a.trips(500, 10);
        let tb = b.trips(500, 10);
        assert_eq!(ta.len(), 500);
        for (x, y) in ta.iter().zip(&tb) {
            assert_eq!(x.value, y.value);
            let fare = x.value.get_double("fare").unwrap();
            assert_eq!(fare, (fare * 4.0).round() / 4.0, "fare must be dyadic");
            assert!(x.key.is_some());
        }
    }

    #[test]
    fn prediction_pairs_share_case_and_model() {
        let mut g = TripEventGenerator::new(9, 8);
        let (p, o) = g.prediction_pair(1000, 50, 2_000);
        assert_eq!(p.value.get_str("case_id"), o.value.get_str("case_id"));
        assert_eq!(p.value.get_str("model"), o.value.get_str("model"));
        assert_eq!(o.timestamp, p.timestamp + 2_000);
        let predicted = p.value.get_double("predicted").unwrap();
        let actual = o.value.get_double("actual").unwrap();
        assert!((predicted - actual).abs() <= 0.1 + 1e-9);
    }
}
