//! UberEats Ops automation (§5.4).
//!
//! "The UberEats team needed a way to execute ad hoc analytical queries on
//! real time data... Once an insight was discovered, a subsequent need was
//! to productionize the query in a rule-based automation framework...
//! Uber needed to limit the number of customers and couriers at a
//! restaurant. The ops team was able to identify such metrics using Presto
//! on top of real-time data managed by Pinot and then inject such queries
//! into the automation framework... the same infrastructure provided a
//! seamless path from ad-hoc exploration to production rollout."

use rtdi_common::{Error, Result, Row};
use rtdi_sql::engine::SqlEngine;

/// What to do when a rule fires.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuleAction {
    /// Notify couriers/restaurants in the offending area.
    Notify { template: String },
    /// Throttle new orders for the area.
    ThrottleOrders,
}

/// A productionized ad-hoc query: the SQL plus the fire condition.
///
/// The rule fires once per result row whose `metric_column` satisfies the
/// threshold — the SQL itself typically aggregates "needed statistics for
/// a given geographical location in the past few minutes".
pub struct AutomationRule {
    pub name: String,
    pub sql: String,
    pub metric_column: String,
    pub threshold: f64,
    pub action: RuleAction,
}

/// One fired alert.
#[derive(Debug, Clone, PartialEq)]
pub struct Alert {
    pub rule: String,
    pub subject: Row,
    pub action: RuleAction,
    pub message: String,
}

/// The rule-based automation framework.
pub struct OpsAutomation {
    rules: Vec<AutomationRule>,
}

impl OpsAutomation {
    pub fn new() -> Self {
        OpsAutomation { rules: Vec::new() }
    }

    /// Promote an explored query into production ("inject such queries
    /// into the automation framework"). Validates the SQL eagerly against
    /// the engine so broken rules never reach the evaluation loop.
    pub fn promote(&mut self, engine: &SqlEngine, rule: AutomationRule) -> Result<()> {
        engine.explain(&rule.sql)?;
        if rule.metric_column.is_empty() {
            return Err(Error::InvalidArgument("rule needs a metric column".into()));
        }
        self.rules.push(rule);
        Ok(())
    }

    pub fn rules(&self) -> &[AutomationRule] {
        &self.rules
    }

    /// Like [`OpsAutomation::promote`] but validates through any SQL
    /// executor (e.g. `platform.sql`), so the framework composes with the
    /// full platform and not only a bare engine.
    pub fn promote_with(
        &mut self,
        validate: impl Fn(&str) -> Result<()>,
        rule: AutomationRule,
    ) -> Result<()> {
        validate(&rule.sql)?;
        if rule.metric_column.is_empty() {
            return Err(Error::InvalidArgument("rule needs a metric column".into()));
        }
        self.rules.push(rule);
        Ok(())
    }

    /// Evaluate every rule against fresh data; returns the fired alerts.
    pub fn evaluate(&self, engine: &SqlEngine) -> Result<Vec<Alert>> {
        self.evaluate_with(|sql| engine.query(sql).map(|o| o.rows))
    }

    /// Evaluate rules through any SQL executor returning result rows.
    pub fn evaluate_with(&self, run: impl Fn(&str) -> Result<Vec<Row>>) -> Result<Vec<Alert>> {
        let mut alerts = Vec::new();
        for rule in &self.rules {
            let rows = run(&rule.sql)?;
            for row in rows {
                let metric = row.get_double(&rule.metric_column).ok_or_else(|| {
                    Error::Sql(format!(
                        "rule '{}' metric column '{}' missing from result",
                        rule.name, rule.metric_column
                    ))
                })?;
                if metric > rule.threshold {
                    let message = format!(
                        "[{}] {} = {:.1} exceeds {:.1}",
                        rule.name, rule.metric_column, metric, rule.threshold
                    );
                    alerts.push(Alert {
                        rule: rule.name.clone(),
                        subject: row,
                        action: rule.action.clone(),
                        message,
                    });
                }
            }
        }
        Ok(alerts)
    }
}

impl Default for OpsAutomation {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::TripEventGenerator;
    use rtdi_olap::segment::IndexSpec;
    use rtdi_olap::table::{OlapTable, TableConfig};
    use rtdi_sql::connector::PinotConnector;
    use rtdi_sql::engine::EngineConfig;
    use std::sync::Arc;

    /// Stand up courier-activity data in Pinot + a SQL engine over it —
    /// the §5.4 covid capacity scenario.
    fn setup() -> (SqlEngine, Arc<OlapTable>) {
        let schema = rtdi_common::Schema::of(
            "courier_activity",
            &[
                ("hex", rtdi_common::FieldType::Str),
                ("restaurant", rtdi_common::FieldType::Str),
                ("items", rtdi_common::FieldType::Int),
                ("ts", rtdi_common::FieldType::Timestamp),
            ],
        );
        let table = OlapTable::new(
            TableConfig::new("courier_activity", schema)
                .with_index_spec(IndexSpec::none().with_inverted(&["hex", "restaurant"]))
                .with_time_column("ts")
                .with_partitions(2),
        )
        .unwrap();
        let mut g = TripEventGenerator::new(55, 64);
        for i in 0..3_000usize {
            let o = g.eats_order((i as i64) * 100);
            table.ingest(i % 2, o.value).unwrap();
        }
        let pinot = PinotConnector::new();
        pinot.register(table.clone());
        let mut engine = SqlEngine::new(EngineConfig::default());
        engine.register_connector("pinot", Arc::new(pinot));
        (engine, table)
    }

    #[test]
    fn adhoc_exploration_then_promotion() {
        let (engine, _) = setup();
        // 1. ops explores ad hoc via PrestoSQL
        let explored = engine
            .query(
                "SELECT hex, COUNT(*) AS couriers FROM courier_activity \
                 GROUP BY hex ORDER BY couriers DESC LIMIT 5",
            )
            .unwrap();
        assert_eq!(explored.rows.len(), 5);
        let hottest = explored.rows[0].get_double("couriers").unwrap();
        assert!(hottest > 0.0);

        // 2. the discovered query is promoted into the automation framework
        let mut ops = OpsAutomation::new();
        ops.promote(
            &engine,
            AutomationRule {
                name: "covid-capacity".into(),
                sql: "SELECT hex, COUNT(*) AS couriers FROM courier_activity GROUP BY hex".into(),
                metric_column: "couriers".into(),
                threshold: hottest / 2.0,
                action: RuleAction::Notify {
                    template: "too many couriers at {hex}".into(),
                },
            },
        )
        .unwrap();

        // 3. production evaluation fires for the hot hexes
        let alerts = ops.evaluate(&engine).unwrap();
        assert!(!alerts.is_empty());
        assert!(alerts
            .iter()
            .any(|a| { a.subject.get_double("couriers").unwrap() > hottest / 2.0 }));
        assert!(alerts[0].message.contains("covid-capacity"));
    }

    #[test]
    fn broken_rules_rejected_at_promotion() {
        let (engine, _) = setup();
        let mut ops = OpsAutomation::new();
        assert!(ops
            .promote(
                &engine,
                AutomationRule {
                    name: "bad-sql".into(),
                    sql: "SELECT FROM WHERE".into(),
                    metric_column: "x".into(),
                    threshold: 0.0,
                    action: RuleAction::ThrottleOrders,
                },
            )
            .is_err());
        assert!(ops
            .promote(
                &engine,
                AutomationRule {
                    name: "no-metric".into(),
                    sql: "SELECT hex FROM courier_activity LIMIT 1".into(),
                    metric_column: "".into(),
                    threshold: 0.0,
                    action: RuleAction::ThrottleOrders,
                },
            )
            .is_err());
        assert!(ops.rules().is_empty());
    }

    #[test]
    fn rule_with_missing_metric_column_errors_at_eval() {
        let (engine, _) = setup();
        let mut ops = OpsAutomation::new();
        ops.promote(
            &engine,
            AutomationRule {
                name: "misnamed".into(),
                sql: "SELECT hex FROM courier_activity LIMIT 1".into(),
                metric_column: "couriers".into(),
                threshold: 0.0,
                action: RuleAction::ThrottleOrders,
            },
        )
        .unwrap();
        assert!(ops.evaluate(&engine).is_err());
    }

    #[test]
    fn quiet_metrics_fire_nothing() {
        let (engine, _) = setup();
        let mut ops = OpsAutomation::new();
        ops.promote(
            &engine,
            AutomationRule {
                name: "impossible".into(),
                sql: "SELECT hex, COUNT(*) AS couriers FROM courier_activity GROUP BY hex".into(),
                metric_column: "couriers".into(),
                threshold: 1e12,
                action: RuleAction::ThrottleOrders,
            },
        )
        .unwrap();
        assert!(ops.evaluate(&engine).unwrap().is_empty());
    }
}
