//! # rtdi-usecases
//!
//! The four representative production use cases of §5, built on the
//! platform exactly as Table 1 describes:
//!
//! - [`surge`] (§5.1, analytical application): the dynamic-pricing
//!   pipeline — windowed demand/supply per hexagon geofence, an ML-style
//!   pricing model, a KV sink, freshness-over-consistency tradeoffs and
//!   the active-active failover of Figure 6;
//! - [`restaurant`] (§5.2, dashboards): UberEats Restaurant Manager —
//!   Flink pre-aggregation into a Pinot table tuned with pre-aggregation
//!   indices, serving fixed-shape dashboard queries at low latency;
//! - [`prediction`] (§5.3, machine learning): real-time prediction
//!   monitoring — joining predictions to observed outcomes at high
//!   cardinality and cubing accuracy metrics into Pinot;
//! - [`eatsops`] (§5.4, ad-hoc exploration): UberEats Ops automation —
//!   ad-hoc PrestoSQL exploration promoted into a rule-based automation
//!   framework;
//! - [`workloads`]: the seeded synthetic event generators standing in for
//!   Uber's production traces (see DESIGN.md substitution table).

pub mod eatsops;
pub mod prediction;
pub mod restaurant;
pub mod surge;
pub mod workloads;

pub use eatsops::{AutomationRule, OpsAutomation, RuleAction};
pub use prediction::PredictionMonitoring;
pub use restaurant::RestaurantManager;
pub use surge::{LinearSurgeModel, SurgeModel, SurgePipeline};
pub use workloads::{hex_for, CityDriverGenerator, TripEventGenerator, Zipf};
