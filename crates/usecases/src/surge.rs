//! Surge pricing (§5.1, Figure 6).
//!
//! "Surge pricing is essentially a streaming pipeline for computing the
//! pricing multipliers per hexagon-area geofence based on the trip data,
//! rider and driver status in a time window... ingests streaming data from
//! Kafka, runs a complex machine-learning based algorithm in Flink, and
//! stores the result in a sink key-value store for quick result look up.
//! The surge pricing favors data freshness and availability over data
//! consistency. The late-arriving messages do not contribute to the surge
//! computation."

use rtdi_common::{AggFn, Record, Result, Row, TraceReport};
use rtdi_compute::operator::{FilterOp, MapOp, Operator, WindowAggregateOp};
use rtdi_compute::runtime::{Executor, ExecutorConfig, Job, JobRunStats};
use rtdi_compute::sink::FnSink;
use rtdi_compute::source::{Source, TopicSource, VecSource};
use rtdi_compute::window::WindowAssigner;
use rtdi_multiregion::kv::ReplicatedKv;
use rtdi_stream::topic::Topic;
use std::sync::Arc;

/// The pricing model applied per geofence per window — the "complex
/// machine-learning based algorithm" slot. Implementations must be pure
/// (the active-active convergence argument of §6 depends on it).
pub trait SurgeModel: Send + Sync {
    /// `demand`, `supply` are windowed counts; returns the multiplier.
    fn multiplier(&self, demand: f64, supply: f64) -> f64;
}

/// A calibrated linear-ratio model (stand-in for Uber's ML model; same
/// input/output contract).
#[derive(Debug, Clone)]
pub struct LinearSurgeModel {
    /// Multiplier gain per unit of excess demand ratio.
    pub sensitivity: f64,
    pub max_multiplier: f64,
}

impl Default for LinearSurgeModel {
    fn default() -> Self {
        LinearSurgeModel {
            sensitivity: 0.5,
            max_multiplier: 5.0,
        }
    }
}

impl SurgeModel for LinearSurgeModel {
    fn multiplier(&self, demand: f64, supply: f64) -> f64 {
        let ratio = if supply <= 0.0 {
            demand.max(1.0)
        } else {
            demand / supply
        };
        (1.0 + self.sensitivity * (ratio - 1.0).max(0.0)).min(self.max_multiplier)
    }
}

/// Configuration of the surge pipeline.
pub struct SurgePipeline {
    pub window_ms: i64,
    pub model: Arc<dyn SurgeModel>,
    /// Freshness over completeness: no allowed lateness, small watermark
    /// bound.
    pub max_out_of_orderness: i64,
}

impl SurgePipeline {
    pub fn new(window_ms: i64, model: Arc<dyn SurgeModel>) -> Self {
        SurgePipeline {
            window_ms,
            model,
            max_out_of_orderness: 500,
        }
    }

    /// Operator chain: filter malformed -> windowed demand/supply counts
    /// per hex -> model evaluation.
    fn operators(&self) -> Vec<Box<dyn Operator>> {
        let model = self.model.clone();
        vec![
            Box::new(FilterOp::new("valid-events", |r: &Row| {
                r.get_str("hex").is_some()
                    && matches!(r.get_str("kind"), Some("demand") | Some("supply"))
            })),
            Box::new(MapOp::new("tag-kind", |r: &Row| {
                let mut out = r.clone();
                let is_demand = r.get_str("kind") == Some("demand");
                out.push("demand_1", if is_demand { 1.0 } else { 0.0 });
                out.push("supply_1", if is_demand { 0.0 } else { 1.0 });
                out
            })),
            Box::new(WindowAggregateOp::new(
                "demand-supply-window",
                vec!["hex".into()],
                WindowAssigner::tumbling(self.window_ms),
                vec![
                    ("demand".into(), AggFn::Sum("demand_1".into())),
                    ("supply".into(), AggFn::Sum("supply_1".into())),
                ],
                0, // late events dropped: freshness over completeness
            )),
            Box::new(MapOp::new("surge-model", move |r: &Row| {
                let demand = r.get_double("demand").unwrap_or(0.0);
                let supply = r.get_double("supply").unwrap_or(0.0);
                let mut out = r.clone();
                out.push("multiplier", model.multiplier(demand, supply));
                out
            })),
        ]
    }

    /// Build the job over a topic source, sinking multipliers into the KV
    /// store. `written_by` names the region's update service.
    pub fn job(
        &self,
        name: &str,
        topic: Arc<Topic>,
        kv: ReplicatedKv,
        written_by: &str,
    ) -> Result<Job> {
        Ok(self.job_from_source(name, Box::new(TopicSource::bounded(topic)?), kv, written_by))
    }

    /// Same pipeline over an in-memory source (tests, benches).
    pub fn job_from_records(
        &self,
        name: &str,
        records: Vec<Record>,
        kv: ReplicatedKv,
        written_by: &str,
    ) -> Job {
        self.job_from_source(name, Box::new(VecSource::new(records)), kv, written_by)
    }

    fn job_from_source(
        &self,
        name: &str,
        source: Box<dyn Source>,
        kv: ReplicatedKv,
        written_by: &str,
    ) -> Job {
        let writer = written_by.to_string();
        let sink = FnSink::new(move |rec: Record| {
            let hex = rec.value.get_str("hex").unwrap_or("?").to_string();
            kv.put(&hex, rec.value.clone(), rec.timestamp, &writer);
            Ok(())
        });
        Job::new(name, source, self.operators(), Box::new(sink))
            .with_out_of_orderness(self.max_out_of_orderness)
    }

    /// Run the pipeline to completion over a bounded source.
    pub fn run(&self, mut job: Job) -> Result<JobRunStats> {
        Executor::new(ExecutorConfig::default()).run(&mut job)
    }

    /// End-to-end freshness: how long after a window closes its multiplier
    /// is visible in the KV store. In this in-process reproduction the
    /// result is visible at the watermark that closes the window, so
    /// freshness = watermark bound; exposed for the E15 report.
    pub fn freshness_bound_ms(&self) -> i64 {
        self.max_out_of_orderness + 1
    }

    /// §5.1's SLA check against measured freshness: every traced hop of
    /// `pipeline` must have p99 dwell at or below `sla_ms`. False when the
    /// pipeline has no traced stages — an unmeasured pipeline cannot be
    /// declared fresh.
    pub fn meets_freshness_sla(&self, report: &TraceReport, pipeline: &str, sla_ms: u64) -> bool {
        let stages = report.pipeline(pipeline);
        !stages.is_empty() && stages.iter().all(|s| s.p99_ms <= sla_ms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::TripEventGenerator;
    use rtdi_common::{Timestamp, Value};

    fn run_over(records: Vec<Record>) -> ReplicatedKv {
        let kv = ReplicatedKv::new();
        let p = SurgePipeline::new(1_000, Arc::new(LinearSurgeModel::default()));
        let job = p.job_from_records("surge", records, kv.clone(), "test-region");
        p.run(job).unwrap();
        kv
    }

    fn event(ts: Timestamp, hex: &str, kind: &str) -> Record {
        Record::new(
            Row::new()
                .with("hex", hex)
                .with("kind", kind)
                .with("ts", ts),
            ts,
        )
        .with_key(hex)
    }

    #[test]
    fn multiplier_reflects_demand_supply_imbalance() {
        let mut records = Vec::new();
        // hexA: 9 demand, 3 supply -> ratio 3 -> 1 + 0.5*2 = 2.0
        for i in 0..9 {
            records.push(event(100 + i, "hexA", "demand"));
        }
        for i in 0..3 {
            records.push(event(200 + i, "hexA", "supply"));
        }
        // hexB: balanced -> 1.0
        for i in 0..4 {
            records.push(event(300 + i, "hexB", "demand"));
            records.push(event(400 + i, "hexB", "supply"));
        }
        let kv = run_over(records);
        let a = kv.get("hexA").unwrap();
        assert_eq!(a.get_double("multiplier"), Some(2.0));
        let b = kv.get("hexB").unwrap();
        assert_eq!(b.get_double("multiplier"), Some(1.0));
    }

    #[test]
    fn zero_supply_is_capped() {
        let model = LinearSurgeModel::default();
        assert!(model.multiplier(100.0, 0.0) <= model.max_multiplier);
        assert_eq!(model.multiplier(0.0, 10.0), 1.0);
        assert_eq!(model.multiplier(10.0, 10.0), 1.0);
    }

    #[test]
    fn late_events_do_not_contribute() {
        // hexA gets 5 on-time events in window [0,1000); unrelated hexB
        // traffic at t=5s advances the watermark past the window end; a
        // very late hexA event for the closed window must be dropped.
        let mut records = Vec::new();
        for i in 0..5 {
            records.push(event(100 + i, "hexA", "demand"));
        }
        for i in 0..5 {
            records.push(event(5_000 + i, "hexB", "demand"));
        }
        records.push(event(150, "hexA", "demand")); // late by ~5s, bound 500ms
                                                    // small batches so the watermark advances between the hexB traffic
                                                    // and the late arrival (watermarks are generated per batch)
        let kv = ReplicatedKv::new();
        let p = SurgePipeline::new(1_000, Arc::new(LinearSurgeModel::default()));
        let mut job = p.job_from_records("surge", records, kv.clone(), "t");
        Executor::new(ExecutorConfig {
            batch_size: 5,
            ..Default::default()
        })
        .run(&mut job)
        .unwrap();
        // hexA's only window was computed from the 5 on-time events; the
        // late 6th never contributed
        let row = kv.get("hexA").unwrap();
        assert_eq!(row.get_double("demand"), Some(5.0));
    }

    #[test]
    fn malformed_events_filtered() {
        let records = vec![
            event(100, "hexA", "demand"),
            Record::new(Row::new().with("kind", "demand"), 101), // no hex
            Record::new(Row::new().with("hex", "hexA").with("kind", "riddle"), 102),
        ];
        let kv = run_over(records);
        assert_eq!(kv.get("hexA").unwrap().get_double("demand"), Some(1.0));
    }

    #[test]
    fn realistic_workload_produces_multipliers_for_every_active_hex() {
        let mut g = TripEventGenerator::new(11, 64);
        let records = g.marketplace_batch(0, 10_000, 200);
        let hexes: std::collections::HashSet<String> = records
            .iter()
            .map(|r| r.value.get_str("hex").unwrap().to_string())
            .collect();
        let kv = run_over(records);
        assert_eq!(kv.len(), hexes.len());
        for hex in kv.keys() {
            let m = kv.get(&hex).unwrap().get_double("multiplier").unwrap();
            assert!((1.0..=5.0).contains(&m), "multiplier {m} out of range");
        }
    }

    #[test]
    fn kv_writer_attribution_for_active_active() {
        let kv = ReplicatedKv::new();
        let p = SurgePipeline::new(1_000, Arc::new(LinearSurgeModel::default()));
        let job = p.job_from_records(
            "surge-west",
            vec![event(1, "hexZ", "demand")],
            kv.clone(),
            "us-west",
        );
        p.run(job).unwrap();
        assert_eq!(kv.writer_of("hexZ").unwrap(), "us-west");
        assert_eq!(
            kv.get("hexZ").unwrap().get("multiplier").cloned(),
            Some(Value::Double(1.0))
        );
    }

    #[test]
    fn freshness_sla_check_uses_traced_percentiles() {
        use rtdi_common::PipelineTracer;
        let tracer = PipelineTracer::default();
        let p = SurgePipeline::new(1_000, Arc::new(LinearSurgeModel::default()));
        // an unmeasured pipeline cannot be declared fresh
        assert!(!p.meets_freshness_sla(&tracer.report(), "surge", 5_000));
        for _ in 0..100 {
            tracer.record_dwell("surge", "stream", 40);
            tracer.record_dwell("surge", "compute", 200);
        }
        let report = tracer.report();
        assert!(p.meets_freshness_sla(&report, "surge", 5_000));
        // the compute hop's p99 exceeds a 100ms SLA
        assert!(!p.meets_freshness_sla(&report, "surge", 100));
    }
}
