//! # rtdi-metadata
//!
//! The Metadata layer of the stack (§3): a versioned schema registry with
//! backward-compatibility enforcement, plus the data-discovery and
//! lineage-tracking services the paper describes in §9.4 ("a centralized
//! metadata repository ... the source of truth for schemas across both
//! realtime and offline systems ... this system also tracks the data
//! lineage representing flow of data across these components").

pub mod lineage;
pub mod registry;

pub use lineage::{LineageEdge, LineageGraph};
pub use registry::{CompatibilityMode, SchemaRegistry, VersionedSchema};
