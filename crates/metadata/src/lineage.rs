//! Data lineage tracking.
//!
//! §9.4: the metadata system "tracks the data lineage representing flow of
//! data across these components" — e.g. a Kafka topic feeds a Flink job
//! which sinks into a Pinot table that a dashboard queries. The lineage
//! graph answers "what is downstream of this topic?" (impact analysis) and
//! "where did this table's data come from?" (provenance), which operators
//! use when triaging data-quality incidents.

use parking_lot::RwLock;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::Arc;

/// A directed edge: data flows `from` -> `to` via a named processor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LineageEdge {
    pub from: String,
    pub to: String,
    /// What moves the data (a Flink job name, "compaction", "uReplicator"...).
    pub via: String,
}

#[derive(Default)]
struct GraphInner {
    downstream: BTreeMap<String, Vec<LineageEdge>>,
    upstream: BTreeMap<String, Vec<LineageEdge>>,
}

/// Thread-safe lineage graph.
#[derive(Clone, Default)]
pub struct LineageGraph {
    inner: Arc<RwLock<GraphInner>>,
}

impl LineageGraph {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn record(&self, from: &str, to: &str, via: &str) {
        let edge = LineageEdge {
            from: from.to_string(),
            to: to.to_string(),
            via: via.to_string(),
        };
        let mut g = self.inner.write();
        let down = g.downstream.entry(from.to_string()).or_default();
        if !down.contains(&edge) {
            down.push(edge.clone());
        }
        let up = g.upstream.entry(to.to_string()).or_default();
        if !up.contains(&edge) {
            up.push(edge);
        }
    }

    /// Direct downstream edges of a dataset.
    pub fn downstream(&self, of: &str) -> Vec<LineageEdge> {
        self.inner
            .read()
            .downstream
            .get(of)
            .cloned()
            .unwrap_or_default()
    }

    /// Direct upstream edges of a dataset.
    pub fn upstream(&self, of: &str) -> Vec<LineageEdge> {
        self.inner
            .read()
            .upstream
            .get(of)
            .cloned()
            .unwrap_or_default()
    }

    /// Every dataset transitively reachable downstream of `of` (impact
    /// analysis: "if this topic is corrupt, what must be backfilled?").
    pub fn impact(&self, of: &str) -> Vec<String> {
        self.walk(of, true)
    }

    /// Every dataset transitively upstream of `of` (provenance).
    pub fn provenance(&self, of: &str) -> Vec<String> {
        self.walk(of, false)
    }

    fn walk(&self, of: &str, down: bool) -> Vec<String> {
        let g = self.inner.read();
        let map = if down { &g.downstream } else { &g.upstream };
        let mut seen = BTreeSet::new();
        let mut queue = VecDeque::from([of.to_string()]);
        while let Some(node) = queue.pop_front() {
            if let Some(edges) = map.get(&node) {
                for e in edges {
                    let next = if down { &e.to } else { &e.from };
                    if seen.insert(next.clone()) {
                        queue.push_back(next.clone());
                    }
                }
            }
        }
        seen.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> LineageGraph {
        let g = LineageGraph::new();
        // trips topic -> flink surge job -> surge kv
        g.record("kafka.trips", "flink.surge", "surge-pipeline");
        g.record("flink.surge", "kv.surge", "surge-pipeline");
        // trips topic also archived -> hive -> pinot offline
        g.record("kafka.trips", "hive.trips", "archival");
        g.record("hive.trips", "pinot.trips", "piper-offline-push");
        g
    }

    #[test]
    fn direct_edges() {
        let g = sample();
        let down = g.downstream("kafka.trips");
        assert_eq!(down.len(), 2);
        let up = g.upstream("pinot.trips");
        assert_eq!(up.len(), 1);
        assert_eq!(up[0].via, "piper-offline-push");
        assert!(g.downstream("unknown").is_empty());
    }

    #[test]
    fn transitive_impact_and_provenance() {
        let g = sample();
        let impact = g.impact("kafka.trips");
        assert!(impact.contains(&"kv.surge".to_string()));
        assert!(impact.contains(&"pinot.trips".to_string()));
        assert_eq!(impact.len(), 4);
        let prov = g.provenance("pinot.trips");
        assert_eq!(
            prov,
            vec!["hive.trips".to_string(), "kafka.trips".to_string()]
        );
    }

    #[test]
    fn duplicate_edges_deduplicated() {
        let g = LineageGraph::new();
        g.record("a", "b", "x");
        g.record("a", "b", "x");
        assert_eq!(g.downstream("a").len(), 1);
        g.record("a", "b", "y"); // different processor = distinct edge
        assert_eq!(g.downstream("a").len(), 2);
    }

    #[test]
    fn cycles_terminate() {
        let g = LineageGraph::new();
        g.record("a", "b", "p");
        g.record("b", "a", "q");
        let impact = g.impact("a");
        assert_eq!(impact, vec!["a".to_string(), "b".to_string()]);
    }
}
