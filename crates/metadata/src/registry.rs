//! Versioned schema registry.
//!
//! §3 Metadata requirements: "ability to version the metadata and have
//! checks for ensuring backward compatibility across versions." The
//! registry is also the integration point Pinot uses to "automatically
//! infer the schema from the input Kafka topic" (§4.3.3) — see
//! [`SchemaRegistry::infer_from_rows`].

use parking_lot::RwLock;
use rtdi_common::{Error, Field, FieldType, Result, Row, Schema, Value};
use std::collections::BTreeMap;
use std::sync::Arc;

/// How strictly new schema versions are checked against prior versions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CompatibilityMode {
    /// New version must be readable by consumers of the previous version.
    #[default]
    Backward,
    /// No checks (used for scratch/test subjects).
    None,
}

/// A schema plus its registry version number (1-based).
#[derive(Debug, Clone, PartialEq)]
pub struct VersionedSchema {
    pub version: u32,
    pub schema: Schema,
}

#[derive(Default)]
struct Subject {
    mode: CompatibilityMode,
    versions: Vec<Schema>,
}

/// Central, thread-safe schema registry shared by stream topics, OLAP
/// tables and warehouse datasets.
#[derive(Clone, Default)]
pub struct SchemaRegistry {
    subjects: Arc<RwLock<BTreeMap<String, Subject>>>,
}

impl SchemaRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a new version for `subject`. Fails if the compatibility
    /// check rejects it. Returns the registered version.
    pub fn register(&self, subject: &str, schema: Schema) -> Result<VersionedSchema> {
        let mut subjects = self.subjects.write();
        let entry = subjects.entry(subject.to_string()).or_default();
        if let Some(prior) = entry.versions.last() {
            if entry.mode == CompatibilityMode::Backward
                && !schema.is_backward_compatible_with(prior)
            {
                return Err(Error::Schema(format!(
                    "schema for '{subject}' is not backward compatible with version {}",
                    entry.versions.len()
                )));
            }
        }
        entry.versions.push(schema.clone());
        Ok(VersionedSchema {
            version: entry.versions.len() as u32,
            schema,
        })
    }

    pub fn set_mode(&self, subject: &str, mode: CompatibilityMode) {
        self.subjects
            .write()
            .entry(subject.to_string())
            .or_default()
            .mode = mode;
    }

    /// Latest version of a subject.
    pub fn latest(&self, subject: &str) -> Result<VersionedSchema> {
        let subjects = self.subjects.read();
        let entry = subjects
            .get(subject)
            .ok_or_else(|| Error::NotFound(format!("schema subject '{subject}'")))?;
        let schema = entry
            .versions
            .last()
            .ok_or_else(|| Error::NotFound(format!("no versions for '{subject}'")))?;
        Ok(VersionedSchema {
            version: entry.versions.len() as u32,
            schema: schema.clone(),
        })
    }

    /// A specific version (1-based).
    pub fn version(&self, subject: &str, version: u32) -> Result<VersionedSchema> {
        let subjects = self.subjects.read();
        let entry = subjects
            .get(subject)
            .ok_or_else(|| Error::NotFound(format!("schema subject '{subject}'")))?;
        let schema = entry
            .versions
            .get(version.saturating_sub(1) as usize)
            .ok_or_else(|| Error::NotFound(format!("version {version} of '{subject}'")))?;
        Ok(VersionedSchema {
            version,
            schema: schema.clone(),
        })
    }

    /// All registered subjects — the data-discovery listing of §9.4.
    pub fn subjects(&self) -> Vec<String> {
        self.subjects.read().keys().cloned().collect()
    }

    /// Substring search over subject names (data discovery).
    pub fn discover(&self, needle: &str) -> Vec<String> {
        self.subjects
            .read()
            .keys()
            .filter(|s| s.contains(needle))
            .cloned()
            .collect()
    }

    /// Infer a schema by sampling rows, the way Pinot's Uber integration
    /// infers schemas from Kafka topics (§4.3.3). Fields seen with
    /// conflicting scalar types widen (Int+Double -> Double, anything else
    /// -> Str). Also estimates per-column cardinality from the sample.
    pub fn infer_from_rows(name: &str, sample: &[Row]) -> (Schema, BTreeMap<String, usize>) {
        let mut types: BTreeMap<String, FieldType> = BTreeMap::new();
        let mut distinct: BTreeMap<String, std::collections::HashSet<String>> = BTreeMap::new();
        for row in sample {
            for (col, val) in row.iter() {
                let t = match val {
                    Value::Null => continue,
                    Value::Bool(_) => FieldType::Bool,
                    Value::Int(_) => FieldType::Int,
                    Value::Double(_) => FieldType::Double,
                    Value::Str(_) => FieldType::Str,
                    Value::Bytes(_) => FieldType::Bytes,
                    Value::Json(_) => FieldType::Json,
                };
                types
                    .entry(col.to_string())
                    .and_modify(|prev| *prev = widen(*prev, t))
                    .or_insert(t);
                distinct
                    .entry(col.to_string())
                    .or_default()
                    .insert(format!("{val}"));
            }
        }
        let fields = types.into_iter().map(|(n, t)| Field::new(n, t)).collect();
        let cardinality = distinct.into_iter().map(|(k, v)| (k, v.len())).collect();
        (Schema::new(name, fields), cardinality)
    }
}

fn widen(a: FieldType, b: FieldType) -> FieldType {
    use FieldType::*;
    if a == b {
        return a;
    }
    match (a, b) {
        (Int, Double) | (Double, Int) => Double,
        (Int, Timestamp) | (Timestamp, Int) => Timestamp,
        _ => Str,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v1() -> Schema {
        Schema::new(
            "orders",
            vec![
                Field::new("id", FieldType::Int).required(),
                Field::new("total", FieldType::Double),
            ],
        )
    }

    #[test]
    fn register_and_fetch_versions() {
        let reg = SchemaRegistry::new();
        let r1 = reg.register("orders", v1()).unwrap();
        assert_eq!(r1.version, 1);
        let mut v2 = v1();
        v2.fields.push(Field::new("city", FieldType::Str));
        let r2 = reg.register("orders", v2.clone()).unwrap();
        assert_eq!(r2.version, 2);
        assert_eq!(reg.latest("orders").unwrap().schema, v2);
        assert_eq!(reg.version("orders", 1).unwrap().schema, v1());
        assert!(reg.version("orders", 3).is_err());
        assert!(reg.latest("nope").is_err());
    }

    #[test]
    fn incompatible_version_rejected() {
        let reg = SchemaRegistry::new();
        reg.register("orders", v1()).unwrap();
        let mut bad = v1();
        bad.fields.retain(|f| f.name != "total");
        assert!(matches!(
            reg.register("orders", bad.clone()),
            Err(Error::Schema(_))
        ));
        // with checks off it goes through
        reg.set_mode("orders", CompatibilityMode::None);
        assert!(reg.register("orders", bad).is_ok());
    }

    #[test]
    fn discovery_lists_subjects() {
        let reg = SchemaRegistry::new();
        reg.register("kafka.trips", v1()).unwrap();
        reg.register("kafka.orders", v1()).unwrap();
        reg.register("pinot.orders", v1()).unwrap();
        assert_eq!(reg.subjects().len(), 3);
        assert_eq!(
            reg.discover("orders"),
            vec!["kafka.orders".to_string(), "pinot.orders".to_string()]
        );
    }

    #[test]
    fn inference_widens_and_estimates_cardinality() {
        let rows = vec![
            Row::new()
                .with("id", 1i64)
                .with("amount", 2i64)
                .with("city", "sf"),
            Row::new()
                .with("id", 2i64)
                .with("amount", 2.5)
                .with("city", "nyc"),
            Row::new()
                .with("id", 3i64)
                .with("amount", 3i64)
                .with("city", "sf"),
        ];
        let (schema, card) = SchemaRegistry::infer_from_rows("t", &rows);
        assert_eq!(schema.field("id").unwrap().field_type, FieldType::Int);
        assert_eq!(
            schema.field("amount").unwrap().field_type,
            FieldType::Double
        );
        assert_eq!(schema.field("city").unwrap().field_type, FieldType::Str);
        assert_eq!(card["city"], 2);
        assert_eq!(card["id"], 3);
    }

    #[test]
    fn inference_conflicting_types_fall_back_to_str() {
        let rows = vec![Row::new().with("x", 1i64), Row::new().with("x", "oops")];
        let (schema, _) = SchemaRegistry::infer_from_rows("t", &rows);
        assert_eq!(schema.field("x").unwrap().field_type, FieldType::Str);
    }
}
