//! Time sources.
//!
//! Real-time infrastructure is all about time: event time vs processing
//! time, watermarks, freshness SLAs. Components take a [`Clock`] trait
//! object so tests and the discrete-event experiments (e.g. the
//! backpressure-recovery comparison, E6) can run on a deterministic
//! [`SimClock`] while production-style benches use the [`WallClock`].

use parking_lot::Mutex;
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;
use std::time::{SystemTime, UNIX_EPOCH};

/// Milliseconds since the Unix epoch. All event timestamps in the stack use
/// this representation (matching Kafka/Flink/Pinot conventions).
pub type Timestamp = i64;

/// A source of "now".
pub trait Clock: Send + Sync {
    /// Current time in epoch milliseconds.
    fn now(&self) -> Timestamp;
}

/// Wall-clock time.
#[derive(Debug, Default, Clone, Copy)]
pub struct WallClock;

impl Clock for WallClock {
    fn now(&self) -> Timestamp {
        SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .expect("system clock before epoch")
            .as_millis() as Timestamp
    }
}

/// Deterministic, manually-advanced clock for simulations and tests.
///
/// Cloning shares the underlying time cell, so a pipeline holding many
/// clones advances together.
#[derive(Debug, Clone, Default)]
pub struct SimClock {
    now_ms: Arc<AtomicI64>,
}

impl SimClock {
    pub fn new(start: Timestamp) -> Self {
        SimClock {
            now_ms: Arc::new(AtomicI64::new(start)),
        }
    }

    /// Advance the clock by `delta_ms` and return the new now.
    pub fn advance(&self, delta_ms: i64) -> Timestamp {
        self.now_ms.fetch_add(delta_ms, Ordering::SeqCst) + delta_ms
    }

    /// Jump to an absolute time. Time never moves backwards: setting a
    /// value in the past is ignored (returns current now).
    pub fn set(&self, to: Timestamp) -> Timestamp {
        let mut cur = self.now_ms.load(Ordering::SeqCst);
        while to > cur {
            match self
                .now_ms
                .compare_exchange(cur, to, Ordering::SeqCst, Ordering::SeqCst)
            {
                Ok(_) => return to,
                Err(actual) => cur = actual,
            }
        }
        cur
    }
}

impl Clock for SimClock {
    fn now(&self) -> Timestamp {
        self.now_ms.load(Ordering::SeqCst)
    }
}

/// A discrete-event simulation scheduler built on virtual time.
///
/// Used by experiments that reproduce *time-shaped* claims the paper makes
/// about production systems (e.g. "Storm took several hours to recover,
/// Flink took 20 minutes") without actually waiting hours: work items carry
/// virtual costs and the simulator advances time event by event.
type Event = Box<dyn FnOnce(&mut EventCtx) + Send>;

pub struct EventSimulator {
    clock: SimClock,
    // (due_time, seq, event) — seq breaks ties FIFO.
    queue: Mutex<std::collections::BinaryHeap<std::cmp::Reverse<(Timestamp, u64, usize)>>>,
    events: Mutex<Vec<Option<Event>>>,
    seq: AtomicI64,
}

/// Context handed to each simulated event; lets events schedule more work.
pub struct EventCtx {
    now: Timestamp,
    scheduled: Vec<(Timestamp, Event)>,
}

impl EventCtx {
    pub fn now(&self) -> Timestamp {
        self.now
    }

    /// Schedule `f` to run `delay_ms` after the current event.
    pub fn schedule_in(&mut self, delay_ms: i64, f: impl FnOnce(&mut EventCtx) + Send + 'static) {
        self.scheduled
            .push((self.now + delay_ms.max(0), Box::new(f)));
    }
}

impl EventSimulator {
    pub fn new(start: Timestamp) -> Self {
        EventSimulator {
            clock: SimClock::new(start),
            queue: Mutex::new(std::collections::BinaryHeap::new()),
            events: Mutex::new(Vec::new()),
            seq: AtomicI64::new(0),
        }
    }

    pub fn clock(&self) -> SimClock {
        self.clock.clone()
    }

    /// Schedule an event at absolute virtual time `at`.
    pub fn schedule_at(&self, at: Timestamp, f: impl FnOnce(&mut EventCtx) + Send + 'static) {
        let mut events = self.events.lock();
        let idx = events.len();
        events.push(Some(Box::new(f)));
        let seq = self.seq.fetch_add(1, Ordering::SeqCst) as u64;
        self.queue
            .lock()
            .push(std::cmp::Reverse((at.max(self.clock.now()), seq, idx)));
    }

    /// Run events until the queue is empty or `until` virtual time is
    /// reached. Returns the virtual time when the simulation stopped.
    pub fn run_until(&self, until: Timestamp) -> Timestamp {
        loop {
            let next = { self.queue.lock().pop() };
            let Some(std::cmp::Reverse((at, _, idx))) = next else {
                break;
            };
            if at > until {
                // put it back; it fires after the horizon
                let seq = self.seq.fetch_add(1, Ordering::SeqCst) as u64;
                self.queue.lock().push(std::cmp::Reverse((at, seq, idx)));
                self.clock.set(until);
                return until;
            }
            self.clock.set(at);
            let f = self.events.lock()[idx].take();
            if let Some(f) = f {
                let mut ctx = EventCtx {
                    now: at,
                    scheduled: Vec::new(),
                };
                f(&mut ctx);
                for (t, g) in ctx.scheduled {
                    self.schedule_at(t, g);
                }
            }
        }
        self.clock.now()
    }

    /// Drain the entire queue regardless of horizon.
    pub fn run_to_completion(&self) -> Timestamp {
        self.run_until(Timestamp::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn wall_clock_is_reasonable() {
        let t = WallClock.now();
        // after 2020-01-01 and before 2100
        assert!(t > 1_577_836_800_000);
        assert!(t < 4_102_444_800_000);
    }

    #[test]
    fn sim_clock_advances_and_never_rewinds() {
        let c = SimClock::new(1000);
        assert_eq!(c.now(), 1000);
        assert_eq!(c.advance(500), 1500);
        assert_eq!(c.set(1200), 1500); // rewind ignored
        assert_eq!(c.set(2000), 2000);
        let c2 = c.clone();
        c2.advance(1);
        assert_eq!(c.now(), 2001); // clones share time
    }

    #[test]
    fn simulator_runs_in_time_order() {
        let sim = EventSimulator::new(0);
        let order = Arc::new(Mutex::new(Vec::new()));
        for (at, tag) in [(30i64, 'c'), (10, 'a'), (20, 'b')] {
            let order = order.clone();
            sim.schedule_at(at, move |ctx| {
                order.lock().push((ctx.now(), tag));
            });
        }
        let end = sim.run_to_completion();
        assert_eq!(end, 30);
        assert_eq!(&*order.lock(), &[(10, 'a'), (20, 'b'), (30, 'c')]);
    }

    #[test]
    fn events_can_schedule_followups() {
        let sim = EventSimulator::new(0);
        let count = Arc::new(AtomicUsize::new(0));
        let c = count.clone();
        // chain of 5 events, 100ms apart
        fn step(ctx: &mut EventCtx, c: Arc<AtomicUsize>, left: usize) {
            c.fetch_add(1, Ordering::SeqCst);
            if left > 0 {
                let c2 = c.clone();
                ctx.schedule_in(100, move |ctx| step(ctx, c2, left - 1));
            }
        }
        sim.schedule_at(0, move |ctx| step(ctx, c, 4));
        let end = sim.run_to_completion();
        assert_eq!(count.load(Ordering::SeqCst), 5);
        assert_eq!(end, 400);
    }

    #[test]
    fn run_until_stops_at_horizon() {
        let sim = EventSimulator::new(0);
        let hits = Arc::new(AtomicUsize::new(0));
        for at in [10i64, 20, 5000] {
            let hits = hits.clone();
            sim.schedule_at(at, move |_| {
                hits.fetch_add(1, Ordering::SeqCst);
            });
        }
        let t = sim.run_until(100);
        assert_eq!(t, 100);
        assert_eq!(hits.load(Ordering::SeqCst), 2);
        sim.run_to_completion();
        assert_eq!(hits.load(Ordering::SeqCst), 3);
    }
}
