//! Pipeline-wide overload protection: deadlines, rate limits, admission.
//!
//! The paper's platform survives sustained saturation because every tier
//! refuses or sheds work it cannot finish instead of queueing it until
//! freshness collapses: Kafka enforces per-client quotas at ingress
//! (§4.1), Flink propagates backpressure through bounded credit
//! channels (§4.4), and Pinot brokers degrade queries rather than die
//! (§4.3). This module is the shared policy layer those enforcement
//! points plug into:
//!
//! - [`Deadline`] — an absolute expiry on the injectable [`Clock`],
//!   carried through `Pushdown`/`Query` so every tier can stop working
//!   on a request the caller has already given up on, and split into
//!   child budgets at federation boundaries;
//! - [`RateLimiter`] — a deterministic token bucket (milli-token integer
//!   arithmetic, refilled from the clock, never from wall time) used for
//!   per-topic producer quotas and per-tenant proxy quotas;
//! - [`AdmissionController`] — concurrency permits, queue-depth
//!   watermarks with hysteresis, priority lanes (backfill sheds first)
//!   and per-tenant token buckets, with exact shed accounting so soak
//!   tests can assert `offered == admitted + shed` byte-for-byte.
//!
//! Everything is deterministic under a [`SimClock`](crate::SimClock):
//! two identical drive sequences produce byte-identical
//! [`AdmissionController::summary`] strings — the CI overload gate
//! diffs them across processes.

use crate::error::{Error, Result};
use crate::time::{Clock, Timestamp};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

// ---------------------------------------------------------------------------
// Deadline
// ---------------------------------------------------------------------------

/// An absolute expiry instant on an injectable clock.
///
/// Cloning shares the clock; equality and `Debug` look only at the
/// expiry instant so a `Deadline` inside a derived-`PartialEq` query
/// shape compares by budget, not by clock identity.
#[derive(Clone)]
pub struct Deadline {
    clock: Arc<dyn Clock>,
    expires_at: Timestamp,
}

impl fmt::Debug for Deadline {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Deadline")
            .field("expires_at", &self.expires_at)
            .finish()
    }
}

impl PartialEq for Deadline {
    fn eq(&self, other: &Self) -> bool {
        self.expires_at == other.expires_at
    }
}

impl Deadline {
    /// A deadline expiring at absolute clock time `expires_at` (ms).
    pub fn at(clock: Arc<dyn Clock>, expires_at: Timestamp) -> Self {
        Deadline { clock, expires_at }
    }

    /// A deadline `budget_ms` from now on `clock`.
    pub fn within_ms(clock: Arc<dyn Clock>, budget_ms: i64) -> Self {
        let expires_at = clock.now().saturating_add(budget_ms.max(0));
        Deadline { clock, expires_at }
    }

    pub fn expires_at(&self) -> Timestamp {
        self.expires_at
    }

    /// Milliseconds of budget left, clamped at zero.
    pub fn remaining_ms(&self) -> i64 {
        (self.expires_at - self.clock.now()).max(0)
    }

    pub fn expired(&self) -> bool {
        self.clock.now() >= self.expires_at
    }

    /// `Err(DeadlineExceeded)` if the budget is spent; `what` names the
    /// work being abandoned.
    pub fn check(&self, what: &str) -> Result<()> {
        if self.expired() {
            Err(Error::DeadlineExceeded(format!(
                "{what}: deadline {} passed at {}",
                self.expires_at,
                self.clock.now()
            )))
        } else {
            Ok(())
        }
    }

    /// A child deadline holding `num/den` of the remaining budget,
    /// never extending past the parent. This is the federation split
    /// rule: the offline side of a hybrid scan gets half the remaining
    /// budget, the realtime side keeps the full parent deadline, so a
    /// slow archive scan can never starve the fresh data the caller
    /// actually came for.
    pub fn with_budget_fraction(&self, num: i64, den: i64) -> Deadline {
        let den = den.max(1);
        let child = self
            .clock
            .now()
            .saturating_add(self.remaining_ms() * num.max(0) / den);
        Deadline {
            clock: self.clock.clone(),
            expires_at: child.min(self.expires_at),
        }
    }
}

/// Scheduling lane for a piece of work. Interactive traffic (dashboards,
/// operators staring at a surge map) is protected; backfill lanes are
/// the first to shed when watermarks trip (§4.3 query isolation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Priority {
    #[default]
    Interactive,
    Backfill,
}

impl Priority {
    pub fn name(self) -> &'static str {
        match self {
            Priority::Interactive => "interactive",
            Priority::Backfill => "backfill",
        }
    }
}

// ---------------------------------------------------------------------------
// RateLimiter
// ---------------------------------------------------------------------------

/// Steady-state rate plus burst headroom for one quota.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Quota {
    /// Sustained tokens per second.
    pub rate_per_sec: u64,
    /// Bucket capacity (burst size), in tokens.
    pub burst: u64,
}

impl Quota {
    pub fn per_sec(rate: u64) -> Self {
        Quota {
            rate_per_sec: rate,
            burst: rate.max(1),
        }
    }

    pub fn with_burst(mut self, burst: u64) -> Self {
        self.burst = burst.max(1);
        self
    }
}

struct BucketState {
    /// Milli-tokens, so a 1-ms refill of any integer rate is exact.
    tokens_milli: u64,
    last_refill: Timestamp,
}

/// Deterministic token bucket on the injectable clock.
///
/// Refill arithmetic is integer milli-tokens
/// (`elapsed_ms * rate_per_sec` milli-tokens per elapsed millisecond),
/// so identical clock sequences always yield identical admit/deny
/// decisions — no floats, no wall time.
pub struct RateLimiter {
    clock: Arc<dyn Clock>,
    quota: Quota,
    state: Mutex<BucketState>,
}

impl RateLimiter {
    pub fn new(clock: Arc<dyn Clock>, quota: Quota) -> Self {
        let now = clock.now();
        RateLimiter {
            clock,
            quota,
            state: Mutex::new(BucketState {
                tokens_milli: quota.burst.saturating_mul(1000),
                last_refill: now,
            }),
        }
    }

    fn refill(&self, state: &mut BucketState, now: Timestamp) {
        if now <= state.last_refill {
            return;
        }
        let elapsed_ms = (now - state.last_refill) as u64;
        state.tokens_milli = state
            .tokens_milli
            .saturating_add(elapsed_ms.saturating_mul(self.quota.rate_per_sec))
            .min(self.quota.burst.saturating_mul(1000));
        state.last_refill = now;
    }

    /// Take `n` tokens if available; false (and no tokens taken) if not.
    pub fn try_acquire(&self, n: u64) -> bool {
        let now = self.clock.now();
        let mut state = self.state.lock();
        self.refill(&mut state, now);
        let need = n.saturating_mul(1000);
        if state.tokens_milli >= need {
            state.tokens_milli -= need;
            true
        } else {
            false
        }
    }

    /// Like [`RateLimiter::try_acquire`] but surfaces the shed as a
    /// retryable [`Error::Overloaded`]; `what` names the quota.
    pub fn acquire(&self, n: u64, what: &str) -> Result<()> {
        if self.try_acquire(n) {
            Ok(())
        } else {
            Err(Error::Overloaded(format!(
                "{what}: quota {}/s (burst {}) exhausted",
                self.quota.rate_per_sec, self.quota.burst
            )))
        }
    }

    /// Whole tokens currently available (after refill to now).
    pub fn available(&self) -> u64 {
        let now = self.clock.now();
        let mut state = self.state.lock();
        self.refill(&mut state, now);
        state.tokens_milli / 1000
    }
}

// ---------------------------------------------------------------------------
// AdmissionController
// ---------------------------------------------------------------------------

/// Admission policy: permits, watermarks, lanes, tenant quotas.
#[derive(Debug, Clone)]
pub struct AdmissionConfig {
    /// Concurrent in-flight permits; 0 disables the concurrency gate.
    pub max_in_flight: usize,
    /// Queue depth at which *all* new work sheds.
    pub queue_high_watermark: u64,
    /// Queue depth at which backfill-lane work starts shedding; also the
    /// hysteresis floor — once the high watermark trips, everything
    /// sheds until depth falls back below this.
    pub queue_low_watermark: u64,
    /// Per-tenant token-bucket quota applied to tenants without an
    /// explicit override; `None` disables tenant quotas.
    pub default_tenant_quota: Option<Quota>,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            max_in_flight: 64,
            queue_high_watermark: 1024,
            queue_low_watermark: 512,
            default_tenant_quota: None,
        }
    }
}

/// Why a unit of work was refused admission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedReason {
    /// The tenant's token bucket is empty.
    TenantQuota,
    /// All concurrency permits are in flight.
    Concurrency,
    /// Queue depth tripped a watermark for this lane.
    QueueDepth,
}

impl ShedReason {
    pub fn name(self) -> &'static str {
        match self {
            ShedReason::TenantQuota => "tenant_quota",
            ShedReason::Concurrency => "concurrency",
            ShedReason::QueueDepth => "queue_depth",
        }
    }
}

#[derive(Default)]
struct TenantCounters {
    offered: u64,
    admitted: u64,
    shed: u64,
}

struct AdmissionInner {
    tenants: BTreeMap<String, (RateLimiter, TenantCounters)>,
    overrides: BTreeMap<String, Quota>,
    /// Hysteresis latch: tripped at the high watermark, released below
    /// the low one.
    shedding_all: bool,
}

/// Exact admit/shed totals, for summaries and invariant checks.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AdmissionStats {
    pub offered: u64,
    pub admitted: u64,
    pub shed_quota: u64,
    pub shed_concurrency: u64,
    pub shed_queue: u64,
}

impl AdmissionStats {
    pub fn shed_total(&self) -> u64 {
        self.shed_quota + self.shed_concurrency + self.shed_queue
    }
}

/// The admission gate in front of a work queue: every enforcement point
/// (producer edge, consumer proxy, OLAP broker) asks it before taking
/// work, and every refusal is counted so `offered == admitted + shed`
/// holds exactly.
pub struct AdmissionController {
    clock: Arc<dyn Clock>,
    config: AdmissionConfig,
    in_flight: AtomicU64,
    queue_depth: AtomicU64,
    offered: AtomicU64,
    admitted: AtomicU64,
    shed_quota: AtomicU64,
    shed_concurrency: AtomicU64,
    shed_queue: AtomicU64,
    inner: Mutex<AdmissionInner>,
}

impl fmt::Debug for AdmissionController {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AdmissionController")
            .field("config", &self.config)
            .field("stats", &self.stats())
            .finish_non_exhaustive()
    }
}

impl AdmissionController {
    pub fn new(clock: Arc<dyn Clock>, config: AdmissionConfig) -> Self {
        AdmissionController {
            clock,
            config,
            in_flight: AtomicU64::new(0),
            queue_depth: AtomicU64::new(0),
            offered: AtomicU64::new(0),
            admitted: AtomicU64::new(0),
            shed_quota: AtomicU64::new(0),
            shed_concurrency: AtomicU64::new(0),
            shed_queue: AtomicU64::new(0),
            inner: Mutex::new(AdmissionInner {
                tenants: BTreeMap::new(),
                overrides: BTreeMap::new(),
                shedding_all: false,
            }),
        }
    }

    /// Give `tenant` its own quota instead of the default.
    pub fn set_tenant_quota(&self, tenant: &str, quota: Quota) {
        let mut inner = self.inner.lock();
        inner.overrides.insert(tenant.to_string(), quota);
        // rebuild the bucket on next admit so the new quota applies
        inner.tenants.remove(tenant);
    }

    /// Report the current downstream queue depth (records buffered,
    /// scatter tasks pending...). Drives the watermark gate.
    pub fn set_queue_depth(&self, depth: u64) {
        self.queue_depth.store(depth, Ordering::Relaxed);
    }

    pub fn queue_depth(&self) -> u64 {
        self.queue_depth.load(Ordering::Relaxed)
    }

    pub fn in_flight(&self) -> u64 {
        self.in_flight.load(Ordering::Relaxed)
    }

    /// Admit one unit of work for `tenant` on `lane`, or say why not.
    /// On `Ok`, the returned [`Permit`] holds one concurrency slot until
    /// dropped. Shed order: tenant quota, then concurrency permits,
    /// then queue watermarks (backfill sheds at the low watermark,
    /// everything at the high one, with hysteresis in between).
    pub fn admit(&self, tenant: &str, lane: Priority) -> Result<Permit<'_>> {
        self.offered.fetch_add(1, Ordering::Relaxed);
        match self.decide(tenant, lane) {
            Ok(()) => {
                self.admitted.fetch_add(1, Ordering::Relaxed);
                self.in_flight.fetch_add(1, Ordering::Relaxed);
                let mut inner = self.inner.lock();
                self.tenant_entry(&mut inner, tenant).1.admitted += 1;
                Ok(Permit { controller: self })
            }
            Err((reason, err)) => {
                let mut inner = self.inner.lock();
                let entry = self.tenant_entry(&mut inner, tenant);
                entry.1.shed += 1;
                match reason {
                    ShedReason::TenantQuota => &self.shed_quota,
                    ShedReason::Concurrency => &self.shed_concurrency,
                    ShedReason::QueueDepth => &self.shed_queue,
                }
                .fetch_add(1, Ordering::Relaxed);
                Err(err)
            }
        }
    }

    fn decide(&self, tenant: &str, lane: Priority) -> std::result::Result<(), (ShedReason, Error)> {
        {
            let mut inner = self.inner.lock();
            let entry = self.tenant_entry(&mut inner, tenant);
            entry.1.offered += 1;
            let has_quota = self.config.default_tenant_quota.is_some()
                || self.inner_has_override(&inner, tenant);
            if has_quota {
                let entry = self.tenant_entry(&mut inner, tenant);
                if !entry.0.try_acquire(1) {
                    return Err((
                        ShedReason::TenantQuota,
                        Error::Overloaded(format!("tenant {tenant} over quota")),
                    ));
                }
            }
        }
        if self.config.max_in_flight > 0
            && self.in_flight.load(Ordering::Relaxed) >= self.config.max_in_flight as u64
        {
            return Err((
                ShedReason::Concurrency,
                Error::Overloaded(format!(
                    "all {} permits in flight",
                    self.config.max_in_flight
                )),
            ));
        }
        let depth = self.queue_depth.load(Ordering::Relaxed);
        let mut inner = self.inner.lock();
        if depth >= self.config.queue_high_watermark {
            inner.shedding_all = true;
        } else if depth < self.config.queue_low_watermark {
            inner.shedding_all = false;
        }
        if inner.shedding_all {
            return Err((
                ShedReason::QueueDepth,
                Error::Overloaded(format!(
                    "queue depth {depth} over high watermark {}",
                    self.config.queue_high_watermark
                )),
            ));
        }
        if lane == Priority::Backfill && depth >= self.config.queue_low_watermark {
            return Err((
                ShedReason::QueueDepth,
                Error::Overloaded(format!(
                    "backfill lane shed: queue depth {depth} over low watermark {}",
                    self.config.queue_low_watermark
                )),
            ));
        }
        Ok(())
    }

    fn inner_has_override(&self, inner: &AdmissionInner, tenant: &str) -> bool {
        inner.overrides.contains_key(tenant)
    }

    fn tenant_entry<'a>(
        &self,
        inner: &'a mut AdmissionInner,
        tenant: &str,
    ) -> &'a mut (RateLimiter, TenantCounters) {
        if !inner.tenants.contains_key(tenant) {
            let quota = inner
                .overrides
                .get(tenant)
                .copied()
                .or(self.config.default_tenant_quota)
                // quota-less controllers still track per-tenant counters
                .unwrap_or(Quota {
                    rate_per_sec: u64::MAX / 2000,
                    burst: u64::MAX / 2000,
                });
            let limiter = RateLimiter::new(self.clock.clone(), quota);
            inner
                .tenants
                .insert(tenant.to_string(), (limiter, TenantCounters::default()));
        }
        inner.tenants.get_mut(tenant).expect("just inserted")
    }

    pub fn stats(&self) -> AdmissionStats {
        AdmissionStats {
            offered: self.offered.load(Ordering::Relaxed),
            admitted: self.admitted.load(Ordering::Relaxed),
            shed_quota: self.shed_quota.load(Ordering::Relaxed),
            shed_concurrency: self.shed_concurrency.load(Ordering::Relaxed),
            shed_queue: self.shed_queue.load(Ordering::Relaxed),
        }
    }

    /// Byte-stable accounting summary: totals then per-tenant lines in
    /// tenant order. Two identical drive sequences under the same seed
    /// produce identical summaries — the CI overload gate diffs this.
    pub fn summary(&self) -> String {
        let s = self.stats();
        let mut out = format!(
            "offered={} admitted={} shed_quota={} shed_concurrency={} shed_queue={}\n",
            s.offered, s.admitted, s.shed_quota, s.shed_concurrency, s.shed_queue
        );
        let inner = self.inner.lock();
        for (tenant, (_, c)) in &inner.tenants {
            out.push_str(&format!(
                "tenant {tenant} offered={} admitted={} shed={}\n",
                c.offered, c.admitted, c.shed
            ));
        }
        out
    }
}

/// One admitted unit of work; releases its concurrency slot on drop.
pub struct Permit<'a> {
    controller: &'a AdmissionController,
}

impl fmt::Debug for Permit<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Permit").finish_non_exhaustive()
    }
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        self.controller.in_flight.fetch_sub(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SimClock;

    fn clock() -> Arc<SimClock> {
        Arc::new(SimClock::new(1_000))
    }

    #[test]
    fn deadline_expires_on_the_sim_clock() {
        let c = clock();
        let d = Deadline::within_ms(c.clone(), 500);
        assert_eq!(d.expires_at(), 1_500);
        assert_eq!(d.remaining_ms(), 500);
        assert!(!d.expired());
        assert!(d.check("scan").is_ok());
        c.advance(499);
        assert!(!d.expired());
        c.advance(1);
        assert!(d.expired());
        assert_eq!(d.remaining_ms(), 0);
        let err = d.check("scan").unwrap_err();
        assert!(matches!(err, Error::DeadlineExceeded(_)));
        assert!(!err.is_retryable());
    }

    #[test]
    fn deadline_split_never_extends_past_parent() {
        let c = clock();
        let d = Deadline::within_ms(c.clone(), 1_000);
        let half = d.with_budget_fraction(1, 2);
        assert_eq!(half.expires_at(), 1_500);
        c.advance(800);
        // 200ms left; half of it is 100ms
        assert_eq!(d.with_budget_fraction(1, 2).expires_at(), 1_900);
        // an over-unity fraction still caps at the parent
        assert_eq!(d.with_budget_fraction(5, 2).expires_at(), 2_000);
        // deadlines compare by expiry, not clock identity
        assert_eq!(d, Deadline::at(clock(), 2_000));
    }

    #[test]
    fn token_bucket_refills_deterministically() {
        let c = clock();
        let rl = RateLimiter::new(c.clone(), Quota::per_sec(1_000).with_burst(10));
        assert_eq!(rl.available(), 10);
        assert!(rl.try_acquire(10));
        assert!(!rl.try_acquire(1), "bucket empty");
        assert!(matches!(
            rl.acquire(1, "topic trips"),
            Err(Error::Overloaded(_))
        ));
        c.advance(5); // 1000/s => 1 token/ms
        assert_eq!(rl.available(), 5);
        assert!(rl.try_acquire(5));
        c.advance(60_000);
        assert_eq!(rl.available(), 10, "refill caps at burst");
    }

    #[test]
    fn token_bucket_is_exact_at_sub_token_rates() {
        let c = clock();
        let rl = RateLimiter::new(c.clone(), Quota::per_sec(1).with_burst(1));
        assert!(rl.try_acquire(1));
        c.advance(999);
        assert!(!rl.try_acquire(1), "999ms at 1/s is 0.999 tokens");
        c.advance(1);
        assert!(rl.try_acquire(1), "exactly 1s refills exactly 1 token");
    }

    #[test]
    fn admission_sheds_on_tenant_quota_and_accounts_exactly() {
        let c = clock();
        let ac = AdmissionController::new(
            c.clone(),
            AdmissionConfig {
                default_tenant_quota: Some(Quota::per_sec(10).with_burst(2)),
                ..Default::default()
            },
        );
        ac.set_tenant_quota("vip", Quota::per_sec(1_000).with_burst(100));
        let mut admitted = 0u64;
        let mut shed = 0u64;
        for _ in 0..5 {
            match ac.admit("rider-app", Priority::Interactive) {
                Ok(_p) => {
                    admitted += 1;
                }
                Err(e) => {
                    assert!(matches!(e, Error::Overloaded(_)));
                    shed += 1;
                }
            }
        }
        assert_eq!((admitted, shed), (2, 3), "burst of 2 then quota sheds");
        for _ in 0..5 {
            assert!(ac.admit("vip", Priority::Interactive).is_ok());
        }
        let s = ac.stats();
        assert_eq!(s.offered, 10);
        assert_eq!(s.offered, s.admitted + s.shed_total());
        assert_eq!(s.shed_quota, 3);
        let summary = ac.summary();
        assert!(summary.contains("tenant rider-app offered=5 admitted=2 shed=3"));
        assert!(summary.contains("tenant vip offered=5 admitted=5 shed=0"));
        // tenant lines come out in tenant order — byte-stable
        let rider = summary.find("tenant rider-app").unwrap();
        let vip = summary.find("tenant vip").unwrap();
        assert!(rider < vip);
    }

    #[test]
    fn concurrency_permits_bound_in_flight_and_release_on_drop() {
        let c = clock();
        let ac = AdmissionController::new(
            c,
            AdmissionConfig {
                max_in_flight: 2,
                default_tenant_quota: None,
                ..Default::default()
            },
        );
        let p1 = ac.admit("svc", Priority::Interactive).unwrap();
        let p2 = ac.admit("svc", Priority::Interactive).unwrap();
        assert_eq!(ac.in_flight(), 2);
        let err = ac.admit("svc", Priority::Interactive).unwrap_err();
        assert!(matches!(err, Error::Overloaded(_)));
        drop(p1);
        assert_eq!(ac.in_flight(), 1);
        assert!(ac.admit("svc", Priority::Interactive).is_ok());
        drop(p2);
        assert_eq!(ac.stats().shed_concurrency, 1);
    }

    #[test]
    fn watermarks_shed_backfill_first_with_hysteresis() {
        let c = clock();
        let ac = AdmissionController::new(
            c,
            AdmissionConfig {
                max_in_flight: 0,
                queue_high_watermark: 100,
                queue_low_watermark: 50,
                default_tenant_quota: None,
            },
        );
        // below low watermark: both lanes admitted
        ac.set_queue_depth(10);
        assert!(ac.admit("t", Priority::Backfill).is_ok());
        assert!(ac.admit("t", Priority::Interactive).is_ok());
        // between watermarks: backfill sheds, interactive survives
        ac.set_queue_depth(60);
        assert!(ac.admit("t", Priority::Backfill).is_err());
        assert!(ac.admit("t", Priority::Interactive).is_ok());
        // above high: everything sheds
        ac.set_queue_depth(150);
        assert!(ac.admit("t", Priority::Interactive).is_err());
        // hysteresis: dipping between the watermarks keeps shedding...
        ac.set_queue_depth(60);
        assert!(ac.admit("t", Priority::Interactive).is_err());
        // ...until depth falls below the low watermark
        ac.set_queue_depth(49);
        assert!(ac.admit("t", Priority::Interactive).is_ok());
        let s = ac.stats();
        assert_eq!(s.offered, s.admitted + s.shed_total());
        assert_eq!(s.shed_queue, 3);
    }
}
