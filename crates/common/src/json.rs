//! Minimal JSON codec.
//!
//! §4.3.3 of the paper describes native semi-structured (JSON) support for
//! ingestion and queries. Rather than pulling in `serde_json`, this module
//! implements a small recursive-descent parser and serializer for
//! [`JsonValue`]. It supports the full JSON grammar (objects, arrays,
//! strings with escapes, numbers, booleans, null) with a recursion-depth
//! cap to stay robust on adversarial inputs.

use crate::error::{Error, Result};
use crate::value::JsonValue;
use std::collections::BTreeMap;

const MAX_DEPTH: usize = 128;

/// Parse a JSON document.
pub fn parse(input: &str) -> Result<JsonValue> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::Corruption(format!(
            "trailing characters at byte {} in JSON input",
            p.pos
        )));
    }
    Ok(v)
}

/// Serialize a [`JsonValue`] to compact JSON text.
pub fn to_string(v: &JsonValue) -> String {
    let mut out = String::new();
    write_value(v, &mut out);
    out
}

fn write_value(v: &JsonValue, out: &mut String) {
    match v {
        JsonValue::Null => out.push_str("null"),
        JsonValue::Bool(true) => out.push_str("true"),
        JsonValue::Bool(false) => out.push_str("false"),
        JsonValue::Number(n) => {
            if n.fract() == 0.0 && n.abs() < 1e15 {
                out.push_str(&format!("{}", *n as i64));
            } else {
                out.push_str(&format!("{n}"));
            }
        }
        JsonValue::String(s) => write_string(s, out),
        JsonValue::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        JsonValue::Object(map) => {
            out.push('{');
            for (i, (k, val)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_value(val, out);
            }
            out.push('}');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error::Corruption(format!("JSON parse error at byte {}: {msg}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self, depth: usize) -> Result<JsonValue> {
        if depth > MAX_DEPTH {
            return Err(self.err("max nesting depth exceeded"));
        }
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(&format!("unexpected character '{}'", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, lit: &str, v: JsonValue) -> Result<JsonValue> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("invalid literal, expected '{lit}'")))
        }
    }

    fn object(&mut self, depth: usize) -> Result<JsonValue> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value(depth + 1)?;
            map.insert(key, val);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(JsonValue::Object(map)),
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<JsonValue> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(JsonValue::Array(items)),
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000C}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let cp = self.hex4()?;
                        // handle surrogate pairs
                        if (0xD800..0xDC00).contains(&cp) {
                            if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                                return Err(self.err("expected low surrogate"));
                            }
                            let low = self.hex4()?;
                            if !(0xDC00..0xE000).contains(&low) {
                                return Err(self.err("invalid low surrogate"));
                            }
                            let c = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
                            out.push(
                                char::from_u32(c).ok_or_else(|| self.err("invalid codepoint"))?,
                            );
                        } else if (0xDC00..0xE000).contains(&cp) {
                            return Err(self.err("unexpected low surrogate"));
                        } else {
                            out.push(
                                char::from_u32(cp).ok_or_else(|| self.err("invalid codepoint"))?,
                            );
                        }
                    }
                    _ => return Err(self.err("invalid escape")),
                },
                Some(c) if c < 0x20 => return Err(self.err("control character in string")),
                Some(c) => {
                    // re-assemble UTF-8 multibyte sequences
                    if c < 0x80 {
                        out.push(c as char);
                    } else {
                        let start = self.pos - 1;
                        let len = utf8_len(c).ok_or_else(|| self.err("invalid UTF-8"))?;
                        let end = start + len;
                        if end > self.bytes.len() {
                            return Err(self.err("truncated UTF-8"));
                        }
                        let s = std::str::from_utf8(&self.bytes[start..end])
                            .map_err(|_| self.err("invalid UTF-8"))?;
                        out.push_str(s);
                        self.pos = end;
                    }
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32> {
        let mut v = 0u32;
        for _ in 0..4 {
            let c = self
                .bump()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let d = (c as char)
                .to_digit(16)
                .ok_or_else(|| self.err("invalid hex digit"))?;
            v = v * 16 + d;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<JsonValue> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|_| self.err("invalid number"))
    }
}

fn utf8_len(first: u8) -> Option<usize> {
    match first {
        0x00..=0x7F => Some(1),
        0xC0..=0xDF => Some(2),
        0xE0..=0xEF => Some(3),
        0xF0..=0xF7 => Some(4),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), JsonValue::Null);
        assert_eq!(parse("true").unwrap(), JsonValue::Bool(true));
        assert_eq!(parse("false").unwrap(), JsonValue::Bool(false));
        assert_eq!(parse("42").unwrap(), JsonValue::Number(42.0));
        assert_eq!(parse("-3.25e2").unwrap(), JsonValue::Number(-325.0));
        assert_eq!(
            parse("\"hi\\nthere\"").unwrap(),
            JsonValue::String("hi\nthere".into())
        );
    }

    #[test]
    fn parses_nested_document() {
        let doc =
            r#"{"order": {"id": 7, "items": ["burger", "fries"], "paid": true, "tip": null}}"#;
        let v = parse(doc).unwrap();
        assert_eq!(v.path("order.id"), Some(&JsonValue::Number(7.0)));
        match v.path("order.items") {
            Some(JsonValue::Array(items)) => assert_eq!(items.len(), 2),
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn roundtrip_preserves_structure() {
        let doc = r#"{"a":[1,2,{"b":"x y","c":false}],"d":null,"e":-1.5}"#;
        let v = parse(doc).unwrap();
        let s = to_string(&v);
        let v2 = parse(&s).unwrap();
        assert_eq!(v, v2);
    }

    #[test]
    fn unicode_and_surrogates() {
        let v = parse(r#""Aé 😀""#).unwrap();
        assert_eq!(v, JsonValue::String("Aé 😀".into()));
        // raw multibyte passthrough
        let v = parse("\"héllo\"").unwrap();
        assert_eq!(v, JsonValue::String("héllo".into()));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("tru").is_err());
        assert!(parse("1 2").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("").is_err());
        assert!(parse("\"\\ud800\"").is_err()); // lone high surrogate
    }

    #[test]
    fn rejects_pathological_nesting() {
        let deep = "[".repeat(1000) + &"]".repeat(1000);
        assert!(parse(&deep).is_err());
        let ok = "[".repeat(100) + &"]".repeat(100);
        assert!(parse(&ok).is_ok());
    }

    #[test]
    fn escape_roundtrip() {
        let v = JsonValue::String("tab\t quote\" slash\\ nl\n ctrl\u{0001}".into());
        let s = to_string(&v);
        assert_eq!(parse(&s).unwrap(), v);
    }

    #[test]
    fn empty_containers() {
        assert_eq!(parse("[]").unwrap(), JsonValue::Array(vec![]));
        assert_eq!(parse("{}").unwrap(), JsonValue::Object(BTreeMap::new()));
        assert_eq!(to_string(&parse("[]").unwrap()), "[]");
        assert_eq!(to_string(&parse("{}").unwrap()), "{}");
    }
}
