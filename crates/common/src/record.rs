//! The event envelope moved through the messaging layer.
//!
//! A [`Record`] is what producers publish and consumers receive: an
//! optional partitioning key, a structured payload ([`Row`]), an event
//! timestamp, and a small header map. Headers carry the audit metadata the
//! paper describes in §9.4 ("each event is decorated with a unique
//! identifier, application timestamp, service name, tier by the Kafka
//! client") — Chaperone and the DLQ machinery rely on them.

use crate::time::Timestamp;
use crate::value::{Row, Value};
use std::borrow::Cow;
use std::fmt::Write as _;

/// Well-known header keys used across the stack.
pub mod headers {
    /// Globally unique message id, set by the producer client.
    pub const UNIQUE_ID: &str = "rtdi.unique_id";
    /// Application timestamp at produce time.
    pub const APP_TIMESTAMP: &str = "rtdi.app_ts";
    /// Producing service name.
    pub const SERVICE: &str = "rtdi.service";
    /// Tier of the producing service (0 = most critical).
    pub const TIER: &str = "rtdi.tier";
    /// Number of delivery attempts so far (set by the consumer proxy).
    pub const ATTEMPTS: &str = "rtdi.attempts";
    /// Original topic for messages parked in a dead letter queue.
    pub const DLQ_SOURCE: &str = "rtdi.dlq_source";
    /// Why the record was parked: a closed `ParkReason` value
    /// (retries-exhausted | schema | poison), never free text.
    pub const DLQ_REASON: &str = "rtdi.dlq_reason";
    /// Human-readable detail (the final error) accompanying `DLQ_REASON`.
    pub const DLQ_DETAIL: &str = "rtdi.dlq_detail";
    /// Region where the record was originally produced.
    pub const ORIGIN_REGION: &str = "rtdi.origin_region";
    /// Timestamp of the last traced hop; each pipeline stage restamps it
    /// so the next stage measures only its own dwell (see `trace`).
    pub const TRACE_TIMESTAMP: &str = "rtdi.trace_ts";
}

/// Small ordered string->string map for record headers.
///
/// Keys are `Cow<'static, str>`: the well-known [`headers`] constants are
/// stored by reference, so stamping audit metadata on every record costs
/// no key allocation (only dynamic, caller-built keys are owned).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecordHeaders {
    entries: Vec<(Cow<'static, str>, String)>,
}

impl RecordHeaders {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn set(&mut self, key: impl Into<Cow<'static, str>>, value: impl Into<String>) {
        let key = key.into();
        let value = value.into();
        if let Some(e) = self.entries.iter_mut().find(|(k, _)| *k == key) {
            e.1 = value;
        } else {
            self.entries.push((key, value));
        }
    }

    /// Set a well-known key to an integer value, reusing the existing
    /// value buffer when the key is already present. The per-hop trace
    /// restamp (`trace::PipelineTracer::observe_hop`) calls this on every
    /// record, so steady-state restamping allocates nothing.
    pub fn set_i64(&mut self, key: &'static str, value: i64) {
        if let Some(e) = self.entries.iter_mut().find(|(k, _)| k == key) {
            e.1.clear();
            let _ = write!(e.1, "{value}");
        } else {
            self.entries.push((Cow::Borrowed(key), value.to_string()));
        }
    }

    pub fn get(&self, key: &str) -> Option<&str> {
        self.entries
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    pub fn iter(&self) -> impl Iterator<Item = (&str, &str)> {
        self.entries.iter().map(|(k, v)| (k.as_ref(), v.as_str()))
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// One event flowing through the messaging layer.
#[derive(Debug, Clone, PartialEq)]
pub struct Record {
    /// Partitioning key. `None` means round-robin assignment.
    pub key: Option<Value>,
    /// Structured payload.
    pub value: Row,
    /// Event time in epoch milliseconds.
    pub timestamp: Timestamp,
    /// Audit/infrastructure metadata.
    pub headers: RecordHeaders,
}

impl Record {
    pub fn new(value: Row, timestamp: Timestamp) -> Self {
        Record {
            key: None,
            value,
            timestamp,
            headers: RecordHeaders::new(),
        }
    }

    /// Builder-style key assignment.
    pub fn with_key(mut self, key: impl Into<Value>) -> Self {
        self.key = Some(key.into());
        self
    }

    pub fn with_header(
        mut self,
        key: impl Into<Cow<'static, str>>,
        value: impl Into<String>,
    ) -> Self {
        self.headers.set(key, value);
        self
    }

    /// Unique audit id if the producer client stamped one.
    pub fn unique_id(&self) -> Option<&str> {
        self.headers.get(headers::UNIQUE_ID)
    }

    /// Deterministic partition choice for a keyed record.
    pub fn partition_for(&self, num_partitions: usize) -> Option<usize> {
        assert!(num_partitions > 0, "num_partitions must be positive");
        self.key
            .as_ref()
            .map(|k| (k.partition_hash() % num_partitions as u64) as usize)
    }

    /// Rough wire/memory size, used for throughput accounting and quota
    /// enforcement.
    pub fn approx_bytes(&self) -> usize {
        let key = self.key.as_ref().map(|_| 16).unwrap_or(0)
            + match &self.key {
                Some(Value::Str(s)) => s.len(),
                Some(Value::Bytes(b)) => b.len(),
                _ => 0,
            };
        let headers: usize = self
            .headers
            .iter()
            .map(|(k, v)| k.len() + v.len() + 8)
            .sum();
        key + self.value.approx_bytes() + headers + 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn headers_set_get_overwrite() {
        let mut h = RecordHeaders::new();
        h.set("a", "1");
        h.set("b", "2");
        h.set("a", "3");
        assert_eq!(h.get("a"), Some("3"));
        assert_eq!(h.get("b"), Some("2"));
        assert_eq!(h.len(), 2);
        assert_eq!(h.get("zzz"), None);
    }

    #[test]
    fn keyed_record_partitions_deterministically() {
        let r = Record::new(Row::new().with("x", 1i64), 100).with_key("driver-1");
        let p1 = r.partition_for(16).unwrap();
        let p2 = r.partition_for(16).unwrap();
        assert_eq!(p1, p2);
        assert!(p1 < 16);
    }

    #[test]
    fn unkeyed_record_has_no_partition() {
        let r = Record::new(Row::new(), 0);
        assert_eq!(r.partition_for(8), None);
    }

    #[test]
    fn partition_spread_is_reasonable() {
        // 1000 distinct keys over 16 partitions: every partition should be hit.
        let mut counts = vec![0usize; 16];
        for i in 0..1000 {
            let r = Record::new(Row::new(), 0).with_key(format!("key-{i}"));
            counts[r.partition_for(16).unwrap()] += 1;
        }
        assert!(counts.iter().all(|&c| c > 20), "skewed: {counts:?}");
    }

    #[test]
    fn audit_headers_roundtrip() {
        let r = Record::new(Row::new(), 5)
            .with_header(headers::UNIQUE_ID, "m-123")
            .with_header(headers::SERVICE, "driver-app");
        assert_eq!(r.unique_id(), Some("m-123"));
        assert_eq!(r.headers.get(headers::SERVICE), Some("driver-app"));
    }

    #[test]
    #[should_panic]
    fn zero_partitions_panics() {
        let r = Record::new(Row::new(), 0).with_key(1i64);
        let _ = r.partition_for(0);
    }
}
