//! # rtdi-common
//!
//! Shared foundation types for the real-time data infrastructure
//! reproduction: values, records, schemas, time sources (wall clock and a
//! deterministic simulated clock), a lightweight metrics registry and a
//! small JSON codec used for semi-structured ingestion (§4.3.3 of the
//! paper).
//!
//! Every other crate in the workspace depends on this one; it has no
//! dependencies on the rest of the stack.

pub mod agg;
pub mod chaos;
pub mod error;
pub mod json;
pub mod membership;
pub mod metrics;
pub mod overload;
pub mod record;
pub mod schema;
pub mod sketch;
pub mod time;
pub mod trace;
pub mod value;

pub use agg::{AggAcc, AggFn};
pub use chaos::{
    FaultKind, FaultPlan, FaultPoint, RegionOutage, RegionOutageKind, RetryPolicy, Trigger,
};
pub use error::{Error, Result};
pub use membership::{
    Membership, MembershipConfig, MembershipEvent, MembershipListener, NodeState, RegionStatus,
};
pub use overload::{
    AdmissionConfig, AdmissionController, AdmissionStats, Deadline, Permit, Priority, Quota,
    RateLimiter, ShedReason,
};
pub use record::{Record, RecordHeaders};
pub use schema::{Field, FieldType, Schema};
pub use sketch::CountMinSketch;
pub use time::{Clock, SimClock, Timestamp, WallClock};
pub use trace::{PipelineTracer, StageDwell, TraceReport};
pub use value::{Row, Value};
