//! Cluster membership and heartbeat-based failure detection.
//!
//! The paper's availability story is node-granular: Kafka partitions
//! survive broker loss through replication (§4.1), Pinot re-serves
//! segments from deep storage when a server dies (§4.3.4), and the job
//! manager restarts Flink jobs whose task managers stop heartbeating
//! (§4.2.1). All three need the same primitive — "which nodes are alive
//! right now?" — so this module provides one shared membership view:
//!
//! - simulated nodes emit [`Membership::heartbeat`]s on the existing
//!   logical clock ([`Clock`]/`SimClock`), never the wall clock;
//! - a deadline-based failure detector ([`Membership::tick`]) declares a
//!   node [`NodeState::Suspect`] after `suspect_after_ms` without a
//!   heartbeat and [`NodeState::Dead`] after `dead_after_ms`;
//! - registered [`MembershipListener`]s (partition leader election, the
//!   OLAP rebalancer, the job manager) react to state transitions;
//! - every transition is recorded in a deterministic event log
//!   ([`Membership::event_log`]) so failover schedules can be diffed
//!   byte-for-byte across runs — the same discipline as the chaos layer.
//!
//! Chaos node-kills ([`crate::chaos::FaultRegistry::kill_node`]) route
//! through [`Membership::kill`]: a killed node is pinned `Dead` and its
//! heartbeats are ignored until [`Membership::revive`].

use crate::time::{Clock, Timestamp};
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// Failure-detector verdict for one node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum NodeState {
    /// Heartbeating within the suspect deadline.
    Alive,
    /// Missed the suspect deadline; still counted as live (serving) but
    /// flagged for operators, like a Kafka broker with a stalled ZK
    /// session that has not yet expired.
    Suspect,
    /// Missed the dead deadline (or chaos-killed): failure domains react.
    Dead,
}

impl NodeState {
    pub fn name(self) -> &'static str {
        match self {
            NodeState::Alive => "alive",
            NodeState::Suspect => "suspect",
            NodeState::Dead => "dead",
        }
    }
}

impl fmt::Display for NodeState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One membership transition, in detection order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MembershipEvent {
    /// Logical time the detector observed the transition.
    pub at: Timestamp,
    pub node: String,
    pub from: NodeState,
    pub to: NodeState,
}

impl MembershipEvent {
    /// Stable one-line rendering for the deterministic event log.
    pub fn line(&self) -> String {
        format!(
            "at={} node={} {}->{}",
            self.at, self.node, self.from, self.to
        )
    }
}

/// Reacts to membership transitions. Listeners are called after the
/// membership state is updated and outside its locks, so they may call
/// back into [`Membership`].
pub trait MembershipListener: Send + Sync {
    fn on_membership_event(&self, event: &MembershipEvent);
}

/// Failure-detector deadlines, in logical milliseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MembershipConfig {
    /// Expected heartbeat cadence (informational; drivers use it to pace
    /// heartbeats).
    pub heartbeat_interval_ms: i64,
    /// No heartbeat for this long -> `Suspect`.
    pub suspect_after_ms: i64,
    /// No heartbeat for this long -> `Dead`.
    pub dead_after_ms: i64,
}

impl Default for MembershipConfig {
    fn default() -> Self {
        MembershipConfig {
            heartbeat_interval_ms: 1_000,
            suspect_after_ms: 3_000,
            dead_after_ms: 10_000,
        }
    }
}

struct NodeInfo {
    last_heartbeat: Timestamp,
    state: NodeState,
    /// Chaos-killed: pinned `Dead`, heartbeats ignored until revived.
    killed: bool,
    /// Failure-domain tag (§6): nodes in the same region die together
    /// when the region does.
    region: Option<String>,
}

/// Aggregated detector view of one region's nodes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegionStatus {
    pub region: String,
    pub live: usize,
    pub dead: usize,
}

impl RegionStatus {
    /// A region is down when every one of its nodes is dead. A region
    /// with no registered nodes is never "down" (nothing to lose).
    pub fn is_down(&self) -> bool {
        self.live == 0 && self.dead > 0
    }
}

struct MembershipInner {
    nodes: BTreeMap<String, NodeInfo>,
    events: Vec<MembershipEvent>,
}

/// Shared membership view: register nodes, feed heartbeats, tick the
/// failure detector, subscribe listeners.
pub struct Membership {
    clock: Arc<dyn Clock>,
    config: MembershipConfig,
    inner: RwLock<MembershipInner>,
    listeners: RwLock<Vec<Arc<dyn MembershipListener>>>,
}

impl Membership {
    pub fn new(clock: Arc<dyn Clock>, config: MembershipConfig) -> Arc<Self> {
        Arc::new(Membership {
            clock,
            config,
            inner: RwLock::new(MembershipInner {
                nodes: BTreeMap::new(),
                events: Vec::new(),
            }),
            listeners: RwLock::new(Vec::new()),
        })
    }

    pub fn config(&self) -> MembershipConfig {
        self.config
    }

    /// Register a node as alive now. Re-registering an existing node is a
    /// no-op (its state is preserved).
    pub fn register(&self, node: &str) {
        let now = self.clock.now();
        let mut inner = self.inner.write();
        inner.nodes.entry(node.to_string()).or_insert(NodeInfo {
            last_heartbeat: now,
            state: NodeState::Alive,
            killed: false,
            region: None,
        });
    }

    /// Register a node under a region failure domain. Re-registering an
    /// existing node keeps its state but (re)tags its region, so a
    /// cluster can adopt region tags after construction.
    pub fn register_in_region(&self, node: &str, region: &str) {
        let now = self.clock.now();
        let mut inner = self.inner.write();
        inner
            .nodes
            .entry(node.to_string())
            .and_modify(|i| i.region = Some(region.to_string()))
            .or_insert(NodeInfo {
                last_heartbeat: now,
                state: NodeState::Alive,
                killed: false,
                region: Some(region.to_string()),
            });
    }

    /// The region a node was registered under, if any.
    pub fn region_of(&self, node: &str) -> Option<String> {
        self.inner.read().nodes.get(node)?.region.clone()
    }

    /// All nodes tagged with `region`, in name order.
    pub fn nodes_in_region(&self, region: &str) -> Vec<String> {
        self.inner
            .read()
            .nodes
            .iter()
            .filter(|(_, i)| i.region.as_deref() == Some(region))
            .map(|(n, _)| n.clone())
            .collect()
    }

    /// Per-region live/dead counts, in region name order. A region kill
    /// shows up here as a correlated burst of node deaths — the detector
    /// declares each node dead by heartbeat deadline, and the region is
    /// down once the whole burst has been observed.
    pub fn region_statuses(&self) -> Vec<RegionStatus> {
        let inner = self.inner.read();
        let mut by_region: BTreeMap<&str, (usize, usize)> = BTreeMap::new();
        for info in inner.nodes.values() {
            if let Some(r) = &info.region {
                let e = by_region.entry(r.as_str()).or_insert((0, 0));
                if info.state == NodeState::Dead {
                    e.1 += 1;
                } else {
                    e.0 += 1;
                }
            }
        }
        by_region
            .into_iter()
            .map(|(region, (live, dead))| RegionStatus {
                region: region.to_string(),
                live,
                dead,
            })
            .collect()
    }

    /// Whether every node registered under `region` is dead (and the
    /// region has at least one node). This is the detection signal the
    /// DR machinery keys failover off — it lags a silent region kill by
    /// the heartbeat dead-deadline.
    pub fn region_is_down(&self, region: &str) -> bool {
        self.region_statuses()
            .iter()
            .any(|s| s.region == region && s.is_down())
    }

    /// Regions currently fully dead, in name order.
    pub fn dead_regions(&self) -> Vec<String> {
        self.region_statuses()
            .into_iter()
            .filter(|s| s.is_down())
            .map(|s| s.region)
            .collect()
    }

    /// Record a heartbeat from `node` at the current logical time. A
    /// suspect (or dead-by-deadline) node that heartbeats again recovers
    /// to `Alive`; a chaos-killed node's heartbeats are ignored.
    pub fn heartbeat(&self, node: &str) {
        let now = self.clock.now();
        let event = {
            let mut inner = self.inner.write();
            let Some(info) = inner.nodes.get_mut(node) else {
                return;
            };
            if info.killed {
                return;
            }
            info.last_heartbeat = now;
            if info.state == NodeState::Alive {
                None
            } else {
                let from = info.state;
                info.state = NodeState::Alive;
                let ev = MembershipEvent {
                    at: now,
                    node: node.to_string(),
                    from,
                    to: NodeState::Alive,
                };
                inner.events.push(ev.clone());
                Some(ev)
            }
        };
        if let Some(ev) = event {
            self.notify(&ev);
        }
    }

    /// Run the failure detector over every node at the current logical
    /// time and return the transitions it observed (already dispatched to
    /// listeners). Nodes are evaluated in name order, so the event log is
    /// deterministic for a given heartbeat/clock schedule.
    pub fn tick(&self) -> Vec<MembershipEvent> {
        let now = self.clock.now();
        let transitions = {
            let mut inner = self.inner.write();
            let mut transitions = Vec::new();
            for (name, info) in inner.nodes.iter_mut() {
                if info.killed {
                    continue;
                }
                let silent_for = now - info.last_heartbeat;
                let verdict = if silent_for >= self.config.dead_after_ms {
                    NodeState::Dead
                } else if silent_for >= self.config.suspect_after_ms {
                    NodeState::Suspect
                } else {
                    NodeState::Alive
                };
                // the detector only worsens state; recovery comes from an
                // actual heartbeat, never from the deadline scan
                if verdict > info.state {
                    transitions.push(MembershipEvent {
                        at: now,
                        node: name.clone(),
                        from: info.state,
                        to: verdict,
                    });
                    info.state = verdict;
                }
            }
            inner.events.extend(transitions.iter().cloned());
            transitions
        };
        for ev in &transitions {
            self.notify(ev);
        }
        transitions
    }

    /// Chaos kill: pin the node `Dead` immediately (no deadline wait) and
    /// ignore its heartbeats until [`Membership::revive`]. Returns the
    /// transition, or `None` if the node was unknown or already dead.
    pub fn kill(&self, node: &str) -> Option<MembershipEvent> {
        let now = self.clock.now();
        let event = {
            let mut inner = self.inner.write();
            let info = inner.nodes.get_mut(node)?;
            info.killed = true;
            if info.state == NodeState::Dead {
                return None;
            }
            let from = info.state;
            info.state = NodeState::Dead;
            let ev = MembershipEvent {
                at: now,
                node: node.to_string(),
                from,
                to: NodeState::Dead,
            };
            inner.events.push(ev.clone());
            ev
        };
        self.notify(&event);
        Some(event)
    }

    /// Undo a chaos kill: the node is alive as of now and heartbeats
    /// count again. Returns the transition, or `None` if the node was
    /// unknown or already alive.
    pub fn revive(&self, node: &str) -> Option<MembershipEvent> {
        let now = self.clock.now();
        let event = {
            let mut inner = self.inner.write();
            let info = inner.nodes.get_mut(node)?;
            info.killed = false;
            info.last_heartbeat = now;
            if info.state == NodeState::Alive {
                return None;
            }
            let from = info.state;
            info.state = NodeState::Alive;
            let ev = MembershipEvent {
                at: now,
                node: node.to_string(),
                from,
                to: NodeState::Alive,
            };
            inner.events.push(ev.clone());
            ev
        };
        self.notify(&event);
        Some(event)
    }

    pub fn state(&self, node: &str) -> Option<NodeState> {
        self.inner.read().nodes.get(node).map(|i| i.state)
    }

    /// Live = not `Dead`. Suspect nodes still serve (their session has
    /// not expired yet); unknown nodes are not live.
    pub fn is_live(&self, node: &str) -> bool {
        self.state(node)
            .map(|s| s != NodeState::Dead)
            .unwrap_or(false)
    }

    /// All registered nodes with their states, in name order.
    pub fn nodes(&self) -> Vec<(String, NodeState)> {
        self.inner
            .read()
            .nodes
            .iter()
            .map(|(n, i)| (n.clone(), i.state))
            .collect()
    }

    /// Names of live (non-dead) nodes, in name order.
    pub fn live_nodes(&self) -> Vec<String> {
        self.inner
            .read()
            .nodes
            .iter()
            .filter(|(_, i)| i.state != NodeState::Dead)
            .map(|(n, _)| n.clone())
            .collect()
    }

    pub fn subscribe(&self, listener: Arc<dyn MembershipListener>) {
        self.listeners.write().push(listener);
    }

    pub fn events(&self) -> Vec<MembershipEvent> {
        self.inner.read().events.clone()
    }

    /// Deterministic one-line-per-transition log; two runs with the same
    /// clock/heartbeat/kill schedule produce byte-identical output (the
    /// node-kill CI gate diffs this).
    pub fn event_log(&self) -> String {
        let inner = self.inner.read();
        let mut out = String::new();
        for ev in &inner.events {
            out.push_str(&ev.line());
            out.push('\n');
        }
        out
    }

    fn notify(&self, event: &MembershipEvent) {
        let listeners: Vec<_> = self.listeners.read().clone();
        for l in listeners {
            l.on_membership_event(event);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimClock;
    use parking_lot::Mutex;

    fn setup() -> (Arc<SimClock>, Arc<Membership>) {
        let clock = Arc::new(SimClock::new(0));
        let m = Membership::new(clock.clone(), MembershipConfig::default());
        (clock, m)
    }

    #[test]
    fn heartbeating_node_stays_alive() {
        let (clock, m) = setup();
        m.register("n0");
        for _ in 0..20 {
            clock.advance(1_000);
            m.heartbeat("n0");
            assert!(m.tick().is_empty());
        }
        assert_eq!(m.state("n0"), Some(NodeState::Alive));
    }

    #[test]
    fn silent_node_goes_suspect_then_dead() {
        let (clock, m) = setup();
        m.register("n0");
        m.register("n1");
        clock.advance(3_000);
        m.heartbeat("n1");
        let evs = m.tick();
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].node, "n0");
        assert_eq!(evs[0].to, NodeState::Suspect);
        assert!(m.is_live("n0")); // suspect still serves
        clock.advance(7_000);
        m.heartbeat("n1");
        let evs = m.tick();
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].to, NodeState::Dead);
        assert!(!m.is_live("n0"));
        assert_eq!(m.live_nodes(), vec!["n1".to_string()]);
    }

    #[test]
    fn suspect_node_recovers_on_heartbeat() {
        let (clock, m) = setup();
        m.register("n0");
        clock.advance(4_000);
        m.tick();
        assert_eq!(m.state("n0"), Some(NodeState::Suspect));
        m.heartbeat("n0");
        assert_eq!(m.state("n0"), Some(NodeState::Alive));
        // the recovery itself is an event
        let evs = m.events();
        assert_eq!(evs.last().unwrap().to, NodeState::Alive);
    }

    #[test]
    fn kill_pins_dead_until_revive() {
        let (clock, m) = setup();
        m.register("n0");
        let ev = m.kill("n0").unwrap();
        assert_eq!(ev.to, NodeState::Dead);
        // heartbeats from a killed node are ignored
        clock.advance(500);
        m.heartbeat("n0");
        assert_eq!(m.state("n0"), Some(NodeState::Dead));
        assert!(m.kill("n0").is_none()); // idempotent
        let ev = m.revive("n0").unwrap();
        assert_eq!(ev.to, NodeState::Alive);
        assert!(m.is_live("n0"));
    }

    #[test]
    fn listeners_observe_transitions() {
        struct Collect(Mutex<Vec<MembershipEvent>>);
        impl MembershipListener for Collect {
            fn on_membership_event(&self, event: &MembershipEvent) {
                self.0.lock().push(event.clone());
            }
        }
        let (clock, m) = setup();
        let seen = Arc::new(Collect(Mutex::new(Vec::new())));
        m.subscribe(seen.clone());
        m.register("n0");
        clock.advance(20_000);
        m.tick();
        m.revive("n0");
        let got = seen.0.lock().clone();
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].to, NodeState::Dead);
        assert_eq!(got[1].to, NodeState::Alive);
    }

    #[test]
    fn event_log_is_deterministic() {
        let run = || {
            let (clock, m) = setup();
            m.register("a");
            m.register("b");
            clock.advance(5_000);
            m.heartbeat("b");
            m.tick();
            clock.advance(10_000);
            m.tick();
            m.kill("b");
            m.revive("a");
            m.event_log()
        };
        let first = run();
        assert!(!first.is_empty());
        assert_eq!(first, run());
    }

    #[test]
    fn region_kill_is_detected_as_correlated_node_deaths() {
        let (clock, m) = setup();
        for i in 0..3 {
            m.register_in_region(&format!("west-n{i}"), "west");
            m.register_in_region(&format!("east-n{i}"), "east");
        }
        assert_eq!(m.region_of("west-n0").as_deref(), Some("west"));
        assert_eq!(m.nodes_in_region("east").len(), 3);
        assert!(!m.region_is_down("west"));
        // west falls silent; east keeps heartbeating
        for _ in 0..12 {
            clock.advance(1_000);
            for i in 0..3 {
                m.heartbeat(&format!("east-n{i}"));
            }
            m.tick();
        }
        assert!(m.region_is_down("west"), "deadline detector downs west");
        assert!(!m.region_is_down("east"));
        assert_eq!(m.dead_regions(), vec!["west".to_string()]);
        let st = m.region_statuses();
        assert_eq!(st.len(), 2);
        assert_eq!((st[1].live, st[1].dead), (0, 3)); // west
                                                      // one node heartbeats again: region no longer down
        m.heartbeat("west-n1");
        assert!(!m.region_is_down("west"));
    }

    #[test]
    fn partially_dead_region_is_not_down() {
        let (_, m) = setup();
        m.register_in_region("a-n0", "a");
        m.register_in_region("a-n1", "a");
        m.kill("a-n0");
        assert!(!m.region_is_down("a"));
        m.kill("a-n1");
        assert!(m.region_is_down("a"));
        // unknown region (no nodes) is never down
        assert!(!m.region_is_down("ghost"));
    }

    #[test]
    fn detector_never_resurrects_without_heartbeat() {
        let (clock, m) = setup();
        m.register("n0");
        clock.advance(20_000);
        m.tick();
        assert_eq!(m.state("n0"), Some(NodeState::Dead));
        // further ticks with no heartbeat: still dead, no new events
        clock.advance(1_000);
        assert!(m.tick().is_empty());
        assert_eq!(m.state("n0"), Some(NodeState::Dead));
    }
}
