//! Deterministic chaos injection and unified retry policies.
//!
//! The paper's reliability story is spread across every layer: consumer
//! proxy retries with DLQ hand-off (§4.1.2), Flink checkpoint recovery
//! (§4.4), Pinot peer-to-peer segment recovery (§4.3.4) and cross-region
//! failover (§6). This module gives the whole stack one coherent fault
//! model instead of per-crate one-off injectors:
//!
//! - a process-wide [`FaultRegistry`] where named [`FaultPoint`]s can be
//!   armed with a [`FaultPlan`] (error kind, probability or every-Nth
//!   trigger, latency injection, burst windows);
//! - the [`fault_point!`] macro threaded through the stream, compute,
//!   olap, storage and multiregion crates;
//! - a shared [`RetryPolicy`]: exponential backoff with deterministic
//!   jitter, an attempt budget, and retry classification via
//!   [`Error::is_retryable`].
//!
//! Everything is deterministic: fault decisions come from a seeded
//! SplitMix64 stream per fault point (never the wall clock), so the same
//! seed always yields a byte-identical fault schedule
//! ([`schedule_summary`]). The disarmed fast path is a single relaxed
//! atomic load per check — cheap enough to leave compiled into the hot
//! paths (benchmarked by E01/E10 against the pre-chaos baselines).

use crate::error::{Error, Result};
use parking_lot::{Mutex, MutexGuard};
use std::collections::BTreeSet;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// Named places in the stack where faults can be injected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultPoint {
    /// Broker-edge append (producer / DLQ merge -> stream).
    StreamAppend,
    /// Broker-edge fetch (consumers, ingesters).
    StreamFetch,
    /// Leader-to-follower replication of one record (ISR maintenance).
    StreamReplicate,
    /// Consumer-proxy dispatch to the downstream service.
    ProxyDispatch,
    /// Staged-runtime channel hop between operators.
    ComputeChannel,
    /// Operator-chain record processing (replaces the old hard-coded
    /// "injected crash" operator).
    ComputeProcess,
    /// OLAP server serving a segment to the broker or to a recovering
    /// peer.
    OlapSegmentServe,
    /// Object-store writes (checkpoints, archival, segment backup).
    StorageObjectPut,
    /// Object-store reads (recovery, backfill).
    StorageObjectGet,
    /// One replication route run of uReplicator.
    MultiregionReplicate,
}

impl FaultPoint {
    pub const ALL: [FaultPoint; 10] = [
        FaultPoint::StreamAppend,
        FaultPoint::StreamFetch,
        FaultPoint::StreamReplicate,
        FaultPoint::ProxyDispatch,
        FaultPoint::ComputeChannel,
        FaultPoint::ComputeProcess,
        FaultPoint::OlapSegmentServe,
        FaultPoint::StorageObjectPut,
        FaultPoint::StorageObjectGet,
        FaultPoint::MultiregionReplicate,
    ];

    pub fn name(self) -> &'static str {
        match self {
            FaultPoint::StreamAppend => "stream.append",
            FaultPoint::StreamFetch => "stream.fetch",
            FaultPoint::StreamReplicate => "stream.replicate",
            FaultPoint::ProxyDispatch => "proxy.dispatch",
            FaultPoint::ComputeChannel => "compute.channel",
            FaultPoint::ComputeProcess => "compute.process",
            FaultPoint::OlapSegmentServe => "olap.segment_serve",
            FaultPoint::StorageObjectPut => "storage.object_put",
            FaultPoint::StorageObjectGet => "storage.object_get",
            FaultPoint::MultiregionReplicate => "multiregion.replicate",
        }
    }

    fn index(self) -> usize {
        Self::ALL.iter().position(|p| *p == self).expect("in ALL")
    }

    fn bit(self) -> u64 {
        1u64 << self.index()
    }
}

impl fmt::Display for FaultPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// What kind of [`Error`] an armed fault produces when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    Unavailable,
    Timeout,
    ProcessingFailed,
    Io,
    Corruption,
}

impl FaultKind {
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::Unavailable => "unavailable",
            FaultKind::Timeout => "timeout",
            FaultKind::ProcessingFailed => "processing_failed",
            FaultKind::Io => "io",
            FaultKind::Corruption => "corruption",
        }
    }

    fn to_error(self, point: FaultPoint, fire: u64) -> Error {
        let msg = format!("chaos: {} fault #{fire}", point.name());
        match self {
            FaultKind::Unavailable => Error::Unavailable(msg),
            FaultKind::Timeout => Error::Timeout(msg),
            FaultKind::ProcessingFailed => Error::ProcessingFailed(msg),
            FaultKind::Io => Error::Io(msg),
            FaultKind::Corruption => Error::Corruption(msg),
        }
    }
}

/// When an armed fault point fires.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Trigger {
    /// Every eligible check fires.
    Always,
    /// Every Nth eligible check fires (1 = every check).
    EveryNth(u64),
    /// Each eligible check fires with this probability, drawn from the
    /// point's seeded SplitMix64 stream.
    Probability(f64),
}

/// A plan describing how one fault point misbehaves.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Error produced on fire; `None` makes the plan latency-only.
    pub kind: Option<FaultKind>,
    pub trigger: Trigger,
    /// Injected latency (microseconds of real sleep) on every fire.
    pub latency_us: u64,
    /// Burst window: checks before `skip_first` never fire; with
    /// `burst_len = Some(n)`, only the `n` checks after `skip_first` are
    /// eligible (hit counts, not wall time — deterministic).
    pub skip_first: u64,
    pub burst_len: Option<u64>,
    /// Stop firing after this many fires (None = unlimited).
    pub max_fires: Option<u64>,
}

impl FaultPlan {
    pub fn fail(kind: FaultKind, trigger: Trigger) -> Self {
        FaultPlan {
            kind: Some(kind),
            trigger,
            latency_us: 0,
            skip_first: 0,
            burst_len: None,
            max_fires: None,
        }
    }

    /// Latency-only plan: every trigger fire sleeps, nothing errors.
    pub fn delay(latency_us: u64, trigger: Trigger) -> Self {
        FaultPlan {
            kind: None,
            trigger,
            latency_us,
            skip_first: 0,
            burst_len: None,
            max_fires: None,
        }
    }

    pub fn with_latency_us(mut self, us: u64) -> Self {
        self.latency_us = us;
        self
    }

    /// Fire only inside the hit-count window `[skip_first, skip_first+len)`.
    pub fn with_burst(mut self, skip_first: u64, len: Option<u64>) -> Self {
        self.skip_first = skip_first;
        self.burst_len = len;
        self
    }

    pub fn with_max_fires(mut self, n: u64) -> Self {
        self.max_fires = Some(n);
        self
    }
}

/// One planned node outage: kill at `kill_at_ms`, heal at `heal_at_ms`
/// (logical clock). Produced by [`FaultRegistry::plan_node_outages`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeOutage {
    pub node: String,
    pub kill_at_ms: i64,
    pub heal_at_ms: i64,
}

/// What a planned region outage takes out (§6 failure modes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegionOutageKind {
    /// Every node in the region — regional and aggregate clusters — goes
    /// silent at once: the full-region disaster.
    RegionKill,
    /// Only the aggregate cluster is lost; regional ingestion keeps
    /// accepting local traffic that replicates out to the survivors.
    AggregateLoss,
    /// Nothing dies, but cross-region replication degrades for the
    /// outage window (uReplicator partition/lag burst).
    ReplicatorLag,
}

impl RegionOutageKind {
    pub fn name(self) -> &'static str {
        match self {
            RegionOutageKind::RegionKill => "region-kill",
            RegionOutageKind::AggregateLoss => "aggregate-loss",
            RegionOutageKind::ReplicatorLag => "replicator-lag",
        }
    }
}

/// One planned region outage: strike at `kill_at_ms`, heal at
/// `heal_at_ms` (logical clock). Produced by
/// [`FaultRegistry::plan_region_outages`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegionOutage {
    pub region: String,
    pub kind: RegionOutageKind,
    pub kill_at_ms: i64,
    pub heal_at_ms: i64,
}

/// One fired fault, recorded in hit order for schedule comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultEvent {
    pub point: FaultPoint,
    /// 1-based check number at this point since it was armed.
    pub hit: u64,
    pub kind: Option<FaultKind>,
    pub latency_us: u64,
}

/// Deterministic SplitMix64 PRNG (the PCG-family seeder); no wall-clock
/// anywhere near it.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in [0, 1).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

struct PlanState {
    plan: FaultPlan,
    hits: u64,
    fires: u64,
    rng: SplitMix64,
}

struct Inner {
    seed: u64,
    plans: [Option<PlanState>; FaultPoint::ALL.len()],
    events: Vec<FaultEvent>,
    /// Named nodes currently downed by chaos (node-level failure
    /// domains, PR 4) and the kill/heal log in action order.
    nodes_down: BTreeSet<String>,
    node_log: Vec<String>,
}

const MAX_RECORDED_EVENTS: usize = 100_000;

/// Process-wide registry of armed fault points.
pub struct FaultRegistry {
    inner: Mutex<Inner>,
}

/// Bitmask of currently armed fault points. Module-level so the disarmed
/// fast path is exactly one relaxed atomic load, with no `OnceLock`
/// indirection in front of it.
static ARMED: AtomicU64 = AtomicU64::new(0);

static REGISTRY: OnceLock<FaultRegistry> = OnceLock::new();

/// Serializes tests that arm the global registry (unit and integration
/// tests run concurrently inside one binary).
static TEST_GUARD: Mutex<()> = Mutex::new(());

impl FaultRegistry {
    fn new() -> Self {
        FaultRegistry {
            inner: Mutex::new(Inner {
                seed: 0,
                plans: Default::default(),
                events: Vec::new(),
                nodes_down: BTreeSet::new(),
                node_log: Vec::new(),
            }),
        }
    }

    /// Re-seed and disarm everything; the fault schedule restarts from a
    /// clean, reproducible state.
    pub fn reset(&self, seed: u64) {
        let mut inner = self.inner.lock();
        ARMED.store(0, Ordering::SeqCst);
        inner.seed = seed;
        inner.plans = Default::default();
        inner.events.clear();
        inner.nodes_down.clear();
        inner.node_log.clear();
    }

    /// Arm a fault point. The point's decision stream is seeded from the
    /// registry seed and the point's identity, so concurrent activity at
    /// *other* points cannot perturb this one's schedule.
    pub fn arm(&self, point: FaultPoint, plan: FaultPlan) {
        let mut inner = self.inner.lock();
        let seed = inner.seed;
        let point_seed =
            SplitMix64::new(seed ^ (point.index() as u64 + 1).wrapping_mul(0xA076_1D64_78BD_642F))
                .next_u64();
        inner.plans[point.index()] = Some(PlanState {
            plan,
            hits: 0,
            fires: 0,
            rng: SplitMix64::new(point_seed),
        });
        ARMED.fetch_or(point.bit(), Ordering::SeqCst);
    }

    pub fn disarm(&self, point: FaultPoint) {
        let mut inner = self.inner.lock();
        inner.plans[point.index()] = None;
        ARMED.fetch_and(!point.bit(), Ordering::SeqCst);
    }

    pub fn disarm_all(&self) {
        let mut inner = self.inner.lock();
        inner.plans = Default::default();
        ARMED.store(0, Ordering::SeqCst);
    }

    pub fn is_armed(&self, point: FaultPoint) -> bool {
        ARMED.load(Ordering::SeqCst) & point.bit() != 0
    }

    /// (checks seen, faults fired) at a point since it was armed.
    pub fn stats(&self, point: FaultPoint) -> (u64, u64) {
        let inner = self.inner.lock();
        inner.plans[point.index()]
            .as_ref()
            .map(|s| (s.hits, s.fires))
            .unwrap_or((0, 0))
    }

    /// The full fired-fault schedule, one line per event, in hit order.
    /// Two runs under the same seed and workload produce byte-identical
    /// summaries — the CI determinism gate diffs this.
    pub fn schedule_summary(&self) -> String {
        let inner = self.inner.lock();
        let mut out = String::new();
        out.push_str(&format!("seed={}\n", inner.seed));
        for ev in &inner.events {
            out.push_str(&format!(
                "{} hit={} kind={} latency_us={}\n",
                ev.point.name(),
                ev.hit,
                ev.kind.map(|k| k.name()).unwrap_or("delay"),
                ev.latency_us,
            ));
        }
        for p in FaultPoint::ALL {
            if let Some(s) = &inner.plans[p.index()] {
                out.push_str(&format!(
                    "totals {} hits={} fires={}\n",
                    p.name(),
                    s.hits,
                    s.fires
                ));
            }
        }
        for line in &inner.node_log {
            out.push_str(&format!("node {line}\n"));
        }
        out
    }

    pub fn events(&self) -> Vec<FaultEvent> {
        self.inner.lock().events.clone()
    }

    /// Down a named node (a Kafka broker node, an OLAP server, a task
    /// manager): node-granular chaos rather than call-granular. Drivers
    /// mirror the registry's down set into their `Membership` so every
    /// failure domain reacts. Returns false if already down.
    pub fn kill_node(&self, node: &str) -> bool {
        let mut inner = self.inner.lock();
        let newly = inner.nodes_down.insert(node.to_string());
        if newly {
            inner.node_log.push(format!("kill {node}"));
        }
        newly
    }

    /// Bring a chaos-killed node back. Returns false if it was not down.
    pub fn heal_node(&self, node: &str) -> bool {
        let mut inner = self.inner.lock();
        let healed = inner.nodes_down.remove(node);
        if healed {
            inner.node_log.push(format!("heal {node}"));
        }
        healed
    }

    pub fn node_is_down(&self, node: &str) -> bool {
        self.inner.lock().nodes_down.contains(node)
    }

    /// Currently downed nodes, in name order.
    pub fn downed_nodes(&self) -> Vec<String> {
        self.inner.lock().nodes_down.iter().cloned().collect()
    }

    /// The kill/heal action log, in action order.
    pub fn node_log(&self) -> Vec<String> {
        self.inner.lock().node_log.clone()
    }

    /// Plan a deterministic node-outage schedule from the registry seed:
    /// `cycles` outages, each picking a victim node and a kill time inside
    /// its cycle window from the seeded stream, healing `outage_ms` later.
    /// Same seed + same arguments => byte-identical schedule; the soak
    /// test and `e24_node_failover` replay these against the logical
    /// clock.
    pub fn plan_node_outages(
        &self,
        nodes: &[&str],
        cycles: usize,
        start_ms: i64,
        period_ms: i64,
        outage_ms: i64,
    ) -> Vec<NodeOutage> {
        let seed = self.inner.lock().seed;
        let mut rng = SplitMix64::new(seed ^ 0x004E_0DE0_C1D5_C4ED_u64);
        let mut out = Vec::with_capacity(cycles);
        for cycle in 0..cycles {
            let node = nodes[(rng.next_u64() % nodes.len() as u64) as usize];
            let jitter = (rng.next_u64() % (period_ms.max(4) as u64 / 4)) as i64;
            let kill_at_ms = start_ms + cycle as i64 * period_ms + jitter;
            out.push(NodeOutage {
                node: node.to_string(),
                kill_at_ms,
                heal_at_ms: kill_at_ms + outage_ms,
            });
        }
        out
    }

    /// Plan a deterministic region-outage schedule from the registry
    /// seed: `cycles` outages, each picking a victim region, an outage
    /// kind (full-region kill, aggregate-only loss, or a replicator lag
    /// burst) and a kill time inside its cycle window from the seeded
    /// stream, healing `outage_ms` later. Same seed + same arguments =>
    /// byte-identical schedule; the DR drill replays these against the
    /// logical clock.
    pub fn plan_region_outages(
        &self,
        regions: &[&str],
        cycles: usize,
        start_ms: i64,
        period_ms: i64,
        outage_ms: i64,
    ) -> Vec<RegionOutage> {
        let seed = self.inner.lock().seed;
        let mut rng = SplitMix64::new(seed ^ 0x2E61_0D15_A57E_25ED_u64);
        let mut out = Vec::with_capacity(cycles);
        for cycle in 0..cycles {
            let region = regions[(rng.next_u64() % regions.len() as u64) as usize];
            let kind = match rng.next_u64() % 3 {
                0 => RegionOutageKind::RegionKill,
                1 => RegionOutageKind::AggregateLoss,
                _ => RegionOutageKind::ReplicatorLag,
            };
            let jitter = (rng.next_u64() % (period_ms.max(4) as u64 / 4)) as i64;
            let kill_at_ms = start_ms + cycle as i64 * period_ms + jitter;
            out.push(RegionOutage {
                region: region.to_string(),
                kind,
                kill_at_ms,
                heal_at_ms: kill_at_ms + outage_ms,
            });
        }
        out
    }

    /// Slow path: the point is (or just was) armed. Decides, records and
    /// (outside the lock) applies latency.
    fn check_slow(&self, point: FaultPoint) -> Result<()> {
        let (error, latency_us) = {
            let mut inner = self.inner.lock();
            let Some(state) = inner.plans[point.index()].as_mut() else {
                // disarmed between the fast-path load and here
                return Ok(());
            };
            state.hits += 1;
            let hit = state.hits;
            // burst window gate (hit counts, not wall time)
            if hit <= state.plan.skip_first {
                return Ok(());
            }
            if let Some(len) = state.plan.burst_len {
                if hit > state.plan.skip_first + len {
                    return Ok(());
                }
            }
            if let Some(max) = state.plan.max_fires {
                if state.fires >= max {
                    return Ok(());
                }
            }
            let fires = match state.plan.trigger {
                Trigger::Always => true,
                Trigger::EveryNth(n) => {
                    let n = n.max(1);
                    (hit - state.plan.skip_first).is_multiple_of(n)
                }
                Trigger::Probability(p) => state.rng.next_f64() < p,
            };
            if !fires {
                return Ok(());
            }
            state.fires += 1;
            let fire = state.fires;
            let kind = state.plan.kind;
            let latency_us = state.plan.latency_us;
            if inner.events.len() < MAX_RECORDED_EVENTS {
                inner.events.push(FaultEvent {
                    point,
                    hit,
                    kind,
                    latency_us,
                });
            }
            (kind.map(|k| k.to_error(point, fire)), latency_us)
        };
        if latency_us > 0 {
            std::thread::sleep(std::time::Duration::from_micros(latency_us));
        }
        match error {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }
}

/// The process-wide registry.
pub fn registry() -> &'static FaultRegistry {
    REGISTRY.get_or_init(FaultRegistry::new)
}

/// Check a fault point. Disarmed cost: one relaxed atomic load.
#[inline(always)]
pub fn check(point: FaultPoint) -> Result<()> {
    if ARMED.load(Ordering::Relaxed) & point.bit() == 0 {
        return Ok(());
    }
    registry().check_slow(point)
}

/// Exclusive access for tests that arm the global registry; hold the
/// guard for the whole test so concurrently running tests cannot see each
/// other's fault plans.
pub fn test_guard() -> MutexGuard<'static, ()> {
    TEST_GUARD.lock()
}

/// Early-return with the injected error if the fault point fires.
#[macro_export]
macro_rules! fault_point {
    ($point:expr) => {
        $crate::chaos::check($point)?
    };
}

// ---------------------------------------------------------------------------
// Retry policy
// ---------------------------------------------------------------------------

/// Retries performed under any [`RetryPolicy`], process-wide — soak tests
/// assert the total stays bounded.
static RETRIES_TOTAL: AtomicU64 = AtomicU64::new(0);

pub fn retries_total() -> u64 {
    RETRIES_TOTAL.load(Ordering::Relaxed)
}

pub fn reset_retry_stats() {
    RETRIES_TOTAL.store(0, Ordering::Relaxed);
}

/// Shared retry/backoff policy: exponential backoff with deterministic
/// jitter and a hard attempt budget. Only errors classified retryable by
/// [`Error::is_retryable`] are retried.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts including the first (>= 1).
    pub max_attempts: u32,
    /// Backoff before the first retry, microseconds.
    pub base_delay_us: u64,
    /// Backoff cap, microseconds.
    pub max_delay_us: u64,
    /// Seed for the deterministic jitter stream.
    pub jitter_seed: u64,
    /// Whether backoff actually sleeps (false in simulated-time tests;
    /// schedules stay identical either way).
    pub sleep: bool,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy::new(4)
    }
}

impl RetryPolicy {
    pub fn new(max_attempts: u32) -> Self {
        RetryPolicy {
            max_attempts: max_attempts.max(1),
            base_delay_us: 50,
            max_delay_us: 5_000,
            jitter_seed: 0x5EED_5EED_5EED_5EED,
            sleep: true,
        }
    }

    /// Same schedule arithmetic, no real sleeping.
    pub fn no_sleep(mut self) -> Self {
        self.sleep = false;
        self
    }

    pub fn with_backoff_us(mut self, base: u64, max: u64) -> Self {
        self.base_delay_us = base;
        self.max_delay_us = max.max(base);
        self
    }

    pub fn with_jitter_seed(mut self, seed: u64) -> Self {
        self.jitter_seed = seed;
        self
    }

    /// Deterministic backoff before retry number `retry` (1-based):
    /// exponential, capped, with half-width jitter drawn from SplitMix64
    /// keyed by `(jitter_seed, retry)` — decorrelated but reproducible.
    pub fn backoff_us(&self, retry: u32) -> u64 {
        let exp = self
            .base_delay_us
            .saturating_mul(1u64 << (retry.saturating_sub(1)).min(20))
            .min(self.max_delay_us);
        let half = exp / 2;
        if half == 0 {
            return exp;
        }
        let jitter = SplitMix64::new(self.jitter_seed ^ retry as u64).next_u64() % (half + 1);
        half + jitter
    }

    /// Run `op` under the policy. `op` receives the 1-based attempt
    /// number. Non-retryable errors and budget exhaustion surface the last
    /// error unchanged.
    pub fn run<T>(&self, mut op: impl FnMut(u32) -> Result<T>) -> Result<T> {
        self.run_with_attempts(&mut op).0
    }

    /// Like [`RetryPolicy::run`] but also reports how many attempts were
    /// consumed.
    pub fn run_with_attempts<T>(&self, op: &mut dyn FnMut(u32) -> Result<T>) -> (Result<T>, u32) {
        let mut attempt = 1;
        loop {
            match op(attempt) {
                Ok(v) => return (Ok(v), attempt),
                Err(e) if e.is_retryable() && attempt < self.max_attempts => {
                    RETRIES_TOTAL.fetch_add(1, Ordering::Relaxed);
                    if self.sleep {
                        let us = self.backoff_us(attempt);
                        if us > 0 {
                            std::thread::sleep(std::time::Duration::from_micros(us));
                        }
                    }
                    attempt += 1;
                }
                Err(e) => return (Err(e), attempt),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_well_spread() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        let mut c = SplitMix64::new(43);
        assert_ne!(xs[0], c.next_u64());
        for _ in 0..100 {
            let f = a.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn disarmed_points_never_interfere() {
        let _g = test_guard();
        registry().reset(1);
        for p in FaultPoint::ALL {
            assert!(check(p).is_ok());
            assert!(!registry().is_armed(p));
        }
        assert_eq!(registry().events().len(), 0);
    }

    #[test]
    fn every_nth_fires_deterministically() {
        let _g = test_guard();
        registry().reset(7);
        registry().arm(
            FaultPoint::StreamAppend,
            FaultPlan::fail(FaultKind::Unavailable, Trigger::EveryNth(3)),
        );
        let outcomes: Vec<bool> = (0..9)
            .map(|_| check(FaultPoint::StreamAppend).is_err())
            .collect();
        assert_eq!(
            outcomes,
            vec![false, false, true, false, false, true, false, false, true]
        );
        assert_eq!(registry().stats(FaultPoint::StreamAppend), (9, 3));
        registry().disarm_all();
    }

    #[test]
    fn probability_schedule_is_seed_stable() {
        let _g = test_guard();
        let run = |seed: u64| -> String {
            registry().reset(seed);
            registry().arm(
                FaultPoint::StorageObjectPut,
                FaultPlan::fail(FaultKind::Io, Trigger::Probability(0.3)),
            );
            for _ in 0..50 {
                let _ = check(FaultPoint::StorageObjectPut);
            }
            let s = registry().schedule_summary();
            registry().disarm_all();
            s
        };
        assert_eq!(run(99), run(99), "same seed, same schedule");
        assert_ne!(run(99), run(100), "different seed, different schedule");
    }

    #[test]
    fn burst_window_and_max_fires_gate_firing() {
        let _g = test_guard();
        registry().reset(5);
        registry().arm(
            FaultPoint::ProxyDispatch,
            FaultPlan::fail(FaultKind::Timeout, Trigger::Always).with_burst(3, Some(2)),
        );
        let outcomes: Vec<bool> = (0..8)
            .map(|_| check(FaultPoint::ProxyDispatch).is_err())
            .collect();
        // hits 1-3 skipped, 4-5 in window, 6+ past it
        assert_eq!(
            outcomes,
            vec![false, false, false, true, true, false, false, false]
        );
        registry().arm(
            FaultPoint::ProxyDispatch,
            FaultPlan::fail(FaultKind::Timeout, Trigger::Always).with_max_fires(2),
        );
        let fired = (0..10)
            .filter(|_| check(FaultPoint::ProxyDispatch).is_err())
            .count();
        assert_eq!(fired, 2);
        registry().disarm_all();
    }

    #[test]
    fn latency_only_plan_returns_ok() {
        let _g = test_guard();
        registry().reset(11);
        registry().arm(
            FaultPoint::StreamFetch,
            FaultPlan::delay(1, Trigger::Always),
        );
        assert!(check(FaultPoint::StreamFetch).is_ok());
        let events = registry().events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind, None);
        registry().disarm_all();
    }

    #[test]
    fn error_kinds_map_to_error_variants() {
        let _g = test_guard();
        registry().reset(2);
        let cases = [
            (FaultKind::Unavailable, "unavailable"),
            (FaultKind::Timeout, "timeout"),
            (FaultKind::Corruption, "corruption"),
        ];
        for (kind, _) in cases {
            registry().arm(
                FaultPoint::MultiregionReplicate,
                FaultPlan::fail(kind, Trigger::Always),
            );
            let err = check(FaultPoint::MultiregionReplicate).unwrap_err();
            match kind {
                FaultKind::Unavailable => assert!(matches!(err, Error::Unavailable(_))),
                FaultKind::Timeout => assert!(matches!(err, Error::Timeout(_))),
                FaultKind::Corruption => assert!(matches!(err, Error::Corruption(_))),
                _ => {}
            }
            assert!(err.to_string().contains("multiregion.replicate"));
        }
        registry().disarm_all();
    }

    #[test]
    fn retry_policy_respects_budget_and_classification() {
        let policy = RetryPolicy::new(3).no_sleep();
        // transient failure resolved within budget
        let mut calls = 0;
        let out = policy.run(|attempt| {
            calls += 1;
            if attempt < 3 {
                Err(Error::Unavailable("x".into()))
            } else {
                Ok(attempt)
            }
        });
        assert_eq!(out.unwrap(), 3);
        assert_eq!(calls, 3);
        // budget exhausted -> last error surfaces
        let (res, attempts) =
            policy.run_with_attempts(&mut |_| Err::<(), _>(Error::Timeout("t".into())));
        assert!(matches!(res, Err(Error::Timeout(_))));
        assert_eq!(attempts, 3);
        // non-retryable fails immediately
        let (res, attempts) =
            policy.run_with_attempts(&mut |_| Err::<(), _>(Error::Corruption("c".into())));
        assert!(matches!(res, Err(Error::Corruption(_))));
        assert_eq!(attempts, 1);
    }

    #[test]
    fn backoff_is_exponential_capped_and_deterministic() {
        let p = RetryPolicy::new(8).with_backoff_us(100, 1_000);
        let seq: Vec<u64> = (1..=6).map(|r| p.backoff_us(r)).collect();
        assert_eq!(seq, (1..=6).map(|r| p.backoff_us(r)).collect::<Vec<_>>());
        // each backoff sits in [exp/2, exp]
        for (i, b) in seq.iter().enumerate() {
            let exp = (100u64 << i).min(1_000);
            assert!(*b >= exp / 2 && *b <= exp, "retry {} backoff {b}", i + 1);
        }
        // capped at max
        assert!(p.backoff_us(20) <= 1_000);
    }

    #[test]
    fn node_kill_heal_tracks_down_set_and_log() {
        let _g = test_guard();
        registry().reset(21);
        assert!(!registry().node_is_down("broker-0"));
        assert!(registry().kill_node("broker-0"));
        assert!(!registry().kill_node("broker-0"), "idempotent kill");
        registry().kill_node("olap-server-2");
        assert!(registry().node_is_down("broker-0"));
        assert_eq!(
            registry().downed_nodes(),
            vec!["broker-0".to_string(), "olap-server-2".to_string()]
        );
        assert!(registry().heal_node("broker-0"));
        assert!(!registry().heal_node("broker-0"));
        assert_eq!(
            registry().node_log(),
            vec!["kill broker-0", "kill olap-server-2", "heal broker-0"]
        );
        // node actions land in the schedule summary (determinism gate)
        let summary = registry().schedule_summary();
        assert!(summary.contains("node kill broker-0"));
        assert!(summary.contains("node heal broker-0"));
        registry().reset(21);
        assert!(!registry().node_is_down("olap-server-2"), "reset clears");
    }

    #[test]
    fn node_outage_plan_is_seed_stable() {
        let _g = test_guard();
        let plan = |seed: u64| {
            registry().reset(seed);
            registry().plan_node_outages(&["n0", "n1", "n2"], 6, 1_000, 10_000, 2_500)
        };
        let a = plan(77);
        assert_eq!(a, plan(77), "same seed, same outage schedule");
        assert_ne!(a, plan(78), "different seed, different schedule");
        assert_eq!(a.len(), 6);
        for (i, o) in a.iter().enumerate() {
            assert_eq!(o.heal_at_ms, o.kill_at_ms + 2_500);
            let window = 1_000 + i as i64 * 10_000;
            assert!(o.kill_at_ms >= window && o.kill_at_ms < window + 10_000);
        }
        registry().reset(0);
    }

    #[test]
    fn region_outage_plan_is_seed_stable_and_mixes_kinds() {
        let _g = test_guard();
        let plan = |seed: u64| {
            registry().reset(seed);
            registry().plan_region_outages(&["west", "east", "asia"], 9, 5_000, 30_000, 12_000)
        };
        let a = plan(0xD12);
        assert_eq!(a, plan(0xD12), "same seed, same region schedule");
        assert_ne!(a, plan(0xD13), "different seed, different schedule");
        assert_eq!(a.len(), 9);
        for (i, o) in a.iter().enumerate() {
            assert_eq!(o.heal_at_ms, o.kill_at_ms + 12_000);
            let window = 5_000 + i as i64 * 30_000;
            assert!(o.kill_at_ms >= window && o.kill_at_ms < window + 30_000);
            assert!(["west", "east", "asia"].contains(&o.region.as_str()));
        }
        // the seeded stream exercises more than one outage kind over a
        // long enough schedule
        let kinds: std::collections::BTreeSet<&str> = a.iter().map(|o| o.kind.name()).collect();
        assert!(kinds.len() >= 2, "kinds drawn: {kinds:?}");
        // the region plan is independent of the node plan (distinct salt)
        registry().reset(0xD12);
        let nodes =
            registry().plan_node_outages(&["west", "east", "asia"], 9, 5_000, 30_000, 12_000);
        assert!(
            a.iter()
                .zip(&nodes)
                .any(|(r, n)| r.region != n.node || r.kill_at_ms != n.kill_at_ms),
            "region and node plans must not be correlated"
        );
        registry().reset(0);
    }

    #[test]
    fn fault_point_macro_early_returns() {
        let _g = test_guard();
        registry().reset(3);
        fn guarded() -> Result<u32> {
            fault_point!(FaultPoint::ComputeProcess);
            Ok(7)
        }
        assert_eq!(guarded().unwrap(), 7);
        registry().arm(
            FaultPoint::ComputeProcess,
            FaultPlan::fail(FaultKind::ProcessingFailed, Trigger::Always),
        );
        assert!(matches!(guarded(), Err(Error::ProcessingFailed(_))));
        registry().disarm_all();
    }
}
