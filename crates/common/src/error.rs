//! Unified error type shared across the stack.

use std::fmt;

/// Result alias used across all rtdi crates.
pub type Result<T> = std::result::Result<T, Error>;

/// Unified error enumeration for the whole platform.
///
/// Each layer of the stack maps its failures into one of these variants so
/// that errors can cross crate boundaries (stream -> compute -> olap -> sql)
/// without lossy string-ification at every hop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// Something was requested that does not exist (topic, table, job...).
    NotFound(String),
    /// An entity with this name/id already exists.
    AlreadyExists(String),
    /// Caller supplied an invalid argument or configuration.
    InvalidArgument(String),
    /// A schema mismatch or schema-compatibility violation.
    Schema(String),
    /// The requested offset is out of the retained range of a log.
    OffsetOutOfRange { requested: u64, low: u64, high: u64 },
    /// A component is unavailable (node down, cluster failed over...).
    Unavailable(String),
    /// Capacity exhausted (cluster full, quota exceeded, queue full).
    CapacityExceeded(String),
    /// A downstream consumer/service failed to process a message.
    ProcessingFailed(String),
    /// Data corruption detected (checksum mismatch, bad encoding...).
    Corruption(String),
    /// A SQL statement failed to lex/parse/plan.
    Sql(String),
    /// Underlying I/O failure (object store, filesystem).
    Io(String),
    /// Operation timed out.
    Timeout(String),
    /// Admission control shed this work: a quota, concurrency limit or
    /// queue watermark refused it. Retryable — pressure is transient and
    /// backing off is exactly the desired client reaction.
    Overloaded(String),
    /// The caller's deadline expired before the work finished. Never
    /// retryable: the client has already given up, so retrying only adds
    /// load precisely when the system can least afford it.
    DeadlineExceeded(String),
    /// Internal invariant violation; indicates a bug.
    Internal(String),
}

impl Error {
    /// True when the operation may succeed if retried (transient failure).
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            Error::Unavailable(_)
                | Error::Timeout(_)
                | Error::ProcessingFailed(_)
                | Error::Overloaded(_)
        )
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::NotFound(s) => write!(f, "not found: {s}"),
            Error::AlreadyExists(s) => write!(f, "already exists: {s}"),
            Error::InvalidArgument(s) => write!(f, "invalid argument: {s}"),
            Error::Schema(s) => write!(f, "schema error: {s}"),
            Error::OffsetOutOfRange {
                requested,
                low,
                high,
            } => write!(f, "offset {requested} out of range [{low}, {high})"),
            Error::Unavailable(s) => write!(f, "unavailable: {s}"),
            Error::CapacityExceeded(s) => write!(f, "capacity exceeded: {s}"),
            Error::ProcessingFailed(s) => write!(f, "processing failed: {s}"),
            Error::Corruption(s) => write!(f, "corruption: {s}"),
            Error::Sql(s) => write!(f, "sql error: {s}"),
            Error::Io(s) => write!(f, "io error: {s}"),
            Error::Timeout(s) => write!(f, "timeout: {s}"),
            Error::Overloaded(s) => write!(f, "overloaded: {s}"),
            Error::DeadlineExceeded(s) => write!(f, "deadline exceeded: {s}"),
            Error::Internal(s) => write!(f, "internal error: {s}"),
        }
    }
}

impl std::error::Error for Error {}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_contains_payload() {
        let e = Error::NotFound("topic trips".into());
        assert!(e.to_string().contains("topic trips"));
        let e = Error::OffsetOutOfRange {
            requested: 5,
            low: 10,
            high: 20,
        };
        assert!(e.to_string().contains('5'));
        assert!(e.to_string().contains("10"));
    }

    #[test]
    fn retryable_classification() {
        assert!(Error::Unavailable("x".into()).is_retryable());
        assert!(Error::Timeout("x".into()).is_retryable());
        assert!(Error::ProcessingFailed("x".into()).is_retryable());
        // shed work is worth retrying after backoff...
        assert!(Error::Overloaded("quota".into()).is_retryable());
        // ...but an expired deadline never is: the caller already gave up
        assert!(!Error::DeadlineExceeded("budget spent".into()).is_retryable());
        assert!(!Error::NotFound("x".into()).is_retryable());
        assert!(!Error::Corruption("x".into()).is_retryable());
    }

    #[test]
    fn overload_display_contains_payload() {
        assert!(Error::Overloaded("tenant rider-app over quota".into())
            .to_string()
            .contains("tenant rider-app over quota"));
        assert!(Error::DeadlineExceeded("5ms over".into())
            .to_string()
            .contains("5ms over"));
    }

    #[test]
    fn io_error_conversion() {
        let io = std::io::Error::other("boom");
        let e: Error = io.into();
        assert!(matches!(e, Error::Io(_)));
    }
}
