//! Aggregate functions and their checkpointable accumulators.
//!
//! These are the aggregations FlinkSQL compiles `COUNT/SUM/AVG/MIN/MAX/
//! COUNT(DISTINCT ...)` into, and the building blocks of the
//! pre-aggregation pipelines in §5.2/§5.3. Accumulators are plain enums so
//! checkpoints can serialize them without trait-object machinery.

use crate::error::{Error, Result};
use crate::value::{Row, Value};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::collections::BTreeSet;

/// An aggregate function over a (possibly absent) input column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AggFn {
    Count,
    Sum(String),
    Avg(String),
    Min(String),
    Max(String),
    DistinctCount(String),
}

impl AggFn {
    pub fn new_acc(&self) -> AggAcc {
        match self {
            AggFn::Count => AggAcc::Count(0),
            AggFn::Sum(_) => AggAcc::Sum { sum: 0.0, count: 0 },
            AggFn::Avg(_) => AggAcc::Avg { sum: 0.0, count: 0 },
            AggFn::Min(_) => AggAcc::Min(None),
            AggFn::Max(_) => AggAcc::Max(None),
            AggFn::DistinctCount(_) => AggAcc::Distinct(BTreeSet::new()),
        }
    }

    /// Column the function reads, if any.
    pub fn input_column(&self) -> Option<&str> {
        match self {
            AggFn::Count => None,
            AggFn::Sum(c)
            | AggFn::Avg(c)
            | AggFn::Min(c)
            | AggFn::Max(c)
            | AggFn::DistinctCount(c) => Some(c),
        }
    }

    /// Default output column name (FlinkSQL uses aliases when provided).
    pub fn default_name(&self) -> String {
        match self {
            AggFn::Count => "count".into(),
            AggFn::Sum(c) => format!("sum_{c}"),
            AggFn::Avg(c) => format!("avg_{c}"),
            AggFn::Min(c) => format!("min_{c}"),
            AggFn::Max(c) => format!("max_{c}"),
            AggFn::DistinctCount(c) => format!("distinct_{c}"),
        }
    }
}

/// A running accumulator.
#[derive(Debug, Clone, PartialEq)]
pub enum AggAcc {
    Count(u64),
    /// SQL SUM: the count tracks non-null inputs so an empty (or all-NULL)
    /// sum finalizes to NULL rather than 0.
    Sum {
        sum: f64,
        count: u64,
    },
    Avg {
        sum: f64,
        count: u64,
    },
    Min(Option<f64>),
    Max(Option<f64>),
    Distinct(BTreeSet<u64>),
}

impl AggAcc {
    /// Fold one row in.
    pub fn add(&mut self, f: &AggFn, row: &Row) {
        match (self, f) {
            (AggAcc::Count(n), AggFn::Count) => *n += 1,
            (AggAcc::Sum { sum, count }, AggFn::Sum(col)) => {
                if let Some(v) = row.get_double(col) {
                    *sum += v;
                    *count += 1;
                }
            }
            (AggAcc::Avg { sum, count }, AggFn::Avg(col)) => {
                if let Some(v) = row.get_double(col) {
                    *sum += v;
                    *count += 1;
                }
            }
            (AggAcc::Min(m), AggFn::Min(col)) => {
                if let Some(v) = row.get_double(col) {
                    *m = Some(m.map_or(v, |cur| cur.min(v)));
                }
            }
            (AggAcc::Max(m), AggFn::Max(col)) => {
                if let Some(v) = row.get_double(col) {
                    *m = Some(m.map_or(v, |cur| cur.max(v)));
                }
            }
            (AggAcc::Distinct(set), AggFn::DistinctCount(col)) => {
                if let Some(v) = row.get(col) {
                    if !v.is_null() {
                        set.insert(v.partition_hash());
                    }
                }
            }
            (acc, f) => {
                debug_assert!(false, "accumulator {acc:?} mismatched with {f:?}");
            }
        }
    }

    /// Fast path: fold one numeric value (Sum/Avg/Min/Max) without
    /// constructing a row. Count also accepts this (value ignored).
    #[inline]
    pub fn add_num(&mut self, v: f64) {
        match self {
            AggAcc::Count(n) => *n += 1,
            AggAcc::Sum { sum, count } => {
                *sum += v;
                *count += 1;
            }
            AggAcc::Avg { sum, count } => {
                *sum += v;
                *count += 1;
            }
            AggAcc::Min(m) => *m = Some(m.map_or(v, |cur| cur.min(v))),
            AggAcc::Max(m) => *m = Some(m.map_or(v, |cur| cur.max(v))),
            AggAcc::Distinct(set) => {
                // consistent with Value::Double(v).partition_hash()
                set.insert(Value::hash_of_double(v));
            }
        }
    }

    /// Fast path: count one row (COUNT(*)).
    #[inline]
    pub fn add_one(&mut self) {
        if let AggAcc::Count(n) = self {
            *n += 1;
        } else {
            debug_assert!(false, "add_one on non-count accumulator");
        }
    }

    /// Fast path: fold a pre-hashed value into a distinct set. The hash
    /// must be [`crate::value::Value::partition_hash`] of the original
    /// value so sets merge correctly across segments.
    #[inline]
    pub fn add_hash(&mut self, h: u64) {
        if let AggAcc::Distinct(set) = self {
            set.insert(h);
        } else {
            debug_assert!(false, "add_hash on non-distinct accumulator");
        }
    }

    /// Merge another accumulator of the same shape (used by session-window
    /// merging and by the micro-batch baseline's partial aggregation).
    pub fn merge(&mut self, other: &AggAcc) {
        match (self, other) {
            (AggAcc::Count(a), AggAcc::Count(b)) => *a += b,
            (AggAcc::Sum { sum: s1, count: c1 }, AggAcc::Sum { sum: s2, count: c2 }) => {
                *s1 += s2;
                *c1 += c2;
            }
            (AggAcc::Avg { sum: s1, count: c1 }, AggAcc::Avg { sum: s2, count: c2 }) => {
                *s1 += s2;
                *c1 += c2;
            }
            (AggAcc::Min(a), AggAcc::Min(b)) => {
                if let Some(v) = b {
                    *a = Some(a.map_or(*v, |cur| cur.min(*v)));
                }
            }
            (AggAcc::Max(a), AggAcc::Max(b)) => {
                if let Some(v) = b {
                    *a = Some(a.map_or(*v, |cur| cur.max(*v)));
                }
            }
            (AggAcc::Distinct(a), AggAcc::Distinct(b)) => {
                a.extend(b.iter().copied());
            }
            (a, b) => {
                debug_assert!(false, "cannot merge {a:?} with {b:?}");
            }
        }
    }

    /// Final value.
    pub fn result(&self) -> Value {
        match self {
            AggAcc::Count(n) => Value::Int(*n as i64),
            AggAcc::Sum { sum, count } => {
                if *count == 0 {
                    Value::Null
                } else {
                    Value::Double(*sum)
                }
            }
            AggAcc::Avg { sum, count } => {
                if *count == 0 {
                    Value::Null
                } else {
                    Value::Double(sum / *count as f64)
                }
            }
            AggAcc::Min(m) => m.map(Value::Double).unwrap_or(Value::Null),
            AggAcc::Max(m) => m.map(Value::Double).unwrap_or(Value::Null),
            AggAcc::Distinct(set) => Value::Int(set.len() as i64),
        }
    }

    /// Approximate live bytes (distinct sets dominate).
    pub fn memory_bytes(&self) -> usize {
        match self {
            AggAcc::Distinct(set) => 16 + set.len() * 8,
            AggAcc::Avg { .. } | AggAcc::Sum { .. } => 16,
            _ => 8,
        }
    }

    pub fn encode(&self, buf: &mut BytesMut) {
        match self {
            AggAcc::Count(n) => {
                buf.put_u8(0);
                buf.put_u64(*n);
            }
            AggAcc::Sum { sum, count } => {
                buf.put_u8(1);
                buf.put_f64(*sum);
                buf.put_u64(*count);
            }
            AggAcc::Avg { sum, count } => {
                buf.put_u8(2);
                buf.put_f64(*sum);
                buf.put_u64(*count);
            }
            AggAcc::Min(m) => {
                buf.put_u8(3);
                encode_opt(buf, *m);
            }
            AggAcc::Max(m) => {
                buf.put_u8(4);
                encode_opt(buf, *m);
            }
            AggAcc::Distinct(set) => {
                buf.put_u8(5);
                buf.put_u32(set.len() as u32);
                for v in set {
                    buf.put_u64(*v);
                }
            }
        }
    }

    pub fn decode(buf: &mut Bytes) -> Result<AggAcc> {
        if buf.remaining() < 1 {
            return Err(Error::Corruption("truncated accumulator".into()));
        }
        Ok(match buf.get_u8() {
            0 => AggAcc::Count(buf.get_u64()),
            1 => AggAcc::Sum {
                sum: buf.get_f64(),
                count: buf.get_u64(),
            },
            2 => AggAcc::Avg {
                sum: buf.get_f64(),
                count: buf.get_u64(),
            },
            3 => AggAcc::Min(decode_opt(buf)),
            4 => AggAcc::Max(decode_opt(buf)),
            5 => {
                let n = buf.get_u32() as usize;
                let mut set = BTreeSet::new();
                for _ in 0..n {
                    set.insert(buf.get_u64());
                }
                AggAcc::Distinct(set)
            }
            t => return Err(Error::Corruption(format!("bad acc tag {t}"))),
        })
    }
}

fn encode_opt(buf: &mut BytesMut, v: Option<f64>) {
    match v {
        Some(x) => {
            buf.put_u8(1);
            buf.put_f64(x);
        }
        None => buf.put_u8(0),
    }
}

fn decode_opt(buf: &mut Bytes) -> Option<f64> {
    if buf.get_u8() == 1 {
        Some(buf.get_f64())
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows() -> Vec<Row> {
        vec![
            Row::new().with("fare", 10.0).with("city", "sf"),
            Row::new().with("fare", 20.0).with("city", "nyc"),
            Row::new().with("fare", 5.0).with("city", "sf"),
            Row::new().with("city", "la"), // missing fare
        ]
    }

    fn run(f: AggFn) -> Value {
        let mut acc = f.new_acc();
        for r in rows() {
            acc.add(&f, &r);
        }
        acc.result()
    }

    #[test]
    fn basic_aggregates() {
        assert_eq!(run(AggFn::Count), Value::Int(4));
        assert_eq!(run(AggFn::Sum("fare".into())), Value::Double(35.0));
        assert_eq!(run(AggFn::Avg("fare".into())), Value::Double(35.0 / 3.0));
        assert_eq!(run(AggFn::Min("fare".into())), Value::Double(5.0));
        assert_eq!(run(AggFn::Max("fare".into())), Value::Double(20.0));
        assert_eq!(run(AggFn::DistinctCount("city".into())), Value::Int(3));
    }

    #[test]
    fn empty_accumulators() {
        assert_eq!(AggFn::Count.new_acc().result(), Value::Int(0));
        // SQL semantics: SUM over the empty set is NULL, not 0
        assert_eq!(AggFn::Sum("x".into()).new_acc().result(), Value::Null);
        assert_eq!(AggFn::Avg("x".into()).new_acc().result(), Value::Null);
        assert_eq!(AggFn::Min("x".into()).new_acc().result(), Value::Null);
    }

    #[test]
    fn sum_of_all_null_inputs_is_null() {
        let f = AggFn::Sum("fare".into());
        let mut acc = f.new_acc();
        acc.add(&f, &Row::new().with("city", "la")); // fare absent
        acc.add(&f, &Row::new().with("fare", Value::Null));
        assert_eq!(acc.result(), Value::Null);
        // merging two empty sums stays NULL; merging a real one does not
        let mut other = f.new_acc();
        acc.merge(&other.clone());
        assert_eq!(acc.result(), Value::Null);
        other.add(&f, &Row::new().with("fare", 0.0));
        acc.merge(&other);
        assert_eq!(acc.result(), Value::Double(0.0));
    }

    #[test]
    fn merge_equals_sequential() {
        let f = AggFn::Avg("fare".into());
        let all = rows();
        let (left, right) = all.split_at(2);
        let mut a = f.new_acc();
        for r in left {
            a.add(&f, r);
        }
        let mut b = f.new_acc();
        for r in right {
            b.add(&f, r);
        }
        a.merge(&b);
        let mut seq = f.new_acc();
        for r in &all {
            seq.add(&f, r);
        }
        assert_eq!(a.result(), seq.result());
    }

    #[test]
    fn distinct_merge_deduplicates() {
        let f = AggFn::DistinctCount("city".into());
        let mut a = f.new_acc();
        a.add(&f, &Row::new().with("city", "sf"));
        let mut b = f.new_acc();
        b.add(&f, &Row::new().with("city", "sf"));
        b.add(&f, &Row::new().with("city", "la"));
        a.merge(&b);
        assert_eq!(a.result(), Value::Int(2));
    }

    #[test]
    fn encode_decode_roundtrip() {
        let accs = vec![
            AggAcc::Count(7),
            AggAcc::Sum { sum: 1.5, count: 3 },
            AggAcc::Avg {
                sum: 10.0,
                count: 4,
            },
            AggAcc::Min(Some(-2.5)),
            AggAcc::Max(None),
            AggAcc::Distinct([1u64, 5, 9].into_iter().collect()),
        ];
        let mut buf = BytesMut::new();
        for a in &accs {
            a.encode(&mut buf);
        }
        let mut bytes = buf.freeze();
        for a in &accs {
            assert_eq!(&AggAcc::decode(&mut bytes).unwrap(), a);
        }
    }

    #[test]
    fn default_names() {
        assert_eq!(AggFn::Count.default_name(), "count");
        assert_eq!(AggFn::Sum("fare".into()).default_name(), "sum_fare");
        assert_eq!(
            AggFn::DistinctCount("rider".into()).default_name(),
            "distinct_rider"
        );
    }
}
