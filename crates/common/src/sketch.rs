//! Count-min frequency sketch for hot-key detection (§4.2: skew is the
//! dominant failure mode of keyed compute at city scale).
//!
//! The compute router keeps one sketch per parallel stage and consults it
//! on every record: once a key's estimated frequency crosses the stage's
//! salting threshold the router stops hashing it to its key group and
//! sprays it across all shards instead (two-phase pre-aggregation). The
//! sketch is deliberately tiny — a few KiB — and fully deterministic:
//! row seeds are fixed constants, so the same input stream produces the
//! same estimates (and therefore the same routing) in every run.

/// A count-min sketch: `depth` rows of `width` saturating counters.
///
/// Estimates are upper bounds — collisions only ever inflate a count —
/// which is the right bias for hot-key detection: a false positive salts
/// a key that did not need it (correct, slightly more merge work), while
/// a false negative would leave a hot shard overloaded.
#[derive(Debug, Clone)]
pub struct CountMinSketch {
    width: usize,
    rows: Vec<Vec<u64>>,
    total: u64,
}

/// Fixed per-row mixing constants (odd, from splitmix64's increment
/// sequence) so estimates are reproducible across runs and processes.
const ROW_SEEDS: [u64; 8] = [
    0x9e37_79b9_7f4a_7c15,
    0xbf58_476d_1ce4_e5b9,
    0x94d0_49bb_1331_11eb,
    0xd6e8_feb8_6659_fd93,
    0xa076_1d64_78bd_642f,
    0xe703_7ed1_a0b4_28db,
    0x8ebc_6af0_9c88_c6e3,
    0x5896_27f4_a23f_3b2d,
];

fn mix(hash: u64, seed: u64) -> u64 {
    let mut x = hash ^ seed;
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

impl CountMinSketch {
    /// `depth` is clamped to `1..=8` (one fixed seed per row); `width`
    /// is rounded up to at least 16 counters.
    pub fn new(depth: usize, width: usize) -> Self {
        let depth = depth.clamp(1, ROW_SEEDS.len());
        let width = width.max(16);
        CountMinSketch {
            width,
            rows: vec![vec![0u64; width]; depth],
            total: 0,
        }
    }

    /// Record one occurrence of `hash` and return the updated estimate.
    pub fn observe(&mut self, hash: u64) -> u64 {
        self.total += 1;
        let mut est = u64::MAX;
        for (row, seed) in self.rows.iter_mut().zip(ROW_SEEDS) {
            let idx = (mix(hash, seed) % row.len() as u64) as usize;
            row[idx] = row[idx].saturating_add(1);
            est = est.min(row[idx]);
        }
        est
    }

    /// Upper-bound estimate of how many times `hash` has been observed.
    pub fn estimate(&self, hash: u64) -> u64 {
        self.rows
            .iter()
            .zip(ROW_SEEDS)
            .map(|(row, seed)| row[(mix(hash, seed) % row.len() as u64) as usize])
            .min()
            .unwrap_or(0)
    }

    /// Total observations since creation (or the last [`clear`](Self::clear)).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Reset every counter to zero.
    pub fn clear(&mut self) {
        for row in &mut self.rows {
            row.iter_mut().for_each(|c| *c = 0);
        }
        self.total = 0;
    }

    /// Approximate heap footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.rows.len() * self.width * std::mem::size_of::<u64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    #[test]
    fn estimates_never_undercount() {
        let mut sk = CountMinSketch::new(4, 256);
        let keys: Vec<u64> = (0..50)
            .map(|i| Value::hash_of_str(&format!("key-{i}")))
            .collect();
        for (i, k) in keys.iter().enumerate() {
            for _ in 0..=i {
                sk.observe(*k);
            }
        }
        for (i, k) in keys.iter().enumerate() {
            assert!(
                sk.estimate(*k) >= (i + 1) as u64,
                "count-min must be an upper bound"
            );
        }
        assert_eq!(sk.total(), (1..=50).sum::<usize>() as u64);
    }

    #[test]
    fn hot_key_crosses_threshold_cold_keys_stay_low() {
        let mut sk = CountMinSketch::new(4, 1024);
        let hot = Value::hash_of_str("rest-0001");
        for i in 0..10_000u64 {
            sk.observe(Value::hash_of_str(&format!("cold-{i}")));
        }
        for _ in 0..500 {
            sk.observe(hot);
        }
        assert!(sk.estimate(hot) >= 500);
        // With 4 rows x 1024 counters and ~10.5k observations, a cold
        // key's overcount is bounded far below a hot-key threshold.
        let cold = Value::hash_of_str("cold-42");
        assert!(
            sk.estimate(cold) < 200,
            "cold estimate {}",
            sk.estimate(cold)
        );
    }

    #[test]
    fn deterministic_across_instances() {
        let mut a = CountMinSketch::new(4, 128);
        let mut b = CountMinSketch::new(4, 128);
        for i in 0..1_000u64 {
            let h = Value::hash_of_int(i as i64);
            assert_eq!(a.observe(h), b.observe(h));
        }
    }

    #[test]
    fn clear_resets() {
        let mut sk = CountMinSketch::new(2, 64);
        sk.observe(7);
        sk.clear();
        assert_eq!(sk.estimate(7), 0);
        assert_eq!(sk.total(), 0);
        assert!(sk.memory_bytes() >= 2 * 64 * 8);
    }
}
