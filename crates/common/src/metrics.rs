//! Lightweight metrics registry.
//!
//! §9.3 of the paper stresses real-time monitoring for every component.
//! This registry provides counters, gauges and histograms cheap enough to
//! keep enabled in benches, and snapshotable so the job manager's
//! rule-based auto-recovery engine (§4.2.1) can read them.

use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

/// Monotonic counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    pub fn inc(&self) {
        self.add(1);
    }

    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Point-in-time gauge (can go up and down).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    pub fn add(&self, delta: i64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Record a new value and keep the max seen (peak tracking, used by the
    /// memory-footprint experiment E7).
    pub fn set_max(&self, v: i64) {
        let mut cur = self.value.load(Ordering::Relaxed);
        while v > cur {
            match self
                .value
                .compare_exchange(cur, v, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => break,
                Err(actual) => cur = actual,
            }
        }
    }
}

/// Fixed-bucket latency histogram with power-of-two-ish bucket bounds in
/// microseconds; good enough for p50/p99 style queries without allocation
/// on the hot path.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<u64>,
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        // 1us .. ~17min in x2 steps
        let bounds: Vec<u64> = (0..31).map(|i| 1u64 << i).collect();
        let buckets = (0..bounds.len() + 1).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            bounds,
            buckets,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    pub fn record(&self, value: u64) {
        let idx = match self.bounds.binary_search(&value) {
            Ok(i) => i,
            Err(i) => i,
        };
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        let mut cur = self.max.load(Ordering::Relaxed);
        while value > cur {
            match self
                .max
                .compare_exchange(cur, value, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => break,
                Err(actual) => cur = actual,
            }
        }
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    pub fn mean(&self) -> f64 {
        let c = self.count();
        if c == 0 {
            0.0
        } else {
            self.sum.load(Ordering::Relaxed) as f64 / c as f64
        }
    }

    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Approximate quantile (returns the upper bound of the bucket holding
    /// the q-th sample).
    pub fn quantile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        // at least one sample must be covered: ceil(0 * n) = 0 would
        // otherwise satisfy `seen >= target` at the first (possibly empty)
        // bucket and report bound 1 for q = 0 regardless of the data
        let target = (((q.clamp(0.0, 1.0)) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= target {
                return if i < self.bounds.len() {
                    self.bounds[i]
                } else {
                    self.max()
                };
            }
        }
        self.max()
    }
}

/// Snapshot of every metric, keyed by name.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    pub counters: BTreeMap<String, u64>,
    pub gauges: BTreeMap<String, i64>,
    pub histogram_p99_us: BTreeMap<String, u64>,
}

/// Shared registry. Cloning shares the underlying maps.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    counters: Arc<RwLock<BTreeMap<String, Arc<Counter>>>>,
    gauges: Arc<RwLock<BTreeMap<String, Arc<Gauge>>>>,
    histograms: Arc<RwLock<BTreeMap<String, Arc<Histogram>>>>,
}

impl MetricsRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn counter(&self, name: &str) -> Arc<Counter> {
        if let Some(c) = self.counters.read().get(name) {
            return c.clone();
        }
        self.counters
            .write()
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(Counter::default()))
            .clone()
    }

    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        if let Some(g) = self.gauges.read().get(name) {
            return g.clone();
        }
        self.gauges
            .write()
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(Gauge::default()))
            .clone()
    }

    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        if let Some(h) = self.histograms.read().get(name) {
            return h.clone();
        }
        self.histograms
            .write()
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(Histogram::default()))
            .clone()
    }

    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .read()
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: self
                .gauges
                .read()
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histogram_p99_us: self
                .histograms
                .read()
                .iter()
                .map(|(k, v)| (k.clone(), v.quantile(0.99)))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let r = MetricsRegistry::new();
        let c = r.counter("msgs");
        c.inc();
        c.add(9);
        assert_eq!(r.counter("msgs").get(), 10); // same instance by name
        assert_eq!(r.counter("other").get(), 0);
    }

    #[test]
    fn gauge_set_and_peak() {
        let r = MetricsRegistry::new();
        let g = r.gauge("lag");
        g.set(100);
        g.add(-30);
        assert_eq!(g.get(), 70);
        let peak = r.gauge("peak");
        peak.set_max(10);
        peak.set_max(5);
        peak.set_max(20);
        assert_eq!(peak.get(), 20);
    }

    #[test]
    fn histogram_quantiles_ordered() {
        let h = Histogram::default();
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 1000);
        let p50 = h.quantile(0.5);
        let p99 = h.quantile(0.99);
        assert!(p50 <= p99);
        assert!(p99 <= h.max() * 2);
        assert!((h.mean() - 500.5).abs() < 1.0);
    }

    #[test]
    fn histogram_empty_is_zero() {
        let h = Histogram::default();
        assert_eq!(h.quantile(0.99), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn histogram_zero_value_lands_in_first_bucket() {
        let h = Histogram::default();
        h.record(0);
        assert_eq!(h.count(), 1);
        assert_eq!(h.max(), 0);
        // bucket upper-bound semantics: the first bucket's bound is 1
        assert_eq!(h.quantile(0.5), 1);
        assert_eq!(h.quantile(1.0), 1);
    }

    #[test]
    fn histogram_exact_bound_reports_exact_bound() {
        let h = Histogram::default();
        for _ in 0..100 {
            h.record(1024); // exactly bounds[10]
        }
        // Ok(i) indexing: the value sits in the bucket it bounds, so the
        // reported quantile is exact, not the next power of two
        assert_eq!(h.quantile(0.5), 1024);
        assert_eq!(h.quantile(0.99), 1024);
        // one past the bound rolls into the next bucket
        let h2 = Histogram::default();
        h2.record(1025);
        assert_eq!(h2.quantile(0.99), 2048);
    }

    #[test]
    fn histogram_above_largest_bound_reports_observed_max() {
        let h = Histogram::default();
        let big = (1u64 << 30) + 123; // past the largest bound (2^30)
        h.record(big);
        h.record(1u64 << 35);
        assert_eq!(h.quantile(0.99), 1u64 << 35);
        // the overflow bucket reports the observed max, never saturates
        assert_eq!(h.max(), 1u64 << 35);
    }

    #[test]
    fn histogram_quantile_zero_is_lowest_occupied_bucket() {
        let h = Histogram::default();
        for _ in 0..10 {
            h.record(1000); // all samples in the (512, 1024] bucket
        }
        // q=0 must report the first bucket actually holding a sample, not
        // the first bucket of the histogram
        assert_eq!(h.quantile(0.0), 1024);
        assert_eq!(h.quantile(0.0), h.quantile(1.0));
    }

    #[test]
    fn snapshot_contains_everything() {
        let r = MetricsRegistry::new();
        r.counter("a").inc();
        r.gauge("b").set(-5);
        r.histogram("c").record(42);
        let snap = r.snapshot();
        assert_eq!(snap.counters["a"], 1);
        assert_eq!(snap.gauges["b"], -5);
        assert!(snap.histogram_p99_us["c"] >= 42);
    }

    #[test]
    fn registry_clone_shares_state() {
        let r = MetricsRegistry::new();
        let r2 = r.clone();
        r.counter("x").inc();
        assert_eq!(r2.counter("x").get(), 1);
    }
}
