//! Schemas for structured data.
//!
//! The paper's Metadata layer (§3) requires versioned schemas with
//! backward-compatibility checks; the registry itself lives in
//! `rtdi-metadata`, but the schema model is shared by every layer.

use crate::error::{Error, Result};
use crate::value::{Row, Value};

/// Logical type of a field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FieldType {
    Bool,
    Int,
    Double,
    Str,
    Bytes,
    /// Semi-structured nested JSON (§4.3.3).
    Json,
    /// Epoch-millisecond timestamp; semantically an Int but flagged so
    /// OLAP tables know their time column.
    Timestamp,
}

impl FieldType {
    /// Whether a runtime value inhabits this type.
    pub fn accepts(&self, v: &Value) -> bool {
        matches!(
            (self, v),
            (_, Value::Null)
                | (FieldType::Bool, Value::Bool(_))
                | (FieldType::Int, Value::Int(_))
                | (FieldType::Double, Value::Double(_))
                | (FieldType::Double, Value::Int(_))
                | (FieldType::Str, Value::Str(_))
                | (FieldType::Bytes, Value::Bytes(_))
                | (FieldType::Json, Value::Json(_))
                | (FieldType::Timestamp, Value::Int(_))
        )
    }
}

/// One named, typed field.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    pub name: String,
    pub field_type: FieldType,
    /// Nullable fields may be absent from rows; required fields must be
    /// present and non-null.
    pub nullable: bool,
}

impl Field {
    pub fn new(name: impl Into<String>, field_type: FieldType) -> Self {
        Field {
            name: name.into(),
            field_type,
            nullable: true,
        }
    }

    pub fn required(mut self) -> Self {
        self.nullable = false;
        self
    }
}

/// An ordered set of fields describing a stream topic, OLAP table or
/// archival dataset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    pub name: String,
    pub fields: Vec<Field>,
}

impl Schema {
    pub fn new(name: impl Into<String>, fields: Vec<Field>) -> Self {
        Schema {
            name: name.into(),
            fields,
        }
    }

    /// Convenience builder from `(name, type)` pairs (all nullable).
    pub fn of(name: impl Into<String>, fields: &[(&str, FieldType)]) -> Self {
        Schema {
            name: name.into(),
            fields: fields.iter().map(|(n, t)| Field::new(*n, *t)).collect(),
        }
    }

    pub fn field(&self, name: &str) -> Option<&Field> {
        self.fields.iter().find(|f| f.name == name)
    }

    pub fn field_index(&self, name: &str) -> Option<usize> {
        self.fields.iter().position(|f| f.name == name)
    }

    pub fn field_names(&self) -> impl Iterator<Item = &str> {
        self.fields.iter().map(|f| f.name.as_str())
    }

    /// Validate a row against this schema: required fields present and
    /// every present field type-correct. Extra columns are tolerated (the
    /// paper's pipelines decorate events with audit metadata en route).
    pub fn validate(&self, row: &Row) -> Result<()> {
        for field in &self.fields {
            match row.get(&field.name) {
                None | Some(Value::Null) if !field.nullable => {
                    return Err(Error::Schema(format!(
                        "required field '{}' missing in row for schema '{}'",
                        field.name, self.name
                    )));
                }
                Some(v) if !field.field_type.accepts(v) => {
                    return Err(Error::Schema(format!(
                        "field '{}' expected {:?}, got {v:?}",
                        field.name, field.field_type
                    )));
                }
                _ => {}
            }
        }
        Ok(())
    }

    /// Backward compatibility: can data written with `self` still be read
    /// by consumers expecting `prior`? Rules (Avro-style, matching the
    /// metadata-layer requirement in §3):
    /// - no field of `prior` may be removed;
    /// - no field may change type;
    /// - fields that were nullable may not become required... (that is a
    ///   *forward* concern; for backward reads we require new fields added
    ///   on top of `prior` to be nullable so old rows still validate).
    pub fn is_backward_compatible_with(&self, prior: &Schema) -> bool {
        for old in &prior.fields {
            match self.field(&old.name) {
                None => return false,
                Some(new) => {
                    if new.field_type != old.field_type {
                        return false;
                    }
                }
            }
        }
        // fields added relative to prior must be nullable
        for new in &self.fields {
            if prior.field(&new.name).is_none() && !new.nullable {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trips_schema() -> Schema {
        Schema::new(
            "trips",
            vec![
                Field::new("trip_id", FieldType::Str).required(),
                Field::new("fare", FieldType::Double),
                Field::new("ts", FieldType::Timestamp).required(),
            ],
        )
    }

    #[test]
    fn validate_accepts_conforming_row() {
        let s = trips_schema();
        let row = Row::new()
            .with("trip_id", "t1")
            .with("fare", 10.0)
            .with("ts", 1000i64);
        assert!(s.validate(&row).is_ok());
    }

    #[test]
    fn validate_rejects_missing_required() {
        let s = trips_schema();
        let row = Row::new().with("fare", 10.0).with("ts", 1000i64);
        assert!(matches!(s.validate(&row), Err(Error::Schema(_))));
    }

    #[test]
    fn validate_rejects_type_mismatch() {
        let s = trips_schema();
        let row = Row::new()
            .with("trip_id", "t1")
            .with("fare", "not a number")
            .with("ts", 1000i64);
        assert!(s.validate(&row).is_err());
    }

    #[test]
    fn validate_allows_null_in_nullable_and_extra_columns() {
        let s = trips_schema();
        let row = Row::new()
            .with("trip_id", "t1")
            .with("fare", Value::Null)
            .with("ts", 1000i64)
            .with("audit_id", "xyz"); // extra decoration
        assert!(s.validate(&row).is_ok());
    }

    #[test]
    fn int_widens_to_double() {
        assert!(FieldType::Double.accepts(&Value::Int(3)));
        assert!(!FieldType::Int.accepts(&Value::Double(3.0)));
    }

    #[test]
    fn backward_compat_add_nullable_field_ok() {
        let v1 = trips_schema();
        let mut v2 = v1.clone();
        v2.fields.push(Field::new("city", FieldType::Str));
        assert!(v2.is_backward_compatible_with(&v1));
    }

    #[test]
    fn backward_compat_remove_field_breaks() {
        let v1 = trips_schema();
        let mut v2 = v1.clone();
        v2.fields.retain(|f| f.name != "fare");
        assert!(!v2.is_backward_compatible_with(&v1));
    }

    #[test]
    fn backward_compat_type_change_breaks() {
        let v1 = trips_schema();
        let mut v2 = v1.clone();
        v2.fields[1].field_type = FieldType::Str;
        assert!(!v2.is_backward_compatible_with(&v1));
    }

    #[test]
    fn backward_compat_add_required_field_breaks() {
        let v1 = trips_schema();
        let mut v2 = v1.clone();
        v2.fields
            .push(Field::new("city", FieldType::Str).required());
        assert!(!v2.is_backward_compatible_with(&v1));
    }
}
