//! Pipeline-wide freshness tracing.
//!
//! §5.1 demands "seconds-level" end-to-end freshness for pipelines like
//! surge pricing; §9.3 demands real-time monitoring of every component.
//! This module provides the plumbing both need: producers stamp an origin
//! timestamp into record headers, every downstream hop (stream append,
//! consumer proxy, compute runtime, OLAP ingestion, SQL broker) measures
//! how long the record dwelled since the previous hop, and the resulting
//! per-stage histograms roll up into a [`TraceReport`] that the platform's
//! health snapshot and the job manager's rule engine consume.
//!
//! Dwell is measured in **milliseconds** (the repo-wide [`Timestamp`]
//! unit), so the per-stage numbers of a pipeline sum to its end-to-end
//! freshness: `origin -> hop1 -> hop2 -> visible` decomposes as
//! `(hop1 - origin) + (hop2 - hop1) + (visible - hop2)`.

use crate::metrics::Histogram;
use crate::record::{headers, Record};
use crate::time::Timestamp;
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Stage name under which [`PipelineTracer::record_total`] reports the
/// origin-to-visible freshness of a record (kept out of the hop chain so
/// per-stage dwells still sum to it).
pub const END_TO_END: &str = "end-to-end";

/// Stage name under which query-time staleness is reported (how old the
/// newest visible data was when a SQL query ran against the pipeline).
pub const SQL_QUERY_STAGE: &str = "sql-staleness";

/// Snapshot of one stage's dwell distribution.
#[derive(Debug, Clone, PartialEq)]
pub struct StageDwell {
    pub pipeline: String,
    pub stage: String,
    pub count: u64,
    pub mean_ms: f64,
    pub p50_ms: u64,
    pub p99_ms: u64,
    pub max_ms: u64,
}

/// Every stage of every pipeline, hop order preserved within a pipeline.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceReport {
    pub stages: Vec<StageDwell>,
}

impl TraceReport {
    /// Stages of one pipeline, in the order hops first reported.
    pub fn pipeline(&self, pipeline: &str) -> Vec<&StageDwell> {
        self.stages
            .iter()
            .filter(|s| s.pipeline == pipeline)
            .collect()
    }

    pub fn stage(&self, pipeline: &str, stage: &str) -> Option<&StageDwell> {
        self.stages
            .iter()
            .find(|s| s.pipeline == pipeline && s.stage == stage)
    }

    /// Sum of per-hop mean dwells, excluding the [`END_TO_END`] and
    /// [`SQL_QUERY_STAGE`] rollups — comparable to the `END_TO_END` mean.
    pub fn sum_of_hop_means_ms(&self, pipeline: &str) -> f64 {
        self.pipeline(pipeline)
            .iter()
            .filter(|s| s.stage != END_TO_END && s.stage != SQL_QUERY_STAGE)
            .map(|s| s.mean_ms)
            .sum()
    }
}

struct PipelineData {
    /// Insertion-ordered so reports list stages in hop order.
    stages: Vec<(String, Arc<Histogram>)>,
    /// Newest origin (producer) timestamp seen — drives staleness.
    last_origin_ts: Option<Timestamp>,
}

/// Shared, cheap-to-clone tracer. All clones write into the same
/// histograms, so the producer, broker, ingester and broker-side SQL can
/// each hold one without coordination.
#[derive(Clone, Default)]
pub struct PipelineTracer {
    inner: Arc<RwLock<BTreeMap<String, PipelineData>>>,
}

impl PipelineTracer {
    pub fn new() -> Self {
        Self::default()
    }

    fn hist(&self, pipeline: &str, stage: &str) -> Arc<Histogram> {
        let mut inner = self.inner.write();
        let data = inner
            .entry(pipeline.to_string())
            .or_insert_with(|| PipelineData {
                stages: Vec::new(),
                last_origin_ts: None,
            });
        if let Some((_, h)) = data.stages.iter().find(|(n, _)| n == stage) {
            return h.clone();
        }
        let h = Arc::new(Histogram::default());
        data.stages.push((stage.to_string(), h.clone()));
        h
    }

    /// The timestamp the *previous* hop stamped (origin for a fresh
    /// record): the trace stamp, else the producer's app timestamp, else
    /// the record's event time.
    pub fn origin_of(record: &Record) -> Timestamp {
        record
            .headers
            .get(headers::TRACE_TIMESTAMP)
            .or_else(|| record.headers.get(headers::APP_TIMESTAMP))
            .and_then(|s| s.parse::<i64>().ok())
            .unwrap_or(record.timestamp)
    }

    /// The producer-side origin stamp (ignores intermediate hop stamps).
    pub fn app_ts_of(record: &Record) -> Timestamp {
        record
            .headers
            .get(headers::APP_TIMESTAMP)
            .and_then(|s| s.parse::<i64>().ok())
            .unwrap_or(record.timestamp)
    }

    /// Stamp a record at its origin: sets the trace stamp, and the app
    /// timestamp too if the producer has not already done so.
    pub fn stamp(record: &mut Record, now: Timestamp) {
        if record.headers.get(headers::APP_TIMESTAMP).is_none() {
            record.headers.set_i64(headers::APP_TIMESTAMP, now);
        }
        record.headers.set_i64(headers::TRACE_TIMESTAMP, now);
    }

    /// Record a raw dwell (negative values clamp to zero — clock skew must
    /// not corrupt the histogram).
    pub fn record_dwell(&self, pipeline: &str, stage: &str, dwell_ms: i64) {
        self.hist(pipeline, stage).record(dwell_ms.max(0) as u64);
    }

    /// Measure and record the dwell since the previous hop, then restamp
    /// the record so the next hop measures only its own dwell. Returns the
    /// dwell.
    pub fn observe_hop(
        &self,
        pipeline: &str,
        stage: &str,
        record: &mut Record,
        now: Timestamp,
    ) -> i64 {
        let dwell = now - Self::origin_of(record);
        self.record_dwell(pipeline, stage, dwell);
        record.headers.set_i64(headers::TRACE_TIMESTAMP, now);
        let origin = Self::app_ts_of(record);
        let mut inner = self.inner.write();
        if let Some(data) = inner.get_mut(pipeline) {
            data.last_origin_ts = Some(data.last_origin_ts.map_or(origin, |t| t.max(origin)));
        }
        dwell.max(0)
    }

    /// Read-only variant for observers that cannot restamp (e.g. the
    /// consumer proxy dispatching borrowed records). The next hop will
    /// re-measure from the same stamp, so use this only for side channels.
    pub fn observe_read(
        &self,
        pipeline: &str,
        stage: &str,
        record: &Record,
        now: Timestamp,
    ) -> i64 {
        let dwell = now - Self::origin_of(record);
        self.record_dwell(pipeline, stage, dwell);
        dwell.max(0)
    }

    /// Record origin-to-now freshness under [`END_TO_END`] — call at the
    /// point where the record becomes visible to consumers (OLAP segment,
    /// KV store, sink topic).
    pub fn record_total(&self, pipeline: &str, record: &Record, now: Timestamp) -> i64 {
        let total = now - Self::app_ts_of(record);
        self.record_dwell(pipeline, END_TO_END, total);
        total.max(0)
    }

    /// How stale the pipeline's newest data is at `now`.
    pub fn staleness_ms(&self, pipeline: &str, now: Timestamp) -> Option<i64> {
        self.inner
            .read()
            .get(pipeline)?
            .last_origin_ts
            .map(|t| (now - t).max(0))
    }

    /// Record query-time staleness under [`SQL_QUERY_STAGE`]; the SQL
    /// broker calls this per query per referenced pipeline.
    pub fn note_query(&self, pipeline: &str, now: Timestamp) -> Option<i64> {
        let staleness = self.staleness_ms(pipeline, now)?;
        self.record_dwell(pipeline, SQL_QUERY_STAGE, staleness);
        Some(staleness)
    }

    pub fn pipelines(&self) -> Vec<String> {
        self.inner.read().keys().cloned().collect()
    }

    pub fn report(&self) -> TraceReport {
        let inner = self.inner.read();
        let mut stages = Vec::new();
        for (pipeline, data) in inner.iter() {
            for (stage, h) in &data.stages {
                stages.push(StageDwell {
                    pipeline: pipeline.clone(),
                    stage: stage.clone(),
                    count: h.count(),
                    mean_ms: h.mean(),
                    p50_ms: h.quantile(0.5),
                    p99_ms: h.quantile(0.99),
                    max_ms: h.max(),
                });
            }
        }
        TraceReport { stages }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Row;

    fn stamped(ts: Timestamp) -> Record {
        let mut r = Record::new(Row::new(), ts);
        PipelineTracer::stamp(&mut r, ts);
        r
    }

    #[test]
    fn hop_dwells_sum_to_end_to_end() {
        let tr = PipelineTracer::new();
        let mut r = stamped(1_000);
        assert_eq!(tr.observe_hop("p", "stream", &mut r, 1_010), 10);
        assert_eq!(tr.observe_hop("p", "compute", &mut r, 1_250), 240);
        assert_eq!(tr.observe_hop("p", "olap", &mut r, 1_300), 50);
        assert_eq!(tr.record_total("p", &r, 1_300), 300);
        let report = tr.report();
        assert_eq!(
            report.sum_of_hop_means_ms("p"),
            report.stage("p", END_TO_END).unwrap().mean_ms
        );
        // hop order preserved, not alphabetical
        let names: Vec<&str> = report
            .pipeline("p")
            .iter()
            .map(|s| s.stage.as_str())
            .collect();
        assert_eq!(names, vec!["stream", "compute", "olap", END_TO_END]);
    }

    #[test]
    fn staleness_tracks_newest_origin() {
        let tr = PipelineTracer::new();
        assert_eq!(tr.staleness_ms("p", 99), None);
        let mut a = stamped(1_000);
        let mut b = stamped(4_000);
        tr.observe_hop("p", "stream", &mut a, 1_001);
        tr.observe_hop("p", "stream", &mut b, 4_001);
        assert_eq!(tr.staleness_ms("p", 5_000), Some(1_000));
        assert_eq!(tr.note_query("p", 5_000), Some(1_000));
        assert_eq!(tr.report().stage("p", SQL_QUERY_STAGE).unwrap().count, 1);
    }

    #[test]
    fn unstamped_records_fall_back_to_event_time() {
        let tr = PipelineTracer::new();
        let mut r = Record::new(Row::new(), 500);
        assert_eq!(tr.observe_hop("p", "s", &mut r, 600), 100);
        // hop restamped: the next hop measures only its own dwell
        assert_eq!(tr.observe_hop("p", "s2", &mut r, 650), 50);
    }

    #[test]
    fn clock_skew_clamps_to_zero() {
        let tr = PipelineTracer::new();
        let mut r = stamped(1_000);
        assert_eq!(tr.observe_hop("p", "s", &mut r, 900), 0);
        assert_eq!(tr.report().stage("p", "s").unwrap().max_ms, 0);
    }

    #[test]
    fn clones_share_state() {
        let tr = PipelineTracer::new();
        let tr2 = tr.clone();
        tr.record_dwell("p", "s", 5);
        assert_eq!(tr2.report().stage("p", "s").unwrap().count, 1);
    }
}
