//! Dynamically-typed values and rows.
//!
//! The stack moves structured events between systems that each have their
//! own storage representation (log records, dataflow elements, columnar
//! segments, SQL result sets). [`Value`] is the common currency; [`Row`] is
//! an ordered bag of named values validated against a
//! [`crate::schema::Schema`].

use std::cmp::Ordering;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

const FNV_OFFSET: u64 = 0xcbf29ce484222325;
const FNV_PRIME: u64 = 0x100000001b3;

#[inline]
fn fnv_mix(h: u64, bytes: &[u8]) -> u64 {
    bytes
        .iter()
        .fold(h, |h, b| (h ^ (*b as u64)).wrapping_mul(FNV_PRIME))
}

/// A dynamically typed scalar or semi-structured value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Int(i64),
    Double(f64),
    Str(String),
    Bytes(Vec<u8>),
    /// Semi-structured nested data (§4.3.3 JSON support).
    Json(Box<JsonValue>),
}

/// Nested JSON value used for semi-structured columns.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<JsonValue>),
    Object(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// Navigate a dotted path (`a.b.c`) into nested objects.
    pub fn path(&self, path: &str) -> Option<&JsonValue> {
        let mut cur = self;
        for part in path.split('.') {
            match cur {
                JsonValue::Object(map) => cur = map.get(part)?,
                _ => return None,
            }
        }
        Some(cur)
    }

    /// Flatten nested objects into `prefix.key -> scalar` pairs, the
    /// transformation the paper describes Flink jobs performing before
    /// Pinot ingestion.
    pub fn flatten(&self) -> Vec<(String, Value)> {
        let mut out = Vec::new();
        self.flatten_into("", &mut out);
        out
    }

    fn flatten_into(&self, prefix: &str, out: &mut Vec<(String, Value)>) {
        match self {
            JsonValue::Object(map) => {
                for (k, v) in map {
                    let key = if prefix.is_empty() {
                        k.clone()
                    } else {
                        format!("{prefix}.{k}")
                    };
                    v.flatten_into(&key, out);
                }
            }
            JsonValue::Array(items) => {
                for (i, v) in items.iter().enumerate() {
                    let key = format!("{prefix}[{i}]");
                    v.flatten_into(&key, out);
                }
            }
            other => out.push((prefix.to_string(), other.to_value())),
        }
    }

    fn to_value(&self) -> Value {
        match self {
            JsonValue::Null => Value::Null,
            JsonValue::Bool(b) => Value::Bool(*b),
            JsonValue::Number(n) => {
                if n.fract() == 0.0 && n.abs() < i64::MAX as f64 {
                    Value::Int(*n as i64)
                } else {
                    Value::Double(*n)
                }
            }
            JsonValue::String(s) => Value::Str(s.clone()),
            arr @ JsonValue::Array(_) => Value::Json(Box::new(arr.clone())),
            obj @ JsonValue::Object(_) => Value::Json(Box::new(obj.clone())),
        }
    }
}

impl Value {
    /// Interpret the value as an i64 where a lossless conversion exists.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Bool(b) => Some(*b as i64),
            Value::Double(d) if d.fract() == 0.0 => Some(*d as i64),
            _ => None,
        }
    }

    /// Interpret as f64 (ints widen).
    pub fn as_double(&self) -> Option<f64> {
        match self {
            Value::Double(d) => Some(*d),
            Value::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// Borrow as &str when the value is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Total ordering across comparable values; used by ORDER BY, sorted
    /// indices and range predicates. Values of incompatible types order by
    /// a fixed type rank so sorting is always total and deterministic.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (Double(a), Double(b)) => a.total_cmp(b),
            (Int(a), Double(b)) => (*a as f64).total_cmp(b),
            (Double(a), Int(b)) => a.total_cmp(&(*b as f64)),
            (Str(a), Str(b)) => a.cmp(b),
            (Bytes(a), Bytes(b)) => a.cmp(b),
            _ => self.type_rank().cmp(&other.type_rank()),
        }
    }

    fn type_rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) => 2,
            Value::Double(_) => 2, // ints and doubles compare numerically
            Value::Str(_) => 3,
            Value::Bytes(_) => 4,
            Value::Json(_) => 5,
        }
    }

    /// Stable 64-bit hash used for key partitioning. Deliberately simple
    /// (FNV-1a) so that partition assignment is reproducible across runs
    /// and processes — required for the upsert partition routing in §4.3.1.
    pub fn partition_hash(&self) -> u64 {
        match self {
            Value::Null => FNV_OFFSET,
            Value::Bool(b) => fnv_mix(FNV_OFFSET, &[*b as u8, 1]),
            Value::Int(i) => Value::hash_of_int(*i),
            Value::Double(d) => Value::hash_of_double(*d),
            Value::Str(s) => Value::hash_of_str(s),
            Value::Bytes(b) => fnv_mix(FNV_OFFSET, b),
            Value::Json(j) => fnv_mix(FNV_OFFSET, format!("{j:?}").as_bytes()),
        }
    }

    /// [`Value::partition_hash`] of `Value::Str(s)` without constructing
    /// the value (hot aggregation paths hash dictionary entries directly).
    #[inline]
    pub fn hash_of_str(s: &str) -> u64 {
        fnv_mix(FNV_OFFSET, s.as_bytes())
    }

    /// [`Value::partition_hash`] of `Value::Int(i)` without construction.
    #[inline]
    pub fn hash_of_int(i: i64) -> u64 {
        fnv_mix(FNV_OFFSET, &i.to_le_bytes())
    }

    /// [`Value::partition_hash`] of `Value::Double(d)` without construction.
    #[inline]
    pub fn hash_of_double(d: f64) -> u64 {
        fnv_mix(FNV_OFFSET, &d.to_bits().to_le_bytes())
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Double(d) => write!(f, "{d}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::Bytes(b) => write!(f, "<{} bytes>", b.len()),
            Value::Json(j) => write!(f, "{}", crate::json::to_string(j)),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Double(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

/// A named, ordered collection of values — one structured event or one SQL
/// result row.
///
/// Column names are reference-counted (`Arc<str>`): cloning a row or
/// building many rows with the same shape shares one name allocation
/// instead of copying a `String` per cell, which is what the columnar
/// query path relies on when materializing results.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Row {
    columns: Vec<(Arc<str>, Value)>,
}

impl Row {
    pub fn new() -> Self {
        Row {
            columns: Vec::new(),
        }
    }

    pub fn with_capacity(n: usize) -> Self {
        Row {
            columns: Vec::with_capacity(n),
        }
    }

    /// Builder-style column append.
    pub fn with(mut self, name: impl Into<Arc<str>>, value: impl Into<Value>) -> Self {
        self.columns.push((name.into(), value.into()));
        self
    }

    pub fn push(&mut self, name: impl Into<Arc<str>>, value: impl Into<Value>) {
        self.columns.push((name.into(), value.into()));
    }

    /// Set an existing column or append a new one.
    pub fn set(&mut self, name: &str, value: impl Into<Value>) {
        let value = value.into();
        if let Some(slot) = self.columns.iter_mut().find(|(n, _)| &**n == name) {
            slot.1 = value;
        } else {
            self.columns.push((Arc::from(name), value));
        }
    }

    pub fn get(&self, name: &str) -> Option<&Value> {
        self.columns
            .iter()
            .find(|(n, _)| &**n == name)
            .map(|(_, v)| v)
    }

    pub fn get_int(&self, name: &str) -> Option<i64> {
        self.get(name).and_then(Value::as_int)
    }

    pub fn get_double(&self, name: &str) -> Option<f64> {
        self.get(name).and_then(Value::as_double)
    }

    pub fn get_str(&self, name: &str) -> Option<&str> {
        self.get(name).and_then(Value::as_str)
    }

    pub fn column_names(&self) -> impl Iterator<Item = &str> {
        self.columns.iter().map(|(n, _)| &**n)
    }

    pub fn iter(&self) -> impl Iterator<Item = (&str, &Value)> {
        self.columns.iter().map(|(n, v)| (&**n, v))
    }

    pub fn len(&self) -> usize {
        self.columns.len()
    }

    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    pub fn values(&self) -> impl Iterator<Item = &Value> {
        self.columns.iter().map(|(_, v)| v)
    }

    /// Project the row down to the named columns, in the given order.
    /// Missing columns become `Value::Null` (semi-structured data may omit
    /// fields).
    pub fn project(&self, names: &[&str]) -> Row {
        let mut out = Row::with_capacity(names.len());
        for n in names {
            out.push(*n, self.get(n).cloned().unwrap_or(Value::Null));
        }
        out
    }

    /// Like [`Row::project`] but reuses already-interned column names, so
    /// projecting many rows onto the same shape performs zero name
    /// allocations.
    pub fn project_shared(&self, names: &[Arc<str>]) -> Row {
        let mut out = Row::with_capacity(names.len());
        for n in names {
            out.push(Arc::clone(n), self.get(n).cloned().unwrap_or(Value::Null));
        }
        out
    }

    /// Rough in-memory footprint in bytes; used by the engine-memory
    /// experiments (E7) and OLAP footprint accounting (E10).
    pub fn approx_bytes(&self) -> usize {
        self.columns
            .iter()
            .map(|(n, v)| n.len() + value_bytes(v) + 16)
            .sum()
    }
}

fn value_bytes(v: &Value) -> usize {
    match v {
        Value::Null => 1,
        Value::Bool(_) => 1,
        Value::Int(_) => 8,
        Value::Double(_) => 8,
        Value::Str(s) => s.len() + 24,
        Value::Bytes(b) => b.len() + 24,
        Value::Json(j) => crate::json::to_string(j).len() + 32,
    }
}

impl FromIterator<(String, Value)> for Row {
    fn from_iter<T: IntoIterator<Item = (String, Value)>>(iter: T) -> Self {
        Row {
            columns: iter.into_iter().map(|(n, v)| (Arc::from(n), v)).collect(),
        }
    }
}

impl FromIterator<(Arc<str>, Value)> for Row {
    fn from_iter<T: IntoIterator<Item = (Arc<str>, Value)>>(iter: T) -> Self {
        Row {
            columns: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_roundtrip() {
        let row = Row::new()
            .with("city", "san_francisco")
            .with("fare", 12.5)
            .with("trip_count", 3i64)
            .with("surge", true);
        assert_eq!(row.get_str("city"), Some("san_francisco"));
        assert_eq!(row.get_double("fare"), Some(12.5));
        assert_eq!(row.get_int("trip_count"), Some(3));
        assert_eq!(row.get("surge"), Some(&Value::Bool(true)));
        assert_eq!(row.get("missing"), None);
        assert_eq!(row.len(), 4);
    }

    #[test]
    fn row_set_overwrites() {
        let mut row = Row::new().with("a", 1i64);
        row.set("a", 2i64);
        row.set("b", 3i64);
        assert_eq!(row.get_int("a"), Some(2));
        assert_eq!(row.get_int("b"), Some(3));
        assert_eq!(row.len(), 2);
    }

    #[test]
    fn projection_fills_missing_with_null() {
        let row = Row::new().with("a", 1i64).with("b", 2i64);
        let p = row.project(&["b", "zzz"]);
        assert_eq!(p.get_int("b"), Some(2));
        assert!(p.get("zzz").unwrap().is_null());
        let names: Vec<_> = p.column_names().collect();
        assert_eq!(names, vec!["b", "zzz"]);
    }

    #[test]
    fn numeric_cross_type_ordering() {
        assert_eq!(Value::Int(2).total_cmp(&Value::Double(2.5)), Ordering::Less);
        assert_eq!(
            Value::Double(3.0).total_cmp(&Value::Int(3)),
            Ordering::Equal
        );
        assert_eq!(
            Value::Str("b".into()).total_cmp(&Value::Str("a".into())),
            Ordering::Greater
        );
    }

    #[test]
    fn partition_hash_stable_and_spread() {
        let a = Value::Str("driver-42".into());
        assert_eq!(a.partition_hash(), a.partition_hash());
        // different keys should (virtually always) differ
        let b = Value::Str("driver-43".into());
        assert_ne!(a.partition_hash(), b.partition_hash());
        // int and its string form are distinct keys
        assert_ne!(
            Value::Int(7).partition_hash(),
            Value::Str("7".into()).partition_hash()
        );
    }

    #[test]
    fn json_path_navigation() {
        let mut inner = BTreeMap::new();
        inner.insert("lat".to_string(), JsonValue::Number(37.77));
        let mut outer = BTreeMap::new();
        outer.insert("loc".to_string(), JsonValue::Object(inner));
        let v = JsonValue::Object(outer);
        assert_eq!(v.path("loc.lat"), Some(&JsonValue::Number(37.77)));
        assert_eq!(v.path("loc.lon"), None);
        assert_eq!(v.path("nope.lat"), None);
    }

    #[test]
    fn json_flatten_produces_dotted_scalars() {
        let mut inner = BTreeMap::new();
        inner.insert("a".to_string(), JsonValue::Number(1.0));
        inner.insert("b".to_string(), JsonValue::String("x".into()));
        let mut outer = BTreeMap::new();
        outer.insert("n".to_string(), JsonValue::Object(inner));
        outer.insert(
            "tags".to_string(),
            JsonValue::Array(vec![JsonValue::Bool(true), JsonValue::Null]),
        );
        let flat = JsonValue::Object(outer).flatten();
        let keys: Vec<_> = flat.iter().map(|(k, _)| k.as_str()).collect();
        assert!(keys.contains(&"n.a"));
        assert!(keys.contains(&"n.b"));
        assert!(keys.contains(&"tags[0]"));
        assert!(keys.contains(&"tags[1]"));
        let a = flat.iter().find(|(k, _)| k == "n.a").unwrap();
        assert_eq!(a.1, Value::Int(1));
    }

    #[test]
    fn approx_bytes_monotonic_in_content() {
        let small = Row::new().with("a", 1i64);
        let big = Row::new()
            .with("a", 1i64)
            .with("long_string", "x".repeat(100));
        assert!(big.approx_bytes() > small.approx_bytes());
    }
}
